// Package repro is a reproduction of "Greedy Routing and the
// Algorithmic Small-World Phenomenon" (Bringmann, Keusch, Lengler, Maus,
// Molla; PODC 2017). See README.md for the user guide, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The root package holds the benchmark harness
// (bench_test.go): one benchmark per reproduced table/figure.
package repro
