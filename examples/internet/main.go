// Internet: Krioukov et al. asked whether routing protocols "having no full
// view of the network topology can still efficiently route messages" through
// the internet. Boguñá et al. showed the internet embeds into hyperbolic
// space; this example samples such a hyperbolic topology, routes packets by
// pure geometry (forward to the neighbor hyperbolically closest to the
// destination), and shows what Corollary 3.6 proves: near-optimal paths with
// high success, and guaranteed delivery once local backtracking is added.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hrg"
)

func main() {
	// An internet-like topology: hyperbolic random graph with degree
	// exponent beta = 2 * 0.55 + 1 = 2.1, close to measured AS-graph
	// exponents.
	params := hrg.Params{N: 20000, AlphaH: 0.55, CH: 0, TH: 0}
	fmt.Printf("autonomous systems: %d, disk radius R = %.1f, degree exponent beta = %.1f\n",
		params.N, params.R(), params.Beta())

	// Geometric greedy forwarding (the phi_H objective of Section 11).
	nw, err := core.NewHRG(params, 2026, true /* hyperbolic objective */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d links, giant component %.1f%%\n",
		nw.Graph.M(), 100*float64(len(nw.Giant()))/float64(nw.Graph.N()))

	rep, err := core.RunMilgram(nw, core.MilgramConfig{
		Pairs:          400,
		Seed:           7,
		ComputeStretch: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeometric greedy forwarding:\n")
	fmt.Printf("  delivery rate: %.1f%% [%.1f%%, %.1f%%]\n",
		100*rep.Success.P, 100*rep.Success.Lo, 100*rep.Success.Hi)
	fmt.Printf("  mean path: %.2f hops, stretch %.3f over shortest paths\n",
		rep.MeanHops, rep.MeanStretch)

	// Add the paper's Algorithm 2 patching: local state only, delivery
	// guaranteed within a component (Theorem 3.4 via Corollary 3.6).
	// Protocols are addressed by registry name.
	for _, proto := range []core.Protocol{"phi-dfs", "gravity-pressure"} {
		prep, err := core.RunMilgram(nw, core.MilgramConfig{
			Pairs:          400,
			Protocol:       proto,
			Seed:           7,
			ComputeStretch: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwith %s patching:\n", proto)
		fmt.Printf("  delivery rate: %.1f%%, mean path %.2f hops, stretch %.3f\n",
			100*prep.Success.P, prep.MeanHops, prep.MeanStretch)
	}
	fmt.Println("\nverdict: local greedy forwarding routes the internet-like topology" +
		" near-optimally — the rigorous answer the paper gives to Krioukov's question.")
}
