// Trajectory: reproduce Figure 1 of the paper in ASCII. A greedy path from a
// low-weight source to a far-away low-weight target first climbs the weight
// hierarchy into the network core (first phase), then descends toward the
// target while the objective explodes (second phase). The per-hop data is
// streamed by a route.Observer attached to the routing episode — the
// engine's observability hook — and the plot prints the weight profile of
// one such path hop by hop.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/route"
)

func main() {
	params := girg.DefaultParams(200000)
	params.FixedN = true
	// A sparse kernel (lambda well below 1; (EP3) still holds with
	// c1 = lambda^{1/alpha}) keeps average degrees around ten, so paths are
	// long enough to display the two phases.
	params.Lambda = 0.02
	// Plant s and t with minimal weight, far apart on the torus — the
	// hardest typical case of the theorems.
	planted := []girg.Plant{
		{Pos: []float64{0.1, 0.1}, W: params.WMin},
		{Pos: []float64{0.6, 0.6}, W: params.WMin},
	}
	var (
		hops []route.MoveEvent
		seed uint64
	)
	for seed = 1; seed < 40; seed++ {
		g, err := girg.Generate(params, seed, girg.Options{Planted: planted})
		if err != nil {
			log.Fatal(err)
		}
		nw := &core.Network{
			Graph: g,
			Label: "trajectory",
			NewObjective: func(t int) route.Objective {
				return route.NewStandard(g, t)
			},
		}
		// The observer receives one MoveEvent per hop: the vertex, its
		// model weight and its objective value — the Figure 1 data.
		var events []route.MoveEvent
		res, err := nw.Route(core.ProtoGreedy, 0, 1, route.ObserverFunc(func(ev route.MoveEvent) {
			events = append(events, ev)
		}))
		if err != nil {
			log.Fatal(err)
		}
		if res.Success && len(events) > len(hops) {
			hops = events
			if res.Moves >= 6 {
				break
			}
		}
	}
	if hops == nil {
		log.Fatal("no successful path found; rerun with another seed range")
	}
	fmt.Printf("greedy path on a %.0f-vertex GIRG (seed %d): %d hops, both endpoints at weight %.1f\n\n",
		params.N, seed, len(hops)-1, params.WMin)
	fmt.Println("hop  weight        phi            log10(w) bar (the Figure-1 arc)")
	maxLog := 0.0
	for _, h := range hops {
		if l := math.Log10(h.W); l > maxLog {
			maxLog = l
		}
	}
	for _, h := range hops {
		bar := ""
		if maxLog > 0 {
			bar = strings.Repeat("#", 1+int(40*math.Log10(h.W)/maxLog))
		}
		phi := fmt.Sprintf("%12.4g", h.Score)
		if math.IsInf(h.Score, 1) {
			phi = "         inf"
		}
		fmt.Printf("%3d  %-12.1f %s  %s\n", h.Step, h.W, phi, bar)
	}
	fmt.Println("\nfirst phase: weight rises doubly-exponentially into the core;")
	fmt.Println("second phase: weight falls while the objective keeps rising toward the target.")
}
