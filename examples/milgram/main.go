// Milgram: reproduce the letter-forwarding experiment on a synthetic social
// network. Random people receive letters addressed to random targets and
// forward each to the acquaintance most likely to know the target (the
// paper's greedy objective). We report the success rate and the "degrees of
// separation" of delivered letters — the algorithmic small-world phenomenon.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/stats"
)

func main() {
	// A society of ~200k people. Positions model geography plus interests;
	// weights model how connected a person is (power law, like real social
	// networks). The sparse kernel keeps acquaintance counts realistic
	// (around a dozen people you would actually forward a letter to).
	params := girg.DefaultParams(200000)
	params.Lambda = 0.01
	nw, err := core.NewGIRG(params, 1964 /* the year of the experiment */, girg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("society: %d people, %d acquaintance ties, avg %.1f friends each\n",
		nw.Graph.N(), nw.Graph.M(), 2*float64(nw.Graph.M())/float64(nw.Graph.N()))

	// 500 letters between random pairs, forwarded greedily. Like Milgram,
	// we sample pairs from the whole population (letters into isolated
	// corners get lost, as his did).
	rep, err := core.RunMilgram(nw, core.MilgramConfig{
		Pairs:      500,
		Seed:       6,
		WholeGraph: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nletters delivered: %.1f%% (Milgram saw ~29%% of started chains complete)\n",
		100*rep.Success.P)
	fmt.Printf("degrees of separation (delivered letters): mean %.2f, median %.0f, 95th percentile %.0f\n",
		rep.MeanHops, stats.Median(rep.Hops), stats.Quantile(rep.Hops, 0.95))
	fmt.Printf("Theorem 3.3 scale for this society: 2/|ln(beta-2)| * lnln n = %.1f hops\n",
		stats.TheoryHopConstant(params.Beta)*math.Log(math.Log(params.N)))

	// Backtracking ("I don't know anyone closer — try my friend instead")
	// makes every deliverable letter arrive, still in about the same number
	// of hops (Theorem 3.4).
	patched, err := core.RunMilgram(nw, core.MilgramConfig{
		Pairs:    500,
		Protocol: "history", // protocols are addressed by registry name
		Seed:     6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith backtracking (same-component pairs): delivered %.1f%%, mean hops %.2f\n",
		100*patched.Success.P, patched.MeanHops)
}
