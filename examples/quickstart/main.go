// Quickstart: sample a small GIRG, route one message greedily, and print
// what happened. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/girg"
)

func main() {
	// A geometric inhomogeneous random graph with 5000 expected vertices
	// on the 2-torus, power-law weights with exponent 2.5 (the paper's
	// scale-free regime), and long-range decay alpha = 2.
	params := girg.DefaultParams(5000)
	nw, err := core.NewGIRG(params, 42 /* seed */, girg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	g := nw.Graph
	fmt.Printf("sampled %s: %d vertices, %d edges, giant component %d vertices\n",
		nw.Label, g.N(), g.M(), len(nw.Giant()))

	// Route a message between the two ends of the giant component using
	// the paper's greedy protocol (Algorithm 1): every vertex forwards to
	// the neighbor most likely to know the target.
	giant := nw.Giant()
	s, t := giant[0], giant[len(giant)-1]
	res, err := nw.Route(core.ProtoGreedy, s, t)
	if err != nil {
		log.Fatal(err)
	}
	if res.Success {
		fmt.Printf("greedy routing %d -> %d delivered in %d hops: %v\n", s, t, res.Moves, res.Path)
	} else {
		fmt.Printf("greedy routing %d -> %d stuck at %d after %d hops — patching to the rescue\n",
			s, t, res.Stuck, res.Moves)
	}

	// The paper's Algorithm 2 (greedy Phi-DFS patching) is guaranteed to
	// deliver within a connected component. Protocols live in a registry and
	// are addressed by name; core.Protocols() lists what is available.
	res, err = nw.Route("phi-dfs", s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phi-dfs patching: delivered=%v in %d moves (%d distinct vertices)\n",
		res.Success, res.Moves, res.Unique)
}
