// Distributed: the paper stresses that greedy routing and Algorithm 2 are
// genuinely local protocols — every node knows only its own address, its
// direct neighbors' addresses and the target address on the packet, and
// only one node is awake at a time. This example runs both protocols inside
// the message-passing simulator of internal/dist, whose View type makes
// non-local access impossible by construction, and cross-checks the
// distributed executions against the centralized reference implementations.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func main() {
	params := girg.DefaultParams(20000)
	params.Lambda = 0.02 // sparse, so pure greedy sometimes needs patching
	params.FixedN = true
	g, err := girg.Generate(params, 99, girg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := dist.NewSimulator(g)
	if err != nil {
		log.Fatal(err)
	}
	giant := graph.GiantComponent(g)
	rng := xrand.New(7)
	fmt.Printf("network: %d nodes, %d links; every node sees only its neighbors\n\n",
		g.N(), g.M())

	const episodes = 200
	var greedyOK, dfsOK, conform int
	var dfsHops int
	for i := 0; i < episodes; i++ {
		s := giant[rng.IntN(len(giant))]
		t := giant[rng.IntN(len(giant))]
		if s == t {
			continue
		}
		gres, err := sim.Run(dist.GreedyProgram{}, s, t, 0)
		if err != nil {
			log.Fatal(err)
		}
		if gres.Delivered {
			greedyOK++
		}
		dres, err := sim.Run(dist.PhiDFSProgram{}, s, t, 0)
		if err != nil {
			log.Fatal(err)
		}
		if dres.Delivered {
			dfsOK++
			dfsHops += dres.Hops
		}
		// Conformance: the distributed run matches the centralized
		// implementation transmission for transmission.
		central := route.PhiDFS{}.Route(g, route.NewStandard(g, t), s)
		if central.Success == dres.Delivered && central.Moves == dres.Hops {
			conform++
		}
	}
	fmt.Printf("distributed greedy (Algorithm 1):   delivered %d/%d packets\n", greedyOK, episodes)
	fmt.Printf("distributed Phi-DFS (Algorithm 2):  delivered %d/%d packets, mean %.1f transmissions\n",
		dfsOK, episodes, float64(dfsHops)/float64(dfsOK))
	fmt.Printf("conformance with centralized impl:  %d/%d episodes identical\n", conform, episodes)
	fmt.Println("\nevery transmission went to a direct neighbor; every decision used only")
	fmt.Println("local knowledge — the locality claim of Section 2.2, enforced by types.")
}
