// benchjson converts `go test -bench` output into a committed JSON record,
// merging into an existing file so before/after snapshots accumulate under
// named keys:
//
//	go test -bench=Greedy -benchmem . | benchjson -out BENCH_pr6.json -key after
//
// The file maps key → benchmark name → measurements. Existing keys other
// than the one being written are preserved verbatim, which is what lets a
// PR commit its "before" numbers once and refresh "after" on every run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "JSON file to merge into (required)")
	key := fs.String("key", "after", "top-level key to write this run under")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	run, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(run) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	// Merge: keep every existing top-level key except the one being written.
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			return fmt.Errorf("%s exists but is not a JSON object: %v", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(run)
	if err != nil {
		return err
	}
	doc[*key] = enc

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(buf, '\n'), 0o644)
}

// parseBench extracts measurement maps from `go test -bench` output lines:
//
//	BenchmarkName-8   132   21988694 ns/op   1.000 success   256262 B/op   19 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name; every value/unit pair
// after the iteration count becomes one entry, plus "iterations" itself.
func parseBench(in io.Reader) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			continue // a config line like "goos: linux", not a result
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q on line %q", f[i], sc.Text())
			}
			m[f[i+1]] = v
		}
		out[name] = m
	}
	return out, sc.Err()
}
