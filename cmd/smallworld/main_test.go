package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgsListsExperiments(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-e", "E5", "-scale", "0.02", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	for _, f := range []string{"csv", "json"} {
		if err := run([]string{"-e", "E5", "-scale", "0.02", "-format", f}); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
	}
	if err := run([]string{"-e", "E5", "-scale", "0.02", "-format", "bogus"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunFaultModelsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep")
	}
	if err := run([]string{"-e", "E16", "-scale", "0.02", "-fault-models", "edge-drop, crash-uniform"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-e", "E16", "-scale", "0.02", "-fault-models", "bogus"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-e", "e5", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"-resume", "-e", "E5"}); err == nil {
		t.Fatal("-resume accepted without -checkpoint")
	}
}

// TestRunCheckpointResume drives the full CLI contract: a checkpointed run
// leaves a journal, rerunning without -resume refuses to touch it, resuming
// replays it, and every variant prints the same table (JSON output carries
// no timing, so byte equality is meaningful).
func TestRunCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep")
	}
	dir := t.TempDir()
	base := []string{"-e", "E16", "-scale", "0.02", "-seed", "3", "-fault-models", "edge-drop", "-format", "json"}

	plain, err := captureStdout(t, func() error { return run(base) })
	if err != nil {
		t.Fatal(err)
	}

	first, err := captureStdout(t, func() error { return run(append([]string{"-checkpoint", dir}, base...)) })
	if err != nil {
		t.Fatal(err)
	}
	if first != plain {
		t.Fatal("checkpointed run output differs from plain run")
	}

	// The journal now exists: a second run must refuse without -resume.
	if _, err := captureStdout(t, func() error { return run(append([]string{"-checkpoint", dir}, base...)) }); err == nil {
		t.Fatal("existing journal overwritten without -resume")
	}

	resumed, err := captureStdout(t, func() error {
		return run(append([]string{"-checkpoint", dir, "-resume"}, base...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != plain {
		t.Fatal("resumed run output differs from plain run")
	}

	// A journal is bound to its parameters: resuming under a different seed
	// must fail instead of mixing incompatible batches.
	other := []string{"-e", "E16", "-scale", "0.02", "-seed", "4", "-fault-models", "edge-drop", "-format", "json"}
	if _, err := captureStdout(t, func() error {
		return run(append([]string{"-checkpoint", dir, "-resume"}, other...))
	}); err == nil {
		t.Fatal("journal from a different seed accepted")
	}
}
