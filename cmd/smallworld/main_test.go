package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgsListsExperiments(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-e", "E5", "-scale", "0.02", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	for _, f := range []string{"csv", "json"} {
		if err := run([]string{"-e", "E5", "-scale", "0.02", "-format", f}); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
	}
	if err := run([]string{"-e", "E5", "-scale", "0.02", "-format", "bogus"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunFaultModelsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep")
	}
	if err := run([]string{"-e", "E16", "-scale", "0.02", "-fault-models", "edge-drop, crash-uniform"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-e", "E16", "-scale", "0.02", "-fault-models", "bogus"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-e", "e5", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}
