// smallworld runs the paper-reproduction experiments (DESIGN.md Section 4)
// and prints their tables. Each experiment regenerates one claim of
// "Greedy Routing and the Algorithmic Small-World Phenomenon".
//
// Examples:
//
//	smallworld -list
//	smallworld -e E4                # one experiment at full scale
//	smallworld -e all -scale 0.1    # quick pass over everything
//	smallworld -e E4 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	// Ctrl-C cancels the running experiment via the engine's context
	// support instead of waiting for the table to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smallworld:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("smallworld", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiments and exit")
		id     = fs.String("e", "", "experiment id (E1..E17, F1) or 'all'")
		scale  = fs.Float64("scale", 1, "workload scale (1 = full tables of EXPERIMENTS.md)")
		seed   = fs.Uint64("seed", 1, "random seed")
		format = fs.String("format", "text", "output format: text | csv | json")
		// Usage text derives from the fault-model registry, like -proto on
		// cmd/route derives from the protocol registry.
		models = fs.String("fault-models", "", "comma-separated fault models for the E16 chaos sweep (default: its built-in set); registered: "+strings.Join(faults.RegisteredSorted(), " | "))
		ckdir  = fs.String("checkpoint", "", "checkpoint directory: journal completed sweep batches there so a crashed run can -resume (checkpoint-aware experiments only)")
		resume = fs.Bool("resume", false, "resume from the journal in -checkpoint, skipping finished batches; the resumed table is bit-identical to an uninterrupted run")
		cpuOut = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memOut = fs.String("memprofile", "", "write a heap profile to this file after the sweep")
	)
	logCfg := obs.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				logger.Error("memprofile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				logger.Error("memprofile", "err", err)
			}
		}()
	}
	if *resume && *ckdir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	var faultModels []string
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			faultModels = append(faultModels, strings.TrimSpace(m))
		}
	}
	if *list || *id == "" {
		fmt.Println("experiments:")
		for _, e := range expt.All() {
			fmt.Printf("  %-4s %s\n       claim: %s\n", e.ID, e.Title, e.Claim)
		}
		if *id == "" && !*list {
			fmt.Println("\nrun one with: smallworld -e <id> [-scale 0.1]")
		}
		return nil
	}
	cfg := expt.Config{Seed: *seed, Scale: *scale, Ctx: ctx, FaultModels: faultModels}
	var selected []expt.Experiment
	if strings.EqualFold(*id, "all") {
		selected = expt.All()
	} else {
		e, ok := expt.ByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *id)
		}
		selected = []expt.Experiment{e}
	}
	for _, e := range selected {
		start := time.Now()
		// One journal per experiment, its manifest key bound to everything
		// that shapes the sweep's results: resuming with different
		// parameters fails loudly instead of mixing incompatible batches.
		if *ckdir != "" {
			dir := filepath.Join(*ckdir, e.ID)
			if !*resume && ckpt.Exists(dir) {
				return fmt.Errorf("%s: checkpoint journal already exists in %s; pass -resume to continue it or remove the directory", e.ID, dir)
			}
			key := fmt.Sprintf("repro-ckpt-v1 e=%s seed=%d scale=%g fault-models=%s",
				e.ID, *seed, *scale, strings.Join(faultModels, ","))
			j, err := ckpt.Open(dir, key)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			if *resume && j.Reused() > 0 {
				logger.Info("resuming from checkpoint", "experiment", e.ID, "reused_batches", j.Reused())
			}
			cfg.Checkpoint = j
		}
		table, err := e.Run(cfg)
		if cfg.Checkpoint != nil {
			if cerr := cfg.Checkpoint.Close(); cerr != nil && err == nil {
				err = cerr
			}
			cfg.Checkpoint = nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "text":
			fmt.Printf("claim: %s\n", e.Claim)
			fmt.Print(table.Format())
			fmt.Printf("(%s in %v, seed %d, scale %g)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *seed, *scale)
		case "csv":
			out, err := table.FormatCSV()
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "json":
			out, err := table.FormatJSON()
			if err != nil {
				return err
			}
			fmt.Print(out)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}
