package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graphio"
)

func TestRunGIRGToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.girg")
	err := run([]string{"-model", "girg", "-n", "300", "-out", out, "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graphio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestRunThresholdGIRG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.girg")
	// alpha <= 0 selects the threshold kernel.
	if err := run([]string{"-n", "200", "-alpha", "0", "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEdgeListFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.tsv")
	if err := run([]string{"-n", "200", "-format", "edges", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.Contains(string(data), "\t") {
		t.Fatal("edge list output empty or malformed")
	}
}

func TestRunAllModels(t *testing.T) {
	for _, model := range []string{"girg", "hrg", "kgrid", "kcont"} {
		out := filepath.Join(t.TempDir(), model+".girg")
		args := []string{"-model", model, "-n", "300", "-L", "16", "-out", out}
		if err := run(args); err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestRunFormatNone(t *testing.T) {
	if err := run([]string{"-n", "200", "-format", "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "bogus"},
		{"-n", "200", "-format", "bogus"},
		{"-model", "girg", "-n", "200", "-beta", "1.5"},
		{"-model", "kgrid", "-L", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunStats(t *testing.T) {
	// -stats writes to stderr; just ensure the path executes.
	if err := run([]string{"-n", "300", "-stats", "-format", "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinaryFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.girgb")
	if err := run([]string{"-n", "300", "-format", "girgb", "-out", out, "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	// Same instance through the text format: one graph, two encodings.
	txt := filepath.Join(t.TempDir(), "g.girg")
	if err := run([]string{"-n", "300", "-out", txt, "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	g2, err := graphio.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() != g2.Fingerprint() {
		t.Fatal("girgb and girg disagree about the same seed")
	}
}

// TestRunAtomicOutput: a failed run must leave an existing output file
// untouched — girgen writes via temp file + rename.
func TestRunAtomicOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.girg")
	if err := os.WriteFile(out, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unknown model: generation fails before any write.
	if err := run([]string{"-model", "nope", "-out", out}); err == nil {
		t.Fatal("unknown model accepted")
	}
	data, err := os.ReadFile(out)
	if err != nil || string(data) != "precious" {
		t.Fatalf("output clobbered by failed run: %q, %v", data, err)
	}
	// A successful run replaces it, leaving no temp files behind.
	if err := run([]string{"-n", "200", "-out", out}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.girg" {
		t.Fatalf("stray files after atomic write: %v", entries)
	}
	if _, err := graphio.ReadFile(out); err != nil {
		t.Fatal(err)
	}
}
