// girgen generates instances of the network models (GIRG, hyperbolic random
// graph, Kleinberg lattice, Kleinberg continuum) and writes them as
// attributed graph files (text or checksummed binary) or bare edge lists,
// optionally printing structural statistics. Output files are written via a
// temp file and an atomic rename, so a crash mid-write never leaves a
// truncated snapshot under the target name.
//
// Examples:
//
//	girgen -model girg -n 100000 -beta 2.5 -alpha 2 -out g.girg -stats
//	girgen -model girg -n 100000 -format girgb -out g.girgb
//	girgen -model hrg -n 20000 -alphaH 0.75 -T 0.5 -format edges -out g.tsv
//	girgen -model kgrid -L 256 -q 1 -r 2 -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"

	"repro/internal/atomicio"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/hrg"
	"repro/internal/kleinberg"
	"repro/internal/obs"
	"repro/internal/xrand"
)

func main() {
	// Ctrl-C during a large generation aborts with a partial-progress
	// message instead of leaving the user to kill -9 a silent process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "girgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("girgen", flag.ContinueOnError)
	var (
		model  = fs.String("model", "girg", "model: girg | hrg | kgrid | kcont")
		out    = fs.String("out", "", "output file (default stdout)")
		format = fs.String("format", "girg", "output format: girg (attributed text) | girgb (checksummed binary) | edges (bare edge list) | none")
		stats  = fs.Bool("stats", false, "print structural statistics to stderr")
		seed   = fs.Uint64("seed", 1, "random seed")

		// GIRG flags.
		n       = fs.Float64("n", 10000, "girg/hrg/kcont: (expected) vertex count")
		dim     = fs.Int("dim", 2, "girg: torus dimension")
		beta    = fs.Float64("beta", 2.5, "girg: weight power-law exponent")
		alpha   = fs.Float64("alpha", 2, "girg: decay parameter (<= 0 means threshold model)")
		wmin    = fs.Float64("wmin", 1, "girg: minimum weight")
		lambda  = fs.Float64("lambda", 1, "girg: kernel prefactor")
		poisson = fs.Bool("poisson", false, "girg: Poisson(n) vertices instead of exactly n")

		// HRG flags.
		alphaH = fs.Float64("alphaH", 0.75, "hrg: radial density parameter")
		ch     = fs.Float64("C", 1, "hrg: disk radius shift R = 2 ln n + C")
		temp   = fs.Float64("T", 0, "hrg: temperature (0 = threshold)")

		// Kleinberg flags.
		side  = fs.Int("L", 128, "kgrid: grid side length")
		q     = fs.Int("q", 1, "kgrid/kcont: long-range edges per node")
		r     = fs.Float64("r", 2, "kgrid: long-range decay exponent")
		decay = fs.Float64("decay", 1, "kcont: alpha of the dist^(-2 alpha) law")
	)
	logCfg := obs.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}

	// Generation runs in its own goroutine so SIGINT can abort a large
	// instance mid-build; the samplers themselves are not context-aware, so
	// an abandoned generation finishes in the background while the process
	// exits with a partial-progress message.
	type genResult struct {
		g   *graph.Graph
		err error
	}
	done := make(chan genResult, 1)
	go func() {
		var (
			g   *graph.Graph
			err error
		)
		switch *model {
		case "girg":
			p := girg.Params{
				N: *n, Dim: *dim, Beta: *beta, Alpha: *alpha,
				WMin: *wmin, Lambda: *lambda, FixedN: !*poisson,
			}
			if *alpha <= 0 {
				p.Alpha = math.Inf(1)
			}
			g, err = girg.Generate(p, *seed, girg.Options{})
		case "hrg":
			p := hrg.Params{N: int(*n), AlphaH: *alphaH, CH: *ch, TH: *temp}
			gen := hrg.Generate
			if p.N > 30000 {
				gen = hrg.GenerateFast // same distribution, near-linear time
			}
			g, err = gen(p, *seed)
		case "kgrid":
			var gr *kleinberg.Grid
			gr, err = kleinberg.GenerateGrid(kleinberg.GridParams{L: *side, Q: *q, R: *r}, *seed)
			if err == nil {
				g = gr.Graph()
			}
		case "kcont":
			g, err = kleinberg.GenerateContinuum(kleinberg.ContinuumParams{
				N: int(*n), Q: *q, AlphaDecay: *decay,
			}, *seed)
		default:
			err = fmt.Errorf("unknown model %q", *model)
		}
		done <- genResult{g, err}
	}()
	var g *graph.Graph
	select {
	case r := <-done:
		if r.err != nil {
			return r.err
		}
		g = r.g
	case <-ctx.Done():
		return fmt.Errorf("interrupted while generating %s instance (n=%g, seed=%d): no output written", *model, *n, *seed)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted after generating %s instance: no output written", *model)
	}
	logger.Debug("generated", "model", *model, "n", g.N(), "m", g.M(), "seed", *seed,
		"fingerprint", fmt.Sprintf("%016x", g.Fingerprint()))

	if *stats {
		s := graph.Summarize(g, 2000, xrand.New(*seed+1))
		fmt.Fprintf(os.Stderr, "n=%d m=%d avg_deg=%.2f max_deg=%d isolated=%d components=%d giant=%.1f%% clustering=%.3f\n",
			s.N, s.M, s.AvgDegree, s.MaxDegree, s.Isolated, s.Components, 100*s.GiantFraction, s.Clustering)
		if fit := graph.PowerLawExponentFit(g, 50); !math.IsNaN(fit) {
			fmt.Fprintf(os.Stderr, "degree power-law exponent (k >= 50): %.2f\n", fit)
		}
	}

	var write func(w io.Writer) error
	switch *format {
	case "girg":
		write = func(w io.Writer) error { return graphio.Write(w, g) }
	case "girgb":
		write = func(w io.Writer) error { return graphio.WriteBinary(w, g) }
	case "edges":
		write = func(w io.Writer) error { return graphio.WriteEdgeList(w, g) }
	case "none":
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *out == "" {
		return write(os.Stdout)
	}
	// Atomic replace: a crash (or a failing disk) mid-write leaves any
	// existing file untouched instead of half a snapshot under its name.
	if err := atomicio.WriteFile(*out, write); err != nil {
		return err
	}
	if *stats {
		logger.Info("wrote snapshot", "path", *out, "format", *format,
			"fingerprint", fmt.Sprintf("%016x", g.Fingerprint()))
	}
	return nil
}
