// promerge scrapes several daemons' /metrics expositions (or reads saved
// ones) and re-emits them as a single exposition with an instance label on
// every sample — the offline counterpart of the daemon's GET /cluster/metrics
// federation endpoint, useful when the daemons are not clustered or when a
// CI job wants one artifact covering the whole fleet.
//
// Each argument is either host:port (scraped over HTTP) or a path to a saved
// exposition file; the instance label is the address or the file name. The
// merged output parses again with the same parser, so promerge composes with
// itself and with /cluster/metrics.
//
//	promerge 127.0.0.1:8081 127.0.0.1:8082 127.0.0.1:8083 > fleet.prom
//	promerge d1.prom d2.prom | promerge -  # still one valid exposition
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "promerge:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("promerge", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := fs.Args()
	if len(sources) == 0 {
		return fmt.Errorf("usage: promerge [-timeout 5s] <host:port | file | -> ...")
	}
	client := &http.Client{Timeout: *timeout}

	instances := make([]obs.Instance, 0, len(sources))
	for _, src := range sources {
		fams, err := load(client, src)
		if err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
		instances = append(instances, obs.Instance{Name: src, Families: fams})
	}
	p := obs.NewPromWriter(out)
	obs.MergeExpositions(p, instances)
	return p.Err()
}

// load parses one source: stdin for "-", an HTTP scrape for host:port
// spellings, a file otherwise. A path that exists wins over the address
// interpretation, so "./8080:metrics" style names stay readable.
func load(client *http.Client, src string) ([]*obs.PromFamily, error) {
	if src == "-" {
		return obs.ParseExposition(os.Stdin)
	}
	if _, err := os.Stat(src); err == nil {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return obs.ParseExposition(f)
	}
	if strings.Contains(src, ":") {
		url := src
		if !strings.Contains(url, "://") {
			url = "http://" + url + "/metrics"
		}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		return obs.ParseExposition(io.LimitReader(resp.Body, 32<<20))
	}
	return nil, fmt.Errorf("not a file and not a host:port address")
}
