package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/girg"
	"repro/internal/graphio"
	"repro/internal/serve"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	p := girg.DefaultParams(400)
	p.FixedN = true
	g, err := girg.Generate(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.girg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises the
// HTTP surface, and shuts it down with SIGTERM — the same drain path a
// process manager uses.
func TestDaemonEndToEnd(t *testing.T) {
	path := writeTestGraph(t)
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-in", path, "-workers", "2", "-queue", "2"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", probe, resp.StatusCode)
		}
	}

	body, _ := json.Marshal(serve.RouteRequest{S: 1, T: 42})
	resp, err := http.Post(base+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr serve.RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/route = %d, want 200", resp.StatusCode)
	}
	if rr.Attempts < 1 {
		t.Fatalf("attempts = %d", rr.Attempts)
	}

	// SIGTERM: the daemon drains and run returns cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// TestDaemonBadFlags verifies flag and load errors surface as errors, not
// hangs.
func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.girg")}, nil); err == nil {
		t.Fatal("missing graph file did not error")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, nil); err == nil {
		t.Fatal("bad address did not error")
	}
}

// TestDaemonSamplesFreshGraph covers the sample-on-boot path with a tiny
// graph and an immediate shutdown.
func TestDaemonSamplesFreshGraph(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-n", "300"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["smallworld.serve"]; !ok {
		t.Fatal("/debug/vars missing smallworld.serve")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("run after SIGTERM = %v", err)
	}
}
