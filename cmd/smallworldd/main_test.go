package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/girg"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/serve"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	p := girg.DefaultParams(400)
	p.FixedN = true
	g, err := girg.Generate(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.girg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises the
// HTTP surface — routing, metrics, tracing, profiling — and shuts it down
// with SIGTERM, the same drain path a process manager uses.
func TestDaemonEndToEnd(t *testing.T) {
	path := writeTestGraph(t)
	traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-in", path, "-workers", "2", "-queue", "2",
			"-trace-sample", "1", "-trace-out", traceOut}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", probe, resp.StatusCode)
		}
	}

	body, _ := json.Marshal(serve.RouteRequest{S: 1, T: 42})
	resp, err := http.Post(base+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr serve.RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/route = %d, want 200", resp.StatusCode)
	}
	if rr.Attempts < 1 {
		t.Fatalf("attempts = %d", rr.Attempts)
	}
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("/route response carries no X-Request-ID")
	}

	// Prometheus exposition with engine and serve families.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", mresp.StatusCode)
	}
	for _, family := range []string{"smallworld_engine_episodes_total", "smallworld_serve_admitted_total"} {
		if !bytes.Contains(metrics, []byte(family)) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	// The sampled trace of the routed request, tied to its X-Request-ID.
	tresp, err := http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	traces, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d, want 200", tresp.StatusCode)
	}
	if !bytes.Contains(traces, []byte(rid)) {
		t.Fatalf("/debug/trace does not mention request id %s:\n%s", rid, traces)
	}

	// The profiling surface answers.
	presp, err := http.Get(base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d, want 200", presp.StatusCode)
	}

	// SIGTERM: the daemon drains and run returns cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// -trace-out flushed the held traces as JSONL on shutdown.
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("trace-out file: %v", err)
	}
	var tr obs.Trace
	if err := json.Unmarshal(bytes.Split(bytes.TrimSpace(data), []byte("\n"))[0], &tr); err != nil {
		t.Fatalf("trace-out first line does not parse: %v", err)
	}
	if tr.ID == "" || len(tr.Spans) == 0 {
		t.Fatalf("trace-out trace = %+v", tr)
	}
}

// TestDaemonBadFlags verifies flag and load errors surface as errors, not
// hangs.
func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.girg")}, nil); err == nil {
		t.Fatal("missing graph file did not error")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, nil); err == nil {
		t.Fatal("bad address did not error")
	}
}

// TestDaemonSamplesFreshGraph covers the sample-on-boot path with a tiny
// graph and an immediate shutdown.
func TestDaemonSamplesFreshGraph(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-n", "300"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["smallworld.serve"]; !ok {
		t.Fatal("/debug/vars missing smallworld.serve")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("run after SIGTERM = %v", err)
	}
}
