// smallworldd is the long-running routing daemon: it loads (or samples) a
// graph snapshot once and then answers s→t routing queries over HTTP/JSON
// forever, shedding overload with 429s, breaking circuits on failing
// (graph, protocol) pairs, retrying transient failures with backoff, and
// draining in-flight episodes on SIGTERM before exit.
//
// Endpoints: POST /route, POST /route/batch, GET /healthz, GET /readyz,
// GET /metrics, GET /debug/vars, GET /debug/trace, GET /debug/pprof/*,
// POST /admin/swap (see internal/serve). Every response carries an
// X-Request-ID header, and the same id labels every structured log line of
// the request.
//
// Examples:
//
//	smallworldd -n 100000 -log-format json -trace-sample 0.01 &
//	curl -s localhost:8080/route -d '{"s": 3, "t": 99, "protocol": "phi-dfs"}'
//	curl -s localhost:8080/route -d '{"s": 3, "t": 99, "faults": [{"model": "edge-drop", "rate": 0.2}]}'
//	curl -s localhost:8080/route/batch -d '{"items": [{"s": 3, "t": 99}, {"s": 7, "t": 42}]}'
//	curl -s localhost:8080/metrics                                 # Prometheus text exposition
//	curl -s localhost:8080/debug/trace                             # sampled trajectories, JSONL
//	curl -s localhost:8080/admin/swap -d '{"n": 50000, "seed": 7}'
//	curl -s localhost:8080/admin/swap -d '{"path": "snap.girgb"}'   # checksum-verified; corrupt files get 422
//
// Live mutations (-mutate-dir) journal POST /admin/mutate batches through a
// write-ahead log before acknowledging them, so a SIGKILLed daemon replays
// to a bit-identical graph on restart with -resume; the overlay folds into
// checksummed snapshots in the background (-compact-at):
//
//	smallworldd -in snap.girgb -mutate-dir /var/lib/smallworld/mut &
//	curl -s localhost:8080/admin/mutate -d '{"ops": [{"op": "add-vertex", "pos": [0.5, 0.5], "w": 2}]}'
//	curl -s localhost:8080/admin/mutate -d '{"ops": [{"op": "remove-vertex", "v": 17}]}'
//	kill -9 %1 && smallworldd -in snap.girgb -mutate-dir /var/lib/smallworld/mut -resume
//
// Cluster mode (-shard) turns the daemon into one Morton shard of a
// cluster: it owns the vertices whose deep Morton code starts with the
// given binary prefix, answers shard-local greedy walks itself, and
// forwards continuations to the owning peers over POST /cluster/hop.
// Membership converges by gossip (-peers seeds it); a dead shard degrades
// its own vertices to fast classified shard-unreachable failures while
// every other route keeps working:
//
//	smallworldd -addr :8081 -in snap.girgb -shard 0  -peers 127.0.0.1:8082,127.0.0.1:8083 &
//	smallworldd -addr :8082 -in snap.girgb -shard 10 -peers 127.0.0.1:8081,127.0.0.1:8083 &
//	smallworldd -addr :8083 -in snap.girgb -shard 11 -peers 127.0.0.1:8081,127.0.0.1:8082 &
//
// Replication (-replica/-replicas) serves each shard from a replica set:
// hop forwards fail over between replicas (and hedge a second attempt after
// -hedge-after), and a mutation log opened alongside -shard drives a
// replicated live graph under the "live" slot — replica 0 acks writes after
// its local fsynced journal append, ships the batches to the other replicas
// over POST /cluster/replicate, and the anti-entropy loop pulls whatever
// shipping missed until the replicas are bit-identical:
//
//	smallworldd -addr :8081 -in snap.girgb -shard 0 -replica 0 -replicas 127.0.0.1:8082 \
//	    -mutate-dir /var/lib/sw/s0-r0 -hedge-after 20ms &
//	smallworldd -addr :8082 -in snap.girgb -shard 0 -replica 1 -replicas 127.0.0.1:8081 \
//	    -mutate-dir /var/lib/sw/s0-r1 -hedge-after 20ms &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/torus"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "smallworldd:", err)
		os.Exit(1)
	}
}

// run builds the server from flags and serves until SIGTERM/SIGINT. When
// ready is non-nil, the bound address is sent on it once the listener is
// up (tests use this to serve on port 0).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("smallworldd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		in      = fs.String("in", "", "graph file from girgen (default: sample a fresh GIRG)")
		n       = fs.Float64("n", 10000, "GIRG size when sampling")
		seed    = fs.Uint64("seed", 1, "random seed for sampling")
		workers = fs.Int("workers", 0, "max concurrently routing requests (0 = 4)")
		queue   = fs.Int("queue", 0, "max requests waiting for a worker (0 = 16); beyond this, shed with 429")
		timeout = fs.Duration("timeout", 2*time.Second, "per-request deadline, retries included")
		maxHops = fs.Int("max-hops", 0, "per-attempt adjacency-query budget (0 = engine default, -1 = unlimited)")
		retries = fs.Int("retries", 0, "total routing attempts per request (0 = 3)")
		drainT  = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		sample  = fs.Float64("trace-sample", 0, "deterministic trace sampling rate in [0, 1]: sampled requests record per-hop trajectories served on /debug/trace (0 = tracing off)")
		traceN  = fs.Int("trace-capacity", 0, "completed traces kept for /debug/trace (0 = 64)")
		traceO  = fs.String("trace-out", "", "write the held traces as JSONL to this file on shutdown")

		mutateDir   = fs.String("mutate-dir", "", "enable live mutations: journal POST /admin/mutate batches under this directory")
		resume      = fs.Bool("resume", false, "replay an existing mutation log in -mutate-dir instead of refusing to open it")
		compactAt   = fs.Int("compact-at", 4096, "fold the overlay into a fresh snapshot once its delta reaches this many vertices (0 = never; forced to 0 under replication)")
		mutateGraph = fs.String("mutate-graph", "", "graph slot the mutation log drives (default: \"default\" single-node, \"live\" in cluster mode)")

		shard      = fs.String("shard", "", "cluster mode: binary Morton prefix this daemon owns (e.g. 0, 10, 11; empty = single-node)")
		peers      = fs.String("peers", "", "cluster mode: comma-separated peer addresses (host:port) to seed membership")
		join       = fs.String("join", "", "cluster mode: alias for -peers (addresses to gossip with)")
		advertise  = fs.String("advertise", "", "cluster mode: address peers reach this daemon at (default: the bound listen address)")
		gossipInt  = fs.Duration("gossip-interval", time.Second, "cluster mode: gossip round interval")
		replica    = fs.Int("replica", 0, "cluster mode: replica id within the shard (0 = the shard's write primary)")
		replicas   = fs.String("replicas", "", "cluster mode: comma-separated addresses of the other replicas serving this shard")
		hedgeAfter = fs.Duration("hedge-after", 0, "cluster mode: fire a hedged second forward attempt at the next replica after this delay (0 = off)")
		aeInterval = fs.Duration("anti-entropy", 2*time.Second, "replication: anti-entropy repair interval")
	)
	logCfg := obs.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logCfg.Setup(os.Stderr)
	if err != nil {
		return err
	}

	var g *graph.Graph
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		g, err = graphio.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		p := girg.DefaultParams(*n)
		p.FixedN = true
		if g, err = girg.Generate(p, *seed, girg.Options{}); err != nil {
			return err
		}
	}
	nw := &core.Network{
		Graph: g,
		Label: fmt.Sprintf("smallworldd(n=%d)", g.N()),
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
		StandardPhi: true,
	}

	var tracer *obs.Tracer
	var spans *obs.SpanLog
	if *sample > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			SampleRate: *sample,
			Seed:       *seed,
			Capacity:   *traceN,
			Graph:      serve.DefaultGraph,
			Now:        time.Now,
		})
		// The span service name must be chosen before the listener binds, so
		// it is the advertised address when given and the listen flag
		// otherwise — under port 0 (tests) the spelling differs from the
		// bound address, but each daemon's spans still carry a stable,
		// distinct identity.
		service := *advertise
		if service == "" {
			service = *addr
		}
		spans = obs.NewSpanLog(obs.SpanLogConfig{
			Service:    service,
			Seed:       *seed,
			SampleRate: *sample,
			Capacity:   *traceN,
		})
	}
	srv := serve.New(serve.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		MaxHops:             *maxHops,
		Retry:               serve.RetryPolicy{MaxAttempts: *retries, Seed: *seed},
		Logger:              logger,
		Tracer:              tracer,
		Spans:               spans,
		HedgeAfter:          *hedgeAfter,
		AntiEntropyInterval: *aeInterval,
	})
	if *mutateDir == "" && *resume {
		return fmt.Errorf("-resume requires -mutate-dir")
	}

	// enableMutation opens the journal and attaches it to slot. In cluster
	// mode the call is deferred until the shard map is wired (the slot guard
	// and the advertised live position need the node), so the log handle is
	// closed from run's scope.
	var mutLog *mutate.Log
	defer func() {
		if mutLog != nil {
			mutLog.Close()
		}
	}()
	enableMutation := func(slot string) error {
		compact := *compactAt
		if *shard != "" && compact != 0 {
			// Generation shipping replicates journal batches, not folded
			// snapshots: a compaction would bump the primary's generation and
			// strand every replica on the old one. Replicated logs keep the
			// whole journal instead.
			logger.Info("compaction disabled under replication",
				"reason", "generation shipping does not replicate snapshots")
			compact = 0
		}
		var err error
		mutLog, err = mutate.Open(*mutateDir, g, mutate.Config{
			Resume:    *resume,
			CompactAt: compact,
			OnCompact: srv.InstallCompacted,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
		// EnableMutation installs the live network itself: after a resume from
		// a compacted log its base is the folded snapshot, not g.
		if err := srv.EnableMutation(mutLog, slot); err != nil {
			return err
		}
		st := mutLog.Stats()
		logger.Info("mutation log open", "dir", *mutateDir, "graph", slot,
			"generation", st.Generation, "replayed_batches", st.Replayed,
			"epoch", st.Overlay.Epoch,
			"fingerprint", fmt.Sprintf("%016x", mutLog.Fingerprint()))
		return nil
	}
	if *mutateDir != "" && *shard == "" {
		slot := *mutateGraph
		if slot == "" {
			slot = serve.DefaultGraph
		}
		if err := enableMutation(slot); err != nil {
			return err
		}
		if slot == serve.DefaultGraph {
			nw, _ = srv.Network(serve.DefaultGraph)
		} else {
			srv.AddNetwork(serve.DefaultGraph, nw)
		}
	} else {
		srv.AddNetwork(serve.DefaultGraph, nw)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("serving", "label", nw.Label, "n", g.N(), "m", g.M(),
		"fingerprint", fmt.Sprintf("%016x", g.Fingerprint()), "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "trace_sample", *sample)

	// SIGTERM/SIGINT triggers graceful drain: readiness goes 503, new
	// routes are rejected, in-flight episodes finish and write their
	// responses, then the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cluster mode: the shard map needs the bound address (advertise
	// defaults to it, and port 0 resolves only after Listen), so it is wired
	// between Listen and Serve — before the first request can arrive.
	if *shard != "" {
		prefix, err := torus.ParsePrefix(*shard)
		if err != nil {
			return err
		}
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		node, err := cluster.NewNode(g, prefix, self, cluster.Config{Seed: *seed, Replica: *replica})
		if err != nil {
			return err
		}
		seeds := strings.Split(*peers+","+*join, ",")
		for _, p := range seeds {
			if p = strings.TrimSpace(p); p != "" {
				node.Members().Add(cluster.Peer{ID: p, Fingerprint: node.Self().Fingerprint})
			}
		}
		// Same-shard replicas are seeded with the full shard coordinate, so
		// failover, hedging and journal shipping work from the first request
		// instead of waiting for gossip to converge.
		for _, p := range strings.Split(*replicas, ",") {
			if p = strings.TrimSpace(p); p != "" {
				node.Members().Add(cluster.Peer{
					ID:          p,
					Shard:       prefix.String(),
					Fingerprint: node.Self().Fingerprint,
				})
			}
		}
		srv.EnableCluster(node, &http.Client{})
		transport := cluster.NewHTTPTransport(*gossipInt)
		go node.RunGossip(ctx, *gossipInt, transport, logger)
		logger.Info("cluster mode", "shard", prefix.String(), "self", self,
			"replica", *replica, "owned_vertices", node.OwnedCount(),
			"seed_peers", len(node.Members().Snapshot()),
			"gossip_interval", *gossipInt, "hedge_after", *hedgeAfter)
		// Replicated live graph: the mutation log drives a separate slot
		// (default "live") — sharded routing stays on the immutable snapshot,
		// every replica serves the live graph whole, and the background
		// anti-entropy loop pulls whatever journal shipping missed.
		if *mutateDir != "" {
			slot := *mutateGraph
			if slot == "" {
				slot = "live"
			}
			if err := enableMutation(slot); err != nil {
				return err
			}
			go srv.RunAntiEntropy(ctx, *aeInterval)
			logger.Info("replication on", "graph", slot, "replica", *replica,
				"anti_entropy", *aeInterval, "replica_seeds", len(strings.Split(*replicas, ",")))
		}
	} else if *peers != "" || *join != "" || *advertise != "" {
		return fmt.Errorf("-peers/-join/-advertise require -shard")
	} else if *replicas != "" || *replica != 0 || *hedgeAfter != 0 {
		return fmt.Errorf("-replica/-replicas/-hedge-after require -shard")
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutdown draining", "drain_timeout", *drainT)
	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("shutdown drain incomplete", "err", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *traceO != "" && tracer != nil {
		// One JSONL stream, two record shapes: episode traces ("id" key)
		// then distributed phase spans ("trace" key) — the same layout
		// GET /debug/trace serves, so tracestitch reads either source.
		write := func(w io.Writer) error {
			if err := tracer.WriteJSONL(w); err != nil {
				return err
			}
			return spans.WriteJSONL(w)
		}
		if err := atomicio.WriteFile(*traceO, write); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		logger.Info("traces written", "path", *traceO,
			"held", tracer.Stats().Held, "spans", spans.Stats().Buffered)
	}
	logger.Info("shutdown clean")
	return nil
}
