// loadgen is an open-loop load generator for the smallworldd routing
// daemon: it fires routing queries at a fixed request rate — on schedule,
// regardless of how slowly the daemon answers, which is what makes tail
// latencies honest — and prints a JSON summary with p50/p95/p99 latency,
// shed rate and success rate. Optional gates turn the summary into an exit
// code, so CI can fail a build on a latency regression:
//
//	loadgen -self -n 20000 -rps 200 -duration 10s -max-p99-ms 250 -min-success 0.99
//	loadgen -addr localhost:8080 -nmax 100000 -rps 500 -duration 30s -batch 16
//
// With -self, loadgen spins up an in-process daemon (same serving stack as
// smallworldd: admission pool, breakers, retries) on a loopback port and
// drives that — no second process, which is how the CI perf smoke runs.
// With -batch k, each request is a POST /route/batch of k queries sharing
// one admission slot; the configured -rps still counts requests, so the
// query throughput is rps×k.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/xrand"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// summary is the JSON report loadgen prints; field names are the contract
// the CI smoke job greps, so treat them as API.
type summary struct {
	RPS       float64 `json:"rps"`
	Duration  float64 `json:"duration_s"`
	Batch     int     `json:"batch"`
	Sent      int64   `json:"requests_sent"`
	Queries   int64   `json:"queries_sent"`
	Errors    int64   `json:"transport_errors"`
	Shed      int64   `json:"shed"`
	Success   int64   `json:"success"`
	Failed    int64   `json:"failed"`
	ShedRate  float64 `json:"shed_rate"`
	SuccRate  float64 `json:"success_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	GateP99   float64 `json:"gate_max_p99_ms,omitempty"`
	GateSucc  float64 `json:"gate_min_success,omitempty"`
	GatesPass bool    `json:"gates_pass"`
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "host:port of a running smallworldd (mutually exclusive with -self)")
		self     = fs.Bool("self", false, "serve an in-process daemon on a loopback port and drive it")
		n        = fs.Float64("n", 10000, "GIRG size for -self")
		seed     = fs.Uint64("seed", 1, "random seed (graph sampling and query pairs)")
		workers  = fs.Int("workers", 0, "-self daemon worker pool size (0 = 4)")
		queue    = fs.Int("queue", 0, "-self daemon admission queue depth (0 = 16)")
		timeout  = fs.Duration("timeout", 2*time.Second, "-self daemon per-request deadline")
		nmax     = fs.Int("nmax", 0, "vertex-id upper bound for query pairs against -addr (required with -addr)")
		rps      = fs.Float64("rps", 100, "requests per second, held open-loop")
		duration = fs.Duration("duration", 10*time.Second, "generation window")
		batch    = fs.Int("batch", 1, "queries per request: 1 = POST /route, k>1 = POST /route/batch of k")
		proto    = fs.String("proto", "", "protocol name for every query (empty = daemon default)")
		maxP99   = fs.Float64("max-p99-ms", 0, "gate: fail (exit 1) when p99 latency exceeds this many ms (0 = off)")
		minSucc  = fs.Float64("min-success", 0, "gate: fail (exit 1) when the success rate is below this fraction (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if (*addr == "") == !*self {
		return 1, fmt.Errorf("exactly one of -addr or -self is required")
	}
	if *rps <= 0 || *duration <= 0 || *batch < 1 {
		return 1, fmt.Errorf("-rps, -duration and -batch must be positive")
	}

	base := *addr
	verts := *nmax
	if *self {
		p := girg.DefaultParams(*n)
		p.FixedN = true
		g, err := girg.Generate(p, *seed, girg.Options{})
		if err != nil {
			return 1, err
		}
		// The in-process daemon logs WARN and up: per-episode INFO lines at
		// hundreds of RPS would drown the summary this tool exists to print.
		srv := serve.New(serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			RequestTimeout: *timeout,
			Logger: slog.New(slog.NewTextHandler(os.Stderr,
				&slog.HandlerOptions{Level: slog.LevelWarn})),
		})
		srv.AddNetwork(serve.DefaultGraph, &core.Network{
			Graph: g,
			Label: fmt.Sprintf("loadgen-self(n=%d)", g.N()),
			NewObjective: func(t int) route.Objective {
				return route.NewStandard(g, t)
			},
			StandardPhi: true,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 1, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Shutdown(context.Background())
		base = ln.Addr().String()
		verts = g.N()
	}
	if verts <= 1 {
		return 1, fmt.Errorf("-nmax must be > 1 when driving a remote daemon")
	}
	url := "http://" + base

	// Pre-build one request body per tick: the generation loop must not
	// marshal JSON on the critical path or the schedule drifts under load.
	interval := time.Duration(float64(time.Second) / *rps)
	ticks := int(*duration / interval)
	if ticks < 1 {
		ticks = 1
	}
	rng := xrand.New(*seed + 1)
	bodies := make([][]byte, ticks)
	for i := range bodies {
		var body []byte
		var err error
		if *batch == 1 {
			body, err = json.Marshal(serve.RouteRequest{
				Protocol: *proto, S: rng.IntN(verts), T: rng.IntN(verts),
			})
		} else {
			items := make([]serve.BatchItem, *batch)
			for j := range items {
				items[j] = serve.BatchItem{Protocol: *proto, S: rng.IntN(verts), T: rng.IntN(verts)}
			}
			body, err = json.Marshal(serve.BatchRouteRequest{Items: items})
		}
		if err != nil {
			return 1, err
		}
		bodies[i] = body
	}
	endpoint := url + "/route"
	if *batch > 1 {
		endpoint = url + "/route/batch"
	}

	// The open loop: request i fires at start + i·interval, on its own
	// goroutine, whether or not earlier requests have come back. A closed
	// loop (wait for the answer, then send) would throttle itself exactly
	// when the daemon slows down and hide the tail this tool exists to see.
	var (
		hist    obs.LatencyHist
		sent    atomic.Int64
		errs    atomic.Int64
		shed    atomic.Int64
		success atomic.Int64
		failed  atomic.Int64
		wg      sync.WaitGroup
	)
	client := &http.Client{Timeout: *timeout + 5*time.Second}
	start := time.Now()
	for i := 0; i < ticks; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			sent.Add(1)
			t0 := time.Now()
			resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
			if err != nil {
				errs.Add(1)
				return
			}
			hist.Record(time.Since(t0))
			classify(resp, *batch, &shed, &success, &failed)
		}(bodies[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	queries := sent.Load() * int64(*batch)
	// Success rate is over queries the daemon accepted: shedding is backpressure
	// working as designed and scored separately; transport errors count against
	// success (the service failed to answer at all).
	answered := queries - shed.Load()
	s := summary{
		RPS:      *rps,
		Duration: elapsed.Seconds(),
		Batch:    *batch,
		Sent:     sent.Load(),
		Queries:  queries,
		Errors:   errs.Load(),
		Shed:     shed.Load(),
		Success:  success.Load(),
		Failed:   failed.Load() + errs.Load()*int64(*batch),
		P50Ms:    ms(hist.Quantile(0.50)),
		P95Ms:    ms(hist.Quantile(0.95)),
		P99Ms:    ms(hist.Quantile(0.99)),
		GateP99:  *maxP99,
		GateSucc: *minSucc,
	}
	if queries > 0 {
		s.ShedRate = float64(s.Shed) / float64(queries)
	}
	if answered > 0 {
		s.SuccRate = float64(s.Success) / float64(answered)
	}
	s.GatesPass = (*maxP99 <= 0 || s.P99Ms <= *maxP99) && (*minSucc <= 0 || s.SuccRate >= *minSucc)

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return 1, err
	}
	if !s.GatesPass {
		return 1, fmt.Errorf("gates failed: p99 %.1fms (max %.1f), success %.4f (min %.4f)",
			s.P99Ms, *maxP99, s.SuccRate, *minSucc)
	}
	return 0, nil
}

// classify folds one HTTP response into the query counters. For a batch,
// per-item statuses are scored individually; an envelope-level rejection
// scores every query of the batch at once.
func classify(resp *http.Response, batch int, shed, success, failed *atomic.Int64) {
	defer resp.Body.Close()
	if batch > 1 && resp.StatusCode == http.StatusOK {
		var br serve.BatchRouteResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			failed.Add(int64(batch))
			return
		}
		for _, it := range br.Items {
			scoreStatus(it.Status, 1, shed, success, failed)
		}
		return
	}
	scoreStatus(resp.StatusCode, int64(batch), shed, success, failed)
}

// scoreStatus maps one status onto the counters: 200 is a definitive answer
// (delivered or a proven dead end — the service did its job), 429/503 is
// load shedding, anything else is a failure.
func scoreStatus(status int, weight int64, shed, success, failed *atomic.Int64) {
	switch status {
	case http.StatusOK:
		success.Add(weight)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		shed.Add(weight)
	default:
		failed.Add(weight)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
