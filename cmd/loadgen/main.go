// loadgen is an open-loop load generator for the smallworldd routing
// daemon: it fires routing queries at a fixed request rate — on schedule,
// regardless of how slowly the daemon answers, which is what makes tail
// latencies honest — and prints a JSON summary with p50/p95/p99 latency,
// shed rate and success rate. Optional gates turn the summary into an exit
// code, so CI can fail a build on a latency regression:
//
//	loadgen -self -n 20000 -rps 200 -duration 10s -max-p99-ms 250 -min-success 0.99
//	loadgen -addr localhost:8080 -nmax 100000 -rps 500 -duration 30s -batch 16
//
// With -self, loadgen spins up an in-process daemon (same serving stack as
// smallworldd: admission pool, breakers, retries) on a loopback port and
// drives that — no second process, which is how the CI perf smoke runs.
// With -batch k, each request is a POST /route/batch of k queries sharing
// one admission slot; the configured -rps still counts requests, so the
// query throughput is rps×k.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/xrand"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// summary is the JSON report loadgen prints; field names are the contract
// the CI smoke job greps, so treat them as API.
type summary struct {
	RPS      float64 `json:"rps"`
	Duration float64 `json:"duration_s"`
	Batch    int     `json:"batch"`
	Sent     int64   `json:"requests_sent"`
	Queries  int64   `json:"queries_sent"`
	Errors   int64   `json:"transport_errors"`
	Shed     int64   `json:"shed"`
	Success  int64   `json:"success"`
	Failed   int64   `json:"failed"`
	ShedRate float64 `json:"shed_rate"`
	SuccRate float64 `json:"success_rate"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Cluster-aware accounting: a query is "local" when its answer needed
	// no cross-shard forward and was not degraded to shard-unreachable —
	// the population whose success rate must survive a shard crash.
	Forwards     int64   `json:"forwards"`
	Unreachable  int64   `json:"shard_unreachable"`
	LocalQueries int64   `json:"local_queries"`
	LocalSuccess int64   `json:"local_success"`
	LocalRate    float64 `json:"local_success_rate"`
	// Replication accounting: hedges are second forward attempts fired after
	// the hedge delay, failovers are forwards answered by a replica other
	// than the first choice. The hedge rate is hedges per forward — the
	// fraction of cross-shard hops that needed a second attempt.
	Hedges    int64   `json:"hedges"`
	Failovers int64   `json:"failovers"`
	HedgeRate float64 `json:"hedge_rate"`
	Overruns  int64   `json:"deadline_overruns"`
	// Churn accounting: dead-ends are definitive 200 answers whose walk got
	// stuck — under live mutations that includes walks into tombstones — and
	// the mutation stream reports its own acceptance.
	DeadEnds    int64   `json:"dead_ends"`
	DeadRate    float64 `json:"dead_end_rate"`
	MutSent     int64   `json:"mutations_sent"`
	MutOK       int64   `json:"mutations_ok"`
	MutRejected int64   `json:"mutations_rejected"`
	MutErrors   int64   `json:"mutation_errors"`
	// Phase attribution: server-side time split by phase, aggregated from
	// the Timings block every answered query carries. Queue vs route vs
	// forward tells apart "the daemon is saturated" (queue grows), "routing
	// got slower" (route grows) and "a peer is slow" (forward grows) without
	// collecting a single trace.
	Phases map[string]phaseStat `json:"phases,omitempty"`
	// SLO burn rate: the failure rate over answered queries as a multiple of
	// the budget the -slo-target leaves (burn 1.0 = failing exactly at
	// budget). Long is the whole run, short the last quarter of the
	// schedule; the gate trips only when BOTH exceed -max-burn-rate, the
	// standard multi-window rule that ignores a recovered early blip.
	SLOTarget   float64 `json:"slo_target,omitempty"`
	BurnLong    float64 `json:"burn_rate_long,omitempty"`
	BurnShort   float64 `json:"burn_rate_short,omitempty"`
	GateP99     float64 `json:"gate_max_p99_ms,omitempty"`
	GateSucc    float64 `json:"gate_min_success,omitempty"`
	GateLocal   float64 `json:"gate_min_local_success,omitempty"`
	GateOverrun float64 `json:"gate_overrun_ms,omitempty"`
	GateDead    float64 `json:"gate_max_dead_end,omitempty"`
	GateHedge   float64 `json:"gate_max_hedge_rate,omitempty"`
	GateBurn    float64 `json:"gate_max_burn_rate,omitempty"`
	GatesPass   bool    `json:"gates_pass"`
}

// phaseStat is one phase's latency summary in the report.
type phaseStat struct {
	Queries int64   `json:"queries"`
	MeanMs  float64 `json:"mean_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// counters aggregates per-query outcomes across the generator goroutines.
type counters struct {
	shed, success, failed      atomic.Int64
	forwards, unreachable      atomic.Int64
	localQueries, localSuccess atomic.Int64
	deadEnds                   atomic.Int64
	hedges, failovers          atomic.Int64
	// Burn-rate windows: answered/failed over the whole run [0] and over
	// the last quarter of the schedule [1].
	winAnswered, winFailed [2]atomic.Int64
	// Per-phase server-side time from Timings blocks (queue, route,
	// forward, hedge, backoff — indexed by phaseOrder).
	phase [5]obs.LatencyHist
}

// phaseOrder names counters.phase slots; the spellings appear as keys of the
// summary's phases object.
var phaseOrder = [5]string{"queue", "route", "forward", "hedge", "backoff"}

// recordWindow scores one answered query into the burn-rate windows.
func (c *counters) recordWindow(short, failed bool) {
	c.winAnswered[0].Add(1)
	if failed {
		c.winFailed[0].Add(1)
	}
	if short {
		c.winAnswered[1].Add(1)
		if failed {
			c.winFailed[1].Add(1)
		}
	}
}

// recordPhases folds one query's Timings into the per-phase histograms (nil
// when the query failed before routing or the daemon predates Timings).
func (c *counters) recordPhases(tm *serve.Timings) {
	if tm == nil {
		return
	}
	us := [5]int64{tm.QueueUs, tm.RouteUs, tm.ForwardUs, tm.HedgeUs, tm.BackoffUs}
	for i, v := range us {
		if v > 0 || i < 2 { // queue and route are meaningful at 0; the rest mean "phase didn't run"
			c.phase[i].Record(time.Duration(v) * time.Microsecond)
		}
	}
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "comma-separated host:port list of running smallworldd daemons (mutually exclusive with -self); queries consistent-hash across them")
		self     = fs.Bool("self", false, "serve an in-process daemon on a loopback port and drive it")
		n        = fs.Float64("n", 10000, "GIRG size for -self")
		seed     = fs.Uint64("seed", 1, "random seed (graph sampling and query pairs)")
		workers  = fs.Int("workers", 0, "-self daemon worker pool size (0 = 4)")
		queue    = fs.Int("queue", 0, "-self daemon admission queue depth (0 = 16)")
		timeout  = fs.Duration("timeout", 2*time.Second, "-self daemon per-request deadline")
		nmax     = fs.Int("nmax", 0, "vertex-id upper bound for query pairs against -addr (required with -addr)")
		rps      = fs.Float64("rps", 100, "requests per second, held open-loop")
		duration = fs.Duration("duration", 10*time.Second, "generation window")
		batch    = fs.Int("batch", 1, "queries per request: 1 = POST /route, k>1 = POST /route/batch of k")
		proto    = fs.String("proto", "", "protocol name for every query (empty = daemon default)")
		maxP99   = fs.Float64("max-p99-ms", 0, "gate: fail (exit 1) when p99 latency exceeds this many ms (0 = off)")
		minSucc  = fs.Float64("min-success", 0, "gate: fail (exit 1) when the success rate is below this fraction (0 = off)")
		minLocal = fs.Float64("min-local-success", 0, "gate: fail (exit 1) when the success rate over shard-local queries (no forwards, not shard-unreachable) is below this fraction (0 = off)")
		overrun  = fs.Float64("overrun-ms", 0, "gate: count requests slower than this many ms as deadline overruns and fail (exit 1) when any occur (0 = off)")

		mutRPS   = fs.Float64("mutate-rps", 0, "mutation batches per second streamed to POST /admin/mutate alongside the routing traffic (0 = off; the daemon needs -mutate-dir, or -self which journals into a temp dir)")
		mutDim   = fs.Int("mutate-dim", 2, "torus dimension of generated add-vertex positions (must match the daemon's graph)")
		mutSlot  = fs.String("mutate-graph", "", "graph slot the mutation stream targets (empty = \"default\"; replicated clusters drive \"live\")")
		maxDead  = fs.Float64("max-dead-end", 0, "gate: fail (exit 1) when the dead-end fraction of answered queries exceeds this (0 = off); under churn, walks through tombstoned vertices dead-end by design, so the gate bounds how much")
		maxHedge = fs.Float64("max-hedge-rate", 0, "gate: fail (exit 1) when hedged second attempts per forward exceed this fraction (0 = off)")

		sloTarget = fs.Float64("slo-target", 0, "success-rate SLO the burn-rate gate measures against, e.g. 0.99 (0 = burn gate off)")
		maxBurn   = fs.Float64("max-burn-rate", 0, "gate: fail (exit 1) when the failure rate exceeds this multiple of the SLO's error budget over BOTH the whole run and its last quarter (0 = off; requires -slo-target)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if (*addr == "") == !*self {
		return 1, fmt.Errorf("exactly one of -addr or -self is required")
	}
	if *rps <= 0 || *duration <= 0 || *batch < 1 {
		return 1, fmt.Errorf("-rps, -duration and -batch must be positive")
	}
	if *maxBurn > 0 && (*sloTarget <= 0 || *sloTarget >= 1) {
		return 1, fmt.Errorf("-max-burn-rate requires -slo-target in (0, 1)")
	}

	base := *addr
	verts := *nmax
	if *self {
		p := girg.DefaultParams(*n)
		p.FixedN = true
		g, err := girg.Generate(p, *seed, girg.Options{})
		if err != nil {
			return 1, err
		}
		// The in-process daemon logs WARN and up: per-episode INFO lines at
		// hundreds of RPS would drown the summary this tool exists to print.
		srv := serve.New(serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			RequestTimeout: *timeout,
			Logger: slog.New(slog.NewTextHandler(os.Stderr,
				&slog.HandlerOptions{Level: slog.LevelWarn})),
		})
		if *mutRPS > 0 {
			// The mutation stream needs a journal; a throwaway one matches the
			// tool's lifetime.
			dir, err := os.MkdirTemp("", "loadgen-mutate-*")
			if err != nil {
				return 1, err
			}
			defer os.RemoveAll(dir)
			mutLog, err := mutate.Open(dir, g, mutate.Config{OnCompact: srv.InstallCompacted})
			if err != nil {
				return 1, err
			}
			defer mutLog.Close()
			if err := srv.EnableMutation(mutLog, serve.DefaultGraph); err != nil {
				return 1, err
			}
			*mutDim = g.Space().Dim()
		} else {
			srv.AddNetwork(serve.DefaultGraph, &core.Network{
				Graph: g,
				Label: fmt.Sprintf("loadgen-self(n=%d)", g.N()),
				NewObjective: func(t int) route.Objective {
					return route.NewStandard(g, t)
				},
				StandardPhi: true,
			})
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 1, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Shutdown(context.Background())
		base = ln.Addr().String()
		verts = g.N()
	}
	if verts <= 1 {
		return 1, fmt.Errorf("-nmax must be > 1 when driving a remote daemon")
	}
	// Several -addr endpoints consistent-hash the queries: each (s, t) pair
	// lands on a stable daemon, and a crashed endpoint only loses its own
	// share when the survivor list is passed on the next run.
	ring := cluster.NewRing(strings.Split(base, ","))
	if ring == nil {
		return 1, fmt.Errorf("no usable address in %q", base)
	}

	// Pre-build one request body per tick: the generation loop must not
	// marshal JSON on the critical path or the schedule drifts under load.
	interval := time.Duration(float64(time.Second) / *rps)
	ticks := int(*duration / interval)
	if ticks < 1 {
		ticks = 1
	}
	rng := xrand.New(*seed + 1)
	bodies := make([][]byte, ticks)
	endpoints := make([]string, ticks)
	path := "/route"
	if *batch > 1 {
		path = "/route/batch"
	}
	for i := range bodies {
		var body []byte
		var err error
		var s0, t0 int
		if *batch == 1 {
			s0, t0 = rng.IntN(verts), rng.IntN(verts)
			body, err = json.Marshal(serve.RouteRequest{Protocol: *proto, S: s0, T: t0})
		} else {
			items := make([]serve.BatchItem, *batch)
			for j := range items {
				items[j] = serve.BatchItem{Protocol: *proto, S: rng.IntN(verts), T: rng.IntN(verts)}
			}
			s0, t0 = items[0].S, items[0].T
			body, err = json.Marshal(serve.BatchRouteRequest{Items: items})
		}
		if err != nil {
			return 1, err
		}
		bodies[i] = body
		// The first pair keys the endpoint choice, so a request is pinned to
		// its daemon across runs regardless of the survivor set's order.
		endpoints[i] = "http://" + ring.Pick(obs.Hash64(uint64(s0), uint64(t0))) + path
	}

	// The open loop: request i fires at start + i·interval, on its own
	// goroutine, whether or not earlier requests have come back. A closed
	// loop (wait for the answer, then send) would throttle itself exactly
	// when the daemon slows down and hide the tail this tool exists to see.
	var (
		hist     obs.LatencyHist
		sent     atomic.Int64
		errs     atomic.Int64
		overruns atomic.Int64
		cnt      counters
		wg       sync.WaitGroup
	)
	client := &http.Client{Timeout: *timeout + 5*time.Second}

	// The mutation stream rides alongside the routing traffic: one
	// sequential sender at its own rate against the first endpoint (the
	// mutable daemon), generating joins, leaves and edge additions. It stops
	// when the routing window closes.
	var mut mutCounters
	mutCtx, mutCancel := context.WithCancel(context.Background())
	defer mutCancel()
	if *mutRPS > 0 {
		first := "http://" + strings.Split(base, ",")[0]
		liveN, err := fetchLiveN(client, first, *mutSlot)
		if err != nil {
			return 1, fmt.Errorf("mutate stream: %w", err)
		}
		go mutator(mutCtx, client, first+"/admin/mutate", *mutSlot, xrand.New(*seed+2),
			liveN, *mutDim, time.Duration(float64(time.Second) / *mutRPS), &mut)
	}

	start := time.Now()
	for i := 0; i < ticks; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		// A tick in the last quarter of the schedule also scores the short
		// burn-rate window.
		short := 4*i >= 3*ticks
		go func(endpoint string, body []byte, short bool) {
			defer wg.Done()
			sent.Add(1)
			t0 := time.Now()
			resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
			took := time.Since(t0)
			if *overrun > 0 && ms(took) > *overrun {
				overruns.Add(1)
			}
			if err != nil {
				errs.Add(1)
				// The service failed to answer at all: every query of the
				// request burns error budget.
				for q := 0; q < *batch; q++ {
					cnt.recordWindow(short, true)
				}
				return
			}
			hist.Record(took)
			classify(resp, *batch, short, &cnt)
		}(endpoints[i], bodies[i], short)
	}
	wg.Wait()
	mutCancel()
	elapsed := time.Since(start)

	queries := sent.Load() * int64(*batch)
	// Success rate is over queries the daemon accepted: shedding is backpressure
	// working as designed and scored separately; transport errors count against
	// success (the service failed to answer at all).
	answered := queries - cnt.shed.Load()
	s := summary{
		RPS:          *rps,
		Duration:     elapsed.Seconds(),
		Batch:        *batch,
		Sent:         sent.Load(),
		Queries:      queries,
		Errors:       errs.Load(),
		Shed:         cnt.shed.Load(),
		Success:      cnt.success.Load(),
		Failed:       cnt.failed.Load() + errs.Load()*int64(*batch),
		Forwards:     cnt.forwards.Load(),
		Unreachable:  cnt.unreachable.Load(),
		LocalQueries: cnt.localQueries.Load(),
		LocalSuccess: cnt.localSuccess.Load(),
		Hedges:       cnt.hedges.Load(),
		Failovers:    cnt.failovers.Load(),
		Overruns:     overruns.Load(),
		DeadEnds:     cnt.deadEnds.Load(),
		MutSent:      mut.sent.Load(),
		MutOK:        mut.ok.Load(),
		MutRejected:  mut.rejected.Load(),
		MutErrors:    mut.errs.Load(),
		P50Ms:        ms(hist.Quantile(0.50)),
		P95Ms:        ms(hist.Quantile(0.95)),
		P99Ms:        ms(hist.Quantile(0.99)),
		GateP99:      *maxP99,
		GateSucc:     *minSucc,
		GateLocal:    *minLocal,
		GateOverrun:  *overrun,
		GateDead:     *maxDead,
		GateHedge:    *maxHedge,
		GateBurn:     *maxBurn,
		SLOTarget:    *sloTarget,
	}
	for i, name := range phaseOrder {
		if n := cnt.phase[i].Count(); n > 0 {
			if s.Phases == nil {
				s.Phases = map[string]phaseStat{}
			}
			s.Phases[name] = phaseStat{
				Queries: n,
				MeanMs:  ms(cnt.phase[i].Mean()),
				P99Ms:   ms(cnt.phase[i].Quantile(0.99)),
			}
		}
	}
	burnOK := true
	if *maxBurn > 0 {
		budget := 1 - *sloTarget
		burn := func(w int) float64 {
			answered := cnt.winAnswered[w].Load()
			if answered == 0 {
				return 0
			}
			return float64(cnt.winFailed[w].Load()) / float64(answered) / budget
		}
		s.BurnLong, s.BurnShort = burn(0), burn(1)
		// Multi-window rule: only a failure rate elevated both over the whole
		// run and right now (the last quarter) trips the gate.
		burnOK = s.BurnLong <= *maxBurn || s.BurnShort <= *maxBurn
	}
	if queries > 0 {
		s.ShedRate = float64(s.Shed) / float64(queries)
	}
	if answered > 0 {
		s.SuccRate = float64(s.Success) / float64(answered)
	}
	if s.LocalQueries > 0 {
		s.LocalRate = float64(s.LocalSuccess) / float64(s.LocalQueries)
	}
	if answered > 0 {
		s.DeadRate = float64(s.DeadEnds) / float64(answered)
	}
	if s.Forwards > 0 {
		s.HedgeRate = float64(s.Hedges) / float64(s.Forwards)
	}
	s.GatesPass = (*maxP99 <= 0 || s.P99Ms <= *maxP99) &&
		(*minSucc <= 0 || s.SuccRate >= *minSucc) &&
		(*minLocal <= 0 || s.LocalRate >= *minLocal) &&
		(*overrun <= 0 || s.Overruns == 0) &&
		(*maxDead <= 0 || s.DeadRate <= *maxDead) &&
		(*maxHedge <= 0 || s.HedgeRate <= *maxHedge) &&
		burnOK

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return 1, err
	}
	if !s.GatesPass {
		return 1, fmt.Errorf("gates failed: p99 %.1fms (max %.1f), success %.4f (min %.4f), local %.4f (min %.4f), overruns %d (limit %.1fms), dead-ends %.4f (max %.4f), hedge rate %.4f (max %.4f), burn %.2f/%.2f (max %.2f)",
			s.P99Ms, *maxP99, s.SuccRate, *minSucc, s.LocalRate, *minLocal, s.Overruns, *overrun, s.DeadRate, *maxDead, s.HedgeRate, *maxHedge, s.BurnLong, s.BurnShort, *maxBurn)
	}
	return 0, nil
}

// classify folds one HTTP response into the query counters. Route bodies
// are decoded on every status — classified failures (504 deadline, 502
// shard-unreachable) carry a full RouteResponse — so the cluster fields
// (forwards, shard-unreachable, shard-local success) stay honest. For a
// batch, per-item statuses are scored individually; an envelope-level
// rejection scores every query of the batch at once.
func classify(resp *http.Response, batch int, short bool, c *counters) {
	defer resp.Body.Close()
	if batch > 1 {
		var br serve.BatchRouteResponse
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&br) != nil {
			// Envelope rejection (shed, draining, malformed): every query of
			// the batch scores on the status alone.
			for i := 0; i < batch; i++ {
				scoreQuery(resp.StatusCode, false, 0, 0, 0, "", short, c)
			}
			return
		}
		for _, it := range br.Items {
			scoreQuery(it.Status, it.Attempts > 0, it.Forwards, it.Hedges, it.Failovers, it.Failure, short, c)
			c.recordPhases(it.Timings)
		}
		return
	}
	var rr serve.RouteResponse
	routed := json.NewDecoder(resp.Body).Decode(&rr) == nil && rr.Attempts > 0
	scoreQuery(resp.StatusCode, routed, rr.Forwards, rr.Hedges, rr.Failovers, rr.Failure, short, c)
	c.recordPhases(rr.Timings)
}

// scoreQuery maps one query onto the counters: 200 is a definitive answer
// (delivered or a proven dead end — the service did its job), 429/503 is
// load shedding, anything else is a failure. routed says the body was a
// real route answer, which is what makes the cluster accounting (forwards /
// shard-unreachable / local) trustworthy.
func scoreQuery(status int, routed bool, forwards, hedges, failovers int, failure string, short bool, c *counters) {
	switch status {
	case http.StatusOK:
		c.success.Add(1)
		c.recordWindow(short, false)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		c.shed.Add(1)
		return
	default:
		c.failed.Add(1)
		c.recordWindow(short, true)
	}
	if !routed {
		return
	}
	c.forwards.Add(int64(forwards))
	c.hedges.Add(int64(hedges))
	c.failovers.Add(int64(failovers))
	if failure == string(route.FailDeadEnd) {
		c.deadEnds.Add(1)
	}
	if failure == string(route.FailShardUnreachable) {
		c.unreachable.Add(1)
		return
	}
	if forwards == 0 {
		c.localQueries.Add(1)
		if status == http.StatusOK {
			c.localSuccess.Add(1)
		}
	}
}

// mutCounters aggregates the mutation stream's outcomes.
type mutCounters struct {
	sent, ok, rejected, errs atomic.Int64
}

// fetchLiveN reads the live vertex count of the mutable graph slot from
// /readyz — the id space in-batch references must stay inside. A daemon
// with a mutation log reports it in the live section; one without is not
// mutable and the first batch will come back 404.
func fetchLiveN(client *http.Client, base, slot string) (int, error) {
	if slot == "" {
		slot = serve.DefaultGraph
	}
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s/readyz: status %d", base, resp.StatusCode)
	}
	var ready serve.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		return 0, err
	}
	g, ok := ready.Graphs[slot]
	if !ok {
		return 0, fmt.Errorf("%s serves no graph %q", base, slot)
	}
	if g.Live != nil {
		return g.Live.Vertices, nil
	}
	return g.Vertices, nil
}

// mutator streams random churn batches at its own open-loop pace: joins (an
// added vertex wired to three existing ones), leaves (a tombstoned vertex)
// and edge additions. It tracks the live vertex count from acknowledged
// joins, which is what keeps in-batch references to the new vertex id
// valid; occasional 422s (an already-tombstoned leave target, a duplicate
// edge) are counted, not fatal — they exercise the rejection path the
// daemon promises to keep atomic.
func mutator(ctx context.Context, client *http.Client, target, slot string, rng *xrand.RNG,
	liveN, dim int, interval time.Duration, c *mutCounters) {
	start := time.Now()
	for i := 0; ; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			return
		}
		var ops []mutate.Op
		addedVertex := false
		switch r := rng.Float64(); {
		case r < 0.6:
			pos := make([]float64, dim)
			for j := range pos {
				pos[j] = rng.Float64()
			}
			ops = append(ops, mutate.Op{Op: mutate.OpAddVertex, Pos: pos, W: 1 + 2*rng.Float64()})
			seen := map[int]bool{}
			for len(seen) < 3 {
				v := rng.IntN(liveN)
				if !seen[v] {
					seen[v] = true
					ops = append(ops, mutate.Op{Op: mutate.OpAddEdge, U: liveN, V: v})
				}
			}
			addedVertex = true
		case r < 0.85:
			ops = append(ops, mutate.Op{Op: mutate.OpRemoveVertex, V: rng.IntN(liveN)})
		default:
			u, v := rng.IntN(liveN), rng.IntN(liveN)
			for u == v {
				v = rng.IntN(liveN)
			}
			ops = append(ops, mutate.Op{Op: mutate.OpAddEdge, U: u, V: v})
		}
		body, err := json.Marshal(serve.MutateRequest{Graph: slot, Ops: ops})
		if err != nil {
			c.errs.Add(1)
			continue
		}
		c.sent.Add(1)
		resp, err := client.Post(target, "application/json", bytes.NewReader(body))
		if err != nil {
			c.errs.Add(1)
			continue
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			c.ok.Add(1)
			if addedVertex {
				liveN++
			}
		case http.StatusUnprocessableEntity:
			c.rejected.Add(1)
		default:
			c.errs.Add(1)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
