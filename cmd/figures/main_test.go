package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("generates real figures")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "0.02", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig_f1_trajectory.svg", "fig_e4_hops.svg", "fig_e2_failure.svg", "fig_e12_failures.svg",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Fatalf("%s is not SVG", name)
		}
	}
}
