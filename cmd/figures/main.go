// figures renders the reproduction's figures as standalone SVG files:
//
//	fig_f1_trajectory.svg  — Figure 1: weight and objective along one greedy path
//	fig_e4_hops.svg        — Theorem 3.3: mean hops vs log log n per beta
//	fig_e2_failure.svg     — Theorem 3.2(i): failure decay in wmin (log scale)
//	fig_e12_failures.svg   — robustness: delivery vs per-hop edge failure rate
//
// Usage: figures [-out figures/] [-scale 1] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/plot"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runCtx(context.Background(), args) }

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		out   = fs.String("out", "figures", "output directory")
		scale = fs.Float64("scale", 1, "workload scale")
		seed  = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	type job struct {
		name string
		make func(ctx context.Context, scale float64, seed uint64) (*plot.Plot, error)
	}
	for _, j := range []job{
		{"fig_f1_trajectory.svg", figTrajectory},
		{"fig_e4_hops.svg", figHops},
		{"fig_e2_failure.svg", figFailure},
		{"fig_e12_failures.svg", figRobustness},
	} {
		p, err := j.make(ctx, *scale, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		svg, err := p.SVG()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		path := filepath.Join(*out, j.name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func scaledN(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 500 {
		n = 500
	}
	return n
}

// figTrajectory reproduces Figure 1: weight and objective per hop of one
// successful greedy path between planted low-weight endpoints.
func figTrajectory(ctx context.Context, scale float64, seed uint64) (*plot.Plot, error) {
	p := girg.DefaultParams(float64(scaledN(200000, scale)))
	p.Lambda = 0.02
	p.FixedN = true
	planted := []girg.Plant{
		{Pos: []float64{0.1, 0.1}, W: p.WMin},
		{Pos: []float64{0.6, 0.6}, W: p.WMin},
	}
	var hops []route.MoveEvent
	for attempt := uint64(0); attempt < 50; attempt++ {
		g, err := girg.Generate(p, seed+attempt, girg.Options{Planted: planted})
		if err != nil {
			return nil, err
		}
		obj := route.NewStandard(g, 1)
		res := route.Greedy(g, obj, 0)
		if res.Success && len(res.Path) > len(hops) {
			hops = route.Moves(g, obj, res, 0)
			if res.Moves >= 6 {
				break
			}
		}
	}
	if hops == nil {
		return nil, fmt.Errorf("no successful trajectory found")
	}
	var xs, ws, phis []float64
	for i, h := range hops {
		xs = append(xs, float64(i))
		ws = append(ws, h.W)
		phi := h.Score
		if math.IsInf(phi, 1) { // target: clamp for plotting
			phi = 10 * phis[len(phis)-1]
		}
		phis = append(phis, phi)
	}
	return &plot.Plot{
		Title:  "Figure 1: typical greedy trajectory (log scale)",
		XLabel: "hop",
		YLabel: "value (log10)",
		LogY:   true,
		Series: []plot.Series{
			{Name: "weight w_v", X: xs, Y: ws, Markers: true},
			{Name: "objective phi(v)", X: xs, Y: phis, Markers: true, Dashed: true},
		},
	}, nil
}

// figHops reproduces E4: mean greedy hops against ln ln n per beta, with
// the theory slope as dashed reference lines.
func figHops(ctx context.Context, scale float64, seed uint64) (*plot.Plot, error) {
	baseNs := []int{1000, 3162, 10000, 31623, 100000}
	betas := []float64{2.3, 2.5, 2.7}
	pairs := int(300 * scale)
	if pairs < 40 {
		pairs = 40
	}
	var series []plot.Series
	for bi, beta := range betas {
		var xs, ys []float64
		for ni, baseN := range baseNs {
			n := scaledN(baseN, scale)
			p := girg.DefaultParams(float64(n))
			p.Beta = beta
			p.Lambda = 0.02
			p.FixedN = true
			nw, err := core.NewGIRG(p, seed+uint64(bi*10+ni), girg.Options{})
			if err != nil {
				return nil, err
			}
			rep, err := core.RunMilgramCtx(ctx, nw, core.MilgramConfig{Pairs: pairs, Seed: seed + 99})
			if err != nil {
				return nil, err
			}
			xs = append(xs, math.Log(math.Log(float64(n))))
			ys = append(ys, rep.MeanHops)
		}
		series = append(series, plot.Series{
			Name: fmt.Sprintf("beta=%.1f", beta), X: xs, Y: ys, Markers: true,
		})
		// Fitted line for reference.
		fit := stats.FitLine(xs, ys)
		series = append(series, plot.Series{
			Name:   fmt.Sprintf("fit %.2f*lnln n", fit.Slope),
			X:      []float64{xs[0], xs[len(xs)-1]},
			Y:      []float64{fit.Intercept + fit.Slope*xs[0], fit.Intercept + fit.Slope*xs[len(xs)-1]},
			Dashed: true,
		})
	}
	return &plot.Plot{
		Title:  "Theorem 3.3: greedy hops scale with log log n",
		XLabel: "ln ln n",
		YLabel: "mean hops (successful routings)",
		Series: series,
	}, nil
}

// figFailure reproduces E2: failure probability against wmin on a log
// scale — a straight line means exponential decay.
func figFailure(ctx context.Context, scale float64, seed uint64) (*plot.Plot, error) {
	n := scaledN(30000, scale)
	pairs := int(1500 * scale)
	if pairs < 150 {
		pairs = 150
	}
	wmins := []float64{0.5, 0.75, 1, 1.5, 2, 3, 4}
	var xs, ys []float64
	for i, wmin := range wmins {
		p := girg.DefaultParams(float64(n))
		p.WMin = wmin
		p.Lambda = 0.005
		p.FixedN = true
		nw, err := core.NewGIRG(p, seed+uint64(100+i), girg.Options{})
		if err != nil {
			return nil, err
		}
		rep, err := core.RunMilgramCtx(ctx, nw, core.MilgramConfig{
			Pairs: pairs, Seed: seed + 77, WholeGraph: true,
		})
		if err != nil {
			return nil, err
		}
		if fail := 1 - rep.Success.P; fail > 0 {
			xs = append(xs, wmin)
			ys = append(ys, fail)
		}
	}
	rate, pre, _ := stats.FitExpDecay(xs, ys)
	var fx, fy []float64
	for _, x := range xs {
		fx = append(fx, x)
		fy = append(fy, pre*math.Exp(-rate*x))
	}
	return &plot.Plot{
		Title:  "Theorem 3.2(i): failure decays exponentially in wmin",
		XLabel: "wmin",
		YLabel: "failure probability (log10)",
		LogY:   true,
		Series: []plot.Series{
			{Name: "measured", X: xs, Y: ys, Markers: true},
			{Name: fmt.Sprintf("fit e^(-%.2f wmin)", rate), X: fx, Y: fy, Dashed: true},
		},
	}, nil
}

// figRobustness reproduces E12: delivery rate against per-hop edge failure
// probability.
func figRobustness(ctx context.Context, scale float64, seed uint64) (*plot.Plot, error) {
	n := scaledN(20000, scale)
	pairs := int(400 * scale)
	if pairs < 50 {
		pairs = 50
	}
	p := girg.DefaultParams(float64(n))
	p.Lambda = 0.02
	p.FixedN = true
	g, err := girg.Generate(p, seed+1200, girg.Options{})
	if err != nil {
		return nil, err
	}
	giant := graph.GiantComponent(g)
	rng := xrand.New(seed + 1201)
	type pair struct{ s, t int }
	var ps []pair
	for len(ps) < pairs {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s != tgt {
			ps = append(ps, pair{s, tgt})
		}
	}
	var xs, ys []float64
	for _, failP := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		// Inject transient link failures through the faults registry: one
		// bound edge-drop plan per failure rate, one per-episode view per
		// pair, deterministic at any worker count.
		var bound *faults.BoundPlan
		if failP > 0 {
			plan, err := faults.NewPlan(seed+1300, faults.Spec{Model: "edge-drop", Rate: failP})
			if err != nil {
				return nil, err
			}
			bound = plan.Bind(g)
		}
		succ := 0
		for i, pr := range ps {
			eg, eobj := route.Graph(g), route.Objective(route.NewStandard(g, pr.t))
			if bound != nil {
				eg, eobj = bound.View(eg, eobj, i)
			}
			if route.Greedy(eg, eobj, pr.s).Success {
				succ++
			}
		}
		xs = append(xs, failP)
		ys = append(ys, float64(succ)/float64(len(ps)))
	}
	return &plot.Plot{
		Title:  "Robustness: delivery under transient edge failures",
		XLabel: "per-hop edge failure probability",
		YLabel: "delivery rate",
		Series: []plot.Series{{Name: "greedy", X: xs, Y: ys, Markers: true}},
	}, nil
}
