// route runs a single routing episode on a graph file produced by girgen
// (or on a freshly sampled GIRG) and prints the path, optionally with the
// per-hop weight/objective trajectory of Figure 1. With -server it sends
// the same query to a running smallworldd daemon instead of routing
// locally, using the shared wire types of internal/serve.
//
// The exit code classifies the outcome (see -h): 0 when every episode
// delivered, otherwise the highest code among the failed episodes' classes,
// so scripts can branch on *why* routing failed.
//
// Examples:
//
//	girgen -n 100000 -out g.girg && route -in g.girg -s 3 -t 99 -trace
//	route -n 50000 -proto phi-dfs -pairs 20
//	smallworldd -n 50000 & route -server localhost:8080 -s 3 -t 99
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/xrand"
)

func main() {
	// Ctrl-C stops between episodes with a partial-progress message; the
	// interruption is classified "cancelled" in the exit code.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := runCtx(ctx, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "route:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run is the error-only entry point used by tests; the exit code is
// dropped.
func run(args []string) error {
	_, err := runCtx(context.Background(), args)
	return err
}

// exitCodeTable renders the usage-text table of exit codes, derived from
// the shared serve.ExitCodeFor mapping so the CLI and the daemon can never
// disagree about what a class means.
func exitCodeTable() string {
	fs := route.Failures()
	sort.Slice(fs, func(i, j int) bool { return serve.ExitCodeFor(fs[i]) < serve.ExitCodeFor(fs[j]) })
	var b strings.Builder
	b.WriteString("\nexit codes (highest failed episode wins):\n")
	b.WriteString("  0  every episode delivered\n")
	b.WriteString("  1  usage or I/O error\n")
	for _, f := range fs {
		fmt.Fprintf(&b, "  %d  %s\n", serve.ExitCodeFor(f), f)
	}
	return b.String()
}

func runCtx(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "graph file from girgen (default: sample a fresh GIRG)")
		n      = fs.Float64("n", 10000, "GIRG size when sampling")
		seed   = fs.Uint64("seed", 1, "random seed")
		s      = fs.Int("s", -1, "source vertex (-1 = random giant vertex)")
		t      = fs.Int("t", -1, "target vertex (-1 = random giant vertex)")
		proto  = fs.String("proto", "greedy", "protocol: "+strings.Join(route.RegisteredSorted(), " | "))
		pairs  = fs.Int("pairs", 1, "number of random pairs to route (when s/t unset)")
		trace  = fs.Bool("trace", false, "print the per-hop weight/objective trajectory")
		server = fs.String("server", "", "comma-separated host:port list of running smallworldd daemons; query one (consistent-hashed on s,t) instead of routing locally")
		// Usage text derives from the fault-model registry, exactly as -proto
		// derives from the protocol registry.
		faultModel   = fs.String("fault-model", "", "fault model to inject (default none): "+strings.Join(faults.RegisteredSorted(), " | "))
		faultRate    = fs.Float64("fault-rate", 0.1, "fault severity in [0, 1] (drop probability, crash fraction, loss probability, or noise amplitude)")
		faultRetries = fs.Int("fault-retries", 0, "msg-loss retry budget per forward (0 = model default)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: route [flags]\n")
		fs.PrintDefaults()
		fmt.Fprint(fs.Output(), exitCodeTable())
	}
	if err := fs.Parse(args); err != nil {
		return 1, err
	}

	if *server != "" {
		return runRemote(ctx, *server, *proto, *s, *t, *faultModel, *faultRate, *faultRetries, *seed)
	}

	var (
		g   *graph.Graph
		err error
	)
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return 1, err2
		}
		g, err = graphio.Read(f)
		f.Close()
	} else {
		p := girg.DefaultParams(*n)
		p.FixedN = true
		g, err = girg.Generate(p, *seed, girg.Options{})
	}
	if err != nil {
		return 1, err
	}
	// Resolve through the registry: the error for an unknown name lists
	// every registered protocol.
	p, err := core.Lookup(*proto)
	if err != nil {
		return 1, err
	}
	protocol := core.Protocol(*proto)

	// -fault-model resolves through the fault registry the same way: an
	// unknown name errors with the valid list before any routing happens.
	var bound *faults.BoundPlan
	if *faultModel != "" {
		plan, err := faults.NewPlan(*seed+2, faults.Spec{
			Model: *faultModel, Rate: *faultRate, Retries: *faultRetries,
		})
		if err != nil {
			return 1, err
		}
		bound = plan.Bind(g)
	}

	giant := graph.GiantComponent(g)
	if len(giant) < 2 {
		return 1, fmt.Errorf("giant component too small")
	}
	rng := xrand.New(*seed + 1)
	episodes := *pairs
	if *s >= 0 && *t >= 0 {
		episodes = 1
	}
	nw := &core.Network{
		Graph: g,
		Label: "route",
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
		StandardPhi: true,
	}
	worst := 0
	for i := 0; i < episodes; i++ {
		if ctx.Err() != nil {
			// Interrupted between episodes: report partial progress and
			// classify the remainder cancelled.
			fmt.Fprintf(os.Stderr, "route: interrupted after %d/%d episodes\n", i, episodes)
			return maxCode(worst, serve.ExitCodeFor(route.FailCancelled)), nil
		}
		src, dst := *s, *t
		if src < 0 {
			src = giant[rng.IntN(len(giant))]
		}
		if dst < 0 {
			dst = giant[rng.IntN(len(giant))]
		}
		if src == dst {
			continue
		}
		if src >= g.N() || dst >= g.N() {
			return 1, fmt.Errorf("vertex out of range (n = %d)", g.N())
		}
		// The trace is streamed by an observer attached to the episode: one
		// per-move event per hop, carrying the vertex, its weight and its
		// objective value (the Figure-1 trajectory).
		var hops []route.MoveEvent
		traceObs := route.ObserverFunc(func(ev route.MoveEvent) {
			hops = append(hops, ev)
		})
		var res route.Result
		if bound != nil {
			// Faulty episodes route on this episode's view of the graph and
			// objective; crashed endpoints are classified without routing.
			if bound.Crashed(src) || bound.Crashed(dst) {
				fmt.Printf("%s %d -> %d: FAILED(%s) moves=0 unique=1 bfs=- stretch=-\n",
					protocol, src, dst, route.FailCrashedTarget)
				worst = maxCode(worst, serve.ExitCodeFor(route.FailCrashedTarget))
				continue
			}
			eg, eobj := bound.View(g, route.NewStandard(g, dst), i)
			res = p.Route(eg, eobj, src)
			if *trace {
				// Replay over the fault-free graph: the path is what the
				// faulty view routed, the scores are the true objective.
				route.Observe(g, route.NewStandard(g, dst), res, i, traceObs)
			}
		} else {
			var obs []route.Observer
			if *trace {
				obs = append(obs, traceObs)
			}
			res, err = nw.Route(protocol, src, dst, obs...)
			if err != nil {
				return 1, err
			}
		}
		status := "FAILED"
		if res.Success {
			status = "ok"
		} else if res.Failure != route.FailNone {
			status = fmt.Sprintf("FAILED(%s)", res.Failure)
		}
		if !res.Success {
			f := res.Failure
			if f == route.FailNone {
				f = route.FailDeadEnd
			}
			worst = maxCode(worst, serve.ExitCodeFor(f))
		}
		bfs := graph.BFSDistance(g, src, dst)
		stretch := "-"
		if res.Success && bfs > 0 {
			stretch = fmt.Sprintf("%.3f", float64(res.Moves)/float64(bfs))
		}
		fmt.Printf("%s %d -> %d: %s moves=%d unique=%d bfs=%d stretch=%s\n",
			protocol, src, dst, status, res.Moves, res.Unique, bfs, stretch)
		for _, h := range hops {
			score := fmt.Sprintf("%.4g", h.Score)
			if math.IsInf(h.Score, 1) {
				score = "inf"
			}
			fmt.Printf("  hop %3d: v=%-8d w=%-10.2f phi=%s\n", h.Step, h.V, h.W, score)
		}
	}
	return worst, nil
}

// maxCode keeps the highest exit code seen across episodes.
func maxCode(a, b int) int {
	if b > a {
		return b
	}
	return a
}

// runRemote sends one routing query to a running smallworldd and prints its
// answer, reusing the daemon's wire types so both sides stay in lockstep.
// addr may list several daemons (comma-separated); the query goes to the
// endpoint that consistent-hashing assigns the (s, t) pair, so repeated
// invocations against the same cluster hit the same entry daemon. When that
// daemon is unreachable or answers shard-unreachable (the target's shard
// was down from where it stood), the episode is retried once against the
// next endpoint in the pair's ring order — a different entry daemon may
// reach a different replica — before the failure is reported.
func runRemote(ctx context.Context, addr, proto string, s, t int, faultModel string, faultRate float64, faultRetries int, seed uint64) (int, error) {
	if s < 0 || t < 0 {
		return 1, fmt.Errorf("-server mode needs explicit -s and -t")
	}
	ring := cluster.NewRing(strings.Split(addr, ","))
	if ring == nil {
		return 1, fmt.Errorf("-server needs at least one address")
	}
	req := serve.RouteRequest{Protocol: proto, S: s, T: t, FaultSeed: seed, IncludePath: true}
	if proto == "greedy" {
		req.Protocol = "" // let the daemon apply its default
	}
	if faultModel != "" {
		req.Faults = []faults.Spec{{Model: faultModel, Rate: faultRate, Retries: faultRetries}}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 1, err
	}
	endpoints := ring.Sequence(obs.Hash64(uint64(s), uint64(t)))
	if len(endpoints) > 2 {
		endpoints = endpoints[:2] // one failover, not a cluster-wide sweep
	}
	var (
		rr      serve.RouteResponse
		lastErr error
	)
	for i, endpoint := range endpoints {
		rr, err = queryDaemon(ctx, endpoint, body)
		if err == nil && route.Failure(rr.Failure) != route.FailShardUnreachable {
			break
		}
		lastErr = err
		if i+1 < len(endpoints) {
			reason := "shard unreachable"
			if err != nil {
				reason = err.Error()
			}
			fmt.Fprintf(os.Stderr, "route: %s from %s, retrying via %s\n",
				reason, endpoint, endpoints[i+1])
		}
	}
	if err != nil {
		return 1, lastErr
	}
	status := "ok"
	f := route.Failure(rr.Failure)
	if !rr.Success {
		status = fmt.Sprintf("FAILED(%s)", rr.Failure)
	}
	hops := ""
	if rr.Forwards > 0 {
		hops = fmt.Sprintf(" forwards=%d", rr.Forwards)
	}
	if rr.Failovers > 0 || rr.Hedges > 0 {
		hops += fmt.Sprintf(" failovers=%d hedges=%d", rr.Failovers, rr.Hedges)
	}
	fmt.Printf("%s %d -> %d: %s moves=%d unique=%d attempts=%d elapsed=%.1fms%s\n",
		rr.Protocol, rr.S, rr.T, status, rr.Moves, rr.Unique, rr.Attempts, rr.ElapsedMs, hops)
	if len(rr.Path) > 0 {
		fmt.Printf("  path: %v\n", rr.Path)
	}
	return serve.ExitCodeFor(f), nil
}

// queryDaemon is one POST /route round trip against one endpoint.
func queryDaemon(ctx context.Context, addr string, body []byte) (serve.RouteResponse, error) {
	var rr serve.RouteResponse
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/route", bytes.NewReader(body))
	if err != nil {
		return rr, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return rr, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil || rr.Attempts == 0 {
		// Not a RouteResponse: surface the daemon's error body.
		return rr, fmt.Errorf("daemon %s returned %s", addr, resp.Status)
	}
	return rr, nil
}
