// route runs a single routing episode on a graph file produced by girgen
// (or on a freshly sampled GIRG) and prints the path, optionally with the
// per-hop weight/objective trajectory of Figure 1.
//
// Examples:
//
//	girgen -n 100000 -out g.girg && route -in g.girg -s 3 -t 99 -trace
//	route -n 50000 -proto phi-dfs -pairs 20
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/route"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "route:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "graph file from girgen (default: sample a fresh GIRG)")
		n     = fs.Float64("n", 10000, "GIRG size when sampling")
		seed  = fs.Uint64("seed", 1, "random seed")
		s     = fs.Int("s", -1, "source vertex (-1 = random giant vertex)")
		t     = fs.Int("t", -1, "target vertex (-1 = random giant vertex)")
		proto = fs.String("proto", "greedy", "protocol: "+strings.Join(route.RegisteredSorted(), " | "))
		pairs = fs.Int("pairs", 1, "number of random pairs to route (when s/t unset)")
		trace = fs.Bool("trace", false, "print the per-hop weight/objective trajectory")
		// Usage text derives from the fault-model registry, exactly as -proto
		// derives from the protocol registry.
		faultModel   = fs.String("fault-model", "", "fault model to inject (default none): "+strings.Join(faults.RegisteredSorted(), " | "))
		faultRate    = fs.Float64("fault-rate", 0.1, "fault severity in [0, 1] (drop probability, crash fraction, loss probability, or noise amplitude)")
		faultRetries = fs.Int("fault-retries", 0, "msg-loss retry budget per forward (0 = model default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *graph.Graph
		err error
	)
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return err2
		}
		g, err = graphio.Read(f)
		f.Close()
	} else {
		p := girg.DefaultParams(*n)
		p.FixedN = true
		g, err = girg.Generate(p, *seed, girg.Options{})
	}
	if err != nil {
		return err
	}
	// Resolve through the registry: the error for an unknown name lists
	// every registered protocol.
	p, err := core.Lookup(*proto)
	if err != nil {
		return err
	}
	protocol := core.Protocol(*proto)

	// -fault-model resolves through the fault registry the same way: an
	// unknown name errors with the valid list before any routing happens.
	var bound *faults.BoundPlan
	if *faultModel != "" {
		plan, err := faults.NewPlan(*seed+2, faults.Spec{
			Model: *faultModel, Rate: *faultRate, Retries: *faultRetries,
		})
		if err != nil {
			return err
		}
		bound = plan.Bind(g)
	}

	giant := graph.GiantComponent(g)
	if len(giant) < 2 {
		return fmt.Errorf("giant component too small")
	}
	rng := xrand.New(*seed + 1)
	episodes := *pairs
	if *s >= 0 && *t >= 0 {
		episodes = 1
	}
	nw := &core.Network{
		Graph: g,
		Label: "route",
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
	}
	for i := 0; i < episodes; i++ {
		src, dst := *s, *t
		if src < 0 {
			src = giant[rng.IntN(len(giant))]
		}
		if dst < 0 {
			dst = giant[rng.IntN(len(giant))]
		}
		if src == dst {
			continue
		}
		if src >= g.N() || dst >= g.N() {
			return fmt.Errorf("vertex out of range (n = %d)", g.N())
		}
		// The trace is streamed by an observer attached to the episode: one
		// per-move event per hop, carrying the vertex, its weight and its
		// objective value (the Figure-1 trajectory).
		var hops []route.MoveEvent
		traceObs := route.ObserverFunc(func(ev route.MoveEvent) {
			hops = append(hops, ev)
		})
		var res route.Result
		if bound != nil {
			// Faulty episodes route on this episode's view of the graph and
			// objective; crashed endpoints are classified without routing.
			if bound.Crashed(src) || bound.Crashed(dst) {
				fmt.Printf("%s %d -> %d: FAILED(%s) moves=0 unique=1 bfs=- stretch=-\n",
					protocol, src, dst, route.FailCrashedTarget)
				continue
			}
			eg, eobj := bound.View(g, route.NewStandard(g, dst), i)
			res = p.Route(eg, eobj, src)
			if *trace {
				// Replay over the fault-free graph: the path is what the
				// faulty view routed, the scores are the true objective.
				route.Observe(g, route.NewStandard(g, dst), res, i, traceObs)
			}
		} else {
			var obs []route.Observer
			if *trace {
				obs = append(obs, traceObs)
			}
			res, err = nw.Route(protocol, src, dst, obs...)
			if err != nil {
				return err
			}
		}
		status := "FAILED"
		if res.Success {
			status = "ok"
		} else if res.Failure != route.FailNone {
			status = fmt.Sprintf("FAILED(%s)", res.Failure)
		}
		bfs := graph.BFSDistance(g, src, dst)
		stretch := "-"
		if res.Success && bfs > 0 {
			stretch = fmt.Sprintf("%.3f", float64(res.Moves)/float64(bfs))
		}
		fmt.Printf("%s %d -> %d: %s moves=%d unique=%d bfs=%d stretch=%s\n",
			protocol, src, dst, status, res.Moves, res.Unique, bfs, stretch)
		for _, h := range hops {
			score := fmt.Sprintf("%.4g", h.Score)
			if math.IsInf(h.Score, 1) {
				score = "inf"
			}
			fmt.Printf("  hop %3d: v=%-8d w=%-10.2f phi=%s\n", h.Step, h.V, h.W, score)
		}
	}
	return nil
}
