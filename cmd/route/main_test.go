package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/girg"
	"repro/internal/graphio"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	p := girg.DefaultParams(400)
	p.FixedN = true
	g, err := girg.Generate(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.girg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnFile(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-pairs", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFreshGIRG(t *testing.T) {
	if err := run([]string{"-n", "400", "-pairs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-pairs", "1", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	path := writeTestGraph(t)
	for _, proto := range []string{"greedy", "phi-dfs", "history", "gravity-pressure"} {
		if err := run([]string{"-in", path, "-pairs", "2", "-proto", proto}); err != nil {
			t.Errorf("protocol %s: %v", proto, err)
		}
	}
}

func TestRunExplicitPair(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-s", "0", "-t", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := [][]string{
		{"-in", "/nonexistent/file"},
		{"-in", path, "-proto", "bogus"},
		{"-in", path, "-s", "0", "-t", "999999"},
		{"-in", path, "-fault-model", "edge-drop", "-fault-rate", "1.5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithFaultModels(t *testing.T) {
	path := writeTestGraph(t)
	for _, model := range []string{"edge-drop", "crash-uniform", "crash-core", "msg-loss", "objective-noise"} {
		if err := run([]string{"-in", path, "-pairs", "3", "-fault-model", model, "-fault-rate", "0.3"}); err != nil {
			t.Errorf("fault model %s: %v", model, err)
		}
	}
	// Faults compose with any registered protocol and with tracing.
	if err := run([]string{"-in", path, "-pairs", "2", "-proto", "phi-dfs", "-fault-model", "edge-drop", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFaultModelListsRegistered(t *testing.T) {
	path := writeTestGraph(t)
	err := run([]string{"-in", path, "-fault-model", "bogus"})
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	for _, name := range []string{"edge-drop", "crash-uniform", "crash-core", "msg-loss", "objective-noise"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered model %q", err, name)
		}
	}
}
