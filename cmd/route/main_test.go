package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/girg"
	"repro/internal/graphio"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	p := girg.DefaultParams(400)
	p.FixedN = true
	g, err := girg.Generate(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.girg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnFile(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-pairs", "3", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFreshGIRG(t *testing.T) {
	if err := run([]string{"-n", "400", "-pairs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-pairs", "1", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	path := writeTestGraph(t)
	for _, proto := range []string{"greedy", "phi-dfs", "history", "gravity-pressure"} {
		if err := run([]string{"-in", path, "-pairs", "2", "-proto", proto}); err != nil {
			t.Errorf("protocol %s: %v", proto, err)
		}
	}
}

func TestRunExplicitPair(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-in", path, "-s", "0", "-t", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := [][]string{
		{"-in", "/nonexistent/file"},
		{"-in", path, "-proto", "bogus"},
		{"-in", path, "-s", "0", "-t", "999999"},
		{"-in", path, "-fault-model", "edge-drop", "-fault-rate", "1.5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithFaultModels(t *testing.T) {
	path := writeTestGraph(t)
	for _, model := range []string{"edge-drop", "crash-uniform", "crash-core", "msg-loss", "objective-noise"} {
		if err := run([]string{"-in", path, "-pairs", "3", "-fault-model", model, "-fault-rate", "0.3"}); err != nil {
			t.Errorf("fault model %s: %v", model, err)
		}
	}
	// Faults compose with any registered protocol and with tracing.
	if err := run([]string{"-in", path, "-pairs", "2", "-proto", "phi-dfs", "-fault-model", "edge-drop", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestExitCodeSuccess(t *testing.T) {
	path := writeTestGraph(t)
	code, err := runCtx(context.Background(), []string{"-in", path, "-s", "0", "-t", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("successful episode: exit code %d, want 0", code)
	}
}

func TestExitCodeDeadEnd(t *testing.T) {
	// edge-drop at rate 1 empties every adjacency query, so greedy dead-ends
	// at the source — the exit code must say so.
	path := writeTestGraph(t)
	code, err := runCtx(context.Background(),
		[]string{"-in", path, "-s", "0", "-t", "5", "-fault-model", "edge-drop", "-fault-rate", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("dead-end episode: exit code %d, want 2", code)
	}
}

func TestExitCodeCrashedTarget(t *testing.T) {
	// crash-uniform at rate 1 fails every vertex: the endpoints are gone
	// before routing starts.
	path := writeTestGraph(t)
	code, err := runCtx(context.Background(),
		[]string{"-in", path, "-s", "0", "-t", "5", "-fault-model", "crash-uniform", "-fault-rate", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 5 {
		t.Fatalf("crashed-target episode: exit code %d, want 5", code)
	}
}

func TestExitCodeCancelled(t *testing.T) {
	// A pre-cancelled context stops before the first episode with the
	// partial-progress path and the "cancelled" exit code.
	path := writeTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, err := runCtx(ctx, []string{"-in", path, "-pairs", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 6 {
		t.Fatalf("cancelled run: exit code %d, want 6", code)
	}
}

func TestUsageListsExitCodes(t *testing.T) {
	table := exitCodeTable()
	for _, want := range []string{"0  every episode delivered", "2  dead-end", "3  deadline", "5  crashed-target", "6  cancelled"} {
		if !strings.Contains(table, want) {
			t.Errorf("exit-code table missing %q:\n%s", want, table)
		}
	}
}

func TestServerModeNeedsExplicitPair(t *testing.T) {
	if err := run([]string{"-server", "localhost:0"}); err == nil {
		t.Fatal("-server without -s/-t accepted")
	}
}

func TestRunUnknownFaultModelListsRegistered(t *testing.T) {
	path := writeTestGraph(t)
	err := run([]string{"-in", path, "-fault-model", "bogus"})
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	for _, name := range []string{"edge-drop", "crash-uniform", "crash-core", "msg-loss", "objective-noise"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered model %q", err, name)
		}
	}
}
