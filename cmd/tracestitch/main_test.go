package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// synthetic two-daemon trace: entry d0 queues 10us, routes 20us, forwards
// 60us; the hop on d1 covers 40us of the forward with its own 30us route.
func testSpans() []obs.PhaseSpan {
	return []obs.PhaseSpan{
		{Trace: "t1", ID: "r", Service: "d0", Kind: obs.SpanRequest, Start: 0, Dur: 100_000},
		{Trace: "t1", ID: "q", Parent: "r", Service: "d0", Kind: obs.SpanQueueWait, Start: 0, Dur: 10_000},
		{Trace: "t1", ID: "l", Parent: "r", Service: "d0", Kind: obs.SpanLocalRoute, Start: 10_000, Dur: 20_000},
		{Trace: "t1", ID: "f", Parent: "r", Service: "d0", Kind: obs.SpanForwardRPC, Start: 30_000, Dur: 60_000, Peer: "d1"},
		{Trace: "t1", ID: "h", Parent: "f", Service: "d1", Kind: obs.SpanHop, Start: 40_000, Dur: 40_000},
		{Trace: "t1", ID: "l2", Parent: "h", Service: "d1", Kind: obs.SpanLocalRoute, Start: 45_000, Dur: 30_000},
	}
}

func TestStitchCriticalPath(t *testing.T) {
	traces := stitch(testSpans())
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Roots != 1 || tr.Orphans != 0 || tr.Spans != 6 {
		t.Fatalf("trace shape %+v", tr)
	}
	if want := []string{"d0", "d1"}; len(tr.Services) != 2 || tr.Services[0] != want[0] || tr.Services[1] != want[1] {
		t.Fatalf("services %v", tr.Services)
	}
	// Attribution tiles the root: 10 queue + 20 route(d0) + 30 route(d1) +
	// (60-40) forward + 10 hop-own + 10 request-own = 100us.
	var total int64
	for _, us := range tr.Phases {
		total += us
	}
	if total != tr.DurUs || tr.DurUs != 100 {
		t.Fatalf("phases %v sum to %dus, root is %dus — attribution must tile exactly", tr.Phases, total, tr.DurUs)
	}
	want := map[string]int64{
		obs.SpanQueueWait:  10,
		obs.SpanLocalRoute: 50,
		obs.SpanForwardRPC: 20,
		obs.SpanHop:        10,
		obs.SpanRequest:    10,
	}
	for k, us := range want {
		if tr.Phases[k] != us {
			t.Fatalf("phase %s = %dus, want %d (all: %v)", k, tr.Phases[k], us, tr.Phases)
		}
	}
}

// Overlapping children (a hedged pair) resolve to the later-ending one; the
// loser adds nothing to the path.
func TestStitchHedgeOverlap(t *testing.T) {
	spans := []obs.PhaseSpan{
		{Trace: "t", ID: "r", Service: "d0", Kind: obs.SpanRequest, Start: 0, Dur: 100},
		{Trace: "t", ID: "a", Parent: "r", Service: "d0", Kind: obs.SpanForwardRPC, Start: 0, Dur: 90, Err: "cancelled"},
		{Trace: "t", ID: "b", Parent: "r", Service: "d0", Kind: obs.SpanForwardRPC, Start: 10, Dur: 90},
	}
	tr := stitch(spans)[0]
	var total int64
	for _, ns := range tr.Phases {
		total += ns
	}
	if total != tr.DurUs {
		t.Fatalf("hedged phases %v sum to %d, root %d", tr.Phases, total, tr.DurUs)
	}
}

// Duplicate span ids (the daemon bug a revisited hop chain used to trigger)
// must be counted and must not hang the walk, even when the duplicate links
// the tree into a cycle.
func TestStitchDuplicateIDsNoCycle(t *testing.T) {
	spans := []obs.PhaseSpan{
		{Trace: "t", ID: "r", Service: "d0", Kind: obs.SpanRequest, Start: 0, Dur: 100_000},
		{Trace: "t", ID: "a", Parent: "r", Service: "d0", Kind: obs.SpanForwardRPC, Start: 0, Dur: 90_000},
		{Trace: "t", ID: "b", Parent: "a", Service: "d1", Kind: obs.SpanHop, Start: 10_000, Dur: 70_000},
		{Trace: "t", ID: "a", Parent: "b", Service: "d0", Kind: obs.SpanHop, Start: 20_000, Dur: 40_000},
	}
	tr := stitch(spans)[0]
	if tr.DupIDs != 1 {
		t.Fatalf("duplicate ids = %d, want 1", tr.DupIDs)
	}
	var total int64
	for _, us := range tr.Phases {
		total += us
	}
	if total != tr.DurUs {
		t.Fatalf("cyclic trace attribution %v sums to %d, root %d", tr.Phases, total, tr.DurUs)
	}
}

func TestStitchDetectsOrphans(t *testing.T) {
	spans := testSpans()
	spans[4].Parent = "missing"
	tr := stitch(spans)[0]
	if tr.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", tr.Orphans)
	}
}

// readSpans skips tracer episode lines and decodes span lines from a mixed
// stream — the /debug/trace layout.
func TestReadSpansMixedStream(t *testing.T) {
	in := `{"id":"abc123","graph":"default","hops":[{"v":1}]}
{"trace":"t1","span":"r","service":"d0","kind":"request","start_unix_ns":0,"dur_ns":5}

not json at all
{"trace":"t1","span":"q","parent":"r","service":"d0","kind":"queue_wait","start_unix_ns":0,"dur_ns":1}
`
	spans, skipped, err := readSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || skipped != 2 {
		t.Fatalf("spans %d skipped %d, want 2/2", len(spans), skipped)
	}
}
