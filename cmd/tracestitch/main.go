// tracestitch merges the span JSONL of several daemons into per-trace trees
// and attributes each request's wall-clock time to phases along its critical
// path.
//
// Input files are the daemons' -trace-out dumps (or GET /debug/trace
// captures). Each file mixes two record shapes on one stream: episode traces
// from the per-hop tracer (an "id" key) and distributed phase spans (a
// "trace" key). tracestitch reads only the spans; everything else is
// skipped, so pointing it at a combined stream just works.
//
// The critical path of a trace tiles the root span's interval: time covered
// by a child span recurses into that child, gaps belong to the enclosing
// span's own kind, and where children overlap (a hedged forward racing the
// primary) the one that ends later carries the path — the parallel loser is
// redundant work, not latency. Per-phase sums over those segments therefore
// add up to the end-to-end duration exactly.
//
// With -check, tracestitch is a CI gate: it exits nonzero when any span is
// an orphan (its parent id is not in its trace), when a trace has no single
// root, or when no trace spans at least two daemons (with 2+ input files) —
// the signature of broken Traceparent propagation.
//
//	tracestitch -check -out report.json d1.jsonl d2.jsonl d3.jsonl
//	tracestitch -top 3 d*.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracestitch:", err)
		os.Exit(1)
	}
}

// Trace is one stitched request: every span sharing a trace id, tree-linked
// through parent ids, plus the derived attribution.
type Trace struct {
	ID string `json:"trace"`
	// Root is the single parentless span (the entry daemon's request span, or
	// an internal root for anti-entropy traces). Nil when the trace is broken.
	Root *obs.PhaseSpan `json:"-"`
	// Services are the distinct daemons that recorded spans, sorted.
	Services []string `json:"services"`
	Spans    int      `json:"spans"`
	// DurUs is the root span's duration.
	DurUs int64 `json:"dur_us"`
	// Phases is the critical-path attribution: per-kind microseconds that sum
	// to DurUs.
	Phases map[string]int64 `json:"phases_us"`
	// Orphans counts spans whose parent id is absent from the trace.
	Orphans int `json:"orphans,omitempty"`
	// DupIDs counts spans repeating an id already seen in the trace — a
	// daemon-side bug that would otherwise corrupt the tree into a cycle.
	DupIDs int `json:"duplicate_span_ids,omitempty"`
	// Roots counts parentless spans (1 in a well-formed trace).
	Roots int `json:"roots"`
}

// Report is the aggregate the -out flag writes.
type Report struct {
	Files        int              `json:"files"`
	Spans        int              `json:"spans"`
	Skipped      int              `json:"skipped_lines"`
	Traces       int              `json:"traces"`
	MultiService int              `json:"multi_service_traces"`
	Orphans      int              `json:"orphans"`
	DupIDs       int              `json:"duplicate_span_ids"`
	BadRoots     int              `json:"traces_without_single_root"`
	PhasesUs     map[string]int64 `json:"phases_us"`
	TotalUs      int64            `json:"total_us"`
	TracesOut    []*Trace         `json:"worst_traces,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracestitch", flag.ContinueOnError)
	var (
		check = fs.Bool("check", false, "gate mode: exit nonzero on orphan spans, multi-root traces, or (with 2+ files) zero multi-daemon traces")
		top   = fs.Int("top", 5, "print the critical path of the N slowest traces")
		outF  = fs.String("out", "", "write the aggregate report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("usage: tracestitch [-check] [-top N] [-out report.json] <spans.jsonl>...")
	}

	var spans []obs.PhaseSpan
	skipped := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		got, skip, err := readSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, got...)
		skipped += skip
	}

	traces := stitch(spans)
	rep := &Report{
		Files:    len(files),
		Spans:    len(spans),
		Skipped:  skipped,
		Traces:   len(traces),
		PhasesUs: map[string]int64{},
	}
	for _, tr := range traces {
		rep.Orphans += tr.Orphans
		rep.DupIDs += tr.DupIDs
		if tr.Roots != 1 {
			rep.BadRoots++
		}
		if len(tr.Services) >= 2 {
			rep.MultiService++
		}
		for k, us := range tr.Phases {
			rep.PhasesUs[k] += us
		}
		rep.TotalUs += tr.DurUs
	}

	// Slowest traces first for the -top table and the report's worst list.
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].DurUs != traces[j].DurUs {
			return traces[i].DurUs > traces[j].DurUs
		}
		return traces[i].ID < traces[j].ID
	})
	n := *top
	if n > len(traces) {
		n = len(traces)
	}
	rep.TracesOut = traces[:n]

	printReport(out, rep)
	if *outF != "" {
		write := func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		if err := atomicio.WriteFile(*outF, write); err != nil {
			return err
		}
	}

	if *check {
		var fails []string
		if rep.Orphans > 0 {
			fails = append(fails, fmt.Sprintf("%d orphan span(s): parent id missing from trace", rep.Orphans))
		}
		if rep.DupIDs > 0 {
			fails = append(fails, fmt.Sprintf("%d duplicate span id(s): colliding id lanes on a daemon", rep.DupIDs))
		}
		if rep.BadRoots > 0 {
			fails = append(fails, fmt.Sprintf("%d trace(s) without exactly one root", rep.BadRoots))
		}
		if len(files) >= 2 && rep.MultiService == 0 {
			fails = append(fails, "no trace spans 2+ daemons (Traceparent propagation broken?)")
		}
		if rep.Traces == 0 {
			fails = append(fails, "no traces found")
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(out, "CHECK FAIL:", f)
			}
			return fmt.Errorf("%d check(s) failed", len(fails))
		}
		fmt.Fprintln(out, "CHECK OK")
	}
	return nil
}

// readSpans decodes the phase-span lines of one JSONL stream, counting and
// skipping everything else (episode traces, blank lines).
func readSpans(r io.Reader) ([]obs.PhaseSpan, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	var spans []obs.PhaseSpan
	skipped := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp obs.PhaseSpan
		// A span line always carries trace and span ids; tracer episode
		// lines have neither field and decode to zero values.
		if err := json.Unmarshal(line, &sp); err != nil || sp.Trace == "" || sp.ID == "" {
			skipped++
			continue
		}
		spans = append(spans, sp)
	}
	return spans, skipped, sc.Err()
}

// stitch groups spans by trace id, links trees, and computes each trace's
// critical-path attribution. Traces come back sorted by id (deterministic
// for tests; callers re-sort for display).
func stitch(spans []obs.PhaseSpan) []*Trace {
	byTrace := map[string][]*obs.PhaseSpan{}
	for i := range spans {
		sp := &spans[i]
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	ids := make([]string, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	out := make([]*Trace, 0, len(ids))
	for _, id := range ids {
		group := byTrace[id]
		// Stable span order: by start time, id as tiebreak, so children walk
		// deterministically regardless of input file order.
		sort.Slice(group, func(i, j int) bool {
			if group[i].Start != group[j].Start {
				return group[i].Start < group[j].Start
			}
			return group[i].ID < group[j].ID
		})
		byID := map[string]*obs.PhaseSpan{}
		children := map[string][]*obs.PhaseSpan{}
		services := map[string]bool{}
		tr := &Trace{ID: id, Spans: len(group), Phases: map[string]int64{}}
		for _, sp := range group {
			if byID[sp.ID] != nil {
				tr.DupIDs++
			} else {
				byID[sp.ID] = sp
			}
			services[sp.Service] = true
		}
		for _, sp := range group {
			switch {
			case sp.Parent == "":
				tr.Roots++
				if tr.Root == nil {
					tr.Root = sp
				}
			case byID[sp.Parent] == nil:
				tr.Orphans++
			default:
				children[sp.Parent] = append(children[sp.Parent], sp)
			}
		}
		for svc := range services {
			tr.Services = append(tr.Services, svc)
		}
		sort.Strings(tr.Services)
		if tr.Root != nil {
			tr.DurUs = tr.Root.Dur / 1e3
			ns := map[string]int64{}
			criticalPath(tr.Root, children, ns)
			for k, v := range ns {
				tr.Phases[k] = v / 1e3
			}
		}
		out = append(out, tr)
	}
	return out
}

// criticalPath attributes sp's interval to phase kinds: child-covered time
// recurses, gaps count as sp's own kind, and overlapping children are
// resolved to the later-ending one. Sums accumulate in nanoseconds — the
// caller converts once per phase, so truncation error is bounded by the
// number of phases, not the number of path segments.
func criticalPath(sp *obs.PhaseSpan, children map[string][]*obs.PhaseSpan, phases map[string]int64) {
	seen := map[*obs.PhaseSpan]bool{sp: true}
	attributeInterval(sp, sp.Start, sp.Start+sp.Dur, children, phases, seen)
}

// attributeInterval walks [from, to) of span sp. Children are clipped to the
// interval (clock skew across daemons cannot push time outside the parent),
// and seen guards the walk against parent cycles — duplicate span ids (a
// daemon bug, counted as DupIDs) must degrade the attribution, not hang it.
func attributeInterval(sp *obs.PhaseSpan, from, to int64, children map[string][]*obs.PhaseSpan, phases map[string]int64, seen map[*obs.PhaseSpan]bool) {
	if to <= from {
		return
	}
	cur := from
	for _, c := range children[sp.ID] {
		if seen[c] {
			continue
		}
		cs, ce := c.Start, c.Start+c.Dur
		if cs < cur {
			cs = cur
		}
		if ce > to {
			ce = to
		}
		if ce <= cs {
			continue // fully covered by an earlier sibling, or clipped away
		}
		if cs > cur {
			phases[sp.Kind] += cs - cur
		}
		// The child owns [cs, ce) of the path; its own children refine it.
		seen[c] = true
		attributeInterval(c, cs, ce, children, phases, seen)
		cur = ce
	}
	if cur < to {
		phases[sp.Kind] += to - cur
	}
}

// printReport renders the aggregate and the slowest traces as text.
func printReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "files %d  spans %d (skipped %d non-span lines)  traces %d  multi-daemon %d  orphans %d\n",
		rep.Files, rep.Spans, rep.Skipped, rep.Traces, rep.MultiService, rep.Orphans)
	if rep.Traces == 0 {
		return
	}
	fmt.Fprintf(w, "\nphase attribution across %d trace(s), %.3fms total:\n", rep.Traces, float64(rep.TotalUs)/1e3)
	kinds := make([]string, 0, len(rep.PhasesUs))
	for k := range rep.PhasesUs {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return rep.PhasesUs[kinds[i]] > rep.PhasesUs[kinds[j]] })
	for _, k := range kinds {
		us := rep.PhasesUs[k]
		pct := 0.0
		if rep.TotalUs > 0 {
			pct = 100 * float64(us) / float64(rep.TotalUs)
		}
		fmt.Fprintf(w, "  %-14s %10.3fms  %5.1f%%\n", k, float64(us)/1e3, pct)
	}
	if len(rep.TracesOut) > 0 {
		fmt.Fprintf(w, "\nslowest %d trace(s):\n", len(rep.TracesOut))
		for _, tr := range rep.TracesOut {
			fmt.Fprintf(w, "  %s  %.3fms  %d span(s)  %v\n", tr.ID, float64(tr.DurUs)/1e3, tr.Spans, tr.Services)
			kinds := make([]string, 0, len(tr.Phases))
			for k := range tr.Phases {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(i, j int) bool { return tr.Phases[kinds[i]] > tr.Phases[kinds[j]] })
			for _, k := range kinds {
				fmt.Fprintf(w, "    %-14s %10.3fms\n", k, float64(tr.Phases[k])/1e3)
			}
		}
	}
}
