package hrg_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hrg"
	"repro/internal/route"
)

// Example samples a hyperbolic random graph and routes a packet by pure
// geometry (Corollary 3.6).
func Example() {
	p := hrg.DefaultParams(3000)
	p.CH = 0 // denser disk for a solid giant component
	g, err := hrg.Generate(p, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	giant := graph.GiantComponent(g)
	s, t := giant[0], giant[len(giant)-1]
	res := route.Greedy(g, hrg.NewObjective(p, g, t), s)
	fmt.Println("delivered:", res.Success)
	// Output:
	// delivered: true
}

// ExampleGenerateFast draws an exact hyperbolic random graph with the
// layered Fermi-Dirac sampler, past the quadratic sampler's reach.
func ExampleGenerateFast() {
	p := hrg.DefaultParams(50000)
	g, err := hrg.GenerateFast(p, 17)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("vertices:", g.N())
	fmt.Println("sparse:", 2*float64(g.M())/float64(g.N()) < 50)
	// Output:
	// vertices: 50000
	// sparse: true
}
