package hrg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, AlphaH: 0.75},
		{N: 10, AlphaH: 0.5},
		{N: 10, AlphaH: 0.75, TH: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestRAndBeta(t *testing.T) {
	p := Params{N: 1000, AlphaH: 0.75, CH: 2}
	if got := p.R(); math.Abs(got-(2*math.Log(1000)+2)) > 1e-12 {
		t.Fatalf("R = %v", got)
	}
	if got := p.Beta(); got != 2.5 {
		t.Fatalf("Beta = %v", got)
	}
}

func TestDistSymmetricNonNegative(t *testing.T) {
	rng := xrand.New(1)
	p := DefaultParams(1000)
	for i := 0; i < 2000; i++ {
		a := Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
		b := Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
		dab, dba := Dist(a, b), Dist(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("asymmetric distance %v vs %v", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		// cosh/sinh cancellation limits absolute precision for radii near
		// R ~ 15; self-distance noise up to ~0.01 is expected and harmless
		// (typical distances are ~R).
		if d := Dist(a, a); d > 0.05 {
			t.Fatalf("Dist(a,a) = %v", d)
		}
	}
}

func TestDistOriginIsRadius(t *testing.T) {
	// Distance from the origin (r=0) to a point equals the point's radius.
	a := Coord{R: 0, Nu: 0}
	for _, r := range []float64{0.5, 1, 3, 10} {
		b := Coord{R: r, Nu: 2.1}
		if d := Dist(a, b); math.Abs(d-r) > 1e-9 {
			t.Fatalf("Dist(origin, r=%v) = %v", r, d)
		}
	}
}

func TestDistSameAngle(t *testing.T) {
	// Same angle: distance is |r1 - r2|.
	a := Coord{R: 5, Nu: 1}
	b := Coord{R: 2, Nu: 1}
	if d := Dist(a, b); math.Abs(d-3) > 1e-9 {
		t.Fatalf("radial distance = %v, want 3", d)
	}
}

func TestSampleRadiusRange(t *testing.T) {
	p := DefaultParams(1000)
	rng := xrand.New(2)
	R := p.R()
	for i := 0; i < 10000; i++ {
		r := SampleRadius(p, rng)
		if r < 0 || r > R {
			t.Fatalf("radius %v outside [0, %v]", r, R)
		}
	}
}

func TestSampleRadiusCDF(t *testing.T) {
	// Empirical CDF at R/2 must match (cosh(aH R/2)-1)/(cosh(aH R)-1).
	p := DefaultParams(1000)
	rng := xrand.New(3)
	R := p.R()
	const n = 200000
	count := 0
	for i := 0; i < n; i++ {
		if SampleRadius(p, rng) <= R/2 {
			count++
		}
	}
	got := float64(count) / n
	want := (math.Cosh(p.AlphaH*R/2) - 1) / (math.Cosh(p.AlphaH*R) - 1)
	if math.Abs(got-want) > 5*math.Sqrt(want/n)+1e-4 {
		t.Fatalf("CDF at R/2: got %v want %v", got, want)
	}
}

func TestGIRGMappingRoundTrip(t *testing.T) {
	p := DefaultParams(500)
	rng := xrand.New(4)
	for i := 0; i < 1000; i++ {
		c := Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
		w, x := p.ToGIRG(c)
		back := p.FromGIRG(w, x)
		if math.Abs(back.R-c.R) > 1e-9 || math.Abs(back.Nu-c.Nu) > 1e-9 {
			t.Fatalf("roundtrip %v -> (%v, %v) -> %v", c, w, x, back)
		}
	}
}

func TestGIRGParamsMapping(t *testing.T) {
	p := Params{N: 1000, AlphaH: 0.75, CH: 2, TH: 0.5}
	gp := p.GIRGParams()
	if gp.Dim != 1 || gp.Beta != 2.5 || gp.Alpha != 2 {
		t.Fatalf("mapped params %+v", gp)
	}
	if math.Abs(gp.WMin-math.Exp(-1)) > 1e-12 {
		t.Fatalf("wmin %v", gp.WMin)
	}
	p.TH = 0
	if !math.IsInf(p.GIRGParams().Alpha, 1) {
		t.Fatal("threshold model should map to alpha = Inf")
	}
	if err := p.GIRGParams().Validate(); err != nil {
		t.Fatalf("mapped params invalid: %v", err)
	}
}

func TestWeightsArePowerLaw(t *testing.T) {
	// Mapped weights follow a power law with exponent beta = 2 alphaH + 1:
	// P(w >= x) ~ (x/wmin)^(1-beta).
	p := DefaultParams(20000)
	g, err := Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	wmin := p.GIRGParams().WMin
	count := func(x float64) float64 {
		c := 0
		for v := 0; v < g.N(); v++ {
			if g.Weight(v) >= x {
				c++
			}
		}
		return float64(c) / float64(g.N())
	}
	for _, mult := range []float64{4, 16} {
		x := wmin * mult
		got := count(x)
		want := math.Pow(mult, 1-p.Beta())
		if got < want/2 || got > want*2 {
			t.Errorf("tail P(w >= %v wmin): got %v want ~%v", mult, got, want)
		}
	}
}

func TestThresholdEdgesExact(t *testing.T) {
	// In the threshold model the edge set is deterministic: u ~ v iff
	// d_H(u,v) <= R. Verify against direct recomputation.
	p := DefaultParams(300)
	g, err := Generate(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	R := p.R()
	for u := 0; u < g.N(); u++ {
		cu := p.CoordOf(g, u)
		for v := u + 1; v < g.N(); v++ {
			want := Dist(cu, p.CoordOf(g, v)) <= R
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("edge (%d,%d): got %v want %v", u, v, got, want)
			}
		}
	}
}

func TestTemperatureIncreasesRandomness(t *testing.T) {
	// With TH > 0 some pairs beyond R connect and some within R do not.
	p := DefaultParams(800)
	p.TH = 0.8
	g, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	R := p.R()
	longEdges, missingShort := 0, 0
	for u := 0; u < g.N(); u++ {
		cu := p.CoordOf(g, u)
		for v := u + 1; v < g.N(); v++ {
			within := Dist(cu, p.CoordOf(g, v)) <= R
			has := g.HasEdge(u, v)
			if has && !within {
				longEdges++
			}
			if !has && within {
				missingShort++
			}
		}
	}
	if longEdges == 0 || missingShort == 0 {
		t.Fatalf("temperature had no effect: long=%d missingShort=%d", longEdges, missingShort)
	}
}

func TestEdgeProb(t *testing.T) {
	p := DefaultParams(100)
	R := p.R()
	if p.EdgeProb(R-1) != 1 || p.EdgeProb(R+1) != 0 {
		t.Fatal("threshold edge prob wrong")
	}
	p.TH = 0.5
	if got := p.EdgeProb(R); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("EdgeProb at R = %v, want 0.5", got)
	}
	if p.EdgeProb(R-5) <= p.EdgeProb(R+5) {
		t.Fatal("edge prob not decreasing")
	}
}

func TestGenerateWithCoordsValidation(t *testing.T) {
	p := DefaultParams(10)
	if _, err := GenerateWithCoords(p, make([]Coord, 5), 1); err == nil {
		t.Fatal("mismatched coordinate count accepted")
	}
}

func TestObjectiveOrdersByHyperbolicDistance(t *testing.T) {
	p := DefaultParams(500)
	g, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	obj := NewObjective(p, g, 0)
	if !math.IsInf(obj.Score(0), 1) {
		t.Fatal("target score not +Inf")
	}
	c0 := p.CoordOf(g, 0)
	for u := 1; u < 80; u++ {
		for v := u + 1; v < 80; v++ {
			du := Dist(p.CoordOf(g, u), c0)
			dv := Dist(p.CoordOf(g, v), c0)
			if (du < dv) != (obj.Score(u) > obj.Score(v)) {
				t.Fatalf("phi_H ordering disagrees with hyperbolic distance")
			}
		}
	}
}

func TestLemma112PhiHMatchesPhi(t *testing.T) {
	// Lemma 11.2: for vertices with moderate objective, phi_H = Theta(phi).
	// Empirically the ratio phi_H/phi should live in a bounded band for the
	// bulk of the vertices.
	p := DefaultParams(3000)
	g, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	tgt := 0
	phiH := NewObjective(p, g, tgt)
	phi := route.NewStandard(g, tgt)
	var ratios []float64
	for v := 1; v < g.N(); v++ {
		if sc := phi.Score(v); sc < 1e-3 { // moderate-objective bulk
			ratios = append(ratios, phiH.Score(v)/sc)
		}
	}
	if len(ratios) < 100 {
		t.Fatalf("only %d bulk vertices", len(ratios))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range ratios {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi/lo > 50 {
		t.Fatalf("phi_H/phi spread too wide: [%v, %v]", lo, hi)
	}
}

func TestGeometricRoutingOnHRGWorks(t *testing.T) {
	// Corollary 3.6 smoke test: greedy routing under phi_H in the giant
	// succeeds with decent probability.
	p := DefaultParams(3000)
	p.CH = 0 // denser disk, solid giant component
	g, err := Generate(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	giant := graph.GiantComponent(g)
	if len(giant) < g.N()/3 {
		t.Fatalf("giant too small: %d of %d", len(giant), g.N())
	}
	rng := xrand.New(11)
	const pairs = 150
	success := 0
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		if route.Greedy(g, NewObjective(p, g, tgt), s).Success {
			success++
		}
	}
	if rate := float64(success) / pairs; rate < 0.3 {
		t.Fatalf("phi_H greedy success rate %v", rate)
	}
}

func BenchmarkGenerate2k(b *testing.B) {
	p := DefaultParams(2000)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
