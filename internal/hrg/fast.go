package hrg

import (
	"math"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// FermiDiracKernel is the exact hyperbolic edge probability of Definition
// 11.1 expressed over the embedded GIRG coordinates: given two mapped
// weights (w = n e^{-r/2}) and the torus distance (x = nu/2pi, so
// dist = |Delta nu| / 2pi), it reconstructs the radii and evaluates
// p = 1/(1 + e^{(d_H - R)/(2T)}) (threshold step for T = 0). It satisfies
// the girg.EdgeKernel monotonicity contract — d_H decreases when a radius
// shrinks (weight grows) or the angle gap narrows — so the fast layered
// sampler draws exact hyperbolic random graphs in expected near-linear
// time.
type FermiDiracKernel struct {
	n        float64
	r        float64 // disk radius R
	coshR    float64
	invTwoT  float64 // 1/(2T); 0 marks the threshold model
	girgWMin float64 // saturation scale of the equivalent GIRG
}

var _ girg.EdgeKernel = FermiDiracKernel{}

// NewFermiDiracKernel builds the kernel for the given model parameters.
func NewFermiDiracKernel(p Params) FermiDiracKernel {
	k := FermiDiracKernel{
		n:        float64(p.N),
		r:        p.R(),
		girgWMin: math.Exp(-p.CH / 2),
	}
	k.coshR = math.Cosh(k.r)
	if p.TH > 0 {
		k.invTwoT = 1 / (2 * p.TH)
	}
	return k
}

// Prob implements girg.EdgeKernel. distPow is the 1-dimensional torus
// distance (d = 1, so distPow = dist).
func (k FermiDiracKernel) Prob(wu, wv, distPow float64) float64 {
	ru := 2 * math.Log(k.n/wu)
	rv := 2 * math.Log(k.n/wv)
	coshD := math.Cosh(ru)*math.Cosh(rv) -
		math.Sinh(ru)*math.Sinh(rv)*math.Cos(2*math.Pi*distPow)
	if k.invTwoT == 0 {
		if coshD <= k.coshR {
			return 1
		}
		return 0
	}
	if coshD < 1 {
		coshD = 1
	}
	return 1 / (1 + math.Exp((math.Acosh(coshD)-k.r)*k.invTwoT))
}

// SaturationDistPow implements girg.EdgeKernel: the embedded model is
// Theta-equivalent to a GIRG ([17, Theorem 6.3]), so the GIRG saturation
// scale w_u w_v / (w_min n) — with a safety factor for the hidden constants
// — is the right comparison-level knob.
func (k FermiDiracKernel) SaturationDistPow(wuwv float64) float64 {
	return 4 * wuwv / (k.girgWMin * k.n)
}

// SampleCoords draws the model's vertex coordinates.
func SampleCoords(p Params, rng *xrand.RNG) []Coord {
	coords := make([]Coord, p.N)
	for i := range coords {
		coords[i] = Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
	}
	return coords
}

// GenerateFast samples a hyperbolic random graph in expected near-linear
// time by running the layered GIRG sampler with the exact Fermi-Dirac
// kernel over the embedded coordinates. The resulting distribution is
// identical to Generate's (bit-identical graphs for T = 0 given the same
// coordinates); use it for n beyond the quadratic sampler's reach.
func GenerateFast(p Params, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	return GenerateFastWithCoords(p, SampleCoords(p, rng), rng)
}

// GenerateFastWithCoords is GenerateFast over caller-fixed coordinates.
func GenerateFastWithCoords(p Params, coords []Coord, rng *xrand.RNG) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gp := p.GIRGParams()
	space := torus.MustSpace(1)
	pos := torus.NewPositions(space, p.N)
	weights := make([]float64, p.N)
	for i, c := range coords {
		w, x := p.ToGIRG(c)
		weights[i] = w
		pos.Set(i, []float64{x})
	}
	vs := &girg.Vertices{Pos: pos, W: weights}
	return girg.GenerateEdgesKernel(gp, NewFermiDiracKernel(p), vs, rng, girg.SamplerFast)
}
