// Package hrg implements hyperbolic random graphs (Krioukov et al.), the
// special case of GIRGs treated in Section 11 of the paper, together with
// the GIRG embedding of [17, Theorem 6.3] and the induced geometric routing
// objective phi_H. Corollary 3.6 transfers all routing results to this
// model; experiment E8 verifies that empirically.
//
// The model (Definition 11.1): n vertices on a hyperbolic disk of radius
// R = 2 ln n + C_H; vertex v gets a uniform angle nu_v in [0, 2pi) and a
// radius r_v with density alpha_H sinh(alpha_H r)/(cosh(alpha_H R) - 1).
// In the threshold case (T_H -> 0) vertices connect iff their hyperbolic
// distance is at most R; for T_H > 0 the edge probability is the Fermi-Dirac
// form 1/(1 + e^{(d_H - R)/(2 T_H)}).
//
// The embedding into a 1-dimensional GIRG uses
//
//	w_v = n * e^{-r_v/2},  x_v = nu_v / (2 pi),
//	beta = 2 alpha_H + 1,  alpha = 1/T_H,  w_min = e^{-C_H/2},
//
// and is invertible: r_v = 2 ln(n / w_v), nu_v = 2 pi x_v. Generated graphs
// store the GIRG coordinates, so the standard objective of package route
// works on them unchanged, and the hyperbolic coordinates are recovered on
// demand.
package hrg

import (
	"fmt"
	"math"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// Params are the free parameters of the hyperbolic random graph model.
type Params struct {
	// N is the number of vertices.
	N int
	// AlphaH controls the radial density; the degree power law is
	// beta = 2*AlphaH + 1, so AlphaH in (1/2, 1) is the scale-free regime.
	AlphaH float64
	// CH shifts the disk radius R = 2 ln N + CH, controlling the average
	// degree (larger CH = sparser).
	CH float64
	// TH is the temperature; 0 selects the threshold model.
	TH float64
}

// DefaultParams returns the base point used by experiment E8: the threshold
// model with beta = 2.5.
func DefaultParams(n int) Params {
	return Params{N: n, AlphaH: 0.75, CH: 1, TH: 0}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("hrg: N = %d, need >= 1", p.N)
	}
	if !(p.AlphaH > 0.5) {
		return fmt.Errorf("hrg: alphaH = %v, need > 1/2", p.AlphaH)
	}
	if p.TH < 0 {
		return fmt.Errorf("hrg: temperature %v negative", p.TH)
	}
	return nil
}

// R returns the disk radius 2 ln N + CH.
func (p Params) R() float64 { return 2*math.Log(float64(p.N)) + p.CH }

// Beta returns the degree power-law exponent 2*AlphaH + 1 of the model.
func (p Params) Beta() float64 { return 2*p.AlphaH + 1 }

// GIRGParams returns the parameters of the 1-dimensional GIRG the model
// embeds into (Section 11). For the threshold model Alpha is +Inf.
func (p Params) GIRGParams() girg.Params {
	alpha := math.Inf(1)
	if p.TH > 0 {
		alpha = 1 / p.TH
	}
	return girg.Params{
		N:      float64(p.N),
		Dim:    1,
		Beta:   p.Beta(),
		Alpha:  alpha,
		WMin:   math.Exp(-p.CH / 2),
		Lambda: 1,
		FixedN: true,
	}
}

// Coord is a point of the hyperbolic disk in polar coordinates.
type Coord struct {
	R  float64 // radius from the origin
	Nu float64 // angle in [0, 2 pi)
}

// Dist returns the hyperbolic distance between two points: the non-negative
// solution of cosh(d) = cosh(r1)cosh(r2) - sinh(r1)sinh(r2)cos(nu1 - nu2).
func Dist(a, b Coord) float64 {
	return math.Acosh(CoshDist(a, b))
}

// CoshDist returns cosh of the hyperbolic distance (cheaper than Dist and
// order-equivalent, since cosh is increasing).
func CoshDist(a, b Coord) float64 {
	c := math.Cosh(a.R)*math.Cosh(b.R) - math.Sinh(a.R)*math.Sinh(b.R)*math.Cos(a.Nu-b.Nu)
	if c < 1 {
		c = 1 // numeric noise below cosh(0)
	}
	return c
}

// SampleRadius draws a radius with density alphaH sinh(alphaH r) /
// (cosh(alphaH R) - 1) on [0, R] by CDF inversion.
func SampleRadius(p Params, rng *xrand.RNG) float64 {
	u := rng.Float64()
	return math.Acosh(1+u*(math.Cosh(p.AlphaH*p.R())-1)) / p.AlphaH
}

// EdgeProb returns the connection probability for hyperbolic distance d.
func (p Params) EdgeProb(d float64) float64 {
	r := p.R()
	if p.TH == 0 {
		if d <= r {
			return 1
		}
		return 0
	}
	return 1 / (1 + math.Exp((d-r)/(2*p.TH)))
}

// ToGIRG maps a hyperbolic coordinate to the GIRG (weight, torus position)
// pair of the Section 11 embedding.
func (p Params) ToGIRG(c Coord) (w, x float64) {
	return float64(p.N) * math.Exp(-c.R/2), torus.Wrap(c.Nu / (2 * math.Pi))
}

// FromGIRG inverts ToGIRG.
func (p Params) FromGIRG(w, x float64) Coord {
	return Coord{
		R:  2 * math.Log(float64(p.N)/w),
		Nu: 2 * math.Pi * x,
	}
}

// CoordOf recovers the hyperbolic coordinates of vertex v of a generated
// graph from its stored GIRG attributes.
func (p Params) CoordOf(g *graph.Graph, v int) Coord {
	return p.FromGIRG(g.Weight(v), g.Pos(v)[0])
}

// Generate samples a hyperbolic random graph. The returned graph stores the
// mapped GIRG coordinates (1-dimensional torus positions and weights), so
// both the standard GIRG objective and the hyperbolic objective can route
// on it. Edge sampling is exact per Definition 11.1 and quadratic in N;
// keep N below ~50000.
func Generate(p Params, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	coords := make([]Coord, p.N)
	for i := range coords {
		coords[i] = Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
	}
	return generateFromCoords(p, coords, rng)
}

// GenerateWithCoords samples edges over caller-fixed coordinates (used to
// plant s and t, and by tests).
func GenerateWithCoords(p Params, coords []Coord, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(coords) != p.N {
		return nil, fmt.Errorf("hrg: %d coordinates for N = %d", len(coords), p.N)
	}
	return generateFromCoords(p, coords, xrand.New(seed))
}

func generateFromCoords(p Params, coords []Coord, rng *xrand.RNG) (*graph.Graph, error) {
	space := torus.MustSpace(1)
	pos := torus.NewPositions(space, p.N)
	weights := make([]float64, p.N)
	for i, c := range coords {
		w, x := p.ToGIRG(c)
		weights[i] = w
		pos.Set(i, []float64{x})
	}
	gp := p.GIRGParams()
	b, err := graph.NewBuilder(p.N, pos, weights, gp.N, gp.WMin)
	if err != nil {
		return nil, err
	}
	// Precompute cosh/sinh once per vertex; the pair loop then needs only
	// one cosine per pair.
	coshR := make([]float64, p.N)
	sinhR := make([]float64, p.N)
	for i, c := range coords {
		coshR[i] = math.Cosh(c.R)
		sinhR[i] = math.Sinh(c.R)
	}
	coshThreshold := math.Cosh(p.R())
	for u := 0; u < p.N; u++ {
		for v := u + 1; v < p.N; v++ {
			coshD := coshR[u]*coshR[v] - sinhR[u]*sinhR[v]*math.Cos(coords[u].Nu-coords[v].Nu)
			if p.TH == 0 {
				if coshD <= coshThreshold {
					b.AddEdge(u, v)
				}
				continue
			}
			if coshD < 1 {
				coshD = 1
			}
			if rng.Bernoulli(p.EdgeProb(math.Acosh(coshD))) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish(), nil
}

// NewObjective returns the geometric routing objective of Section 11:
//
//	phi_H(v) = n / (w_t * w_min * sqrt(cosh(d_H(v, t)))),
//
// whose maximization is equivalent to minimizing the hyperbolic distance to
// the target — i.e. the greedy forwarding rule of the experimental
// literature. Lemma 11.2 shows phi_H = Theta(phi) for most vertices, which
// is how Corollary 3.6 follows from Theorem 3.5.
func NewObjective(p Params, g *graph.Graph, t int) route.Objective {
	ct := p.CoordOf(g, t)
	norm := float64(p.N) / (g.Weight(t) * g.WMin())
	score := func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		return norm / math.Sqrt(CoshDist(p.CoordOf(g, v), ct))
	}
	return route.Objective{Target: t, Score: score}
}
