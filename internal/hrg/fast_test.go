package hrg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func TestFermiDiracKernelMatchesEdgeProb(t *testing.T) {
	// The kernel over mapped coordinates must reproduce EdgeProb over the
	// original hyperbolic coordinates.
	for _, temp := range []float64{0, 0.3, 0.8} {
		p := DefaultParams(2000)
		p.TH = temp
		k := NewFermiDiracKernel(p)
		rng := xrand.New(7)
		for trial := 0; trial < 3000; trial++ {
			a := Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
			b := Coord{R: SampleRadius(p, rng), Nu: rng.Float64() * 2 * math.Pi}
			wa, xa := p.ToGIRG(a)
			wb, xb := p.ToGIRG(b)
			dist := math.Abs(xa - xb)
			if dist > 0.5 {
				dist = 1 - dist
			}
			want := p.EdgeProb(Dist(a, b))
			got := k.Prob(wa, wb, dist)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("T=%v: kernel %v vs EdgeProb %v (dH=%v R=%v)",
					temp, got, want, Dist(a, b), p.R())
			}
		}
	}
}

func TestFermiDiracKernelMonotone(t *testing.T) {
	p := DefaultParams(5000)
	p.TH = 0.5
	k := NewFermiDiracKernel(p)
	rng := xrand.New(9)
	for trial := 0; trial < 2000; trial++ {
		wu := float64(p.N) * math.Exp(-SampleRadius(p, rng)/2)
		wv := float64(p.N) * math.Exp(-SampleRadius(p, rng)/2)
		d1 := rng.Float64() * 0.25
		d2 := d1 + rng.Float64()*0.25
		if k.Prob(wu, wv, d2) > k.Prob(wu, wv, d1)+1e-12 {
			t.Fatalf("kernel not decreasing in distance")
		}
		if k.Prob(wu*1.5, wv, d1) < k.Prob(wu, wv, d1)-1e-12 {
			t.Fatalf("kernel not increasing in weight")
		}
	}
}

// TestFastMatchesNativeThreshold: for T = 0 the edge set is deterministic,
// so the quadratic native sampler and the layered fast sampler must emit
// the identical graph over shared coordinates.
func TestFastMatchesNativeThreshold(t *testing.T) {
	p := DefaultParams(1500)
	p.CH = 0.5
	coords := SampleCoords(p, xrand.New(11))
	native, err := GenerateWithCoords(p, coords, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := GenerateFastWithCoords(p, coords, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if native.M() != fast.M() {
		t.Fatalf("edge counts differ: native %d, fast %d", native.M(), fast.M())
	}
	for v := 0; v < native.N(); v++ {
		a, b := native.Neighbors(v), fast.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d differs: %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

// TestFastMatchesNativeTemperature compares edge-count distributions for
// T > 0 (stochastic, so statistically).
func TestFastMatchesNativeTemperature(t *testing.T) {
	p := DefaultParams(800)
	p.TH = 0.5
	coords := SampleCoords(p, xrand.New(13))
	const reps = 15
	mean := func(gen func(r uint64) (*graph.Graph, error)) float64 {
		sum := 0.0
		for r := uint64(0); r < reps; r++ {
			g, err := gen(r)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(g.M())
		}
		return sum / reps
	}
	native := mean(func(r uint64) (*graph.Graph, error) {
		return GenerateWithCoords(p, coords, 100+r)
	})
	fast := mean(func(r uint64) (*graph.Graph, error) {
		return GenerateFastWithCoords(p, coords, xrand.New(200+r))
	})
	if math.Abs(native-fast)/native > 0.08 {
		t.Fatalf("mean edges: native %v vs fast %v", native, fast)
	}
}

func TestGenerateFastLargeScaleRouting(t *testing.T) {
	// The point of the fast sampler: HRGs beyond the quadratic barrier.
	p := DefaultParams(50000)
	p.CH = 0.5
	g, err := GenerateFast(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50000 {
		t.Fatalf("N = %d", g.N())
	}
	giant := graph.GiantComponent(g)
	if len(giant) < g.N()/3 {
		t.Fatalf("giant %d of %d", len(giant), g.N())
	}
	rng := xrand.New(18)
	success := 0
	const pairs = 60
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		if route.Greedy(g, NewObjective(p, g, tgt), s).Success {
			success++
		}
	}
	if rate := float64(success) / pairs; rate < 0.5 {
		t.Fatalf("greedy success on fast-sampled HRG: %v", rate)
	}
}

func BenchmarkGenerateFast50k(b *testing.B) {
	p := DefaultParams(50000)
	for i := 0; i < b.N; i++ {
		if _, err := GenerateFast(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
