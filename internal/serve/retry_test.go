package serve

import (
	"testing"
	"time"

	"repro/internal/route"
)

// TestTransientClassification pins down which failure classes are worth a
// retry: engine-inflicted transient classes yes, definitive protocol
// outcomes and drain-time cancellation no.
func TestTransientClassification(t *testing.T) {
	cases := []struct {
		f    route.Failure
		want bool
	}{
		{route.FailNone, false},
		{route.FailDeadEnd, false},
		{route.FailTruncated, false},
		{route.FailDeadline, true},
		{route.FailCrashedTarget, true},
		{route.FailCancelled, false},
	}
	for _, c := range cases {
		if got := Transient(c.f); got != c.want {
			t.Errorf("Transient(%q) = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestBackoffGrowthAndCap verifies the exponential envelope: attempt k's
// delay lies in [cap_k/2, cap_k) where cap_k = min(Base*2^(k-1), MaxDelay),
// so delays grow and then saturate at MaxDelay.
func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	for attempt := 1; attempt <= 10; attempt++ {
		env := p.BaseDelay << (attempt - 1)
		if env > p.MaxDelay || env <= 0 { // <= 0 guards shift overflow
			env = p.MaxDelay
		}
		d := p.Backoff(7, attempt)
		if d < env/2 || d >= env {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, env/2, env)
		}
	}
	// Far past the cap the delay must still be bounded by MaxDelay.
	if d := p.Backoff(7, 60); d >= p.MaxDelay || d < p.MaxDelay/2 {
		t.Errorf("attempt 60: backoff %v outside [%v, %v)", d, p.MaxDelay/2, p.MaxDelay)
	}
}

// TestBackoffJitterDeterministic verifies the jitter is a pure function of
// (seed, request, attempt): identical inputs reproduce the schedule,
// different requests decorrelate.
func TestBackoffJitterDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 99}
	for attempt := 1; attempt <= 6; attempt++ {
		if a, b := p.Backoff(1, attempt), p.Backoff(1, attempt); a != b {
			t.Fatalf("attempt %d: same inputs gave %v and %v", attempt, a, b)
		}
	}
	// Across 64 request ids at a fixed attempt, jitter must actually vary
	// (a constant would mean synchronized retry storms).
	seen := map[time.Duration]bool{}
	for id := uint64(0); id < 64; id++ {
		seen[p.Backoff(id, 3)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct delays across 64 requests; jitter too weak", len(seen))
	}
	// A different seed shifts the whole schedule.
	q := p
	q.Seed = 100
	same := 0
	for id := uint64(0); id < 64; id++ {
		if p.Backoff(id, 3) == q.Backoff(id, 3) {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("seeds 99 and 100 agree on %d/64 delays; jitter not seed-driven", same)
	}
}

// TestBackoffDefaults verifies the zero policy is serviceable: positive,
// capped delays.
func TestBackoffDefaults(t *testing.T) {
	var p RetryPolicy
	for attempt := 1; attempt <= 20; attempt++ {
		d := p.Backoff(0, attempt)
		if d <= 0 || d > 500*time.Millisecond {
			t.Fatalf("attempt %d: default backoff %v outside (0, 500ms]", attempt, d)
		}
	}
}
