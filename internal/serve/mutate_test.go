package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/mutate"
)

// liveServer builds a Server with a mutation log driving the default slot,
// wired the way cmd/smallworldd wires it (OnCompact → InstallCompacted).
func liveServer(t *testing.T, n float64, seed uint64, cfg mutate.Config) (*Server, *mutate.Log, *httptest.Server) {
	t.Helper()
	s := New(Config{})
	nw := testNetwork(t, n, seed)
	cfg.OnCompact = func(base *graph.Graph, ov *graph.Overlay, snapshot string) {
		s.InstallCompacted(base, ov, snapshot)
	}
	log, err := mutate.Open(t.TempDir(), nw.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if err := s.EnableMutation(log, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, log, ts
}

// postMutate marshals req against /admin/mutate and decodes whichever body
// the status implies.
func postMutate(t *testing.T, url string, req MutateRequest) (*http.Response, MutateResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/admin/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok MutateResponse
	var bad ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp, ok, bad
}

func getReady(t *testing.T, url string) ReadyResponse {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d", resp.StatusCode)
	}
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	return ready
}

// TestMutateAppliesAndRoutes is the happy path: a batch adds a vertex wired
// into the graph, the response assigns its id, /readyz reports the new
// epoch, and the added vertex routes.
func TestMutateAppliesAndRoutes(t *testing.T) {
	s, log, ts := liveServer(t, 400, 11, mutate.Config{})
	baseN := log.Base().N()

	resp, mr, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
		{Op: mutate.OpAddVertex, Pos: []float64{0.5, 0.5}, W: 2.0},
		{Op: mutate.OpAddEdge, U: baseN, V: 0},
		{Op: mutate.OpAddEdge, U: baseN, V: 1},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	if len(mr.Assigned) != 1 || mr.Assigned[0] != baseN {
		t.Fatalf("assigned %v, want [%d]", mr.Assigned, baseN)
	}
	if mr.Epoch != 1 || mr.Generation != 1 || mr.Seq != 0 {
		t.Fatalf("batch located at gen=%d seq=%d epoch=%d", mr.Generation, mr.Seq, mr.Epoch)
	}

	ready := getReady(t, ts.URL)
	live := ready.Graphs[DefaultGraph].Live
	if live == nil {
		t.Fatal("/readyz has no live section on the mutable slot")
	}
	if live.Epoch != 1 || live.Vertices != baseN+1 || live.AddedVertices != 1 {
		t.Fatalf("live section %+v", live)
	}
	if live.Fingerprint != fingerprintHex(log.Fingerprint()) {
		t.Fatalf("live fingerprint %s != log %s", live.Fingerprint, fingerprintHex(log.Fingerprint()))
	}

	// The added vertex is addressable as a routing endpoint.
	r, rr, _ := postRoute(t, ts.URL, RouteRequest{S: baseN, T: 5})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("route from added vertex = %d", r.StatusCode)
	}
	if rr.Moves == 0 && !rr.Success {
		t.Fatalf("added vertex routed nowhere: %+v", rr)
	}
	if s.Stats().Mutations != 1 {
		t.Fatalf("mutations counter = %d", s.Stats().Mutations)
	}
}

// TestMutateRejectsInvalidBatch: a semantically invalid op is 422 with the
// failing index, nothing is journaled or published, and routing still sees
// the pre-batch graph.
func TestMutateRejectsInvalidBatch(t *testing.T) {
	s, log, ts := liveServer(t, 400, 12, mutate.Config{})
	before := log.Fingerprint()

	resp, _, bad := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
		{Op: mutate.OpAddEdge, U: 0, V: 1 << 20}, // far out of range
	}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid op: status %d, want 422", resp.StatusCode)
	}
	if bad.Error == "" {
		t.Fatal("422 with empty error body")
	}
	if log.Fingerprint() != before {
		t.Fatal("rejected batch changed the live graph")
	}
	if st := log.Stats(); st.Batches != 0 || st.Rejected != 1 {
		t.Fatalf("stats after rejection: %+v", st)
	}

	// Malformed JSON is 400, not 422.
	resp2, err := http.Post(ts.URL+"/admin/mutate", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp2.StatusCode)
	}
	if s.Stats().Mutations != 0 {
		t.Fatal("rejected batches counted as mutations")
	}
}

// TestMutateDisabledAndWrongSlot: without a log /admin/mutate is 404; with
// one, only the enabled slot is mutable.
func TestMutateDisabledAndWrongSlot(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 300, 13))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{{Op: mutate.OpRemoveVertex, V: 0}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("mutation disabled: status %d, want 404", resp.StatusCode)
	}

	_, _, ts2 := liveServer(t, 300, 14, mutate.Config{})
	resp2, _, _ := postMutate(t, ts2.URL, MutateRequest{Graph: "other", Ops: []mutate.Op{{Op: mutate.OpRemoveVertex, V: 0}}})
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("immutable slot: status %d, want 404", resp2.StatusCode)
	}
}

// TestMutateTombstoneDeadEnds: removing a vertex turns walks through it into
// classified dead-ends, never 5xx or hangs; routing *to* it is a dead-end as
// well because its adjacency reads empty.
func TestMutateTombstoneDeadEnds(t *testing.T) {
	_, log, ts := liveServer(t, 400, 15, mutate.Config{})
	resp, _, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
		{Op: mutate.OpRemoveVertex, V: 7},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d", resp.StatusCode)
	}
	if !log.Overlay().Tombstoned(7) {
		t.Fatal("vertex 7 not tombstoned")
	}
	// Routing from the tombstone is a definitive 200 dead-end.
	r, rr, _ := postRoute(t, ts.URL, RouteRequest{S: 7, T: 300})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("route from tombstone = %d, want 200", r.StatusCode)
	}
	if rr.Success || rr.Failure != "dead-end" {
		t.Fatalf("route from tombstone: %+v, want dead-end", rr)
	}
}

// TestMutateSurvivesCompactionHotSwap: automatic compaction folds the
// overlay into a snapshot mid-stream; the served slot hot-swaps to the
// folded base and further mutations and routes keep working on generation 2.
func TestMutateSurvivesCompactionHotSwap(t *testing.T) {
	s, log, ts := liveServer(t, 400, 16, mutate.Config{CompactAt: 4})
	baseBefore := log.Base()
	for i := 0; i < 8; i++ {
		resp, _, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
			{Op: mutate.OpRemoveVertex, V: 100 + i},
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: status %d", i, resp.StatusCode)
		}
	}
	// The background compactor fires once DeltaSize crosses CompactAt; wait
	// for its commit (generation bump), then mutate once more on top of the
	// folded base.
	deadline := time.Now().Add(10 * time.Second)
	for log.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, mr, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
		{Op: mutate.OpRemoveVertex, V: 42},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-compaction mutate: status %d", resp.StatusCode)
	}
	if mr.Generation < 2 {
		t.Fatalf("generation %d after compaction, want >= 2", mr.Generation)
	}
	nw, _ := s.Network("")
	if nw.Graph == baseBefore {
		t.Fatal("served base not hot-swapped after compaction")
	}
	if got := fingerprintHex(nw.LiveOverlay().Fingerprint()); got != fingerprintHex(log.Fingerprint()) {
		t.Fatalf("served live fingerprint %s != log %s", got, fingerprintHex(log.Fingerprint()))
	}
	if s.Stats().CompactSwaps == 0 {
		t.Fatal("no compacted snapshot was hot-swapped")
	}
	r, _, _ := postRoute(t, ts.URL, RouteRequest{S: 1, T: 200})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("route after compaction = %d", r.StatusCode)
	}
}

// TestSwapNoOpOnMatchingFingerprint is the idempotent-swap gate: loading a
// snapshot whose fingerprint matches the installed graph answers 200
// without replacing the network, and the no-op counter ticks.
func TestSwapNoOpOnMatchingFingerprint(t *testing.T) {
	s := New(Config{})
	nw := testNetwork(t, 400, 17)
	s.AddNetwork("", nw)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "same.girgb")
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		return graphio.WriteBinary(w, nw.Graph)
	}); err != nil {
		t.Fatal(err)
	}

	resp, sw, _ := postSwap(t, ts.URL, SwapRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op swap: status %d", resp.StatusCode)
	}
	if !sw.NoOp {
		t.Fatalf("swap response not marked no-op: %+v", sw)
	}
	if got, _ := s.Network(""); got != nw {
		t.Fatal("no-op swap replaced the network")
	}
	st := s.Stats()
	if st.SwapNoops != 1 || st.Swaps != 0 {
		t.Fatalf("noops=%d swaps=%d, want 1/0", st.SwapNoops, st.Swaps)
	}

	// A genuinely different snapshot still installs.
	path2 := filepath.Join(t.TempDir(), "new.girgb")
	writeSnapshot(t, path2, 300, 29)
	resp2, sw2, _ := postSwap(t, ts.URL, SwapRequest{Path: path2})
	if resp2.StatusCode != http.StatusOK || sw2.NoOp {
		t.Fatalf("real swap: status %d noop %v", resp2.StatusCode, sw2.NoOp)
	}
	if s.Stats().Swaps != 1 {
		t.Fatal("real swap not counted")
	}
}

// TestSwapRefusesMutableSlot: /admin/swap cannot clobber the slot a
// mutation log drives.
func TestSwapRefusesMutableSlot(t *testing.T) {
	_, _, ts := liveServer(t, 300, 18, mutate.Config{})
	path := filepath.Join(t.TempDir(), "snap.girgb")
	writeSnapshot(t, path, 300, 19)
	resp, _, bad := postSwap(t, ts.URL, SwapRequest{Path: path})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("swap into mutable slot: status %d, want 409", resp.StatusCode)
	}
	if bad.Error == "" {
		t.Fatal("409 with empty error body")
	}
}

// TestMutateJournaledBeforeAck: a batch acknowledged over HTTP is already
// durable — reopening the log directory replays it to the same fingerprint
// without the server in the picture.
func TestMutateJournaledBeforeAck(t *testing.T) {
	s := New(Config{})
	nw := testNetwork(t, 300, 20)
	dir := t.TempDir()
	log, err := mutate.Open(dir, nw.Graph, mutate.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableMutation(log, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _, _ := postMutate(t, ts.URL, MutateRequest{Ops: []mutate.Op{
		{Op: mutate.OpRemoveVertex, V: 3},
		{Op: mutate.OpAddEdge, U: 10, V: 20},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	want := log.Fingerprint()
	// Abandon without Close: the ack already implies durability.
	replayed, err := mutate.Open(dir, nw.Graph, mutate.Config{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	if got := replayed.Fingerprint(); got != want {
		t.Fatalf("replayed fingerprint %016x != acknowledged %016x", got, want)
	}
	log.Close()
}
