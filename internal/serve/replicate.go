package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// Replication: a shard served by a replica set keeps one replicated live
// graph. The primary (replica 0) is the only writer — /admin/mutate acks
// after the local fsynced journal append, then ships the batch to the
// shard's replicas over POST /cluster/replicate. Shipping is asynchronous
// and may miss (a replica down, a race, a dropped response); the background
// anti-entropy loop is the catch-all: it compares the (base fingerprint,
// generation, epoch) every peer advertises through gossip and pulls missing
// journal segments over POST /cluster/segment until the local log has
// caught up. Both paths move the same canonical batch payloads through
// mutate.Import, so converged replicas are bit-identical — same journal
// bytes, same overlay epoch, same live fingerprint.

// maxReplicateBody bounds a decoded replication request/response body: a
// segment is at most maxSegmentBatches canonical batches, far under this.
const maxReplicateBody = 32 << 20

// replicationLog resolves the replicated mutation log: cluster mode and a
// mutation log both enabled. Every replication entry point starts here.
func (s *Server) replicationLog() (*mutate.Log, string, *cluster.Node) {
	node := s.clusterNode
	if node == nil {
		return nil, "", nil
	}
	log, name := s.MutationLog()
	if log == nil {
		return nil, "", nil
	}
	return log, name, node
}

// updateSelfLive publishes the local log position into the membership's
// self entry, so the next gossip exchange advertises it and peers' anti-
// entropy can see who is ahead. Called after every applied or imported
// batch.
func (s *Server) updateSelfLive() {
	log, _, node := s.replicationLog()
	if log == nil {
		return
	}
	pos := log.Position()
	node.SetLive(pos.Epoch, pos.Generation, pos.LiveFP)
}

// handleClusterReplicate serves POST /cluster/replicate — the push half of
// replication: import a shipped journal segment through the same
// validate→journal→publish pipeline /admin/mutate uses, byte for byte. The
// response always carries the local position and refreshed identity, so a
// pusher that raced ahead (409 gap) learns exactly where to re-ship from.
// Like gossip, imports stay up while draining: repair traffic is what lets
// the rest of the shard release a draining primary.
func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	log, mutGraph, node := s.replicationLog()
	if log == nil {
		writeError(w, http.StatusNotFound, 0, "replication disabled (needs cluster mode and -mutate-dir)")
		return
	}
	// Adopt the shipper's trace context: the import shows up as a hop root
	// under its replicate forward_rpc span.
	rt := s.startHopTrace(r, "replicate")
	defer func() { rt.finish("") }()
	var req ReplicateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxReplicateBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	name := req.Graph
	if name == "" {
		name = mutGraph
	}
	if name != mutGraph {
		writeError(w, http.StatusNotFound, 0, "graph %q is not replicated (mutation log drives %q)", name, mutGraph)
		return
	}
	applied, err := log.Import(req.Segment)
	if applied > 0 {
		s.importedBatches.Add(int64(applied))
		s.publishLive()
		s.updateSelfLive()
	}
	if err != nil {
		var syncErr *mutate.SyncError
		var corrupt *mutate.CorruptError
		switch {
		case errors.As(err, &syncErr):
			logger.Info("replicate refused", "graph", name, "from", req.Segment.From,
				"batches", len(req.Segment.Batches), "err", err)
			writeJSON(w, http.StatusConflict, ReplicateResponse{
				Graph: name, Applied: applied, Position: log.Position(), Self: node.Self(),
			})
		case errors.As(err, &corrupt):
			logger.Warn("replicate rejected corrupt batch", "graph", name, "err", err)
			writeError(w, http.StatusUnprocessableEntity, 0, "segment rejected: %v", err)
		default:
			logger.Error("replicate failed", "graph", name, "err", err)
			writeError(w, http.StatusInternalServerError, 0, "%v", err)
		}
		return
	}
	logger.Debug("replicate applied", "graph", name, "from", req.Segment.From,
		"batches", len(req.Segment.Batches), "applied", applied)
	writeJSON(w, http.StatusOK, ReplicateResponse{
		Graph: name, Applied: applied, Position: log.Position(), Self: node.Self(),
	})
}

// handleClusterSegment serves POST /cluster/segment — the pull half of
// anti-entropy: export the journal range a lagging replica is missing,
// bound to its (base fingerprint, generation). A history mismatch is 409
// with the local position, so the puller knows not to apply anything and
// what the exporter is actually on.
func (s *Server) handleClusterSegment(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	log, mutGraph, node := s.replicationLog()
	if log == nil {
		writeError(w, http.StatusNotFound, 0, "replication disabled (needs cluster mode and -mutate-dir)")
		return
	}
	// Adopt the puller's trace context: the export shows up as a hop root
	// under its segment forward_rpc span.
	rt := s.startHopTrace(r, "segment")
	defer func() { rt.finish("") }()
	var req SegmentRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	name := req.Graph
	if name == "" {
		name = mutGraph
	}
	if name != mutGraph {
		writeError(w, http.StatusNotFound, 0, "graph %q is not replicated (mutation log drives %q)", name, mutGraph)
		return
	}
	seg, err := log.Export(req.BaseFP, req.Generation, req.From, req.Max)
	if err != nil {
		var syncErr *mutate.SyncError
		if errors.As(err, &syncErr) {
			logger.Info("segment refused", "graph", name, "from", req.From, "err", err)
			writeJSON(w, http.StatusConflict, SegmentResponse{
				Graph: name, Position: log.Position(), Self: node.Self(),
			})
			return
		}
		logger.Error("segment export failed", "graph", name, "from", req.From, "err", err)
		writeError(w, http.StatusInternalServerError, 0, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SegmentResponse{
		Graph: name, Segment: seg, Position: log.Position(), Self: node.Self(),
	})
}

// shipToReplicas pushes the journal range starting at the just-committed
// batch to every routable replica of the local shard. It runs after the
// mutate response is written — the ack contract is local durability, not
// replication — and a replica it cannot reach is left to anti-entropy. One
// gap answer per replica is retried immediately: the replica told us its
// seq, so the missing prefix is re-exported and shipped in the same pass.
func (s *Server) shipToReplicas(fromSeq int) {
	log, mutGraph, node := s.replicationLog()
	if log == nil {
		return
	}
	replicas := node.ReplicaSet()
	if len(replicas) == 0 {
		return
	}
	pos := log.Position()
	seg, err := log.Export(pos.BaseFP, pos.Generation, fromSeq, 0)
	if err != nil {
		// The range moved under us (e.g. a generation bump); anti-entropy
		// owns reconciliation from here.
		s.shipFails.Add(1)
		s.logger.Warn("journal ship aborted", "graph", mutGraph, "from", fromSeq, "err", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	// The push pass is one internal trace: a root on the anti-entropy lane
	// (detail "ship") with one forward_rpc child per replica shipped to, so
	// stitched trees show repair traffic next to request traffic.
	rt := s.startLocalTrace(obs.SpanAntiEntropy, "ship")
	for _, peer := range replicas {
		s.shipSegment(ctx, node, peer, mutGraph, log, seg, true, rt)
	}
	rt.finish("")
}

// shipSegment posts one segment to one replica, feeding the answered
// identity back into membership (a replication response is direct contact).
// retryGap allows a single immediate re-ship from the replica's reported
// seq when the push raced ahead of it.
func (s *Server) shipSegment(ctx context.Context, node *cluster.Node, peer cluster.Peer, graphName string, log *mutate.Log, seg mutate.Segment, retryGap bool, rt *reqTrace) {
	var resp ReplicateResponse
	spanID := rt.allocID()
	shipStart := time.Now()
	status, err := s.postPeerJSON(ctx, peer, "/cluster/replicate", ReplicateRequest{Graph: graphName, Segment: seg}, &resp, rt.traceparent(spanID))
	shipErr := ""
	if err != nil {
		shipErr = err.Error()
	} else if status != http.StatusOK {
		shipErr = fmt.Sprintf("status %d", status)
	}
	rt.end(spanID, obs.SpanForwardRPC, shipStart, time.Since(shipStart), peer.ID,
		fmt.Sprintf("replicate from=%d batches=%d", seg.From, len(seg.Batches)), shipErr)
	if err != nil {
		s.shipFails.Add(1)
		node.Members().ReportFailure(peer.ID)
		s.logger.Warn("journal ship failed", "peer", peer.ID, "from", seg.From, "err", err)
		return
	}
	node.Members().Receive(resp.Self, nil)
	switch {
	case status == http.StatusOK:
		s.shippedBatches.Add(int64(resp.Applied))
	case status == http.StatusConflict && retryGap &&
		resp.Position.BaseFP == seg.BaseFP &&
		resp.Position.Generation == seg.Generation &&
		resp.Position.Seq < seg.From:
		wider, err := log.Export(seg.BaseFP, seg.Generation, resp.Position.Seq, 0)
		if err != nil {
			s.shipFails.Add(1)
			s.logger.Warn("journal re-ship aborted", "peer", peer.ID, "from", resp.Position.Seq, "err", err)
			return
		}
		s.shipSegment(ctx, node, peer, graphName, log, wider, false, rt)
	default:
		s.shipFails.Add(1)
		s.logger.Warn("journal ship refused", "peer", peer.ID, "from", seg.From, "status", status)
	}
}

// AntiEntropyRound runs one synchronous repair pass: among the shard's
// routable replicas, find the most advanced peer on the local history
// (same base fingerprint and generation, higher epoch — all learned from
// gossip) and pull journal segments from it until caught up. Peers on a
// later generation are counted as generation lag and skipped: generations
// only move by compaction, which is disabled under replication, so a
// nonzero counter flags a misconfigured shard rather than a state this
// loop silently papers over. Returns the batches imported.
func (s *Server) AntiEntropyRound(ctx context.Context) int {
	log, mutGraph, node := s.replicationLog()
	if log == nil {
		return 0
	}
	s.aeRounds.Add(1)
	pos := log.Position()
	var target cluster.Peer
	found := false
	for _, p := range node.ReplicaSet() {
		switch {
		case p.LiveFP == "":
			// The peer has not advertised a live position yet.
		case p.Generation > pos.Generation:
			s.genLag.Add(1)
			s.logger.Warn("replication generation lag", "peer", p.ID,
				"peer_generation", p.Generation, "local_generation", pos.Generation)
		case p.Generation == pos.Generation && p.Epoch > pos.Epoch:
			if !found || p.Epoch > target.Epoch || (p.Epoch == target.Epoch && p.ID < target.ID) {
				target, found = p, true
			}
		}
	}
	if !found {
		return 0
	}
	// One trace per repair round on the internal id lane: the root is the
	// anti_entropy span, each segment pull a forward_rpc child, and the
	// exporter's spans (adopted from the Traceparent header) nest under it.
	rt := s.startLocalTrace(obs.SpanAntiEntropy, "pull")
	roundStart := time.Now()
	defer func() {
		s.phaseLat[phaseAntiEntropy].Record(time.Since(roundStart))
		rt.finish("")
	}()
	pulled := 0
	for {
		pos = log.Position()
		var resp SegmentResponse
		spanID := rt.allocID()
		pullStart := time.Now()
		status, err := s.postPeerJSON(ctx, target, "/cluster/segment", SegmentRequest{
			Graph: mutGraph, BaseFP: pos.BaseFP, Generation: pos.Generation, From: pos.Seq,
		}, &resp, rt.traceparent(spanID))
		pullErr := ""
		if err != nil {
			pullErr = err.Error()
		} else if status != http.StatusOK {
			pullErr = fmt.Sprintf("status %d", status)
		}
		rt.end(spanID, obs.SpanForwardRPC, pullStart, time.Since(pullStart), target.ID,
			fmt.Sprintf("segment from=%d", pos.Seq), pullErr)
		if err != nil {
			node.Members().ReportFailure(target.ID)
			s.logger.Warn("anti-entropy pull failed", "peer", target.ID, "from", pos.Seq, "err", err)
			return pulled
		}
		node.Members().Receive(resp.Self, nil)
		if status != http.StatusOK {
			// 409: the exporter moved off our history (or we were wrong about
			// its position). Re-resolve next round from fresher gossip.
			s.logger.Info("anti-entropy pull refused", "peer", target.ID, "from", pos.Seq, "status", status)
			return pulled
		}
		if len(resp.Segment.Batches) == 0 {
			return pulled
		}
		applied, err := log.Import(resp.Segment)
		if applied > 0 {
			pulled += applied
			s.aePulled.Add(int64(applied))
			s.importedBatches.Add(int64(applied))
			s.publishLive()
			s.updateSelfLive()
		}
		if err != nil {
			s.logger.Warn("anti-entropy import failed", "peer", target.ID, "from", resp.Segment.From, "err", err)
			return pulled
		}
		if log.Position().Seq >= resp.Position.Seq {
			return pulled
		}
	}
}

// RunAntiEntropy drives AntiEntropyRound every interval until ctx is done,
// after the same deterministic per-peer phase offset gossip uses, so a
// co-started replica set spreads its repair traffic instead of pulling in
// lockstep. interval <= 0 selects Config.AntiEntropyInterval.
func (s *Server) RunAntiEntropy(ctx context.Context, interval time.Duration) {
	node := s.clusterNode
	if node == nil {
		return
	}
	if interval <= 0 {
		interval = s.cfg.AntiEntropyInterval
	}
	if phase := cluster.GossipPhase(node.Self().ID, interval); phase > 0 {
		timer := time.NewTimer(phase)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		s.AntiEntropyRound(ctx)
	}
}

// postPeerJSON is one bounded POST round trip to a peer daemon, decoding
// the typed body of 200 and 409 answers into resp (409s carry positions on
// the replication endpoints; an ErrorResponse body simply leaves resp
// zero). The request id rides the hop like every other cluster call; tp,
// when non-empty, carries the sender's span in the Traceparent header.
func (s *Server) postPeerJSON(ctx context.Context, peer cluster.Peer, path string, req, resp interface{}, tp string) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer.ID+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		hreq.Header.Set("X-Request-ID", id)
	}
	if tp != "" {
		hreq.Header.Set(obs.TraceHeader, tp)
	}
	hresp, err := s.clusterClient.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if hresp.StatusCode == http.StatusOK || hresp.StatusCode == http.StatusConflict {
		if err := json.NewDecoder(io.LimitReader(hresp.Body, maxReplicateBody)).Decode(resp); err != nil {
			return hresp.StatusCode, err
		}
	}
	return hresp.StatusCode, nil
}

// ReplicationStats is the replication slice of ClusterStats: the local
// position plus the shipping and anti-entropy counters.
type ReplicationStats struct {
	// Primary reports the write role (replica 0 acks mutations).
	Primary bool
	// Position is the local log's replication coordinate; replicas of one
	// shard have converged exactly when their Positions are equal.
	Position mutate.Position
	// ShippedBatches counts batches acknowledged by replicas on the push
	// path; ShipFailures counts pushes that did not land (left to
	// anti-entropy).
	ShippedBatches int64
	ShipFailures   int64
	// ImportedBatches counts batches imported here, both pushed and pulled;
	// AntiEntropyPulled is the pulled share.
	ImportedBatches   int64
	AntiEntropyRounds int64
	AntiEntropyPulled int64
	// GenerationLag counts rounds that saw a same-shard peer on a later
	// generation — it should stay 0 while compaction is disabled under
	// replication.
	GenerationLag int64
	// ReplicaLag is the per-replica divergence computed from gossip-learned
	// live positions (see cluster.ReplicaLag) — the /debug/vars view of what
	// the smallworld_replication_replica_* gauges export.
	ReplicaLag []cluster.ReplicaLag `json:",omitempty"`
}

// replicationStats fills the replication slice of ClusterStats (nil unless
// a replicated mutation log is attached).
func (s *Server) replicationStats() *ReplicationStats {
	log, _, node := s.replicationLog()
	if log == nil {
		return nil
	}
	pos := log.Position()
	return &ReplicationStats{
		Primary:           node.Replica() == 0,
		Position:          pos,
		ShippedBatches:    s.shippedBatches.Load(),
		ShipFailures:      s.shipFails.Load(),
		ImportedBatches:   s.importedBatches.Load(),
		AntiEntropyRounds: s.aeRounds.Load(),
		AntiEntropyPulled: s.aePulled.Load(),
		GenerationLag:     s.genLag.Load(),
		ReplicaLag:        node.ReplicaLags(pos.Epoch, pos.Generation),
	}
}

// writeReplicationMetrics emits the smallworld_replication_* families (only
// when a replicated mutation log is attached).
func (s *Server) writeReplicationMetrics(p *obs.PromWriter) {
	log, _, node := s.replicationLog()
	if log == nil {
		return
	}
	pos := log.Position()
	primary := int64(0)
	if node.Replica() == 0 {
		primary = 1
	}
	p.Family("smallworld_replication_primary", "gauge", "1 on the shard's write primary (replica 0).")
	p.SampleInt("smallworld_replication_primary", nil, primary)
	p.Family("smallworld_replication_seq", "gauge", "Local replicated-log sequence (journaled batches this generation).")
	p.SampleInt("smallworld_replication_seq", nil, int64(pos.Seq))
	p.Family("smallworld_replication_shipped_batches_total", "counter", "Batches acknowledged by replicas on the push path.")
	p.SampleInt("smallworld_replication_shipped_batches_total", nil, s.shippedBatches.Load())
	p.Family("smallworld_replication_ship_failures_total", "counter", "Journal pushes that did not land (left to anti-entropy).")
	p.SampleInt("smallworld_replication_ship_failures_total", nil, s.shipFails.Load())
	p.Family("smallworld_replication_imported_batches_total", "counter", "Batches imported from peers (pushed and pulled).")
	p.SampleInt("smallworld_replication_imported_batches_total", nil, s.importedBatches.Load())
	p.Family("smallworld_replication_anti_entropy_rounds_total", "counter", "Anti-entropy repair rounds run.")
	p.SampleInt("smallworld_replication_anti_entropy_rounds_total", nil, s.aeRounds.Load())
	p.Family("smallworld_replication_anti_entropy_pulled_total", "counter", "Batches pulled by anti-entropy.")
	p.SampleInt("smallworld_replication_anti_entropy_pulled_total", nil, s.aePulled.Load())
	p.Family("smallworld_replication_generation_lag_total", "counter", "Rounds that saw a same-shard peer on a later journal generation.")
	p.SampleInt("smallworld_replication_generation_lag_total", nil, s.genLag.Load())

	// Per-replica lag gauges from gossip-learned live positions. The epoch
	// gauge is the peer's raw advertised position; batches_behind is the
	// local-minus-peer delta on a shared generation (negative = peer ahead).
	lags := node.ReplicaLags(pos.Epoch, pos.Generation)
	if len(lags) == 0 {
		return
	}
	peerLabel := func(id string) []obs.Label {
		return []obs.Label{{Name: "peer", Value: id}}
	}
	p.Family("smallworld_replication_replica_epoch", "gauge", "Gossip-advertised overlay epoch of each same-shard replica.")
	for _, l := range lags {
		p.SampleInt("smallworld_replication_replica_epoch", peerLabel(l.Peer), int64(l.Epoch))
	}
	p.Family("smallworld_replication_replica_generation", "gauge", "Gossip-advertised journal generation of each same-shard replica.")
	for _, l := range lags {
		p.SampleInt("smallworld_replication_replica_generation", peerLabel(l.Peer), int64(l.Generation))
	}
	p.Family("smallworld_replication_replica_batches_behind", "gauge", "Local epoch minus replica epoch on a shared generation (positive = replica behind).")
	for _, l := range lags {
		p.SampleInt("smallworld_replication_replica_batches_behind", peerLabel(l.Peer), l.BatchesBehind)
	}
	p.Family("smallworld_replication_replica_generation_skew", "gauge", "Replica generation minus local generation (nonzero flags a misconfigured shard).")
	for _, l := range lags {
		p.SampleInt("smallworld_replication_replica_generation_skew", peerLabel(l.Peer), int64(l.GenerationSkew))
	}
}
