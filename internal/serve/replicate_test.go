package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/torus"
)

// replicaDaemon is one member of a replicated shard in tests: the clustered
// routing slot on DefaultGraph plus the replicated live slot "live" driven
// by its own mutation log, exactly as cmd/smallworldd wires them.
type replicaDaemon struct {
	srv  *Server
	ts   *httptest.Server
	node *cluster.Node
	log  *mutate.Log
	addr string
}

// newReplicaSet builds k daemons all serving shard "0" of nw as replicas
// 0..k-1, each with an empty mutation log on the "live" slot, with full
// static membership. clientFor may inject a per-daemon cluster HTTP client
// (nil for the default).
func newReplicaSet(t *testing.T, nw *core.Network, k int, cfg Config, clientFor func(addr string) *http.Client) []*replicaDaemon {
	t.Helper()
	prefix, err := torus.ParsePrefix("0")
	if err != nil {
		t.Fatal(err)
	}
	daemons := make([]*replicaDaemon, k)
	for i := 0; i < k; i++ {
		c := cfg
		c.RequestIDSalt = uint64(i + 1)
		srv := New(c)
		srv.AddNetwork(DefaultGraph, nw)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		addr := strings.TrimPrefix(ts.URL, "http://")
		node, err := cluster.NewNode(nw.Graph, prefix, addr, cluster.Config{Seed: 1, Replica: i})
		if err != nil {
			t.Fatal(err)
		}
		var client *http.Client
		if clientFor != nil {
			client = clientFor(addr)
		}
		srv.EnableCluster(node, client)
		log, err := mutate.Open(t.TempDir(), nw.Graph, mutate.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
		if err := srv.EnableMutation(log, "live"); err != nil {
			t.Fatal(err)
		}
		daemons[i] = &replicaDaemon{srv: srv, ts: ts, node: node, log: log, addr: addr}
	}
	// Membership is seeded after EnableMutation so every Self carries its
	// starting live position, like the -replicas flag plus first gossip.
	for _, d := range daemons {
		for _, p := range daemons {
			if p != d {
				d.node.Members().Add(p.node.Self())
			}
		}
	}
	return daemons
}

// addVertexOps is a valid mutation batch against any live state: one join
// wired to two base vertices.
func addVertexOps(nw *core.Network, next int) []mutate.Op {
	return []mutate.Op{
		{Op: mutate.OpAddVertex, Pos: []float64{0.25, 0.75}, W: 2.0},
		{Op: mutate.OpAddEdge, U: next, V: 0},
		{Op: mutate.OpAddEdge, U: next, V: 1},
	}
}

// waitPosition polls until the daemon's log reaches want (or the deadline).
func waitPosition(t *testing.T, d *replicaDaemon, want mutate.Position) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d.log.Position() == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never converged: at %+v, want %+v", d.addr, d.log.Position(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readyLiveOf fetches the live section of the "live" slot from /readyz —
// the same surface the CI replication-smoke job gates on.
func readyLiveOf(t *testing.T, d *replicaDaemon) *ReadyLive {
	t.Helper()
	resp, err := http.Get(d.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	g, ok := ready.Graphs["live"]
	if !ok || g.Live == nil {
		t.Fatalf("%s /readyz has no live section for slot live: %+v", d.addr, ready.Graphs)
	}
	return g.Live
}

// TestReplicaMutateReadOnly pins the single-writer contract: a non-primary
// replica answers /admin/mutate with 409 and applies nothing — split-brain
// is ruled out by construction, not by election.
func TestReplicaMutateReadOnly(t *testing.T) {
	nw := testNetwork(t, 100, 5)
	daemons := newReplicaSet(t, nw, 2, Config{RequestTimeout: 5 * time.Second}, nil)
	replica := daemons[1]
	resp, _, bad := postMutate(t, replica.ts.URL, MutateRequest{
		Graph: "live", Ops: addVertexOps(nw, nw.Graph.N()),
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mutate at replica 1: status %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(bad.Error, "read-only") {
		t.Fatalf("409 body does not name the read-only contract: %q", bad.Error)
	}
	if replica.log.Position().Seq != 0 {
		t.Fatal("refused mutation still journaled a batch")
	}
}

// TestReplicateShipConvergence pins the tentpole happy path: batches acked
// at the primary are shipped to every replica, and the replica set converges
// to bit-identical positions — same seq, epoch, generation and live
// fingerprint, visible both in the logs and on /readyz.
func TestReplicateShipConvergence(t *testing.T) {
	nw := testNetwork(t, 100, 6)
	daemons := newReplicaSet(t, nw, 3, Config{RequestTimeout: 5 * time.Second}, nil)
	primary := daemons[0]

	for b := 0; b < 3; b++ {
		resp, _, bad := postMutate(t, primary.ts.URL, MutateRequest{
			Graph: "live", Ops: addVertexOps(nw, nw.Graph.N()+b),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate batch %d: status %d (%s)", b, resp.StatusCode, bad.Error)
		}
	}
	want := primary.log.Position()
	if want.Seq != 3 {
		t.Fatalf("primary at seq %d, want 3", want.Seq)
	}
	for _, d := range daemons[1:] {
		waitPosition(t, d, want)
	}

	primaryLive := readyLiveOf(t, primary)
	for _, d := range daemons[1:] {
		live := readyLiveOf(t, d)
		if live.Fingerprint != primaryLive.Fingerprint || live.Generation != primaryLive.Generation {
			t.Fatalf("%s serves live (fp=%s gen=%d), primary serves (fp=%s gen=%d)",
				d.addr, live.Fingerprint, live.Generation, primaryLive.Fingerprint, primaryLive.Generation)
		}
		st := d.srv.Stats().Cluster.Replication
		if st == nil || st.Primary || st.ImportedBatches != 3 {
			t.Fatalf("%s replication stats = %+v, want 3 imported batches on a non-primary", d.addr, st)
		}
	}
	st := primary.srv.Stats().Cluster.Replication
	if st == nil || !st.Primary || st.ShippedBatches < 6 {
		t.Fatalf("primary replication stats = %+v, want primary with >= 6 shipped batches", st)
	}
}

// TestReplicateGapReship pins the push-race repair: a replica missing the
// shipped segment's prefix answers 409 with its position, and the pusher
// immediately re-ships from there — no waiting for anti-entropy.
func TestReplicateGapReship(t *testing.T) {
	nw := testNetwork(t, 100, 7)
	daemons := newReplicaSet(t, nw, 2, Config{RequestTimeout: 5 * time.Second}, nil)
	primary, replica := daemons[0], daemons[1]

	// Two batches go straight into the primary's log — journaled but never
	// shipped, as if the replica had missed the pushes.
	for b := 0; b < 2; b++ {
		if _, err := primary.log.Apply(addVertexOps(nw, nw.Graph.N()+b)); err != nil {
			t.Fatal(err)
		}
	}
	// The third arrives over HTTP: its ship starts at seq 2, the replica is
	// at 0, and the gap answer must trigger the re-ship of all three.
	resp, _, bad := postMutate(t, primary.ts.URL, MutateRequest{
		Graph: "live", Ops: addVertexOps(nw, nw.Graph.N()+2),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d (%s)", resp.StatusCode, bad.Error)
	}
	waitPosition(t, replica, primary.log.Position())
	if got := replica.log.Position().Seq; got != 3 {
		t.Fatalf("replica at seq %d after gap re-ship, want 3", got)
	}
}

// TestAntiEntropyPull pins the catch-all: a replica that missed every push
// learns the primary's position from gossip and pulls the missing journal
// segments in one synchronous round.
func TestAntiEntropyPull(t *testing.T) {
	nw := testNetwork(t, 100, 8)
	daemons := newReplicaSet(t, nw, 2, Config{RequestTimeout: 5 * time.Second}, nil)
	primary, replica := daemons[0], daemons[1]

	for b := 0; b < 4; b++ {
		if _, err := primary.log.Apply(addVertexOps(nw, nw.Graph.N()+b)); err != nil {
			t.Fatal(err)
		}
	}
	primary.srv.publishLive()
	primary.srv.updateSelfLive()

	// Before the replica hears the primary's live position, a round finds no
	// one ahead and pulls nothing.
	if got := replica.srv.AntiEntropyRound(context.Background()); got != 0 {
		t.Fatalf("round with stale gossip pulled %d batches, want 0", got)
	}
	// One gossip exchange later, the round pulls everything.
	replica.node.Members().Receive(primary.node.Self(), nil)
	if got := replica.srv.AntiEntropyRound(context.Background()); got != 4 {
		t.Fatalf("round pulled %d batches, want 4", got)
	}
	if got, want := replica.log.Position(), primary.log.Position(); got != want {
		t.Fatalf("replica at %+v after pull, want %+v", got, want)
	}
	st := replica.srv.Stats().Cluster.Replication
	if st.AntiEntropyPulled != 4 || st.AntiEntropyRounds != 2 {
		t.Fatalf("replication stats = %+v, want 4 pulled over 2 rounds", st)
	}
	if got, want := readyLiveOf(t, replica).Fingerprint, readyLiveOf(t, primary).Fingerprint; got != want {
		t.Fatalf("replica serves live fp %s, primary %s", got, want)
	}
}

// TestReplicationUnconfigured pins the endpoints' 404 contract on daemons
// without a replicated log.
func TestReplicationUnconfigured(t *testing.T) {
	srv := New(Config{RequestIDSalt: 1})
	srv.AddNetwork(DefaultGraph, testNetwork(t, 64, 3))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/cluster/replicate", "/cluster/segment"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without replication = %d, want 404", path, resp.StatusCode)
		}
	}
}
