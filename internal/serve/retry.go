package serve

import (
	"time"

	"repro/internal/route"
)

// RetryPolicy is the per-request retry/backoff policy of the daemon.
// Transient failure classes are retried with capped exponential backoff plus
// full jitter; permanent classes fail fast — retrying a proven dead end
// only burns the worker slot the admission controller just granted.
type RetryPolicy struct {
	// MaxAttempts is the total number of routing attempts (1 = no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt k waits up to
	// BaseDelay * 2^(k-1), capped at MaxDelay, jittered uniformly down.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Seed drives the jitter; every delay is a pure function of
	// (Seed, requestID, attempt), so retry schedules are reproducible in
	// tests and across restarts with a pinned seed.
	Seed uint64
}

// withDefaults fills unset fields with serviceable defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	return p
}

// Transient reports whether a failure class is worth retrying. Deadline
// cuts (the budget may simply have been unlucky against a slow region) and
// crashed targets under a fault plan (retries re-draw the plan under a
// salted seed, modelling churned-but-recovering vertices) are transient;
// dead ends and truncations are definitive protocol outcomes, and
// cancellation means the server is draining.
func Transient(f route.Failure) bool {
	return f == route.FailDeadline || f == route.FailCrashedTarget
}

// Backoff returns the delay before retry attempt `attempt` (1-based: the
// delay between attempt k and attempt k+1 is Backoff(requestID, k)). The
// exponential base doubles per attempt and is capped at MaxDelay; full
// jitter then draws uniformly from [cap/2, cap], so concurrent retriers
// decorrelate without ever collapsing the wait to zero. The draw is a pure
// hash of (Seed, requestID, attempt) — no shared RNG, no lock, fully
// deterministic for a pinned seed.
func (p RetryPolicy) Backoff(requestID uint64, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Uniform in [d/2, d): half the spread of classic full jitter, keeping a
	// floor so a burst of retriers cannot synchronize at zero delay.
	u := hashFloat(p.Seed, requestID, uint64(attempt))
	return d/2 + time.Duration(u*float64(d/2))
}

// hash64 mixes words into one well-distributed 64-bit value (splitmix64
// finalization), mirroring the pure-hash determinism idiom of package
// faults.
func hash64(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// hashFloat maps the mixed words to a uniform value in [0, 1).
func hashFloat(vals ...uint64) float64 {
	return float64(hash64(vals...)>>11) * 0x1p-53
}
