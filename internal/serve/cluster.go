package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/route"
)

// This file is the cluster half of the serving layer: when EnableCluster
// installs a shard map, eligible /route queries run the partial greedy
// router over the local shard and forward the continuation to the owning
// peer over POST /cluster/hop. Forwarding reuses the daemon's resilience
// vocabulary — a circuit breaker per (peer, graph), the RetryPolicy's
// backoff, the request deadline — and a forward that cannot be completed
// comes back as the classified shard-unreachable failure, never a hang:
// the cluster degrades to "that shard's vertices are unreachable" while
// every shard-local route keeps working.

// maxHopDepth caps hop chaining. Greedy never revisits a shard (the walk is
// strictly objective-increasing), so a legitimate chain is bounded by the
// shard count; the cap only exists to turn a routing bug into a classified
// truncated episode instead of a forwarding loop.
const maxHopDepth = 16

// peerKey identifies one per-(peer, graph) forward breaker. These are
// deliberately separate from the (graph, protocol) request breakers: a dead
// peer must fail its own forwards fast without poisoning shard-local
// routing on the same graph.
type peerKey struct{ peer, graph string }

// EnableCluster installs the shard map and starts answering /cluster/hop
// and /cluster/gossip. client carries hop forwards and may be nil (a
// default client; per-request deadlines bound every call). Call before
// serving — the field is not synchronized against in-flight requests.
func (s *Server) EnableCluster(node *cluster.Node, client *http.Client) {
	if client == nil {
		client = &http.Client{}
	}
	s.clusterNode = node
	s.clusterClient = client
}

// ClusterNode returns the installed shard map (nil on a single-node
// daemon).
func (s *Server) ClusterNode() *cluster.Node { return s.clusterNode }

// PeerBreaker exposes the (peer, graph) forward breaker, creating it on
// first use like the forward path does.
func (s *Server) PeerBreaker(peer, graph string) *Breaker {
	if graph == "" {
		graph = DefaultGraph
	}
	return s.peerBreaker(peer, graph)
}

func (s *Server) peerBreaker(peer, graph string) *Breaker {
	key := peerKey{peer, graph}
	s.peerBreakerMu.Lock()
	defer s.peerBreakerMu.Unlock()
	b, ok := s.peerBreakers[key]
	if !ok {
		b = NewBreaker(s.cfg.Breaker)
		s.peerBreakers[key] = b
	}
	return b
}

// clusterEligible reports whether one validated query can take the sharded
// path: cluster mode on, pure greedy under the standard objective, no fault
// plan, and the resolved snapshot is the one the shard map was built over
// (pointer equality — after a hot swap the mask no longer applies and the
// query falls back to local full-graph routing).
func (s *Server) clusterEligible(nw *core.Network, protoName string, q RouteRequest) bool {
	node := s.clusterNode
	return node != nil &&
		protoName == string(core.ProtoGreedy) &&
		nw.StandardPhi &&
		len(q.Faults) == 0 &&
		nw.Graph == node.Graph()
}

// clusterRoute runs one attempt of a sharded greedy episode: the local
// segment via the partial router, then — if the walk crossed the shard
// boundary — the continuation via forwardHop, stitched back into es.out.
// The merged result is bit-identical to single-node GreedyCSR whenever the
// owning peers answered; a failed forward classifies the episode as
// shard-unreachable. Exactly one engine episode is recorded here, at the
// entry daemon, with the merged result — hop receivers record nothing, so
// cluster-wide counters sum honestly. Returns the forward count of this
// attempt.
func (s *Server) clusterRoute(ctx context.Context, graphName string, sv, tv int, deadline time.Time, es *episodeState) int {
	logger := obs.Logger(ctx)
	node := s.clusterNode
	start := time.Now()
	res := &es.out
	b := route.Budget{MaxScans: s.cfg.MaxHops, Deadline: deadline}
	exit := route.GreedyCSRPartial(node.Graph(), tv, sv, node.OwnedMask(), b, &es.sc, res)
	forwards := 0
	if exit >= 0 {
		hop, ok := s.forwardHop(ctx, graphName, exit, tv, deadline, 1)
		if ok {
			mergeHop(res, hop)
			forwards = 1 + hop.Forwards
		} else {
			s.shardUnreachable.Add(1)
			res.Success = false
			res.Failure = route.FailShardUnreachable
			res.Stuck = -1
			res.Unique = len(res.Path)
			forwards = 1
			logger.Warn("shard unreachable", "graph", graphName,
				"exit_vertex", exit, "t", tv)
		}
	}
	core.RecordEpisode(*res, time.Since(start))
	return forwards
}

// mergeHop stitches a hop continuation onto the local segment. The
// continuation starts at the exit vertex the segment already ends with, so
// its first vertex is dropped; greedy is strictly objective-increasing, so
// the merged path has no revisits and Unique stays len(Path).
func mergeHop(res *route.Result, hop HopResponse) {
	if len(hop.Path) > 1 {
		res.Path = append(res.Path, hop.Path[1:]...)
	}
	res.Moves += hop.Moves
	res.Unique = len(res.Path)
	res.Success = hop.Success
	res.Failure = route.Failure(hop.Failure)
	res.Stuck = hop.Stuck
	res.Truncated = hop.Failure == string(route.FailTruncated)
}

// forwardHop hands the walk at vertex `from` to its owning peer and returns
// the classified continuation. Transport errors and 5xx answers are retried
// under the request deadline with the daemon's backoff policy, count
// against the (peer, graph) breaker and strike the membership's failure
// detector; 4xx answers (snapshot mismatch, validation) are permanent. ok
// is false when no answer could be obtained — no routable owner, breaker
// open, retries exhausted, deadline spent — and the caller classifies the
// episode shard-unreachable.
func (s *Server) forwardHop(ctx context.Context, graphName string, from, t int, deadline time.Time, depth int) (HopResponse, bool) {
	logger := obs.Logger(ctx)
	node := s.clusterNode
	for attempt := 1; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return HopResponse{}, false
		}
		peer, ok := node.OwnerOf(from)
		if !ok {
			logger.Warn("forward failed", "reason", "no routable owner", "vertex", from)
			return HopResponse{}, false
		}
		pb := s.peerBreaker(peer.ID, graphName)
		if _, err := pb.Allow(); err != nil {
			logger.Warn("forward failed", "reason", "peer breaker open", "peer", peer.ID)
			return HopResponse{}, false
		}
		s.forwards.Add(1)
		resp, status, err := s.postHop(ctx, peer, HopRequest{
			Graph: graphName,
			S:     from, T: t,
			DeadlineMs: remaining.Milliseconds(),
			Depth:      depth,
		}, deadline)
		if err == nil && status == http.StatusOK {
			pb.Record(false)
			node.Members().ReportSuccess(peer.ID)
			return resp, true
		}
		s.forwardFails.Add(1)
		pb.Record(true)
		node.Members().ReportFailure(peer.ID)
		if err != nil {
			logger.Warn("forward failed", "peer", peer.ID, "attempt", attempt, "err", err)
		} else {
			logger.Warn("forward failed", "peer", peer.ID, "attempt", attempt, "status", status)
			if status >= 400 && status < 500 {
				return HopResponse{}, false
			}
		}
		if attempt >= s.cfg.Retry.MaxAttempts {
			return HopResponse{}, false
		}
		wait := s.cfg.Retry.Backoff(hash64(uint64(from), uint64(t)), attempt)
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return HopResponse{}, false
			}
		}
	}
}

// postHop is one POST /cluster/hop round trip, bounded by the request
// deadline and carrying the request id across the hop (satellite of the
// observability story: one id labels the episode on every shard it
// touches).
func (s *Server) postHop(ctx context.Context, peer cluster.Peer, req HopRequest, deadline time.Time) (HopResponse, int, error) {
	var resp HopResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, 0, err
	}
	hctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	hreq, err := http.NewRequestWithContext(hctx, http.MethodPost,
		"http://"+peer.ID+"/cluster/hop", bytes.NewReader(body))
	if err != nil {
		return resp, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		hreq.Header.Set("X-Request-ID", id)
	}
	hresp, err := s.clusterClient.Do(hreq)
	if err != nil {
		return resp, 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		return resp, hresp.StatusCode, nil
	}
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 8<<20)).Decode(&resp); err != nil {
		return resp, hresp.StatusCode, err
	}
	return resp, hresp.StatusCode, nil
}

// handleClusterHop serves POST /cluster/hop: route the continuation of a
// peer's greedy walk over the local shard, forwarding again if it crosses
// out. Hops bypass the admission pool — they are the continuation of a
// request already admitted at the entry daemon, and waiting for a slot here
// could deadlock two shards forwarding into each other — but they respect
// draining. Any classified outcome is 200; the entry daemon records the
// episode, so this handler touches no engine counters.
func (s *Server) handleClusterHop(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	node := s.clusterNode
	if node == nil {
		writeError(w, http.StatusNotFound, 0, "not clustered")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "server draining")
		return
	}
	defer s.inflight.Done()

	var req HopRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = DefaultGraph
	}
	nw, ok := s.Network(graphName)
	if !ok {
		writeError(w, http.StatusNotFound, 0, "unknown graph %q", graphName)
		return
	}
	if nw.Graph != node.Graph() {
		writeError(w, http.StatusConflict, 0, "graph %q is not the clustered snapshot", graphName)
		return
	}
	if req.S < 0 || req.S >= nw.Graph.N() || req.T < 0 || req.T >= nw.Graph.N() {
		writeError(w, http.StatusBadRequest, 0, "vertex pair (%d, %d) out of range (n = %d)",
			req.S, req.T, nw.Graph.N())
		return
	}
	s.hopsServed.Add(1)

	deadline := time.Now().Add(s.cfg.RequestTimeout)
	if req.DeadlineMs > 0 {
		if d := time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond); d.Before(deadline) {
			deadline = d
		}
	}
	if req.Depth > maxHopDepth {
		logger.Warn("hop chain truncated", "depth", req.Depth, "s", req.S, "t", req.T)
		writeJSON(w, http.StatusOK, HopResponse{
			Failure: string(route.FailTruncated),
			Stuck:   -1,
			Path:    []int{req.S},
		})
		return
	}

	es := episodePool.Get().(*episodeState)
	defer episodePool.Put(es)
	res := &es.out
	b := route.Budget{MaxScans: s.cfg.MaxHops, Deadline: deadline}
	exit := route.GreedyCSRPartial(node.Graph(), req.T, req.S, node.OwnedMask(), b, &es.sc, res)
	resp := HopResponse{}
	if exit >= 0 {
		hop, ok := s.forwardHop(r.Context(), graphName, exit, req.T, deadline, req.Depth+1)
		if ok {
			mergeHop(res, hop)
			resp.Forwards = 1 + hop.Forwards
		} else {
			s.shardUnreachable.Add(1)
			res.Success = false
			res.Failure = route.FailShardUnreachable
			res.Stuck = -1
			res.Unique = len(res.Path)
			resp.Forwards = 1
		}
	}
	resp.Success = res.Success
	resp.Failure = string(res.Failure)
	resp.Stuck = res.Stuck
	resp.Moves = res.Moves
	resp.Path = append([]int(nil), res.Path...)
	logger.Debug("hop served", "s", req.S, "t", req.T, "depth", req.Depth,
		"success", resp.Success, "failure", resp.Failure, "forwards", resp.Forwards)
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterGossip serves POST /cluster/gossip: merge the sender and its
// relayed view into the membership and answer with ours — the pull half of
// push/pull. Gossip stays up while draining so peers observe the shutdown
// as liveness, not silence.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	node := s.clusterNode
	if node == nil {
		writeError(w, http.StatusNotFound, 0, "not clustered")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	var req cluster.GossipRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	view := node.Members().Receive(req.From, req.View)
	writeJSON(w, http.StatusOK, cluster.GossipResponse{Self: node.Self(), View: view})
}

// writeClusterMetrics emits the smallworld_cluster_* families (only called
// when cluster mode is on).
func (s *Server) writeClusterMetrics(p *obs.PromWriter) {
	node := s.clusterNode
	p.Family("smallworld_cluster_forwards_total", "counter", "Hop forwards attempted.")
	p.SampleInt("smallworld_cluster_forwards_total", nil, s.forwards.Load())
	p.Family("smallworld_cluster_forward_failures_total", "counter", "Hop forward attempts that failed (transport error, non-200, breaker open).")
	p.SampleInt("smallworld_cluster_forward_failures_total", nil, s.forwardFails.Load())
	p.Family("smallworld_cluster_shard_unreachable_total", "counter", "Episodes classified shard-unreachable at this daemon.")
	p.SampleInt("smallworld_cluster_shard_unreachable_total", nil, s.shardUnreachable.Load())
	p.Family("smallworld_cluster_hops_served_total", "counter", "POST /cluster/hop continuations served.")
	p.SampleInt("smallworld_cluster_hops_served_total", nil, s.hopsServed.Load())
	p.Family("smallworld_cluster_gossip_rounds_total", "counter", "Gossip rounds ticked.")
	p.SampleInt("smallworld_cluster_gossip_rounds_total", nil, int64(node.Members().Round()))

	counts := node.Members().CountByState()
	p.Family("smallworld_cluster_peers", "gauge", "Known peers by failure-detector state.")
	for _, st := range []cluster.PeerState{cluster.StateAlive, cluster.StateSuspect, cluster.StateDown} {
		p.SampleInt("smallworld_cluster_peers",
			[]obs.Label{{Name: "state", Value: st.String()}}, int64(counts[st]))
	}

	type pbSample struct {
		peer, graph string
		state       float64
		opens       int64
	}
	s.peerBreakerMu.Lock()
	samples := make([]pbSample, 0, len(s.peerBreakers))
	for key, b := range s.peerBreakers {
		samples = append(samples, pbSample{key.peer, key.graph, breakerStateValue(b.State()), b.Opens()})
	}
	s.peerBreakerMu.Unlock()
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].peer != samples[j].peer {
			return samples[i].peer < samples[j].peer
		}
		return samples[i].graph < samples[j].graph
	})
	p.Family("smallworld_cluster_peer_breaker_state", "gauge", "Forward breaker state per (peer, graph): 0 closed, 1 open, 2 half-open.")
	for _, b := range samples {
		p.Sample("smallworld_cluster_peer_breaker_state",
			[]obs.Label{{Name: "peer", Value: b.peer}, {Name: "graph", Value: b.graph}}, b.state)
	}
	p.Family("smallworld_cluster_peer_breaker_opens_total", "counter", "Cumulative forward breaker trips to open.")
	for _, b := range samples {
		p.SampleInt("smallworld_cluster_peer_breaker_opens_total",
			[]obs.Label{{Name: "peer", Value: b.peer}, {Name: "graph", Value: b.graph}}, b.opens)
	}
}

// clusterStats fills the cluster slice of ServeStats.
func (s *Server) clusterStats(st *ServeStats) {
	node := s.clusterNode
	if node == nil {
		return
	}
	st.Cluster = &ClusterStats{
		Self:             node.Self().ID,
		Shard:            node.Self().Shard,
		OwnedVertices:    node.OwnedCount(),
		GossipRounds:     node.Members().Round(),
		Forwards:         s.forwards.Load(),
		ForwardFails:     s.forwardFails.Load(),
		HopsServed:       s.hopsServed.Load(),
		ShardUnreachable: s.shardUnreachable.Load(),
		Peers:            map[string]string{},
		PeerBreakers:     map[string]string{},
	}
	for _, ps := range node.Members().Snapshot() {
		st.Cluster.Peers[ps.Peer.ID] = ps.StateS
	}
	s.peerBreakerMu.Lock()
	for key, b := range s.peerBreakers {
		st.Cluster.PeerBreakers[key.peer+"/"+key.graph] = fmt.Sprintf("%s (opens=%d)", b.State(), b.Opens())
	}
	s.peerBreakerMu.Unlock()
}

// ClusterStats is the cluster slice of the "smallworld.serve" expvar export.
type ClusterStats struct {
	Self             string
	Shard            string
	OwnedVertices    int
	GossipRounds     uint64
	Forwards         int64
	ForwardFails     int64
	HopsServed       int64
	ShardUnreachable int64
	// Peers maps peer id to failure-detector state.
	Peers map[string]string
	// PeerBreakers maps "peer/graph" to forward breaker state.
	PeerBreakers map[string]string
}
