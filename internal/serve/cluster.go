package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/route"
)

// This file is the cluster half of the serving layer: when EnableCluster
// installs a shard map, eligible /route queries run the partial greedy
// router over the local shard and forward the continuation to the owning
// peer over POST /cluster/hop. Forwarding reuses the daemon's resilience
// vocabulary — a circuit breaker per (peer, graph), the RetryPolicy's
// backoff, the request deadline — and a forward that cannot be completed
// comes back as the classified shard-unreachable failure, never a hang:
// the cluster degrades to "that shard's vertices are unreachable" while
// every shard-local route keeps working.

// maxHopDepth caps hop chaining. Greedy never revisits a shard (the walk is
// strictly objective-increasing), so a legitimate chain is bounded by the
// shard count; the cap only exists to turn a routing bug into a classified
// truncated episode instead of a forwarding loop.
const maxHopDepth = 16

// peerKey identifies one per-(peer, graph) forward breaker. These are
// deliberately separate from the (graph, protocol) request breakers: a dead
// peer must fail its own forwards fast without poisoning shard-local
// routing on the same graph.
type peerKey struct{ peer, graph string }

// EnableCluster installs the shard map and starts answering /cluster/hop
// and /cluster/gossip. client carries hop forwards and may be nil (a
// default client; per-request deadlines bound every call). Call before
// serving — the field is not synchronized against in-flight requests.
func (s *Server) EnableCluster(node *cluster.Node, client *http.Client) {
	if client == nil {
		client = &http.Client{}
	}
	s.clusterNode = node
	s.clusterClient = client
}

// ClusterNode returns the installed shard map (nil on a single-node
// daemon).
func (s *Server) ClusterNode() *cluster.Node { return s.clusterNode }

// PeerBreaker exposes the (peer, graph) forward breaker, creating it on
// first use like the forward path does.
func (s *Server) PeerBreaker(peer, graph string) *Breaker {
	if graph == "" {
		graph = DefaultGraph
	}
	return s.peerBreaker(peer, graph)
}

func (s *Server) peerBreaker(peer, graph string) *Breaker {
	key := peerKey{peer, graph}
	s.peerBreakerMu.Lock()
	defer s.peerBreakerMu.Unlock()
	b, ok := s.peerBreakers[key]
	if !ok {
		b = NewBreaker(s.cfg.Breaker)
		s.peerBreakers[key] = b
	}
	return b
}

// clusterEligible reports whether one validated query can take the sharded
// path: cluster mode on, pure greedy under the standard objective, no fault
// plan, the resolved snapshot is the one the shard map was built over
// (pointer equality — after a hot swap the mask no longer applies and the
// query falls back to local full-graph routing), and the slot carries no
// live overlay — the shard masks are bound to the immutable base, so a
// replicated live slot routes locally over its full overlay instead.
func (s *Server) clusterEligible(nw *core.Network, protoName string, q RouteRequest) bool {
	node := s.clusterNode
	return node != nil &&
		protoName == string(core.ProtoGreedy) &&
		nw.StandardPhi &&
		len(q.Faults) == 0 &&
		nw.Graph == node.Graph() &&
		nw.LiveOverlay() == nil
}

// routeFwd is the forwarding summary of one sharded episode attempt, as
// reported in RouteResponse: boundary crossings, hedges fired and failovers
// won across the whole hop chain.
type routeFwd struct {
	forwards  int
	hedges    int
	failovers int
}

// clusterRoute runs one attempt of a sharded greedy episode: the local
// segment via the partial router, then — if the walk crossed the shard
// boundary — the continuation via forwardHop, stitched back into es.out.
// The merged result is bit-identical to single-node GreedyCSR whenever the
// owning peers answered; a failed forward classifies the episode as
// shard-unreachable. Exactly one engine episode is recorded here, at the
// entry daemon, with the merged result — hop receivers record nothing, so
// cluster-wide counters sum honestly. Returns the attempt's forwarding
// summary.
func (s *Server) clusterRoute(ctx context.Context, graphName string, sv, tv int, deadline time.Time, es *episodeState, rt *reqTrace, tm *Timings) routeFwd {
	logger := obs.Logger(ctx)
	node := s.clusterNode
	start := time.Now()
	res := &es.out
	b := route.Budget{MaxScans: s.cfg.MaxHops, Deadline: deadline}
	exit := route.GreedyCSRPartial(node.Graph(), tv, sv, node.OwnedMask(), b, &es.sc, res)
	segDur := time.Since(start)
	tm.RouteUs += segDur.Microseconds()
	s.phaseLat[phaseRoute].Record(segDur)
	rt.add(obs.SpanLocalRoute, start, segDur, "", "partial", "")
	var fwd routeFwd
	if exit >= 0 {
		fwdStart := time.Now()
		hop, hs, ok := s.forwardHop(ctx, graphName, exit, tv, deadline, 1, rt, tm)
		tm.ForwardUs += time.Since(fwdStart).Microseconds()
		fwd.hedges = hs.hedges + hop.Hedges
		fwd.failovers = hs.failovers + hop.Failovers
		if ok {
			mergeHop(res, hop)
			fwd.forwards = 1 + hop.Forwards
		} else {
			s.shardUnreachable.Add(1)
			res.Success = false
			res.Failure = route.FailShardUnreachable
			res.Stuck = -1
			res.Unique = len(res.Path)
			fwd.forwards = 1
			logger.Warn("shard unreachable", "graph", graphName,
				"exit_vertex", exit, "t", tv)
		}
	}
	core.RecordEpisode(*res, time.Since(start))
	return fwd
}

// mergeHop stitches a hop continuation onto the local segment. The
// continuation starts at the exit vertex the segment already ends with, so
// its first vertex is dropped; greedy is strictly objective-increasing, so
// the merged path has no revisits and Unique stays len(Path).
func mergeHop(res *route.Result, hop HopResponse) {
	if len(hop.Path) > 1 {
		res.Path = append(res.Path, hop.Path[1:]...)
	}
	res.Moves += hop.Moves
	res.Unique = len(res.Path)
	res.Success = hop.Success
	res.Failure = route.Failure(hop.Failure)
	res.Stuck = hop.Stuck
	res.Truncated = hop.Failure == string(route.FailTruncated)
}

// hopStats counts the forwarding decisions made locally for one forward:
// hedged second attempts fired and successes obtained at a replica other
// than the first choice. Downstream hops report their own counts inside
// HopResponse; the entry daemon sums both for the episode totals.
type hopStats struct {
	hedges    int
	failovers int
}

// forwardHop hands the walk at vertex `from` to the replica set owning it
// and returns the classified continuation. Candidates come from OwnersOf in
// deterministic failover order (alive before suspect, then replica id);
// open-breaker peers are skipped. The first candidate is posted immediately;
// if a hedge policy is configured and the candidate has not answered after
// the deterministic hedge delay, a second attempt fires at the next
// candidate and the first 200 wins — the loser is cancelled via its context
// and records nothing (slow is not a strike). A candidate that fails on its
// own counts against its (peer, graph) breaker, strikes the membership
// failure detector, and fails over to the next candidate immediately.
//
// When every candidate of a pass failed, retryable failures (transport
// errors, 5xx) back off and retry under the request deadline with a fresh
// candidate list; pure-4xx passes are permanent. ok is false when no answer
// could be obtained — no routable owner, breakers open, candidates and
// retries exhausted, deadline spent — and the caller classifies the episode
// shard-unreachable.
func (s *Server) forwardHop(ctx context.Context, graphName string, from, t int, deadline time.Time, depth int, rt *reqTrace, tm *Timings) (HopResponse, hopStats, bool) {
	logger := obs.Logger(ctx)
	node := s.clusterNode
	var stats hopStats
	for attempt := 1; ; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return HopResponse{}, stats, false
		}
		owners := node.OwnersOf(from)
		if len(owners) == 0 {
			logger.Warn("forward failed", "reason", "no routable owner", "vertex", from)
			return HopResponse{}, stats, false
		}
		cands := owners[:0:0]
		for _, p := range owners {
			if _, err := s.peerBreaker(p.ID, graphName).Allow(); err == nil {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			logger.Warn("forward failed", "reason", "peer breakers open", "vertex", from, "replicas", len(owners))
			return HopResponse{}, stats, false
		}
		resp, retryable, ok := s.tryReplicas(ctx, graphName, from, t, deadline, depth, cands, &stats, rt, tm)
		if ok {
			return resp, stats, true
		}
		if !retryable || attempt >= s.cfg.Retry.MaxAttempts {
			return HopResponse{}, stats, false
		}
		wait := s.cfg.Retry.Backoff(hash64(uint64(from), uint64(t)), attempt)
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		if wait > 0 {
			bkStart := time.Now()
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
				slept := time.Since(bkStart)
				tm.BackoffUs += slept.Microseconds()
				s.phaseLat[phaseBackoff].Record(slept)
				rt.add(obs.SpanRetryBackoff, bkStart, slept, "",
					fmt.Sprintf("forward attempt %d", attempt), "")
			case <-ctx.Done():
				timer.Stop()
				return HopResponse{}, stats, false
			}
		}
	}
}

// postResult is one replica attempt's answer, tagged with its candidate
// index and the round-trip wall time.
type postResult struct {
	idx    int
	resp   HopResponse
	status int
	err    error
	dur    time.Duration
}

// tryReplicas runs one failover pass over the candidate replicas: post to
// the first, hedge onto the second after the deterministic delay, fail over
// to the next on observed failure, first 200 wins. retryable reports
// whether at least one failure was transient (transport error or 5xx) — a
// pure-4xx pass will not improve on retry.
//
// Tracing: each launched attempt gets a forward_rpc span whose id is
// allocated serially in the select loop (deterministic despite racing RPCs)
// and rides the Traceparent header, so the receiving daemon's hop root
// parents onto it. A cancelled loser still publishes its span (err
// "cancelled") — the peer may have served the hop and recorded children
// under that id, and a published parent is what keeps stitched trees free of
// orphans.
func (s *Server) tryReplicas(ctx context.Context, graphName string, from, t int, deadline time.Time, depth int, cands []cluster.Peer, stats *hopStats, rt *reqTrace, tm *Timings) (HopResponse, bool, bool) {
	logger := obs.Logger(ctx)
	node := s.clusterNode
	req := HopRequest{
		Graph: graphName,
		S:     from, T: t,
		DeadlineMs: time.Until(deadline).Milliseconds(),
		Depth:      depth,
	}

	results := make(chan postResult, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	spanIDs := make([]string, len(cands))
	starts := make([]time.Time, len(cands))
	ended := make([]bool, len(cands))
	passStart := time.Now()
	defer func() {
		// Cancel whatever is still in flight — the losers of a won race.
		// Their goroutines drain into the buffered channel and their
		// cancellation errors are never recorded against breaker or
		// membership: being slower than the winner is not a failure. Their
		// spans are published as cancelled so downstream hop spans keep a
		// recorded parent.
		for i, cancel := range cancels {
			if cancel != nil {
				cancel()
				if !ended[i] {
					rt.end(spanIDs[i], obs.SpanForwardRPC, starts[i], time.Since(starts[i]),
						cands[i].ID, fmt.Sprintf("hop depth=%d", depth), "cancelled")
				}
			}
		}
	}()
	hedgedIdx := -1 // candidate index launched by the hedge timer
	launch := func(i int) {
		actx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		spanIDs[i] = rt.allocID()
		starts[i] = time.Now()
		tp := rt.traceparent(spanIDs[i])
		s.forwards.Add(1)
		go func() {
			t0 := time.Now()
			resp, status, err := s.postHop(actx, cands[i], req, deadline, tp)
			results <- postResult{i, resp, status, err, time.Since(t0)}
		}()
	}

	launch(0)
	next, pending := 1, 1
	var hedgeC <-chan time.Time
	hedge := cluster.HedgePolicy{After: s.cfg.HedgeAfter, Seed: s.cfg.Retry.Seed}
	if hedge.Enabled() && next < len(cands) {
		c, stop := s.hedgeTimer(hedge.Delay(hash64(uint64(from), uint64(t), uint64(depth))))
		defer stop()
		hedgeC = c
	}

	retryable := false
	for pending > 0 {
		select {
		case <-ctx.Done():
			return HopResponse{}, false, false
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				hedgedIdx = next
				stats.hedges++
				s.hedges.Add(1)
				hedgeWait := time.Since(passStart)
				tm.HedgeUs += hedgeWait.Microseconds()
				s.phaseLat[phaseHedge].Record(hedgeWait)
				rt.add(obs.SpanHedgeWait, passStart, hedgeWait,
					cands[next].ID, fmt.Sprintf("hedge idx=%d", next), "")
				logger.Debug("forward hedged", "vertex", from,
					"first", cands[0].ID, "hedge", cands[next].ID)
				launch(next)
				next++
				pending++
			}
		case r := <-results:
			pending--
			peer := cands[r.idx]
			pb := s.peerBreaker(peer.ID, graphName)
			s.phaseLat[phaseForward].Record(r.dur)
			if r.err == nil && r.status == http.StatusOK {
				ended[r.idx] = true
				rt.end(spanIDs[r.idx], obs.SpanForwardRPC, starts[r.idx], r.dur,
					peer.ID, fmt.Sprintf("hop depth=%d", depth), "")
				pb.Record(false)
				node.Members().ReportSuccess(peer.ID)
				switch {
				case r.idx == hedgedIdx:
					s.hedgeWins.Add(1)
					s.hedgeWinLat.Record(r.dur)
				case r.idx > 0:
					stats.failovers++
					s.failovers.Add(1)
					s.failoverLat.Record(time.Since(passStart))
				}
				return r.resp, false, true
			}
			s.forwardFails.Add(1)
			pb.Record(true)
			node.Members().ReportFailure(peer.ID)
			var errMsg string
			if r.err != nil {
				retryable = true
				errMsg = r.err.Error()
				logger.Warn("forward failed", "peer", peer.ID, "err", r.err)
			} else {
				errMsg = fmt.Sprintf("status %d", r.status)
				logger.Warn("forward failed", "peer", peer.ID, "status", r.status)
				if r.status < 400 || r.status >= 500 {
					retryable = true
				}
			}
			ended[r.idx] = true
			rt.end(spanIDs[r.idx], obs.SpanForwardRPC, starts[r.idx], r.dur,
				peer.ID, fmt.Sprintf("hop depth=%d", depth), errMsg)
			if next < len(cands) {
				launch(next)
				next++
				pending++
			}
		}
	}
	return HopResponse{}, retryable, false
}

// postHop is one POST /cluster/hop round trip, bounded by the request
// deadline and carrying the request id across the hop (satellite of the
// observability story: one id labels the episode on every shard it
// touches). tp, when non-empty, is the Traceparent header value naming the
// sender's forward_rpc span, so the receiver's spans parent onto it.
func (s *Server) postHop(ctx context.Context, peer cluster.Peer, req HopRequest, deadline time.Time, tp string) (HopResponse, int, error) {
	var resp HopResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, 0, err
	}
	hctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	hreq, err := http.NewRequestWithContext(hctx, http.MethodPost,
		"http://"+peer.ID+"/cluster/hop", bytes.NewReader(body))
	if err != nil {
		return resp, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		hreq.Header.Set("X-Request-ID", id)
	}
	if tp != "" {
		hreq.Header.Set(obs.TraceHeader, tp)
	}
	hresp, err := s.clusterClient.Do(hreq)
	if err != nil {
		return resp, 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		return resp, hresp.StatusCode, nil
	}
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 8<<20)).Decode(&resp); err != nil {
		return resp, hresp.StatusCode, err
	}
	return resp, hresp.StatusCode, nil
}

// handleClusterHop serves POST /cluster/hop: route the continuation of a
// peer's greedy walk over the local shard, forwarding again if it crosses
// out. Hops bypass the admission pool — they are the continuation of a
// request already admitted at the entry daemon, and waiting for a slot here
// could deadlock two shards forwarding into each other — but they respect
// draining. Any classified outcome is 200; the entry daemon records the
// episode, so this handler touches no engine counters.
func (s *Server) handleClusterHop(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	node := s.clusterNode
	if node == nil {
		writeError(w, http.StatusNotFound, 0, "not clustered")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "server draining")
		return
	}
	defer s.inflight.Done()

	var req HopRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = DefaultGraph
	}
	nw, ok := s.Network(graphName)
	if !ok {
		writeError(w, http.StatusNotFound, 0, "unknown graph %q", graphName)
		return
	}
	if nw.Graph != node.Graph() {
		writeError(w, http.StatusConflict, 0, "graph %q is not the clustered snapshot", graphName)
		return
	}
	if nw.LiveOverlay() != nil {
		writeError(w, http.StatusConflict, 0, "graph %q carries a live overlay; hops route over the immutable base only", graphName)
		return
	}
	if req.S < 0 || req.S >= nw.Graph.N() || req.T < 0 || req.T >= nw.Graph.N() {
		writeError(w, http.StatusBadRequest, 0, "vertex pair (%d, %d) out of range (n = %d)",
			req.S, req.T, nw.Graph.N())
		return
	}
	s.hopsServed.Add(1)

	// The forwarding daemon records its own side of the trace: a hop root
	// parented on the caller's forward_rpc span (adopted from Traceparent),
	// with this shard's local segment and onward forwards as children —
	// without it, stitched trees would show the entry daemon only.
	rt := s.startHopTrace(r, fmt.Sprintf("depth=%d", req.Depth))
	defer func() { rt.finish("") }()

	deadline := time.Now().Add(s.cfg.RequestTimeout)
	if req.DeadlineMs > 0 {
		if d := time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond); d.Before(deadline) {
			deadline = d
		}
	}
	if req.Depth > maxHopDepth {
		rt.finish("truncated")
		logger.Warn("hop chain truncated", "depth", req.Depth, "s", req.S, "t", req.T)
		writeJSON(w, http.StatusOK, HopResponse{
			Failure: string(route.FailTruncated),
			Stuck:   -1,
			Path:    []int{req.S},
		})
		return
	}

	es := episodePool.Get().(*episodeState)
	defer episodePool.Put(es)
	res := &es.out
	b := route.Budget{MaxScans: s.cfg.MaxHops, Deadline: deadline}
	segStart := time.Now()
	exit := route.GreedyCSRPartial(node.Graph(), req.T, req.S, node.OwnedMask(), b, &es.sc, res)
	segDur := time.Since(segStart)
	s.phaseLat[phaseRoute].Record(segDur)
	rt.add(obs.SpanLocalRoute, segStart, segDur, "", "partial", "")
	// The hop's Timings stay local: HopResponse carries no attribution (the
	// entry daemon owns the merged episode), but the per-phase histograms and
	// spans above still need the accumulator forwardHop threads through.
	tm := &Timings{}
	resp := HopResponse{}
	if exit >= 0 {
		hop, hs, ok := s.forwardHop(r.Context(), graphName, exit, req.T, deadline, req.Depth+1, rt, tm)
		resp.Hedges = hs.hedges + hop.Hedges
		resp.Failovers = hs.failovers + hop.Failovers
		if ok {
			mergeHop(res, hop)
			resp.Forwards = 1 + hop.Forwards
		} else {
			s.shardUnreachable.Add(1)
			res.Success = false
			res.Failure = route.FailShardUnreachable
			res.Stuck = -1
			res.Unique = len(res.Path)
			resp.Forwards = 1
		}
	}
	resp.Success = res.Success
	resp.Failure = string(res.Failure)
	resp.Stuck = res.Stuck
	resp.Moves = res.Moves
	resp.Path = append([]int(nil), res.Path...)
	logger.Debug("hop served", "s", req.S, "t", req.T, "depth", req.Depth,
		"success", resp.Success, "failure", resp.Failure, "forwards", resp.Forwards)
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterGossip serves POST /cluster/gossip: merge the sender and its
// relayed view into the membership and answer with ours — the pull half of
// push/pull. Gossip stays up while draining so peers observe the shutdown
// as liveness, not silence.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	node := s.clusterNode
	if node == nil {
		writeError(w, http.StatusNotFound, 0, "not clustered")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	var req cluster.GossipRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	view := node.Members().Receive(req.From, req.View)
	writeJSON(w, http.StatusOK, cluster.GossipResponse{Self: node.Self(), View: view})
}

// writeClusterMetrics emits the smallworld_cluster_* families (only called
// when cluster mode is on).
func (s *Server) writeClusterMetrics(p *obs.PromWriter) {
	node := s.clusterNode
	p.Family("smallworld_cluster_forwards_total", "counter", "Hop forwards attempted.")
	p.SampleInt("smallworld_cluster_forwards_total", nil, s.forwards.Load())
	p.Family("smallworld_cluster_forward_failures_total", "counter", "Hop forward attempts that failed (transport error, non-200, breaker open).")
	p.SampleInt("smallworld_cluster_forward_failures_total", nil, s.forwardFails.Load())
	p.Family("smallworld_cluster_shard_unreachable_total", "counter", "Episodes classified shard-unreachable at this daemon.")
	p.SampleInt("smallworld_cluster_shard_unreachable_total", nil, s.shardUnreachable.Load())
	p.Family("smallworld_cluster_hops_served_total", "counter", "POST /cluster/hop continuations served.")
	p.SampleInt("smallworld_cluster_hops_served_total", nil, s.hopsServed.Load())
	p.Family("smallworld_cluster_hedges_total", "counter", "Hedged second forward attempts fired.")
	p.SampleInt("smallworld_cluster_hedges_total", nil, s.hedges.Load())
	p.Family("smallworld_cluster_hedge_wins_total", "counter", "Hedged attempts whose response won the race.")
	p.SampleInt("smallworld_cluster_hedge_wins_total", nil, s.hedgeWins.Load())
	p.Family("smallworld_cluster_failovers_total", "counter", "Forwards that succeeded at a replica other than the first choice.")
	p.SampleInt("smallworld_cluster_failovers_total", nil, s.failovers.Load())
	p.Family("smallworld_cluster_gossip_rounds_total", "counter", "Gossip rounds ticked.")
	p.SampleInt("smallworld_cluster_gossip_rounds_total", nil, int64(node.Members().Round()))
	p.Family("smallworld_cluster_hedge_win_latency_seconds", "histogram", "Round-trip latency of hedged attempts that won their race.")
	s.hedgeWinLat.WriteHistogramSamples(p, "smallworld_cluster_hedge_win_latency_seconds", nil)
	p.Family("smallworld_cluster_failover_latency_seconds", "histogram", "Time from a forward pass's first attempt to a success at a non-first-choice replica.")
	s.failoverLat.WriteHistogramSamples(p, "smallworld_cluster_failover_latency_seconds", nil)

	counts := node.Members().CountByState()
	p.Family("smallworld_cluster_peers", "gauge", "Known peers by failure-detector state.")
	for _, st := range []cluster.PeerState{cluster.StateAlive, cluster.StateSuspect, cluster.StateDown} {
		p.SampleInt("smallworld_cluster_peers",
			[]obs.Label{{Name: "state", Value: st.String()}}, int64(counts[st]))
	}

	type pbSample struct {
		peer, graph string
		state       float64
		opens       int64
	}
	s.peerBreakerMu.Lock()
	samples := make([]pbSample, 0, len(s.peerBreakers))
	for key, b := range s.peerBreakers {
		samples = append(samples, pbSample{key.peer, key.graph, breakerStateValue(b.State()), b.Opens()})
	}
	s.peerBreakerMu.Unlock()
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].peer != samples[j].peer {
			return samples[i].peer < samples[j].peer
		}
		return samples[i].graph < samples[j].graph
	})
	p.Family("smallworld_cluster_peer_breaker_state", "gauge", "Forward breaker state per (peer, graph): 0 closed, 1 open, 2 half-open.")
	for _, b := range samples {
		p.Sample("smallworld_cluster_peer_breaker_state",
			[]obs.Label{{Name: "peer", Value: b.peer}, {Name: "graph", Value: b.graph}}, b.state)
	}
	p.Family("smallworld_cluster_peer_breaker_opens_total", "counter", "Cumulative forward breaker trips to open.")
	for _, b := range samples {
		p.SampleInt("smallworld_cluster_peer_breaker_opens_total",
			[]obs.Label{{Name: "peer", Value: b.peer}, {Name: "graph", Value: b.graph}}, b.opens)
	}
}

// clusterStats fills the cluster slice of ServeStats.
func (s *Server) clusterStats(st *ServeStats) {
	node := s.clusterNode
	if node == nil {
		return
	}
	st.Cluster = &ClusterStats{
		Self:             node.Self().ID,
		Shard:            node.Self().Shard,
		Replica:          node.Replica(),
		OwnedVertices:    node.OwnedCount(),
		GossipRounds:     node.Members().Round(),
		Forwards:         s.forwards.Load(),
		ForwardFails:     s.forwardFails.Load(),
		HopsServed:       s.hopsServed.Load(),
		ShardUnreachable: s.shardUnreachable.Load(),
		Hedges:           s.hedges.Load(),
		HedgeWins:        s.hedgeWins.Load(),
		Failovers:        s.failovers.Load(),
		Peers:            map[string]string{},
		PeerBreakers:     map[string]string{},
	}
	for _, ps := range node.Members().Snapshot() {
		st.Cluster.Peers[ps.Peer.ID] = ps.StateS
	}
	s.peerBreakerMu.Lock()
	for key, b := range s.peerBreakers {
		st.Cluster.PeerBreakers[key.peer+"/"+key.graph] = fmt.Sprintf("%s (opens=%d)", b.State(), b.Opens())
	}
	s.peerBreakerMu.Unlock()
	st.Cluster.Replication = s.replicationStats()
}

// ClusterStats is the cluster slice of the "smallworld.serve" expvar export.
type ClusterStats struct {
	Self             string
	Shard            string
	Replica          int
	OwnedVertices    int
	GossipRounds     uint64
	Forwards         int64
	ForwardFails     int64
	HopsServed       int64
	ShardUnreachable int64
	Hedges           int64
	HedgeWins        int64
	Failovers        int64
	// Replication describes journal shipping and anti-entropy (nil unless a
	// replicated mutation log is attached).
	Replication *ReplicationStats `json:",omitempty"`
	// Peers maps peer id to failure-detector state.
	Peers map[string]string
	// PeerBreakers maps "peer/graph" to forward breaker state.
	PeerBreakers map[string]string
}
