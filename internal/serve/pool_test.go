package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPoolAdmissionBounds verifies the two bounds independently: workers
// bound concurrency, queue bounds waiters, and everything past
// workers+queue is shed immediately.
func TestPoolAdmissionBounds(t *testing.T) {
	p := NewPool(2, 1)
	ctx := context.Background()

	// Fill both worker slots.
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := p.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third request queues (does not error, does not hold a slot yet).
	queued := make(chan error, 1)
	go func() {
		err := p.Acquire(ctx)
		if err == nil {
			defer p.Release()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return p.Waiting() == 1 })

	// Fourth request exceeds workers+queue: shed, not queued.
	if err := p.Acquire(ctx); err != ErrOverloaded {
		t.Fatalf("Acquire #4 = %v, want ErrOverloaded", err)
	}
	if got := p.Shed(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}

	// Releasing a worker admits the queued request.
	p.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire = %v", err)
	}
	p.Release()
}

// TestPoolAcquireCancelled verifies a queued waiter honours its context.
func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(1, 4)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Acquire(ctx) }()
	waitFor(t, func() bool { return p.Waiting() == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Acquire = %v, want context.Canceled", err)
	}
	// The cancelled waiter must have released its admission ticket.
	p.Release()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after cancel = %v", err)
	}
	p.Release()
}

// TestPoolConcurrentHammer floods the pool from many goroutines and checks
// the books balance: every admit is released, nothing hangs.
func TestPoolConcurrentHammer(t *testing.T) {
	p := NewPool(4, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Acquire(context.Background())
			mu.Lock()
			if err != nil {
				shed++
				mu.Unlock()
				return
			}
			admitted++
			mu.Unlock()
			time.Sleep(time.Millisecond)
			p.Release()
		}()
	}
	wg.Wait()
	if admitted+shed != 200 {
		t.Fatalf("admitted %d + shed %d != 200", admitted, shed)
	}
	if p.InFlight() != 0 || p.Waiting() != 0 {
		t.Fatalf("pool not drained: inflight=%d waiting=%d", p.InFlight(), p.Waiting())
	}
	if int(p.Shed()) != shed {
		t.Fatalf("Shed counter %d != observed %d", p.Shed(), shed)
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
