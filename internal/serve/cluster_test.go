package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/route"
	"repro/internal/torus"
)

// shardDaemon is one member of an httptest cluster: a Server with a shard
// map, its listener, and the address peers know it by.
type shardDaemon struct {
	srv  *Server
	ts   *httptest.Server
	node *cluster.Node
	addr string
}

// newTestCluster spins up one httptest daemon per shard spec over a shared
// snapshot, with full static membership (no gossip loop — membership state
// is driven by forward successes/failures, deterministically).
func newTestCluster(t *testing.T, nw *core.Network, specs []string, cfg Config, mcfg cluster.Config) []*shardDaemon {
	t.Helper()
	daemons := make([]*shardDaemon, len(specs))
	for i, spec := range specs {
		p, err := torus.ParsePrefix(spec)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.RequestIDSalt = uint64(i + 1)
		srv := New(c)
		srv.AddNetwork(DefaultGraph, nw)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		addr := strings.TrimPrefix(ts.URL, "http://")
		node, err := cluster.NewNode(nw.Graph, p, addr, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.EnableCluster(node, nil)
		daemons[i] = &shardDaemon{srv: srv, ts: ts, node: node, addr: addr}
	}
	for _, d := range daemons {
		for _, p := range daemons {
			if p != d {
				d.node.Members().Add(p.node.Self())
			}
		}
	}
	return daemons
}

// clusterPost is postRoute returning the bare status and decoding the body
// both ways regardless of status, which the chaos test needs (it meets
// breaker-open 503s and shard-unreachable 502s alike).
func clusterPost(t *testing.T, url string, req RouteRequest) (int, RouteResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /route: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var rr RouteResponse
	var er ErrorResponse
	_ = json.Unmarshal(buf.Bytes(), &rr)
	_ = json.Unmarshal(buf.Bytes(), &er)
	return resp.StatusCode, rr, er
}

// TestClusterEquivalence pins the tentpole invariant: a 3-shard cluster
// answers every query with the exact episode single-node GreedyCSR
// produces — same delivery, same moves, same path — no matter which shard
// the query enters at, with cross-shard walks visibly forwarded.
func TestClusterEquivalence(t *testing.T) {
	nw := testNetwork(t, 600, 11)
	daemons := newTestCluster(t, nw, []string{"0", "10", "11"},
		Config{RequestTimeout: 5 * time.Second}, cluster.Config{Seed: 1})

	var sc route.Scratch
	var ref route.Result
	forwarded := 0
	n := nw.Graph.N()
	for i := 0; i < 60; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			continue
		}
		route.GreedyCSR(nw.Graph, tt, s, route.Budget{}, &sc, &ref)
		entry := daemons[i%len(daemons)]
		status, got, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt, IncludePath: true})
		if status != http.StatusOK {
			t.Fatalf("pair (%d,%d) via %s: status %d (%s)", s, tt, entry.addr, status, er.Error)
		}
		if got.Success != ref.Success || got.Moves != ref.Moves ||
			got.Unique != ref.Unique || got.Failure != string(ref.Failure) {
			t.Fatalf("pair (%d,%d) via %s: cluster (success=%v moves=%d unique=%d failure=%q) != single-node (success=%v moves=%d unique=%d failure=%q)",
				s, tt, entry.addr, got.Success, got.Moves, got.Unique, got.Failure,
				ref.Success, ref.Moves, ref.Unique, ref.Failure)
		}
		if !reflect.DeepEqual(got.Path, ref.Path) {
			t.Fatalf("pair (%d,%d): cluster path %v != single-node path %v", s, tt, got.Path, ref.Path)
		}
		if got.Forwards > 0 {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Fatal("no query ever crossed a shard boundary — the test exercised nothing")
	}
}

// TestClusterChaos is the kill-one-shard drill: under concurrent load, one
// shard dies mid-flight. Every request must come back with a classified
// status within the request deadline — no hangs, no unclassified 500s —
// dead-shard routes must surface as shard-unreachable, and the victim's
// forward breakers on the survivors must open.
func TestClusterChaos(t *testing.T) {
	nw := testNetwork(t, 600, 7)
	const reqTimeout = 800 * time.Millisecond
	cfg := Config{
		Workers: 8, QueueDepth: 64,
		RequestTimeout: reqTimeout,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 9},
		Breaker:        BreakerConfig{Window: 8, FailureThreshold: 0.5, MinSamples: 2, OpenFor: 30 * time.Second, HalfOpenProbes: 1},
	}
	daemons := newTestCluster(t, nw, []string{"0", "10", "11"}, cfg,
		cluster.Config{Seed: 2, Strikes: 1000}) // strikes off: the breaker is under test

	victim := daemons[2]
	survivors := daemons[:2]
	n := nw.Graph.N()

	type outcome struct {
		status  int
		failure string
		errMsg  string
		elapsed time.Duration
	}
	var mu sync.Mutex
	var outcomes []outcome

	const workers = 3
	const perWorker = 40
	var wg sync.WaitGroup
	var killOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/3 {
					killOnce.Do(victim.ts.Close) // the shard dies mid-load
				}
				s := (w*perWorker + i*7919) % n
				tt := (i*104729 + w + 1) % n
				if s == tt {
					tt = (tt + 1) % n
				}
				entry := survivors[(w+i)%len(survivors)]
				start := time.Now()
				status, rr, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt})
				mu.Lock()
				outcomes = append(outcomes, outcome{status, rr.Failure, er.Error, time.Since(start)})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	classified := map[int]bool{
		http.StatusOK: true, http.StatusBadGateway: true,
		http.StatusServiceUnavailable: true, http.StatusGatewayTimeout: true,
		http.StatusTooManyRequests: true,
	}
	unreachable := 0
	for _, o := range outcomes {
		if !classified[o.status] {
			t.Errorf("unclassified status %d (failure=%q err=%q)", o.status, o.failure, o.errMsg)
		}
		if o.status != http.StatusOK && o.failure == "" && o.errMsg == "" {
			t.Errorf("status %d with neither failure class nor error message", o.status)
		}
		if o.elapsed > reqTimeout+2*time.Second {
			t.Errorf("request overran the deadline: %v (status %d)", o.elapsed, o.status)
		}
		if o.failure == string(route.FailShardUnreachable) {
			unreachable++
		}
	}
	if len(outcomes) != workers*perWorker {
		t.Fatalf("lost requests: %d outcomes of %d", len(outcomes), workers*perWorker)
	}
	if unreachable == 0 {
		t.Fatal("no request was classified shard-unreachable after the kill")
	}

	breakerOpen := false
	for _, d := range survivors {
		if d.srv.PeerBreaker(victim.addr, DefaultGraph).State() == BreakerOpen {
			breakerOpen = true
		}
	}
	if !breakerOpen {
		t.Fatal("no survivor opened its forward breaker for the dead shard")
	}
	for _, d := range survivors {
		if got := d.srv.Stats().Cluster.ShardUnreachable; got > 0 {
			return
		}
	}
	t.Fatal("no survivor counted a shard-unreachable episode")
}

// TestClusterEndpointsUnclustered pins the single-node behaviour of the
// cluster endpoints: 404, not a hang or a 500.
func TestClusterEndpointsUnclustered(t *testing.T) {
	srv := New(Config{RequestIDSalt: 1})
	srv.AddNetwork(DefaultGraph, testNetwork(t, 64, 3))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/cluster/hop", "/cluster/gossip"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on unclustered daemon = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRequestIDAdoption pins satellite 1: a sane incoming X-Request-ID is
// adopted (response echoes it), a hostile one is replaced with a minted id.
func TestRequestIDAdoption(t *testing.T) {
	srv := New(Config{RequestIDSalt: 1})
	srv.AddNetwork(DefaultGraph, testNetwork(t, 64, 3))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(id string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}
	if got := get("hop-abc.123"); got != "hop-abc.123" {
		t.Errorf("sane id not adopted: got %q", got)
	}
	if got := get("evil id;drop"); got == "evil id;drop" || got == "" {
		t.Errorf("hostile id adopted or dropped: %q", got)
	}
	if got := get(strings.Repeat("a", 65)); len(got) > 64 {
		t.Errorf("over-long id adopted: %q", got)
	}
	if got := get(""); got == "" {
		t.Error("no id minted when none presented")
	}
}

// TestReadyzFingerprint pins satellite 2: the ready body carries each
// snapshot's fingerprint and, when clustered, the shard and peer table.
func TestReadyzFingerprint(t *testing.T) {
	nw := testNetwork(t, 64, 5)
	daemons := newTestCluster(t, nw, []string{"0", "1"},
		Config{}, cluster.Config{Seed: 3})

	resp, err := http.Get(daemons[0].ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%016x", nw.Graph.Fingerprint())
	if g, ok := ready.Graphs[DefaultGraph]; !ok || g.Fingerprint != want {
		t.Fatalf("readyz fingerprint = %+v, want %s", ready.Graphs, want)
	}
	if ready.Cluster == nil || ready.Cluster.Shard != "0" {
		t.Fatalf("readyz cluster = %+v, want shard 0", ready.Cluster)
	}
	if len(ready.Cluster.Peers) != 1 || ready.Cluster.Peers[0].Peer.ID != daemons[1].addr {
		t.Fatalf("readyz peers = %+v, want [%s]", ready.Cluster.Peers, daemons[1].addr)
	}
}

// TestHopSnapshotMismatch pins the 409 guard: a hop against a graph that is
// not the clustered snapshot is refused, and the forwarding side classifies
// the episode instead of looping.
func TestHopSnapshotMismatch(t *testing.T) {
	nw := testNetwork(t, 64, 5)
	daemons := newTestCluster(t, nw, []string{"0", "1"},
		Config{}, cluster.Config{Seed: 4})

	// Install a different snapshot under another name on daemon 0 and hop
	// against it.
	other := testNetwork(t, 64, 6)
	daemons[0].srv.AddNetwork("other", other)
	body, _ := json.Marshal(HopRequest{Graph: "other", S: 0, T: 1})
	resp, err := http.Post(daemons[0].ts.URL+"/cluster/hop", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("hop against non-clustered snapshot = %d, want 409", resp.StatusCode)
	}
}

// benchNetwork builds a b-scoped GIRG for the forwarding-overhead
// benchmarks.
func benchNetwork(b *testing.B, n float64, seed uint64) *core.Network {
	b.Helper()
	p := girg.DefaultParams(n)
	p.FixedN = true
	nw, err := core.NewGIRG(p, seed, girg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkRouteSingleNode measures POST /route end to end against one
// unclustered daemon — the baseline for the cluster forwarding overhead.
// benchLogger drops the per-episode INFO lines that would otherwise
// dominate the benchmark and drown `go test -bench` output.
func benchLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func BenchmarkRouteSingleNode(b *testing.B) {
	nw := benchNetwork(b, 2000, 11)
	srv := New(Config{Workers: 4, RequestIDSalt: 1, RequestTimeout: 10 * time.Second, Logger: benchLogger()})
	srv.AddNetwork(DefaultGraph, nw)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	benchRoutes(b, []string{ts.URL}, nw.Graph.N())
}

// BenchmarkRouteCluster3Shard measures the same queries against a 3-shard
// cluster on loopback HTTP: the delta over single-node is the hop
// forwarding overhead (serialize, POST, partial-route, stitch).
func BenchmarkRouteCluster3Shard(b *testing.B) {
	nw := benchNetwork(b, 2000, 11)
	var urls []string
	var daemons []*Server
	var nodes []*cluster.Node
	for i, spec := range []string{"0", "10", "11"} {
		p, err := torus.ParsePrefix(spec)
		if err != nil {
			b.Fatal(err)
		}
		srv := New(Config{Workers: 4, RequestIDSalt: uint64(i + 1), RequestTimeout: 10 * time.Second, Logger: benchLogger()})
		srv.AddNetwork(DefaultGraph, nw)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		addr := strings.TrimPrefix(ts.URL, "http://")
		node, err := cluster.NewNode(nw.Graph, p, addr, cluster.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		srv.EnableCluster(node, nil)
		urls = append(urls, ts.URL)
		daemons = append(daemons, srv)
		nodes = append(nodes, node)
	}
	for _, n := range nodes {
		for _, p := range nodes {
			if p != n {
				n.Members().Add(p.Self())
			}
		}
	}
	_ = daemons
	benchRoutes(b, urls, nw.Graph.N())
}

func benchRoutes(b *testing.B, urls []string, n int) {
	client := &http.Client{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			tt = (tt + 1) % n
		}
		body, _ := json.Marshal(RouteRequest{S: s, T: tt})
		resp, err := client.Post(urls[i%len(urls)]+"/route", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var rr RouteResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
