// Package serve is the resilient serving layer of the repository: it turns
// the batch-oriented routing engine (package core) into a long-running
// daemon component that answers s→t routing queries over HTTP and degrades
// gracefully instead of falling over.
//
// Every request flows through three guards before it reaches the engine:
//
//	request → admission pool → circuit breaker → budgeted engine episode
//	               │                 │                    │
//	            429 when          503 while          retry transient
//	          queue is full     (graph,proto)       failures with
//	                             is failing         capped backoff
//
// The admission Pool bounds concurrency and queue depth, shedding overload
// as fast 429s. A per-(graph, protocol) Breaker watches the engine's
// failure classes and fails fast while a pair is unhealthy, with half-open
// probes to recover. Each admitted request routes under a server-side
// deadline mapped onto the engine's episode budgets, and transient failure
// classes (deadline, crashed-target) are retried with capped exponential
// backoff and deterministic jitter. Graph snapshots hot-swap atomically
// (POST /admin/swap) without dropping in-flight requests, and Drain lets
// SIGTERM wait for in-flight episodes before exit. Breaker and pool state
// are exported through expvar ("smallworld.serve", next to the engine's
// "smallworld.engine") for /debug/vars scraping.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graphio"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/route"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers bounds concurrently routing requests (default 4).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond Workers;
	// everything past Workers+QueueDepth is shed with 429 (default 16).
	QueueDepth int
	// RequestTimeout is the server-side deadline of one /route request,
	// retries and backoff included; each attempt's remaining share is mapped
	// onto the engine's episode wall-time budget (default 2s).
	RequestTimeout time.Duration
	// MaxHops is the per-attempt adjacency-query budget handed to the
	// engine (default 1 << 20; 0 keeps the default, -1 disables).
	MaxHops int
	// Retry is the transient-failure retry policy.
	Retry RetryPolicy
	// Breaker tunes the per-(graph, protocol) circuit breakers.
	Breaker BreakerConfig
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (default 1s); opened breakers hint their own remaining open time.
	RetryAfter time.Duration
	// MaxBatch bounds the items of one POST /route/batch request; larger
	// batches are rejected with 413 before any routing happens (default 256).
	// A batch occupies one admission slot for all its items, so the bound is
	// what keeps one giant batch from starving the pool.
	MaxBatch int
	// Logger is the server's structured logger; every request gets a
	// request-scoped child carrying the X-Request-ID. nil uses slog.Default.
	Logger *slog.Logger
	// Tracer, when non-nil, samples routing episodes into bounded per-hop
	// traces, exported on GET /debug/trace (see package obs). The tracer's
	// own SampleRate decides which requests are captured.
	Tracer *obs.Tracer
	// Spans, when non-nil, samples requests into distributed phase spans
	// (queue wait, local route, forward RPCs, hedge waits, ...), propagated
	// over cluster RPCs via the Traceparent header and exported on GET
	// /debug/trace after the episode traces. The span log's own SampleRate
	// and Seed decide which requests trace and with what ids.
	Spans *obs.SpanLog
	// RequestIDSalt salts the generated request ids; 0 derives a salt from
	// the process start time (tests pin it for reproducible ids).
	RequestIDSalt uint64
	// HedgeAfter enables hedged hop forwards in cluster mode: when the
	// first replica has not answered after a deterministic delay derived
	// from this base (see cluster.HedgePolicy), a second attempt fires at
	// the next surviving replica and the first response wins. 0 disables
	// hedging — forwards fail over sequentially only.
	HedgeAfter time.Duration
	// AntiEntropyInterval paces the background replication repair loop
	// started by RunAntiEntropy (default 2s).
	AntiEntropyInterval time.Duration
}

// withDefaults fills unset fields with serviceable defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	switch {
	case c.MaxHops == 0:
		c.MaxHops = 1 << 20
	case c.MaxHops < 0:
		c.MaxHops = 0
	}
	c.Retry = c.Retry.withDefaults()
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.AntiEntropyInterval <= 0 {
		c.AntiEntropyInterval = 2 * time.Second
	}
	return c
}

// Server is the resilient routing service: a set of named graph snapshots,
// an admission pool, per-(graph, protocol) circuit breakers, and the HTTP
// handlers that tie them to the engine.
type Server struct {
	cfg  Config
	pool *Pool

	// graphs is a copy-on-write name→network map: readers load the pointer
	// once and keep routing on that snapshot even while a swap installs a
	// successor, which is what makes hot-swap drop-free.
	graphs atomic.Pointer[map[string]*core.Network]

	breakerMu sync.Mutex
	breakers  map[string]*Breaker // keyed "graph/protocol"

	// Cluster mode (nil clusterNode = single-node daemon). Peer breakers are
	// separate from the (graph, protocol) request breakers above: a dead
	// peer's forwards must fail fast without poisoning shard-local routing.
	clusterNode   *cluster.Node
	clusterClient *http.Client
	peerBreakerMu sync.Mutex
	peerBreakers  map[peerKey]*Breaker

	forwards         atomic.Int64
	forwardFails     atomic.Int64
	hopsServed       atomic.Int64
	shardUnreachable atomic.Int64
	hedges           atomic.Int64
	hedgeWins        atomic.Int64
	failovers        atomic.Int64

	// hedgeTimer is the injectable clock behind hedged forwards: it returns
	// a channel that fires after d plus a stop function. Tests replace it to
	// fire the hedge deterministically; production wraps time.NewTimer.
	hedgeTimer func(d time.Duration) (<-chan time.Time, func())

	// Replication counters (journal shipping + anti-entropy; only move when
	// a mutation log and cluster mode are both enabled).
	shippedBatches  atomic.Int64
	shipFails       atomic.Int64
	importedBatches atomic.Int64
	aeRounds        atomic.Int64
	aePulled        atomic.Int64
	genLag          atomic.Int64

	// drainMu orders request registration against Drain: handlers register
	// under RLock, Drain flips the flag under Lock, so no handler can slip
	// past the draining check and Add to a WaitGroup that is already being
	// waited on.
	logger *slog.Logger
	tracer *obs.Tracer
	rids   *obs.RequestIDs

	// Distributed tracing (nil spans = phase tracing off). traceSeq numbers
	// entry requests for the deterministic sampling decision; localSeq
	// numbers internally-initiated traces (anti-entropy, journal ships) on a
	// separate id lane.
	spans    *obs.SpanLog
	traceSeq atomic.Uint64
	localSeq atomic.Uint64

	// Per-phase latency histograms behind smallworld_request_phase_seconds,
	// indexed by the phase constants in trace.go; recorded whether or not the
	// request is traced (atomic bumps, no allocation). hedgeWinLat times
	// hedged attempts that won their race, failoverLat the full failover pass
	// up to the non-first-choice success.
	phaseLat    [phaseCount]obs.LatencyHist
	hedgeWinLat obs.LatencyHist
	failoverLat obs.LatencyHist

	// Metrics federation counters (GET /cluster/metrics).
	fedScrapes     atomic.Int64
	fedScrapeFails atomic.Int64

	drainMu  sync.RWMutex
	inflight sync.WaitGroup
	draining atomic.Bool
	reqID    atomic.Uint64
	retries  atomic.Int64
	swaps    atomic.Int64
	// quarantined counts swap snapshots rejected by checksum/format
	// verification — a nonzero value means something is corrupting files on
	// the path into the daemon.
	quarantined atomic.Int64
	// swapNoops counts /admin/swap path loads whose fingerprint matched the
	// installed graph — answered 200 without touching the graph map.
	swapNoops atomic.Int64

	// Mutation mode (nil mutLog = immutable snapshots only). The log owns
	// durability; mutGraph names the single mutable slot. mutations counts
	// committed batches, compactSwaps the compacted snapshots hot-swapped in.
	mutMu        sync.Mutex
	mutLog       *mutate.Log
	mutGraph     string
	mutations    atomic.Int64
	compactSwaps atomic.Int64
}

// DefaultGraph is the graph name "" resolves to.
const DefaultGraph = "default"

// New builds a Server with cfg. Install at least one snapshot with
// AddNetwork before serving, or /readyz stays 503.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	salt := c.RequestIDSalt
	if salt == 0 {
		salt = uint64(time.Now().UnixNano())
	}
	logger := c.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		cfg:          c,
		pool:         NewPool(c.Workers, c.QueueDepth),
		breakers:     map[string]*Breaker{},
		peerBreakers: map[peerKey]*Breaker{},
		logger:       logger,
		tracer:       c.Tracer,
		spans:        c.Spans,
		rids:         obs.NewRequestIDs(salt),
	}
	s.hedgeTimer = func(d time.Duration) (<-chan time.Time, func()) {
		t := time.NewTimer(d)
		return t.C, func() { t.Stop() }
	}
	empty := map[string]*core.Network{}
	s.graphs.Store(&empty)
	activeServer.Store(s)
	return s
}

// AddNetwork atomically installs (or replaces) the named graph snapshot.
// In-flight requests keep the snapshot they resolved; only new requests see
// the replacement — hot-swap without a drop.
func (s *Server) AddNetwork(name string, nw *core.Network) {
	if name == "" {
		name = DefaultGraph
	}
	for {
		old := s.graphs.Load()
		next := make(map[string]*core.Network, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		next[name] = nw
		if s.graphs.CompareAndSwap(old, &next) {
			return
		}
	}
}

// Network resolves a named snapshot ("" = default).
func (s *Server) Network(name string) (*core.Network, bool) {
	if name == "" {
		name = DefaultGraph
	}
	nw, ok := (*s.graphs.Load())[name]
	return nw, ok
}

// GraphNames lists the installed snapshot names, sorted.
func (s *Server) GraphNames() []string {
	m := *s.graphs.Load()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// breaker returns the circuit breaker guarding one (graph, protocol) pair,
// creating it on first use.
func (s *Server) breaker(graph, proto string) *Breaker {
	key := graph + "/" + proto
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = NewBreaker(s.cfg.Breaker)
		s.breakers[key] = b
	}
	return b
}

// Breaker exposes the (graph, protocol) breaker for tests and admin
// tooling, creating it on first use like the request path does.
func (s *Server) Breaker(graph, proto string) *Breaker {
	if graph == "" {
		graph = DefaultGraph
	}
	if proto == "" {
		proto = string(core.ProtoGreedy)
	}
	return s.breaker(graph, proto)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginRequest registers one in-flight request unless the server is
// draining. Registration happens under drainMu so it cannot race Drain's
// flag flip and WaitGroup wait.
func (s *Server) beginRequest() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Drain flips the server into draining mode — /readyz turns 503 so load
// balancers stop sending traffic, new /route requests are rejected — and
// waits for every in-flight request to finish or ctx to expire. It is the
// SIGTERM half of graceful shutdown; pair it with http.Server.Shutdown,
// which closes listeners and waits for handlers at the connection level.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
}

// Handler returns the daemon's HTTP handler:
//
//	POST /route        one routing query (RouteRequest → RouteResponse)
//	POST /route/batch  many queries, one admission slot (BatchRouteRequest)
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 while draining or graphless)
//	GET  /metrics      Prometheus text exposition (engine, pool, breakers,
//	                   retries, swaps, tracer, Go runtime)
//	GET  /debug/vars   expvar (smallworld.engine + smallworld.serve)
//	GET  /debug/trace  sampled routing traces as JSONL (404 untraced)
//	GET  /debug/pprof  net/http/pprof profiles (heap, goroutine, cpu, ...)
//	POST /admin/swap   generate + atomically install a graph snapshot
//	POST /admin/mutate apply a journaled mutation batch to the live graph
//
// Every response carries an X-Request-ID header; the same id labels every
// slog line of the request (admission, retries, breaker trips, episodes).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/route/batch", s.handleRouteBatch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/admin/swap", s.handleSwap)
	mux.HandleFunc("/admin/mutate", s.handleMutate)
	mux.HandleFunc("/cluster/hop", s.handleClusterHop)
	mux.HandleFunc("/cluster/gossip", s.handleClusterGossip)
	mux.HandleFunc("/cluster/replicate", s.handleClusterReplicate)
	mux.HandleFunc("/cluster/segment", s.handleClusterSegment)
	mux.HandleFunc("/cluster/metrics", s.handleClusterMetrics)
	return s.withRequestID(mux)
}

// withRequestID is the edge middleware: it adopts the caller's X-Request-ID
// when one is presented (and sane), minting one otherwise, returns it in
// the X-Request-ID response header, and threads a request-scoped logger
// (carrying the id) plus the id itself through the request context, so
// every layer below — admission, retries, breaker trips, swaps, engine
// episodes — logs under one correlatable id. Adoption is what stitches a
// cluster episode together: the entry daemon's id rides every forwarded
// hop, so one grep over all shards' logs reconstructs the whole walk.
func (s *Server) withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			_, id = s.rids.Next()
		}
		w.Header().Set("X-Request-ID", id)
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithLogger(ctx, s.logger.With("request_id", id))
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// sanitizeRequestID vets an incoming X-Request-ID for adoption: at most 64
// bytes of [0-9A-Za-z_.-], or "" (mint our own). The bound keeps hostile
// headers out of logs and response headers.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '_', c == '.', c == '-':
		default:
			return ""
		}
	}
	return id
}

// handleReady is the readiness probe: ready means not draining and at least
// one snapshot installed. The 200 body reports each installed snapshot's
// fingerprint (so operators and peers can verify what a daemon actually
// serves) and, in cluster mode, the shard and membership view; the 503
// cases stay plain text, probes branch on status alone.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	graphs := *s.graphs.Load()
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case len(graphs) == 0:
		http.Error(w, "no graph loaded", http.StatusServiceUnavailable)
	default:
		resp := ReadyResponse{Status: "ok", Graphs: make(map[string]ReadyGraph, len(graphs))}
		for name, nw := range graphs {
			resp.Graphs[name] = ReadyGraph{
				Fingerprint: fmt.Sprintf("%016x", nw.Graph.Fingerprint()),
				Vertices:    nw.Graph.N(),
				Edges:       nw.Graph.M(),
				Label:       nw.Label,
				Live:        s.readyLive(name, nw),
			}
		}
		if node := s.clusterNode; node != nil {
			resp.Cluster = &ReadyCluster{
				Self:          node.Self().ID,
				Shard:         node.Self().Shard,
				Replica:       node.Replica(),
				OwnedVertices: node.OwnedCount(),
				Peers:         node.Members().Snapshot(),
			}
			// Replication visibility without Prometheus: the local log
			// position plus each same-shard replica's gossip-learned position
			// delta, so operators can see divergence straight off /readyz.
			if log, _, _ := s.replicationLog(); log != nil {
				pos := log.Position()
				resp.Cluster.Live = &pos
				resp.Cluster.ReplicaLag = node.ReplicaLags(pos.Epoch, pos.Generation)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes an ErrorResponse, attaching Retry-After (seconds,
// rounded up) when retryAfter > 0.
func writeError(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...interface{}) {
	resp := ErrorResponse{Error: fmt.Sprintf(format, args...)}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		resp.RetryAfterMs = retryAfter.Milliseconds()
	}
	writeJSON(w, status, resp)
}

// handleRoute serves POST /route: admission, breaker, then budgeted engine
// episodes with transient-failure retries.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	// Count the request as in-flight from here: Drain waits for the whole
	// handler, so an admitted episode always gets to write its response.
	if !s.beginRequest() {
		logger.Info("route rejected", "reason", "draining")
		writeError(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "server draining")
		return
	}
	defer s.inflight.Done()

	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = DefaultGraph
	}
	nw, ok := s.Network(graphName)
	if !ok {
		writeError(w, http.StatusNotFound, 0, "unknown graph %q (installed: %s)",
			graphName, strings.Join(s.GraphNames(), ", "))
		return
	}
	protoName := req.Protocol
	if protoName == "" {
		protoName = string(core.ProtoGreedy)
	}
	if _, err := core.Lookup(protoName); err != nil {
		writeError(w, http.StatusNotFound, 0, "%v", err)
		return
	}
	if n := nw.LiveN(); req.S < 0 || req.S >= n || req.T < 0 || req.T >= n {
		writeError(w, http.StatusBadRequest, 0, "vertex pair (%d, %d) out of range (n = %d)",
			req.S, req.T, n)
		return
	}
	// Validate the fault specs before spending a worker slot on them.
	if _, err := faults.NewPlan(0, req.Faults...); err != nil {
		writeError(w, http.StatusBadRequest, 0, "%v", err)
		return
	}

	// The distributed trace starts at admission: the queue wait is the first
	// phase of the request, and the sampling decision made here rides every
	// forwarded hop via the Traceparent header.
	rt := s.startEntryTrace()

	// Admission: bounded concurrency, bounded queue, fast shedding.
	qStart := time.Now()
	if err := s.pool.Acquire(r.Context()); err != nil {
		if err == ErrOverloaded {
			rt.finish("shed")
			logger.Warn("route shed", "reason", "overloaded",
				"inflight", s.pool.InFlight(), "waiting", s.pool.Waiting())
			writeError(w, http.StatusTooManyRequests, s.cfg.RetryAfter, "overloaded: %d in flight, %d queued",
				s.pool.InFlight(), s.pool.Waiting())
			return
		}
		rt.finish("cancelled while queued")
		logger.Info("route rejected", "reason", "cancelled while queued", "err", err)
		writeError(w, http.StatusServiceUnavailable, 0, "cancelled while queued: %v", err)
		return
	}
	defer s.pool.Release()
	queued := time.Since(qStart)
	s.phaseLat[phaseQueue].Record(queued)
	rt.add(obs.SpanQueueWait, qStart, queued, "", "", "")
	logger.Debug("route admitted", "graph", graphName, "protocol", protoName,
		"s", req.S, "t", req.T, "inflight", s.pool.InFlight(), "waiting", s.pool.Waiting())

	// From here /route is a batch of one: breaker, budgeted episodes and
	// retries all live in routeOne, shared with POST /route/batch.
	es := episodePool.Get().(*episodeState)
	defer episodePool.Put(es)
	req.Protocol = protoName
	out := s.routeOne(r, nw, graphName, req, time.Now().Add(s.cfg.RequestTimeout), es, true, rt, queued)
	rt.finish(out.errMsg)
	if out.errMsg != "" {
		writeError(w, out.status, out.retryAfter, "%s", out.errMsg)
		return
	}
	writeJSON(w, out.status, out.resp)
}

// handleSwap serves POST /admin/swap: build a snapshot — generate a fresh
// GIRG, or load a girgen file when Path is set — and atomically install it.
// The snapshot is fully built and checksum-verified before the swap, so
// requests never see a half-built or corrupt graph, and in-flight requests
// keep routing on the snapshot they already resolved. A file that fails
// verification is quarantined: 422, the counter ticks, nothing is installed.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	name := req.Graph
	if name == "" {
		name = DefaultGraph
	}
	// The mutable slot is owned by the mutation log: installing an unrelated
	// snapshot under it would strand journaled mutations.
	if log, mutGraph := s.MutationLog(); log != nil && name == mutGraph {
		writeError(w, http.StatusConflict, 0, "graph %q is driven by the mutation log; swap a different slot", name)
		return
	}
	var nw *core.Network
	if req.Path != "" {
		g, err := graphio.ReadFile(req.Path)
		if err != nil {
			var corrupt *graphio.CorruptError
			if errors.As(err, &corrupt) {
				s.quarantined.Add(1)
				logger.Warn("swap snapshot quarantined", "path", req.Path, "err", err)
				writeError(w, http.StatusUnprocessableEntity, 0, "snapshot rejected, not installed: %v", err)
				return
			}
			writeError(w, http.StatusBadRequest, 0, "load: %v", err)
			return
		}
		// Idempotent path swaps: a snapshot structurally identical to what
		// this slot already serves is acknowledged without touching the graph
		// map, so a retried deploy script cannot churn breakers or labels.
		if cur, ok := s.Network(name); ok && cur.Graph.Fingerprint() == g.Fingerprint() {
			s.swapNoops.Add(1)
			logger.Info("swap no-op: fingerprint already installed", "graph", name,
				"path", req.Path, "fingerprint", fmt.Sprintf("%016x", g.Fingerprint()))
			writeJSON(w, http.StatusOK, SwapResponse{
				Graph:       name,
				Label:       cur.Label,
				Vertices:    cur.Graph.N(),
				Edges:       cur.Graph.M(),
				Fingerprint: fmt.Sprintf("%016x", cur.Graph.Fingerprint()),
				NoOp:        true,
			})
			return
		}
		nw = &core.Network{
			Graph: g,
			Label: fmt.Sprintf("file(%s,n=%d)", filepath.Base(req.Path), g.N()),
			NewObjective: func(t int) route.Objective {
				return route.NewStandard(g, t)
			},
			StandardPhi: true,
		}
	} else {
		if req.N < 2 {
			writeError(w, http.StatusBadRequest, 0, "n must be >= 2 (got %g)", req.N)
			return
		}
		p := girg.DefaultParams(req.N)
		p.FixedN = true
		if req.Beta != 0 {
			p.Beta = req.Beta
		}
		if req.Alpha != 0 {
			p.Alpha = req.Alpha
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		var err error
		nw, err = core.NewGIRG(p, seed, girg.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, 0, "generate: %v", err)
			return
		}
	}
	s.AddNetwork(name, nw)
	s.swaps.Add(1)
	logger.Info("graph swapped", "graph", name, "label", nw.Label,
		"n", nw.Graph.N(), "m", nw.Graph.M(),
		"fingerprint", fmt.Sprintf("%016x", nw.Graph.Fingerprint()))
	writeJSON(w, http.StatusOK, SwapResponse{
		Graph:       name,
		Label:       nw.Label,
		Vertices:    nw.Graph.N(),
		Edges:       nw.Graph.M(),
		Fingerprint: fmt.Sprintf("%016x", nw.Graph.Fingerprint()),
	})
}

// ServeStats is the expvar snapshot of the serving layer, published as
// "smallworld.serve" next to the engine's "smallworld.engine".
type ServeStats struct {
	// Draining reports drain mode.
	Draining bool
	// Graphs lists the installed snapshot names.
	Graphs []string
	// InFlight / Waiting / Shed / Admitted describe the admission pool.
	InFlight int
	Waiting  int
	Shed     int64
	Admitted int64
	// Retries counts transient-failure retry attempts across all requests.
	Retries int64
	// Swaps counts installed snapshots via /admin/swap; Quarantined counts
	// swap files rejected by checksum/format verification; SwapNoops counts
	// path swaps skipped because the fingerprint was already installed.
	Swaps       int64
	Quarantined int64
	SwapNoops   int64
	// Mutations counts batches committed via /admin/mutate; CompactSwaps
	// counts compacted snapshots hot-swapped into the mutable slot. Mutate
	// snapshots the mutation log itself (nil without -mutate-dir).
	Mutations    int64
	CompactSwaps int64
	Mutate       *mutate.Stats `json:",omitempty"`
	// Breakers maps "graph/protocol" to breaker state ("closed", "open",
	// "half-open") with the cumulative open count in parentheses.
	Breakers map[string]string
	// Cluster describes shard membership and forwarding (nil on a
	// single-node daemon).
	Cluster *ClusterStats `json:",omitempty"`
}

// Stats snapshots the server's serving-layer state.
func (s *Server) Stats() ServeStats {
	st := ServeStats{
		Draining:     s.draining.Load(),
		Graphs:       s.GraphNames(),
		InFlight:     s.pool.InFlight(),
		Waiting:      s.pool.Waiting(),
		Shed:         s.pool.Shed(),
		Admitted:     s.pool.Acquired(),
		Retries:      s.retries.Load(),
		Swaps:        s.swaps.Load(),
		Quarantined:  s.quarantined.Load(),
		SwapNoops:    s.swapNoops.Load(),
		Mutations:    s.mutations.Load(),
		CompactSwaps: s.compactSwaps.Load(),
		Breakers:     map[string]string{},
	}
	if log, _ := s.MutationLog(); log != nil {
		ms := log.Stats()
		st.Mutate = &ms
	}
	s.breakerMu.Lock()
	for key, b := range s.breakers {
		st.Breakers[key] = fmt.Sprintf("%s (opens=%d)", b.State(), b.Opens())
	}
	s.breakerMu.Unlock()
	s.clusterStats(&st)
	return st
}

// activeServer backs the process-wide expvar export: expvar names are
// global and publish-once, so the most recently constructed Server is the
// one /debug/vars reflects (exactly one Server exists in the daemon; tests
// construct more and read Stats directly).
var activeServer atomic.Pointer[Server]

func init() {
	expvar.Publish("smallworld.serve", expvar.Func(func() interface{} {
		s := activeServer.Load()
		if s == nil {
			return nil
		}
		return s.Stats()
	}))
}
