package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// This file is the federation endpoint: GET /cluster/metrics scrapes every
// gossip-known routable peer's /metrics, parses each exposition, and
// re-emits the union as one exposition with an instance label naming the
// daemon each sample came from. One scrape of any daemon therefore answers
// cluster-wide questions ("which replica is behind", "which shard's breaker
// is open") without a Prometheus federation config — and because the merged
// output parses again with obs.ParseExposition, federations compose.

// fedScrape is one daemon's contribution to the federated exposition.
type fedScrape struct {
	inst obs.Instance
	err  error
}

// handleClusterMetrics serves GET /cluster/metrics. The local daemon is
// scraped in-process (writeMetricsTo, no loopback round-trip); peers are
// scraped concurrently over the cluster client, each bounded by the request
// timeout. A peer that fails to answer or to parse contributes nothing but a
// failure counter — federation degrades per-instance, it never 500s because
// one daemon is down.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, 0, "GET required")
		return
	}
	node := s.clusterNode
	if node == nil {
		writeError(w, http.StatusNotFound, 0, "not clustered")
		return
	}
	logger := obs.Logger(r.Context())

	// Self first, in-process. The instance name is the advertised peer id —
	// the same spelling peers use for this daemon — so a federated scrape
	// from any daemon labels a given instance identically.
	var buf bytes.Buffer
	selfErr := s.writeMetricsTo(&buf)
	instances := make([]obs.Instance, 0, 4)
	if selfErr == nil {
		fams, err := obs.ParseExposition(&buf)
		selfErr = err
		if err == nil {
			instances = append(instances, obs.Instance{Name: node.Self().ID, Families: fams})
		}
	}
	if selfErr != nil {
		logger.Warn("federation: self scrape failed", "err", selfErr)
	}

	// Peers in parallel, deterministically ordered in the output: routable
	// peers sorted by id, each with its own deadline-bounded GET /metrics.
	peers := node.Members().Routable()
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	results := make([]fedScrape, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p cluster.Peer) {
			defer wg.Done()
			results[i] = s.scrapePeer(r.Context(), p)
		}(i, p)
	}
	wg.Wait()
	for i, res := range results {
		s.fedScrapes.Add(1)
		if res.err != nil {
			s.fedScrapeFails.Add(1)
			logger.Warn("federation: peer scrape failed", "peer", peers[i].ID, "err", res.err)
			continue
		}
		instances = append(instances, res.inst)
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	p := obs.NewPromWriter(w)
	obs.MergeExpositions(p, instances)
	if err := p.Err(); err != nil {
		logger.Warn("federation: merged write failed", "err", err)
	}
}

// scrapePeer fetches and parses one peer's /metrics, bounded by the server's
// request timeout.
func (s *Server) scrapePeer(ctx context.Context, peer cluster.Peer) fedScrape {
	sctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		"http://"+peer.ID+"/metrics", nil)
	if err != nil {
		return fedScrape{err: err}
	}
	resp, err := s.clusterClient.Do(req)
	if err != nil {
		return fedScrape{err: err}
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fedScrape{err: &scrapeStatusError{peer: peer.ID, status: resp.StatusCode}}
	}
	fams, err := obs.ParseExposition(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return fedScrape{err: err}
	}
	return fedScrape{inst: obs.Instance{Name: peer.ID, Families: fams}}
}

// scrapeStatusError reports a peer that answered /metrics with a non-200.
type scrapeStatusError struct {
	peer   string
	status int
}

func (e *scrapeStatusError) Error() string {
	return "peer " + e.peer + " answered /metrics with status " + http.StatusText(e.status)
}
