package serve

import (
	"net/http"

	"repro/internal/faults"
	"repro/internal/route"
)

// This file is the wire contract of the routing service, shared by the
// daemon (cmd/smallworldd), its HTTP handlers, and CLI clients
// (cmd/route -server). Keeping the types here means a client and the daemon
// can never disagree about field names or the failure-class mappings.

// RouteRequest is the body of POST /route: one s→t routing query against a
// named graph snapshot under a named protocol, optionally degraded by a
// per-request fault plan.
type RouteRequest struct {
	// Graph names the graph snapshot to route on; "" selects "default".
	Graph string `json:"graph,omitempty"`
	// Protocol is the registered protocol name; "" selects greedy.
	Protocol string `json:"protocol,omitempty"`
	// S and T are the source and target vertices.
	S int `json:"s"`
	T int `json:"t"`
	// Faults optionally layers a per-request fault plan (chaos queries,
	// fault-tolerance probes). Each spec resolves through the faults
	// registry; unknown models fail the request with 400.
	Faults []faults.Spec `json:"faults,omitempty"`
	// FaultSeed seeds the per-request fault plan (0 = derive from the
	// request). Retried attempts salt this seed so transient fault draws are
	// independent across attempts.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// IncludePath asks for the full vertex path in the response (off by
	// default: paths on poly-log graphs are short, but dashboards polling
	// success rates don't want them).
	IncludePath bool `json:"include_path,omitempty"`
}

// RouteResponse is the body of a completed /route query (HTTP 200 or a
// mapped failure status; see StatusFor).
type RouteResponse struct {
	// Graph and Protocol echo the resolved names ("" defaults filled in).
	Graph    string `json:"graph"`
	Protocol string `json:"protocol"`
	S        int    `json:"s"`
	T        int    `json:"t"`
	// Success reports delivery; Failure carries the taxonomy class of an
	// unsuccessful episode ("" on success).
	Success bool   `json:"success"`
	Failure string `json:"failure,omitempty"`
	// Moves and Unique describe the final attempt's episode.
	Moves  int `json:"moves"`
	Unique int `json:"unique"`
	// Path is the vertex path of the final attempt (only with IncludePath).
	Path []int `json:"path,omitempty"`
	// Attempts counts routing attempts, >1 when transient failures were
	// retried with backoff.
	Attempts int `json:"attempts"`
	// ElapsedMs is the server-side wall time of the whole request, retries
	// and backoff included.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response the daemon writes.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMs mirrors the Retry-After header on 429/503 responses so
	// JSON-only clients don't need to parse headers.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// SwapRequest is the body of POST /admin/swap: build a snapshot — generate
// a fresh GIRG, or load a girgen file from disk — and atomically install it
// under a graph name without dropping in-flight requests (they keep routing
// on the snapshot they resolved).
type SwapRequest struct {
	// Graph names the slot to install into; "" selects "default".
	Graph string `json:"graph,omitempty"`
	// Path, when set, loads the snapshot from a girgen file (text or
	// binary; auto-detected) instead of generating one. The file's
	// checksums are verified before the swap: a corrupt snapshot is
	// quarantined with 422 and the installed graph is untouched. N, Seed,
	// Beta and Alpha are ignored when Path is set.
	Path string `json:"path,omitempty"`
	// N is the vertex count of the new GIRG snapshot.
	N float64 `json:"n"`
	// Seed drives generation (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Beta and Alpha override the GIRG defaults when non-zero.
	Beta  float64 `json:"beta,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// SwapResponse reports the installed snapshot.
type SwapResponse struct {
	Graph    string `json:"graph"`
	Label    string `json:"label"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Fingerprint is the structural hash of the installed graph (hex),
	// the same value girgen logs: operators can check what a swap
	// installed without re-reading the file.
	Fingerprint string `json:"fingerprint"`
}

// StatusFor maps a routing outcome to its HTTP status. Definitive protocol
// outcomes — delivery, a proven dead end, a protocol-truncated walk — are
// 200s: the service answered the question, and the body carries the class.
// Engine-inflicted failures map to 5xx because the *service* (not the
// query) degraded: deadline means the per-request budget ran out (504),
// crashed-target means the fault plan took the endpoint down (502), and
// cancelled means the daemon was draining (503). The same table appears in
// DESIGN.md §7.
func StatusFor(f route.Failure) int {
	switch f {
	case route.FailNone, route.FailDeadEnd, route.FailTruncated:
		return http.StatusOK
	case route.FailDeadline:
		return http.StatusGatewayTimeout
	case route.FailCrashedTarget:
		return http.StatusBadGateway
	case route.FailCancelled:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ExitCodeFor maps a routing outcome to a process exit code — the CLI
// analogue of StatusFor, used by cmd/route so scripts can branch on *why*
// routing failed: success=0, dead-end=2, deadline=3, truncated=4,
// crashed-target=5, cancelled=6 (1 stays the generic error exit).
func ExitCodeFor(f route.Failure) int {
	switch f {
	case route.FailNone:
		return 0
	case route.FailDeadEnd:
		return 2
	case route.FailDeadline:
		return 3
	case route.FailTruncated:
		return 4
	case route.FailCrashedTarget:
		return 5
	case route.FailCancelled:
		return 6
	}
	return 1
}
