package serve

import (
	"net/http"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/route"
)

// This file is the wire contract of the routing service, shared by the
// daemon (cmd/smallworldd), its HTTP handlers, and CLI clients
// (cmd/route -server). Keeping the types here means a client and the daemon
// can never disagree about field names or the failure-class mappings.

// RouteRequest is the body of POST /route: one s→t routing query against a
// named graph snapshot under a named protocol, optionally degraded by a
// per-request fault plan.
type RouteRequest struct {
	// Graph names the graph snapshot to route on; "" selects "default".
	Graph string `json:"graph,omitempty"`
	// Protocol is the registered protocol name; "" selects greedy.
	Protocol string `json:"protocol,omitempty"`
	// S and T are the source and target vertices.
	S int `json:"s"`
	T int `json:"t"`
	// Faults optionally layers a per-request fault plan (chaos queries,
	// fault-tolerance probes). Each spec resolves through the faults
	// registry; unknown models fail the request with 400.
	Faults []faults.Spec `json:"faults,omitempty"`
	// FaultSeed seeds the per-request fault plan (0 = derive from the
	// request). Retried attempts salt this seed so transient fault draws are
	// independent across attempts.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// IncludePath asks for the full vertex path in the response (off by
	// default: paths on poly-log graphs are short, but dashboards polling
	// success rates don't want them).
	IncludePath bool `json:"include_path,omitempty"`
}

// RouteResponse is the body of a completed /route query (HTTP 200 or a
// mapped failure status; see StatusFor).
type RouteResponse struct {
	// Graph and Protocol echo the resolved names ("" defaults filled in).
	Graph    string `json:"graph"`
	Protocol string `json:"protocol"`
	S        int    `json:"s"`
	T        int    `json:"t"`
	// Success reports delivery; Failure carries the taxonomy class of an
	// unsuccessful episode ("" on success).
	Success bool   `json:"success"`
	Failure string `json:"failure,omitempty"`
	// Moves and Unique describe the final attempt's episode.
	Moves  int `json:"moves"`
	Unique int `json:"unique"`
	// Path is the vertex path of the final attempt (only with IncludePath).
	Path []int `json:"path,omitempty"`
	// Attempts counts routing attempts, >1 when transient failures were
	// retried with backoff.
	Attempts int `json:"attempts"`
	// Forwards counts cluster hop forwards of the final attempt (0 on a
	// single-node daemon and for walks that stayed shard-local).
	Forwards int `json:"forwards,omitempty"`
	// Hedges counts hedged second attempts fired while forwarding the final
	// attempt's hops; Failovers counts forwards that succeeded at a replica
	// other than the first choice. Both cover the whole hop chain, so
	// loadgen's accounting sums honestly across entry daemons.
	Hedges    int `json:"hedges,omitempty"`
	Failovers int `json:"failovers,omitempty"`
	// ElapsedMs is the server-side wall time of the whole request, retries
	// and backoff included.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Timings attributes the request's server-side time to phases.
	Timings *Timings `json:"timings,omitempty"`
}

// Timings is the per-request time attribution: where the server-side wall
// time of one routed query went, in microseconds. The buckets overlap by
// design — HedgeUs is the armed hedge delay inside a forward, and ForwardUs
// covers whole forward passes — so the invariant is Queue+Route+Forward+
// Backoff ≲ Total, not equality; tracestitch computes the exact exclusive
// attribution from the spans. Batch items share their batch's queue wait
// (the batch holds one admission slot), so their QueueUs repeats it.
type Timings struct {
	// QueueUs is the admission-pool wait before a worker slot was acquired.
	QueueUs int64 `json:"queue_us"`
	// RouteUs is time spent in local engine episodes (full-graph or the
	// shard-local CSR segments), summed across attempts.
	RouteUs int64 `json:"route_us"`
	// ForwardUs is wall time spent forwarding the walk to owning peers —
	// whole /cluster/hop passes including failover and hedging, summed.
	ForwardUs int64 `json:"forward_us,omitempty"`
	// HedgeUs is the armed hedge delay: launch of the first replica attempt
	// until a hedged second attempt fired (contained in ForwardUs).
	HedgeUs int64 `json:"hedge_us,omitempty"`
	// BackoffUs is time slept between transient-failure retries.
	BackoffUs int64 `json:"backoff_us,omitempty"`
	// TotalUs is queue wait plus everything routeOne did — the request's
	// server-side wall time at microsecond granularity.
	TotalUs int64 `json:"total_us"`
}

// BatchRouteRequest is the body of POST /route/batch: many routing queries
// against one graph snapshot, admitted as a unit — the whole batch occupies
// one admission slot and runs its items sequentially on that worker, sharing
// one request deadline. Items succeed and fail individually (see
// BatchItemResult.Status); the batch envelope is 200 whenever the batch
// itself was served.
type BatchRouteRequest struct {
	// Graph names the snapshot every item routes on; "" selects "default".
	Graph string `json:"graph,omitempty"`
	// Items are the queries, answered in order. An empty batch is 400; a
	// batch larger than Config.MaxBatch is 413.
	Items []BatchItem `json:"items"`
}

// BatchItem is one query of a batch: RouteRequest minus the graph name,
// which the batch fixes for all items.
type BatchItem struct {
	// Protocol is the registered protocol name; "" selects greedy.
	Protocol string `json:"protocol,omitempty"`
	// S and T are the source and target vertices.
	S int `json:"s"`
	T int `json:"t"`
	// Faults optionally layers a per-item fault plan.
	Faults []faults.Spec `json:"faults,omitempty"`
	// FaultSeed seeds the per-item fault plan (0 = derive from the item).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// IncludePath asks for the item's full vertex path.
	IncludePath bool `json:"include_path,omitempty"`
}

// BatchRouteResponse is the body of a served POST /route/batch.
type BatchRouteResponse struct {
	// Graph echoes the resolved snapshot name.
	Graph string `json:"graph"`
	// Items holds one result per request item, in request order.
	Items []BatchItemResult `json:"items"`
	// ElapsedMs is the server-side wall time of the whole batch.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// BatchItemResult is one item's outcome. Status carries the HTTP status the
// same query would have received from POST /route — 200 for definitive
// answers (delivered, dead-end, truncated), 4xx for item-level validation
// errors, 5xx for degraded service (breaker open, deadline, crashed
// endpoint) — so batch clients branch exactly like single-query clients.
type BatchItemResult struct {
	// Status is the per-item HTTP-equivalent status (see StatusFor).
	Status int `json:"status"`
	// Error carries the item-level rejection message (unknown protocol,
	// vertex out of range, breaker open); empty when the item routed.
	Error string `json:"error,omitempty"`
	// RetryAfterMs hints when a breaker-rejected item is worth retrying.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Protocol echoes the resolved protocol name of a routed item.
	Protocol string `json:"protocol,omitempty"`
	S        int    `json:"s"`
	T        int    `json:"t"`
	// Success, Failure, Moves, Unique and Path describe the final attempt,
	// exactly as in RouteResponse.
	Success bool   `json:"success"`
	Failure string `json:"failure,omitempty"`
	Moves   int    `json:"moves"`
	Unique  int    `json:"unique"`
	Path    []int  `json:"path,omitempty"`
	// Attempts counts routing attempts of this item (>1 after retries).
	Attempts int `json:"attempts"`
	// Forwards counts cluster hop forwards of the item's final attempt;
	// Hedges and Failovers mirror RouteResponse.
	Forwards  int `json:"forwards,omitempty"`
	Hedges    int `json:"hedges,omitempty"`
	Failovers int `json:"failovers,omitempty"`
	// ElapsedMs is the item's share of the batch wall time.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Timings attributes the item's time to phases, exactly as in
	// RouteResponse (QueueUs repeats the batch's shared admission wait).
	Timings *Timings `json:"timings,omitempty"`
}

// HopRequest is the body of POST /cluster/hop: a shard daemon hands the
// continuation of a greedy walk to the peer owning the vertex the walk
// stepped onto. The receiver routes its own segment and forwards again if
// the walk crosses out of its shard, so the response always describes the
// rest of the episode, not just one segment.
type HopRequest struct {
	// Graph names the snapshot; it must be the receiver's clustered snapshot
	// (fingerprints are pre-checked by membership, a mismatch is 409).
	Graph string `json:"graph,omitempty"`
	// S is the vertex the walk entered the receiver's shard on; T is the
	// episode target.
	S int `json:"s"`
	T int `json:"t"`
	// DeadlineMs is the sender's remaining request budget; the receiver
	// routes under min(DeadlineMs, its own RequestTimeout).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Depth counts hop forwards so far; past the cap the chain is cut off as
	// a truncated episode instead of looping forever.
	Depth int `json:"depth"`
}

// HopResponse is a classified continuation: the rest of the episode from
// HopRequest.S on, with downstream failure classes (including
// shard-unreachable) bubbled up. Any classified outcome is HTTP 200 — an
// answer — so the sender only treats transport errors and 5xx as forward
// failures.
type HopResponse struct {
	// Success, Failure and Stuck classify the episode's remainder exactly
	// like RouteResponse.
	Success bool   `json:"success"`
	Failure string `json:"failure,omitempty"`
	Stuck   int    `json:"stuck"`
	// Path is the continuation's vertex path, starting at HopRequest.S (the
	// sender drops the duplicated first vertex when stitching).
	Path []int `json:"path"`
	// Moves is len(Path)-1.
	Moves int `json:"moves"`
	// Forwards counts the hop forwards downstream of the receiver, itself
	// included once per boundary crossing.
	Forwards int `json:"forwards"`
	// Hedges and Failovers count the hedged second attempts and non-first-
	// choice successes of the downstream chain, bubbled up so the entry
	// daemon reports totals for the whole episode.
	Hedges    int `json:"hedges,omitempty"`
	Failovers int `json:"failovers,omitempty"`
}

// ReplicateRequest is the body of POST /cluster/replicate: the shard
// primary ships a journal segment — a contiguous range of canonically
// encoded mutation batches, bound to the base fingerprint and generation —
// to a replica, which imports it through the same validate→journal→publish
// pipeline its own /admin/mutate would use. Replicas answer with their
// position, so a pusher that raced ahead learns where to re-ship from.
type ReplicateRequest struct {
	// Graph names the mutable slot; "" selects the receiver's mutable slot.
	Graph string `json:"graph,omitempty"`
	// Segment carries the batches with their (base fingerprint, generation,
	// from-seq) coordinates.
	Segment mutate.Segment `json:"segment"`
}

// ReplicateResponse reports the receiver's replication coordinate after the
// import (200) or the one it refused the segment at (409).
type ReplicateResponse struct {
	Graph string `json:"graph"`
	// Applied counts the batches this request newly journaled and published
	// (already-held batches are verified and skipped).
	Applied int `json:"applied"`
	// Position is the receiver's post-import coordinate; Position.Seq is
	// where the next shipped segment must start.
	Position mutate.Position `json:"position"`
	// Self is the receiver's peer identity with its live fields refreshed,
	// so the pusher's membership learns the new position without waiting for
	// the next gossip round.
	Self cluster.Peer `json:"self"`
}

// SegmentRequest is the body of POST /cluster/segment — the pull half of
// anti-entropy: a replica that learned from gossip that a peer is ahead
// asks it for the journal range it is missing.
type SegmentRequest struct {
	// Graph names the mutable slot; "" selects the receiver's mutable slot.
	Graph string `json:"graph,omitempty"`
	// BaseFP and Generation pin the history the puller is on; a mismatch is
	// 409 (the puller must not apply batches from a different history).
	BaseFP     string `json:"base_fingerprint"`
	Generation int    `json:"generation"`
	// From is the seq to start at — the puller's own Position.Seq.
	From int `json:"from"`
	// Max bounds the batches returned (0 = server cap).
	Max int `json:"max,omitempty"`
}

// SegmentResponse carries the pulled journal range and the responder's
// position, so the puller knows whether another round is needed.
type SegmentResponse struct {
	Graph    string          `json:"graph"`
	Segment  mutate.Segment  `json:"segment"`
	Position mutate.Position `json:"position"`
	Self     cluster.Peer    `json:"self"`
}

// ReadyGraph describes one installed snapshot on GET /readyz.
type ReadyGraph struct {
	// Fingerprint is the structural hash of the snapshot (hex), the same
	// value girgen logs and /admin/swap returns — operators can verify what
	// a daemon is actually serving without touching admin endpoints.
	Fingerprint string `json:"fingerprint"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	Label       string `json:"label"`
	// Live describes the mutation overlay when this slot is driven by a
	// mutation log (-mutate-dir); nil on immutable snapshots.
	Live *ReadyLive `json:"live,omitempty"`
}

// ReadyLive is the live-overlay section of a ReadyGraph: what the graph
// looks like after the journaled mutations, against the base snapshot the
// Fingerprint field above describes.
type ReadyLive struct {
	// Fingerprint is the structural hash of the live graph — base plus
	// overlay — the value a crash-replayed daemon must reproduce bit for
	// bit (the churn-crash CI job asserts exactly this field).
	Fingerprint string `json:"fingerprint"`
	// Vertices and Edges count the live graph (tombstoned ids stay in the
	// vertex count; their adjacency reads empty).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Generation is the journal generation (1 until the first compaction).
	Generation int `json:"generation"`
	// OverlayStats carries epoch and delta counts, flattened.
	graph.OverlayStats
}

// ReadyCluster describes the daemon's shard and membership view on
// GET /readyz when cluster mode is on.
type ReadyCluster struct {
	// Self is the advertised peer id; Shard its Morton prefix ("" = whole
	// space); Replica the daemon's replica id within the shard (0 = the
	// shard's write primary).
	Self    string `json:"self"`
	Shard   string `json:"shard"`
	Replica int    `json:"replica"`
	// OwnedVertices is the local shard's share of the snapshot.
	OwnedVertices int `json:"owned_vertices"`
	// Peers is the membership table with failure-detector states.
	Peers []cluster.PeerStatus `json:"peers"`
	// Live is the local replicated-log position (nil without a replicated
	// mutation log), and ReplicaLag the per-replica divergence computed from
	// the live positions peers advertised through gossip — epoch deltas,
	// generation skew — so operators can see who is behind without
	// Prometheus.
	Live       *mutate.Position     `json:"live,omitempty"`
	ReplicaLag []cluster.ReplicaLag `json:"replica_lag,omitempty"`
}

// ReadyResponse is the 200 body of GET /readyz (draining and graphless
// daemons answer plain-text 503s, which probes treat by status alone).
type ReadyResponse struct {
	Status  string                `json:"status"`
	Graphs  map[string]ReadyGraph `json:"graphs"`
	Cluster *ReadyCluster         `json:"cluster,omitempty"`
}

// ErrorResponse is the body of every non-2xx response the daemon writes.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMs mirrors the Retry-After header on 429/503 responses so
	// JSON-only clients don't need to parse headers.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// SwapRequest is the body of POST /admin/swap: build a snapshot — generate
// a fresh GIRG, or load a girgen file from disk — and atomically install it
// under a graph name without dropping in-flight requests (they keep routing
// on the snapshot they resolved).
type SwapRequest struct {
	// Graph names the slot to install into; "" selects "default".
	Graph string `json:"graph,omitempty"`
	// Path, when set, loads the snapshot from a girgen file (text or
	// binary; auto-detected) instead of generating one. The file's
	// checksums are verified before the swap: a corrupt snapshot is
	// quarantined with 422 and the installed graph is untouched. N, Seed,
	// Beta and Alpha are ignored when Path is set.
	Path string `json:"path,omitempty"`
	// N is the vertex count of the new GIRG snapshot.
	N float64 `json:"n"`
	// Seed drives generation (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Beta and Alpha override the GIRG defaults when non-zero.
	Beta  float64 `json:"beta,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// SwapResponse reports the installed snapshot.
type SwapResponse struct {
	Graph    string `json:"graph"`
	Label    string `json:"label"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Fingerprint is the structural hash of the installed graph (hex),
	// the same value girgen logs: operators can check what a swap
	// installed without re-reading the file.
	Fingerprint string `json:"fingerprint"`
	// NoOp reports that the loaded snapshot's fingerprint matched the graph
	// already installed under this name, so nothing was swapped — retried
	// swap scripts are idempotent instead of churning the graph map.
	NoOp bool `json:"noop,omitempty"`
}

// MutateRequest is the body of POST /admin/mutate: one batch of graph
// mutations applied atomically to the daemon's mutable graph slot. The
// batch is validated against the live overlay, journaled (fsynced) and only
// then acknowledged and published — all-or-nothing: the first invalid op
// rejects the whole batch with 422 and the live graph is untouched.
type MutateRequest struct {
	// Graph names the slot to mutate; "" selects "default". Only the slot
	// the mutation log was enabled on is mutable.
	Graph string `json:"graph,omitempty"`
	// Ops is the batch, applied in order. Add-vertex ops are assigned the
	// next live vertex ids; later ops in the same batch may reference them.
	Ops []mutate.Op `json:"ops"`
}

// MutateResponse reports a committed mutation batch. By the time a client
// reads it, the batch is in the fsynced journal: a daemon SIGKILLed
// afterwards replays it on restart.
type MutateResponse struct {
	Graph string `json:"graph"`
	// Generation and Seq locate the batch's journal record.
	Generation int `json:"generation"`
	Seq        int `json:"seq"`
	// Epoch is the overlay epoch this batch published; /readyz reports the
	// same value once the batch is visible to routing.
	Epoch uint64 `json:"epoch"`
	// Assigned lists the vertex ids the batch's add-vertex ops created, in
	// op order — clients address the new vertices with these.
	Assigned []int `json:"assigned,omitempty"`
	// ElapsedMs is the server-side wall time (validation + journal fsync +
	// publish).
	ElapsedMs float64 `json:"elapsed_ms"`
}

// StatusFor maps a routing outcome to its HTTP status. Definitive protocol
// outcomes — delivery, a proven dead end, a protocol-truncated walk — are
// 200s: the service answered the question, and the body carries the class.
// Engine-inflicted failures map to 5xx because the *service* (not the
// query) degraded: deadline means the per-request budget ran out (504),
// crashed-target means the fault plan took the endpoint down (502), and
// cancelled means the daemon was draining (503). The same table appears in
// DESIGN.md §7.
func StatusFor(f route.Failure) int {
	switch f {
	case route.FailNone, route.FailDeadEnd, route.FailTruncated:
		return http.StatusOK
	case route.FailDeadline:
		return http.StatusGatewayTimeout
	case route.FailCrashedTarget, route.FailShardUnreachable:
		return http.StatusBadGateway
	case route.FailCancelled:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ExitCodeFor maps a routing outcome to a process exit code — the CLI
// analogue of StatusFor, used by cmd/route so scripts can branch on *why*
// routing failed: success=0, dead-end=2, deadline=3, truncated=4,
// crashed-target=5, cancelled=6, shard-unreachable=7 (1 stays the generic
// error exit).
func ExitCodeFor(f route.Failure) int {
	switch f {
	case route.FailNone:
		return 0
	case route.FailDeadEnd:
		return 2
	case route.FailDeadline:
		return 3
	case route.FailTruncated:
		return 4
	case route.FailCrashedTarget:
		return 5
	case route.FailCancelled:
		return 6
	case route.FailShardUnreachable:
		return 7
	}
	return 1
}
