package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/route"
)

// Test protocols, registered once in the process-wide registry. Their
// behaviour is switched per test through package-level controls (the tests
// below do not run in parallel).

// gate is the channel the "test-gated" protocol blocks on: tests install a
// fresh channel, fire requests, then close it to release every in-flight
// episode at once.
var gate atomic.Pointer[chan struct{}]

// gatedProto blocks until the current gate releases, then reports a dead
// end — a definitive, breaker-healthy outcome that maps to HTTP 200.
type gatedProto struct{}

func (gatedProto) Name() string { return "test-gated" }
func (gatedProto) Route(g route.Graph, obj route.Objective, s int) route.Result {
	if ch := gate.Load(); ch != nil {
		<-*ch
	}
	return route.Result{Success: false, Path: []int{s}, Unique: 1, Stuck: s, Failure: route.FailDeadEnd}
}

// slowMode makes "test-switchable" spin on adjacency queries until the
// engine's wall-time budget cuts it off (a FailDeadline, the transient
// class); with slowMode off it delegates to real greedy routing.
var slowMode atomic.Bool

type switchableProto struct{}

func (switchableProto) Name() string { return "test-switchable" }
func (switchableProto) Route(g route.Graph, obj route.Objective, s int) route.Result {
	if slowMode.Load() {
		for {
			// The engine enforces budgets at adjacency queries; keep
			// querying so the deadline cut can land.
			g.Neighbors(s)
			time.Sleep(200 * time.Microsecond)
		}
	}
	p, err := route.Lookup("greedy")
	if err != nil {
		panic(err)
	}
	return p.Route(g, obj, s)
}

var registerTestProtos sync.Once

func testNetwork(t *testing.T, n float64, seed uint64) *core.Network {
	t.Helper()
	registerTestProtos.Do(func() {
		route.Register(gatedProto{})
		route.Register(switchableProto{})
	})
	p := girg.DefaultParams(n)
	p.FixedN = true
	nw, err := core.NewGIRG(p, seed, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func postRoute(t *testing.T, url string, req RouteRequest) (*http.Response, RouteResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok RouteResponse
	var bad ErrorResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == StatusFor(route.FailDeadline) ||
		resp.StatusCode == StatusFor(route.FailCrashedTarget) {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatalf("decode %d response: %v", resp.StatusCode, err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp, ok, bad
}

// TestRouteBasic routes a handful of pairs end to end through the HTTP
// surface and sanity-checks the response shape.
func TestRouteBasic(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, ok, _ := postRoute(t, ts.URL, RouteRequest{S: 1, T: 200, IncludePath: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ok.Graph != DefaultGraph || ok.Protocol != "greedy" {
		t.Fatalf("resolved names = %q/%q", ok.Graph, ok.Protocol)
	}
	if ok.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", ok.Attempts)
	}
	if ok.Success && len(ok.Path) != ok.Moves+1 {
		t.Fatalf("path length %d inconsistent with %d moves", len(ok.Path), ok.Moves)
	}

	// Per-request fault plan: a crash model can make the endpoint
	// unreachable; whatever the outcome, the response must carry a valid
	// taxonomy class and a mapped status.
	resp2, ok2, _ := postRoute(t, ts.URL, RouteRequest{S: 1, T: 200, FaultSeed: 3,
		Faults: []faults.Spec{{Model: "edge-drop", Rate: 0.3}}})
	if resp2.StatusCode != http.StatusOK && resp2.StatusCode != StatusFor(route.FailDeadline) {
		t.Fatalf("faulty route status = %d", resp2.StatusCode)
	}
	if !ok2.Success && ok2.Failure == "" {
		t.Fatal("failed faulty route carries no failure class")
	}
}

// TestRouteValidation exercises the 4xx surface: bad body, unknown graph,
// unknown protocol, out-of-range vertices, unknown fault model.
func TestRouteValidation(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		req  RouteRequest
		want int
	}{
		{RouteRequest{Graph: "nope", S: 0, T: 1}, http.StatusNotFound},
		{RouteRequest{Protocol: "nope", S: 0, T: 1}, http.StatusNotFound},
		{RouteRequest{S: -1, T: 1}, http.StatusBadRequest},
		{RouteRequest{S: 0, T: 1 << 30}, http.StatusBadRequest},
		{RouteRequest{S: 0, T: 1, Faults: []faults.Spec{{Model: "nope", Rate: 0.1}}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _, _ := postRoute(t, ts.URL, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, c.want)
		}
	}

	resp, err := http.Get(ts.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /route = %d, want 405", resp.StatusCode)
	}
}

// TestOverloadShedding proves the admission control contract: a burst of
// K × (workers + queue) concurrent requests yields exactly workers+queue
// completed episodes and sheds the rest with 429 + Retry-After — zero
// hangs, zero dropped in-flight episodes.
func TestOverloadShedding(t *testing.T) {
	const workers, queue = 2, 2
	s := New(Config{Workers: workers, QueueDepth: queue, RequestTimeout: 30 * time.Second})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ch := make(chan struct{})
	gate.Store(&ch)
	defer gate.Store(nil)

	const burst = 5 * (workers + queue)
	type outcome struct {
		status int
		retry  string
	}
	outcomes := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(RouteRequest{Protocol: "test-gated", S: 0, T: 1})
			resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			outcomes <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}

	// Wait until the pool is saturated (workers in flight, queue full),
	// i.e. every admitted episode is blocked on the gate, then release.
	waitFor(t, func() bool { return s.pool.Shed() >= burst-(workers+queue) })
	waitFor(t, func() bool { return s.pool.InFlight() == workers })
	close(ch)
	wg.Wait()
	close(outcomes)

	served, shed := 0, 0
	for o := range outcomes {
		switch o.status {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if o.retry == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", o.status)
		}
	}
	if served != workers+queue {
		t.Errorf("served = %d, want %d (every admitted episode must complete)", served, workers+queue)
	}
	if shed != burst-(workers+queue) {
		t.Errorf("shed = %d, want %d", shed, burst-(workers+queue))
	}
}

// TestBreakerOverHTTP drives the breaker through its full arc via the HTTP
// surface: deadline failures open it (503 + Retry-After), the open interval
// elapses, a half-open probe succeeds, and the pair serves 200s again.
func TestBreakerOverHTTP(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := New(Config{
		Workers:        2,
		RequestTimeout: 50 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Breaker: BreakerConfig{
			Window: 4, FailureThreshold: 0.5, MinSamples: 2,
			OpenFor: time.Minute, HalfOpenProbes: 1, Now: clk.Now,
		},
	})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slowMode.Store(true)
	defer slowMode.Store(false)

	// Two deadline-cut requests reach MinSamples at failure rate 1: open.
	for i := 0; i < 2; i++ {
		resp, ok, _ := postRoute(t, ts.URL, RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("slow request %d: status = %d, want 504", i, resp.StatusCode)
		}
		if ok.Failure != string(route.FailDeadline) {
			t.Fatalf("slow request %d: failure = %q, want deadline", i, ok.Failure)
		}
	}
	if got := s.Breaker("", "test-switchable").State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}

	// While open: fast 503 with Retry-After, no engine work.
	body, _ := json.Marshal(RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open-breaker 503 without Retry-After")
	}

	// Heal the protocol, elapse the open interval: the next request is the
	// half-open probe, succeeds, and closes the breaker.
	slowMode.Store(false)
	clk.Advance(time.Minute)
	resp2, _, _ := postRoute(t, ts.URL, RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("probe status = %d, want 200", resp2.StatusCode)
	}
	if got := s.Breaker("", "test-switchable").State(); got != BreakerClosed {
		t.Fatalf("breaker state after probe = %v, want closed", got)
	}
	resp3, _, _ := postRoute(t, ts.URL, RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", resp3.StatusCode)
	}
}

// TestRetryTransient verifies the retry loop consumes its attempt budget on
// a persistently slow protocol: MaxAttempts engine episodes, one response.
func TestRetryTransient(t *testing.T) {
	s := New(Config{
		Workers:        2,
		RequestTimeout: 400 * time.Millisecond,
		MaxHops:        -1,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slowMode.Store(true)
	defer slowMode.Store(false)
	// The per-attempt wall budget is the request's remaining time, so give
	// each attempt room by using MaxHops instead: with unlimited hops the
	// deadline budget is the only cut. 400ms budget / spinning protocol →
	// attempt 1 consumes nearly everything; attempts 2..3 get the rest.
	resp, ok, _ := postRoute(t, ts.URL, RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if ok.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (transient deadline must be retried)", ok.Attempts)
	}
	if ok.Failure != string(route.FailDeadline) {
		t.Fatalf("failure = %q, want deadline", ok.Failure)
	}
}

// TestDrain proves graceful shutdown: with episodes in flight, Drain flips
// readiness to 503 and rejects new work, but blocks until every in-flight
// episode has written its response.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 4, RequestTimeout: 30 * time.Second})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ch := make(chan struct{})
	gate.Store(&ch)
	defer gate.Store(nil)

	const inFlight = 3
	statuses := make(chan int, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			body, _ := json.Marshal(RouteRequest{Protocol: "test-gated", S: 0, T: 1})
			resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.pool.InFlight() == inFlight })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, func() bool { return s.Draining() })

	// Draining: readiness off, new routes rejected up front.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp, _, _ := postRoute(t, ts.URL, RouteRequest{S: 0, T: 1}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new route while draining = %d, want 503", resp.StatusCode)
	}

	// Drain must not return while episodes are gated.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with %d episodes in flight", err, inFlight)
	case <-time.After(50 * time.Millisecond):
	}

	// Release: every in-flight episode completes with a real response, then
	// Drain returns.
	close(ch)
	for i := 0; i < inFlight; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Errorf("in-flight request %d: status = %d, want 200", i, st)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
}

// TestDrainTimeout verifies Drain honours its context when an episode never
// finishes.
func TestDrainTimeout(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 30 * time.Second})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ch := make(chan struct{})
	gate.Store(&ch)
	defer gate.Store(nil)

	done := make(chan struct{})
	go func() {
		body, _ := json.Marshal(RouteRequest{Protocol: "test-gated", S: 0, T: 1})
		resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	waitFor(t, func() bool { return s.pool.InFlight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with an episode still gated")
	}
	close(ch) // release the episode so the server can shut down cleanly
	<-done
}

// TestHotSwap proves drop-free snapshot replacement: an in-flight episode
// keeps routing on the old snapshot while /admin/swap installs a new one,
// and subsequent requests route on the replacement.
func TestHotSwap(t *testing.T) {
	s := New(Config{Workers: 4, RequestTimeout: 30 * time.Second})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ch := make(chan struct{})
	gate.Store(&ch)
	defer gate.Store(nil)

	inFlight := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(RouteRequest{Protocol: "test-gated", S: 0, T: 1})
		resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- -1
			return
		}
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.pool.InFlight() == 1 })

	// Swap in a smaller graph while the episode is gated.
	body, _ := json.Marshal(SwapRequest{N: 200, Seed: 7})
	resp, err := http.Post(ts.URL+"/admin/swap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sw SwapResponse
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sw.Vertices != 200 {
		t.Fatalf("swap: status %d, vertices %d", resp.StatusCode, sw.Vertices)
	}

	// The gated episode completes on the old snapshot.
	close(ch)
	if st := <-inFlight; st != http.StatusOK {
		t.Fatalf("in-flight during swap: status = %d, want 200", st)
	}

	// New requests see the new snapshot: vertex 350 existed only in the old
	// 400-vertex graph.
	r2, _, _ := postRoute(t, ts.URL, RouteRequest{S: 0, T: 350})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("route to old-graph vertex = %d, want 400 (out of range on new snapshot)", r2.StatusCode)
	}
	r3, _, _ := postRoute(t, ts.URL, RouteRequest{S: 0, T: 150})
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("route on new snapshot = %d, want 200", r3.StatusCode)
	}
}

// TestHealthAndVars covers the observability endpoints.
func TestHealthAndVars(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d", got)
	}
	// Graphless server: alive but not ready.
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("graphless /readyz = %d, want 503", got)
	}
	s.AddNetwork("", testNetwork(t, 300, 5))
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", got)
	}

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"smallworld.engine", "smallworld.serve"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var st ServeStats
	if err := json.Unmarshal(vars["smallworld.serve"], &st); err != nil {
		t.Fatalf("decode smallworld.serve: %v", err)
	}
	if len(st.Graphs) != 1 || st.Graphs[0] != DefaultGraph {
		t.Errorf("serve stats graphs = %v", st.Graphs)
	}
}

// TestStatsBreakerExport verifies breaker states appear in the expvar
// snapshot keyed by graph/protocol.
func TestStatsBreakerExport(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 300, 5))
	b := s.Breaker("", "greedy")
	if _, err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	st := s.Stats()
	got, ok := st.Breakers["default/greedy"]
	if !ok {
		t.Fatalf("breaker key missing from stats: %v", st.Breakers)
	}
	if got != fmt.Sprintf("%s (opens=0)", BreakerClosed) {
		t.Fatalf("breaker export = %q", got)
	}
}
