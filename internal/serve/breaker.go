package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is open —
// the signal to fail the request fast (HTTP 503 + Retry-After) instead of
// burning a worker slot on a (graph, protocol) pair that is currently
// failing.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int

const (
	// BreakerClosed passes requests through and watches the failure rate.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects everything until the open interval elapses.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probes through; their fate
	// decides between reopening and closing.
	BreakerHalfOpen
)

// String names the state for expvar and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// Window is the size of the sliding outcome window (requests).
	Window int
	// FailureThreshold opens the breaker when the window's failure rate
	// reaches it (e.g. 0.5) with at least MinSamples outcomes recorded.
	FailureThreshold float64
	// MinSamples is the minimum window population before the rate is
	// considered meaningful; below it the breaker never opens.
	MinSamples int
	// OpenFor is how long an opened breaker rejects before letting probes
	// through (half-open).
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker; the first probe failure reopens it.
	HalfOpenProbes int
	// Now overrides the clock for tests; nil means time.Now.
	Now func() time.Time
}

// withDefaults fills unset fields with serviceable defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one sliding-window circuit breaker, guarding one
// (graph, protocol) pair in the daemon. What counts as a breaker failure is
// the caller's choice — the daemon feeds it engine-inflicted failure
// classes (deadline, crashed-target) and episode errors, not definitive
// protocol outcomes like dead ends, which are healthy service behaviour.
// Breaker is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	ring     []bool // true = failure
	idx      int
	filled   int
	fails    int
	openedAt time.Time
	probes   int // successful probes while half-open
	inflight int // admitted probes awaiting Record while half-open

	opens int64 // cumulative closed/half-open -> open transitions
}

// NewBreaker builds a breaker with cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{cfg: c, ring: make([]bool, c.Window)}
}

// Allow asks the breaker whether a request may proceed. On nil it MUST be
// followed by exactly one Record call with the request's outcome. While
// open it returns ErrBreakerOpen and the remaining time until the next
// half-open probe window.
func (b *Breaker) Allow() (retryIn time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return 0, nil
	case BreakerOpen:
		if wait := b.openedAt.Add(b.cfg.OpenFor).Sub(b.cfg.Now()); wait > 0 {
			return wait, ErrBreakerOpen
		}
		// Open interval elapsed: become half-open and admit this request as
		// the first probe.
		b.state = BreakerHalfOpen
		b.probes, b.inflight = 0, 1
		return 0, nil
	default: // BreakerHalfOpen
		// Probes (recorded successes plus admitted-but-unrecorded ones) are
		// bounded by HalfOpenProbes: admitting more would re-dump full load
		// on a possibly still-failing dependency.
		if b.probes+b.inflight >= b.cfg.HalfOpenProbes {
			return b.cfg.OpenFor, ErrBreakerOpen
		}
		b.inflight++
		return 0, nil
	}
}

// Record feeds one admitted request's outcome back into the state machine.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if failure {
			b.trip()
			return
		}
		b.probes++
		if b.probes >= b.cfg.HalfOpenProbes {
			// Recovery confirmed: close with a clean window so stale
			// pre-open failures can't immediately re-trip.
			b.state = BreakerClosed
			b.resetWindow()
		}
	case BreakerClosed:
		b.push(failure)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.filled) >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerOpen:
		// A straggler admitted before the trip finished after it; its
		// outcome is moot.
	}
}

// trip moves to open and stamps the clock. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.opens++
	b.probes, b.inflight = 0, 0
	b.resetWindow()
}

// push records one outcome in the sliding window. Callers hold b.mu.
func (b *Breaker) push(failure bool) {
	if b.filled == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.ring[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
}

// resetWindow clears the sliding window. Callers hold b.mu.
func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
}

// State reports the current state (advancing open→half-open if the open
// interval has elapsed, so observers see the same state Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.cfg.Now().Before(b.openedAt.Add(b.cfg.OpenFor)) {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens reports the cumulative number of trips to open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
