package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/route"
)

// Live-graph serving. A daemon started with a mutation log (-mutate-dir)
// exposes POST /admin/mutate: batches are validated against the live
// overlay, journaled (fsynced) before the response is written, and then
// published — in-flight routing requests keep the overlay epoch they
// resolved, the next request sees the new one. The mutation log owns
// durability and compaction (internal/mutate); this layer owns the HTTP
// contract, the atomic publish into the served Network, and the hot swap of
// compacted snapshots through the same copy-on-write graph map /admin/swap
// uses.

// EnableMutation attaches a mutation log to a graph slot: it builds a
// standard-phi Network over the log's base graph (which, after a resume
// from a compacted log, is the folded snapshot rather than the original
// base), publishes the log's current overlay on it, and installs it under
// graphName. At most one slot per server is mutable. In cluster mode the
// mutable slot must be separate from the clustered routing slot: shard
// ownership is computed over an immutable base, so the replicated live
// graph is served whole on every replica while sharded routing continues
// on the snapshot slot.
func (s *Server) EnableMutation(log *mutate.Log, graphName string) error {
	if log == nil {
		return fmt.Errorf("serve: nil mutation log")
	}
	if graphName == "" {
		graphName = DefaultGraph
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if node := s.clusterNode; node != nil {
		if nw, ok := s.Network(graphName); ok && nw.Graph == node.Graph() {
			return fmt.Errorf("serve: graph %q is the clustered routing slot; enable mutation on a separate slot", graphName)
		}
	}
	if s.mutLog != nil {
		return fmt.Errorf("serve: mutation already enabled on graph %q", s.mutGraph)
	}
	base, ov := log.Base(), log.Overlay()
	nw := liveNetwork(base)
	if err := nw.SetOverlay(ov); err != nil {
		return err
	}
	s.AddNetwork(graphName, nw)
	s.mutLog = log
	s.mutGraph = graphName
	if node := s.clusterNode; node != nil {
		// Advertise the starting log position right away, so a replica set
		// that boots together starts anti-entropy from real coordinates
		// instead of waiting for the first mutation.
		pos := log.Position()
		node.SetLive(pos.Epoch, pos.Generation, pos.LiveFP)
	}
	return nil
}

// MutationLog returns the attached mutation log and its graph slot, or nil.
func (s *Server) MutationLog() (*mutate.Log, string) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	return s.mutLog, s.mutGraph
}

// liveNetwork builds the standard-phi Network a mutation log's base graph
// is served as.
func liveNetwork(g *graph.Graph) *core.Network {
	return &core.Network{
		Graph: g,
		Label: fmt.Sprintf("live(n=%d,fp=%016x)", g.N(), g.Fingerprint()),
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
		StandardPhi: true,
	}
}

// InstallCompacted hot-swaps a compacted snapshot into the mutable graph
// slot: a fresh Network over the folded base, carrying the tail-replayed
// overlay, installed through the same copy-on-write map /admin/swap uses —
// in-flight requests keep routing on the pre-compaction view, which is
// routing-identical by construction. Wire it as the mutation log's
// OnCompact hook (it is called under the log's lock and does not call back
// into the log).
func (s *Server) InstallCompacted(base *graph.Graph, ov *graph.Overlay, snapshot string) {
	s.mutMu.Lock()
	name := s.mutGraph
	s.mutMu.Unlock()
	if name == "" {
		return
	}
	nw := liveNetwork(base)
	if err := nw.SetOverlay(ov); err != nil {
		// The log hands us the overlay over the base it hands us; a mismatch
		// is a bug, not a runtime condition.
		s.logger.Error("compacted overlay rejected", "err", err)
		return
	}
	s.AddNetwork(name, nw)
	s.swaps.Add(1)
	s.compactSwaps.Add(1)
	s.logger.Info("compacted snapshot swapped in", "graph", name,
		"snapshot", snapshot, "n", base.N(), "m", base.M(),
		"fingerprint", fmt.Sprintf("%016x", base.Fingerprint()))
}

// publishLive re-publishes the mutation log's current overlay onto the
// served network after a batch commits. It also heals the case where a
// background compaction committed without an OnCompact hook installed: the
// log's base has moved on, so the old network's overlay can no longer
// advance, and a fresh Network over the new base is installed instead.
func (s *Server) publishLive() {
	s.mutMu.Lock()
	log, name := s.mutLog, s.mutGraph
	s.mutMu.Unlock()
	base, ov := log.Base(), log.Overlay()
	if nw, ok := s.Network(name); ok && nw.Graph == base {
		if err := nw.SetOverlay(ov); err == nil {
			return
		}
	}
	s.InstallCompacted(base, ov, "")
}

// handleMutate serves POST /admin/mutate: decode, apply through the
// journaled mutation log (validation → fsynced journal append → publish),
// then re-publish the overlay on the served network. The response is
// written only after the journal append — an acknowledged batch survives a
// SIGKILL. Semantically invalid batches are 422 with the failing op's
// index; the live graph is untouched by them.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "server draining")
		return
	}
	defer s.inflight.Done()
	log, mutGraph := s.MutationLog()
	if log == nil {
		writeError(w, http.StatusNotFound, 0, "mutation disabled (start the daemon with -mutate-dir)")
		return
	}
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	name := req.Graph
	if name == "" {
		name = DefaultGraph
	}
	if name != mutGraph {
		writeError(w, http.StatusNotFound, 0, "graph %q is not mutable (mutation log drives %q)", name, mutGraph)
		return
	}
	// Replicated shards have exactly one writer: replica 0. Redirecting
	// writers statically (no election) is what rules out split-brain — a
	// partitioned replica can serve stale reads, never divergent writes.
	if node := s.clusterNode; node != nil && node.Replica() != 0 {
		writeError(w, http.StatusConflict, 0,
			"replica %d of shard %q is read-only; apply mutations at the shard primary (replica 0)",
			node.Replica(), node.Self().Shard)
		return
	}
	start := time.Now()
	app, err := log.Apply(req.Ops)
	if err != nil {
		var opErr *mutate.OpError
		if errors.As(err, &opErr) {
			logger.Info("mutate rejected", "graph", name, "ops", len(req.Ops), "err", err)
			writeError(w, http.StatusUnprocessableEntity, 0, "%v", err)
			return
		}
		// Journal or encoding failure: the batch is not durable and was not
		// published — the daemon's disk is in trouble.
		logger.Error("mutate failed", "graph", name, "err", err)
		writeError(w, http.StatusInternalServerError, 0, "%v", err)
		return
	}
	s.publishLive()
	s.mutations.Add(1)
	if s.clusterNode != nil {
		// The ack contract is local durability (the fsynced journal append
		// above); shipping to replicas happens after the response, and a
		// replica the push misses is healed by anti-entropy.
		s.updateSelfLive()
		go s.shipToReplicas(app.Seq)
	}
	logger.Debug("mutate applied", "graph", name, "ops", len(req.Ops),
		"generation", app.Generation, "seq", app.Seq, "epoch", app.Epoch)
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:      name,
		Generation: app.Generation,
		Seq:        app.Seq,
		Epoch:      app.Epoch,
		Assigned:   app.Assigned,
		ElapsedMs:  float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// readyLive fills the live-overlay section of a ReadyGraph when the named
// slot is driven by the mutation log.
func (s *Server) readyLive(name string, nw *core.Network) *ReadyLive {
	log, mutGraph := s.MutationLog()
	if log == nil || name != mutGraph {
		return nil
	}
	ov := nw.LiveOverlay()
	if ov == nil {
		return nil
	}
	st := log.Stats()
	return &ReadyLive{
		Fingerprint:  fmt.Sprintf("%016x", ov.Fingerprint()),
		Vertices:     ov.N(),
		Edges:        ov.M(),
		Generation:   st.Generation,
		OverlayStats: ov.Stats(),
	}
}

// writeMutateMetrics emits the smallworld_mutate_* families (only when a
// mutation log is attached).
func (s *Server) writeMutateMetrics(p *obs.PromWriter) {
	log, _ := s.MutationLog()
	if log == nil {
		return
	}
	st := log.Stats()
	p.Family("smallworld_mutate_batches_total", "counter", "Mutation batches journaled and published.")
	p.SampleInt("smallworld_mutate_batches_total", nil, int64(st.Batches))
	p.Family("smallworld_mutate_ops_total", "counter", "Mutation ops applied across all batches.")
	p.SampleInt("smallworld_mutate_ops_total", nil, int64(st.Ops))
	p.Family("smallworld_mutate_rejected_total", "counter", "Mutation batches rejected by validation.")
	p.SampleInt("smallworld_mutate_rejected_total", nil, int64(st.Rejected))
	p.Family("smallworld_mutate_compactions_total", "counter", "Overlay compactions committed.")
	p.SampleInt("smallworld_mutate_compactions_total", nil, int64(st.Compactions))
	p.Family("smallworld_mutate_replayed_batches", "gauge", "Batches replayed from the journal at the last open.")
	p.SampleInt("smallworld_mutate_replayed_batches", nil, int64(st.Replayed))
	p.Family("smallworld_mutate_generation", "gauge", "Live journal generation (bumps at each compaction).")
	p.SampleInt("smallworld_mutate_generation", nil, int64(st.Generation))
	p.Family("smallworld_mutate_overlay_epoch", "gauge", "Published overlay epoch (applied batches since the base snapshot).")
	p.SampleInt("smallworld_mutate_overlay_epoch", nil, int64(st.Overlay.Epoch))
	p.Family("smallworld_mutate_overlay_added_vertices", "gauge", "Vertices added over the base snapshot.")
	p.SampleInt("smallworld_mutate_overlay_added_vertices", nil, int64(st.Overlay.AddedVertices))
	p.Family("smallworld_mutate_overlay_removed_vertices", "gauge", "Vertices tombstoned over the base snapshot.")
	p.SampleInt("smallworld_mutate_overlay_removed_vertices", nil, int64(st.Overlay.RemovedVertices))
	p.Family("smallworld_mutate_overlay_added_edges", "gauge", "Edges added over the base snapshot.")
	p.SampleInt("smallworld_mutate_overlay_added_edges", nil, int64(st.Overlay.AddedEdges))
	p.Family("smallworld_mutate_overlay_removed_edges", "gauge", "Edges removed over the base snapshot.")
	p.SampleInt("smallworld_mutate_overlay_removed_edges", nil, int64(st.Overlay.RemovedEdges))
	p.Family("smallworld_mutate_overlay_dirty_vertices", "gauge", "Vertices whose adjacency differs from the base.")
	p.SampleInt("smallworld_mutate_overlay_dirty_vertices", nil, int64(st.Overlay.DirtyVertices))
}
