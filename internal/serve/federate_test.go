package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/mutate"
	"repro/internal/obs"
)

// fetchFederated scrapes one daemon's /cluster/metrics and parses the
// merged exposition.
func fetchFederated(t *testing.T, url string) []*obs.PromFamily {
	t.Helper()
	resp, err := http.Get(url + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	return fams
}

// instancesOf collects the distinct instance label values of one family.
func instancesOf(fams []*obs.PromFamily, name string) map[string]bool {
	out := map[string]bool{}
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if l.Name == "instance" {
					out[l.Value] = true
				}
			}
		}
	}
	return out
}

// TestFederatedMetrics pins the federation contract: one scrape of any
// daemon's /cluster/metrics yields a parseable exposition whose samples are
// instance-labeled with every member of the replica set, including the
// per-replica lag gauges derived from gossiped live positions.
func TestFederatedMetrics(t *testing.T) {
	nw := testNetwork(t, 400, 7)
	daemons := newReplicaSet(t, nw, 3, Config{RequestTimeout: 3 * time.Second}, nil)

	fams := fetchFederated(t, daemons[0].ts.URL)
	insts := instancesOf(fams, "smallworld_serve_graphs")
	if len(insts) != 3 {
		t.Fatalf("smallworld_serve_graphs carries %d instances (%v), want all 3 daemons", len(insts), insts)
	}
	for _, d := range daemons {
		if !insts[d.addr] {
			t.Fatalf("instance %s missing from federated scrape (have %v)", d.addr, insts)
		}
	}
	// Membership was seeded with each peer's live position, so the
	// replica-lag gauges must name both other replicas.
	lagged := map[string]bool{}
	for _, f := range fams {
		if f.Name != "smallworld_replication_replica_epoch" {
			continue
		}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if l.Name == "peer" {
					lagged[l.Value] = true
				}
			}
		}
	}
	if len(lagged) < 2 {
		t.Fatalf("replica_epoch gauges name %d peers (%v), want the 2 other replicas", len(lagged), lagged)
	}

	// The failure counter stays 0 when everyone answered.
	for _, f := range fams {
		if f.Name == "smallworld_federation_scrape_failures_total" {
			for _, s := range f.Samples {
				if s.Value != 0 {
					t.Fatalf("federation scrape failures %v on a healthy cluster", s.Value)
				}
			}
		}
	}
}

// TestFederatedMetricsDegraded pins per-instance degradation: with one
// replica dead, the federated scrape still answers 200 with the survivors,
// and the failure counter records the missing peer.
func TestFederatedMetricsDegraded(t *testing.T) {
	nw := testNetwork(t, 400, 7)
	daemons := newReplicaSet(t, nw, 3, Config{RequestTimeout: time.Second}, nil)
	daemons[2].ts.Close()

	fams := fetchFederated(t, daemons[0].ts.URL)
	insts := instancesOf(fams, "smallworld_serve_graphs")
	if !insts[daemons[0].addr] || !insts[daemons[1].addr] {
		t.Fatalf("surviving instances missing from degraded scrape: %v", insts)
	}
	if insts[daemons[2].addr] {
		t.Fatalf("dead instance %s present in scrape", daemons[2].addr)
	}
	if got := daemons[0].srv.fedScrapeFails.Load(); got == 0 {
		t.Fatal("dead peer's scrape failure not counted")
	}
}

// TestReadyzReplicaLag pins satellite 6: /readyz (and /debug/vars through
// the same accessors) reports the local live position and the per-replica
// lag learned from gossip.
func TestReadyzReplicaLag(t *testing.T) {
	nw := testNetwork(t, 400, 7)
	daemons := newReplicaSet(t, nw, 2, Config{RequestTimeout: 3 * time.Second}, nil)

	resp, err := http.Get(daemons[0].ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Cluster == nil {
		t.Fatal("readyz carries no cluster section")
	}
	if ready.Cluster.Live == nil {
		t.Fatal("readyz cluster section carries no live position despite a replicated log")
	}
	if len(ready.Cluster.ReplicaLag) != 1 {
		t.Fatalf("replica_lag has %d entries, want 1 (the other replica)", len(ready.Cluster.ReplicaLag))
	}
	lag := ready.Cluster.ReplicaLag[0]
	if lag.Peer != daemons[1].addr {
		t.Fatalf("replica_lag names %q, want %q", lag.Peer, daemons[1].addr)
	}
	if lag.State == "" {
		t.Fatal("replica_lag carries no failure-detector state")
	}
}

// TestFederatedMetricsConcurrent hammers /cluster/metrics while the cluster
// is busy: routes in flight, mutation batches committing on the primary,
// and hot swaps installing networks — the race detector (make check) is the
// real assertion; status-wise every scrape must answer 200.
func TestFederatedMetricsConcurrent(t *testing.T) {
	nw := testNetwork(t, 400, 7)
	daemons := newReplicaSet(t, nw, 2, Config{Workers: 4, RequestTimeout: 3 * time.Second}, nil)
	primary := daemons[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	// Scrapers: both daemons federate concurrently (each scrapes the other).
	for _, d := range daemons {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url + "/cluster/metrics")
				if err != nil {
					select {
					case fail <- fmt.Sprintf("scrape: %v", err):
					default:
					}
					return
				}
				if _, err := obs.ParseExposition(resp.Body); err != nil {
					select {
					case fail <- fmt.Sprintf("scrape parse: %v", err):
					default:
					}
				}
				resp.Body.Close()
			}
		}(d.ts.URL)
	}
	// Router: keeps the request path and its phase histograms hot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := nw.Graph.N()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body, _ := json.Marshal(RouteRequest{S: i % n, T: (i*31 + 7) % n})
			resp, err := http.Post(primary.ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	// Mutator: journaled batches ship to the replica mid-scrape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := nw.Graph.N()
		for {
			select {
			case <-stop:
				return
			default:
			}
			body, _ := json.Marshal(MutateRequest{Graph: "live", Ops: addVertexOps(nw, next)})
			resp, err := http.Post(primary.ts.URL+"/admin/mutate", "application/json", bytes.NewReader(body))
			if err == nil {
				if resp.StatusCode == http.StatusOK {
					next++
				}
				resp.Body.Close()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Swapper: hot-installs the network into a side slot while scrapes walk
	// the graphs map.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			primary.srv.AddNetwork("scratch", nw)
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestReplicationStatsLag pins the /debug/vars surface: replication stats
// include the per-replica lag slice.
func TestReplicationStatsLag(t *testing.T) {
	nw := testNetwork(t, 400, 7)
	daemons := newReplicaSet(t, nw, 2, Config{RequestTimeout: 3 * time.Second}, nil)
	st := daemons[0].srv.Stats().Cluster
	if st == nil || st.Replication == nil {
		t.Fatal("no replication stats on a replicated daemon")
	}
	if len(st.Replication.ReplicaLag) != 1 {
		t.Fatalf("replication stats carry %d lag entries, want 1", len(st.Replication.ReplicaLag))
	}
	var pos mutate.Position
	if st.Replication.Position == pos && st.Replication.Position.Generation == 0 {
		t.Fatal("replication stats carry a zero position")
	}
}
