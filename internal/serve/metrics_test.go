package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// parseExposition validates a Prometheus text exposition body: every sample
// belongs to a family declared by a preceding # TYPE line, the samples of a
// family are contiguous, and every value parses. It returns the per-family
// sample values in emission order.
func parseExposition(t *testing.T, body string) map[string][]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string][]float64{}
	var current string
	closed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, mtype := parts[2], parts[3]
			if _, dup := types[name]; dup {
				t.Fatalf("family %q declared twice", name)
			}
			types[name] = mtype
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = name[:i]
		}
		// Histogram series belong to their base family.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		if family != current {
			if closed[family] {
				t.Fatalf("family %q has non-contiguous samples (line %q)", family, line)
			}
			if current != "" {
				closed[current] = true
			}
			current = family
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[name] = append(samples[name], v)
	}
	return samples
}

// TestMetricsEndpoint scrapes /metrics after real traffic and validates the
// exposition: format validity, the required families, and the histogram
// invariants (cumulative buckets, +Inf bucket equal to the count).
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, _, _ := postRoute(t, ts.URL, RouteRequest{S: i, T: 200 + i})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("route %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, string(body))

	for _, name := range []string{
		"smallworld_engine_episodes_total",
		"smallworld_engine_moves_total",
		"smallworld_engine_episode_failures_total",
		"smallworld_engine_episode_duration_seconds_count",
		"smallworld_serve_admitted_total",
		"smallworld_serve_shed_total",
		"smallworld_serve_retries_total",
		"smallworld_serve_swaps_total",
		"smallworld_serve_quarantined_total",
		"smallworld_serve_inflight",
		"smallworld_serve_breaker_state",
		"smallworld_trace_sampled_total",
		"smallworld_go_goroutines",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if v := samples["smallworld_serve_admitted_total"]; len(v) != 1 || v[0] < 3 {
		t.Errorf("admitted_total = %v, want >= 3", v)
	}
	// Engine counters are process-wide: at least this test's episodes.
	if v := samples["smallworld_engine_episodes_total"]; len(v) != 1 || v[0] < 3 {
		t.Errorf("episodes_total = %v, want >= 3", v)
	}
	// The routed (graph, protocol) pair has a breaker sample by now.
	if v := samples["smallworld_serve_breaker_state"]; len(v) < 1 || v[0] != 0 {
		t.Errorf("breaker_state = %v, want one closed (0) sample", v)
	}
	// Histogram: buckets must be cumulative and end at the total count.
	buckets := samples["smallworld_engine_episode_duration_seconds_bucket"]
	if len(buckets) != 22 {
		t.Fatalf("histogram has %d buckets, want 22", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("bucket %d not cumulative: %v", i, buckets)
		}
	}
	count := samples["smallworld_engine_episode_duration_seconds_count"][0]
	if buckets[len(buckets)-1] != count {
		t.Fatalf("+Inf bucket %v != count %v", buckets[len(buckets)-1], count)
	}

	// Non-GET is rejected.
	post, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

// TestMetricsConcurrentScrape hammers /metrics while routing traffic is in
// flight — the race detector turns any unsynchronized counter read into a
// failure.
func TestMetricsConcurrentScrape(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 8, Tracer: obs.NewTracer(obs.TracerConfig{SampleRate: 0.5, Seed: 3})})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body, _ := json.Marshal(RouteRequest{S: (r*10 + i) % 400, T: 200})
				resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %d: status %d", i, resp.StatusCode)
					return
				}
				parseExposition(t, string(body))
			}
		}()
	}
	wg.Wait()
}

// TestRequestIDPropagation is the tentpole's logging acceptance check: the
// X-Request-ID returned to the client must label the admission, retry and
// episode log lines of that request.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	logger, err := (&obs.LogConfig{Format: "json", Level: "debug"}).NewLogger(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:        2,
		RequestTimeout: 400 * time.Millisecond,
		MaxHops:        -1,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Logger:         logger,
		RequestIDSalt:  99,
	})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A persistently slow protocol forces the retry loop, so the log carries
	// admission, retries and the final episode line for one request id.
	slowMode.Store(true)
	defer slowMode.Store(false)
	body, _ := json.Marshal(RouteRequest{Protocol: "test-switchable", S: 0, T: 1})
	resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("route response carries no X-Request-ID")
	}

	byMsg := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q does not parse: %v", line, err)
		}
		if rec["request_id"] == rid {
			byMsg[rec["msg"].(string)]++
		}
	}
	for _, msg := range []string{"route admitted", "route retrying", "route episode"} {
		if byMsg[msg] == 0 {
			t.Errorf("no %q log line carries request_id %s (got %v)", msg, rid, byMsg)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing handler logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceEndpoint routes with sampling at rate 1 and checks the captured
// trace comes back on /debug/trace tied to the request's X-Request-ID.
func TestTraceEndpoint(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, Seed: 42})
	s := New(Config{Tracer: tracer, RequestIDSalt: 7})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RouteRequest{S: 1, T: 200})
	post, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	rid := post.Header.Get("X-Request-ID")

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var traces []obs.Trace
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var tr obs.Trace
		if err := dec.Decode(&tr); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	var found *obs.Trace
	for i := range traces {
		if traces[i].Request == rid {
			found = &traces[i]
		}
	}
	if found == nil {
		t.Fatalf("no trace carries request id %s (%d traces held)", rid, len(traces))
	}
	if len(found.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if found.Graph != DefaultGraph || found.Protocol != "greedy" {
		t.Fatalf("trace labels = %q/%q", found.Graph, found.Protocol)
	}
	if found.ID != tracer.ID(found.Episode) {
		t.Fatalf("trace id %q does not match the deterministic id %q", found.ID, tracer.ID(found.Episode))
	}
	for i, sp := range found.Spans {
		if sp.Step != i {
			t.Fatalf("span %d out of order: %+v", i, sp)
		}
	}
}

// TestTraceEndpointDisabled checks the tracer-less daemon answers 404 with a
// hint, not a panic or an empty 200.
func TestTraceEndpointDisabled(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace without tracer = %d, want 404", resp.StatusCode)
	}
}

// TestPprofEndpoints checks the profiling surface is mounted on the handler.
func TestPprofEndpoints(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("goroutine profile status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine profile") {
		t.Fatalf("unexpected profile body: %.120s", body)
	}
	index, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	index.Body.Close()
	if index.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", index.StatusCode)
	}
}

// TestRequestIDOnEveryResponse checks the middleware stamps all endpoints,
// not just /route.
func TestRequestIDOnEveryResponse(t *testing.T) {
	s := New(Config{RequestIDSalt: 5})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	seen := map[string]bool{}
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Errorf("%s: no X-Request-ID", path)
		}
		if seen[id] {
			t.Errorf("%s: duplicate request id %s", path, id)
		}
		seen[id] = true
	}
}
