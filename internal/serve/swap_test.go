package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/graphio"
)

// postSwap marshals req against /admin/swap and decodes whichever body the
// status implies.
func postSwap(t *testing.T, url string, req SwapRequest) (*http.Response, SwapResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/admin/swap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok SwapResponse
	var bad ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp, ok, bad
}

// writeSnapshot serializes a test network to path in the binary format the
// way girgen -format girgb does (atomic write included, for realism).
func writeSnapshot(t *testing.T, path string, n float64, seed uint64) uint64 {
	t.Helper()
	nw := testNetwork(t, n, seed)
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		return graphio.WriteBinary(w, nw.Graph)
	}); err != nil {
		t.Fatal(err)
	}
	return nw.Graph.Fingerprint()
}

// TestSwapFromFile installs a snapshot loaded from disk and routes on it.
func TestSwapFromFile(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "snap.girgb")
	want := writeSnapshot(t, path, 300, 23)

	resp, sw, _ := postSwap(t, ts.URL, SwapRequest{Path: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap from file: status %d", resp.StatusCode)
	}
	if sw.Vertices != 300 {
		t.Fatalf("swap installed %d vertices, want 300", sw.Vertices)
	}
	if sw.Fingerprint != fingerprintHex(want) {
		t.Fatalf("swap fingerprint %s, want %s", sw.Fingerprint, fingerprintHex(want))
	}
	r, _, _ := postRoute(t, ts.URL, RouteRequest{S: 0, T: 150})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("route on swapped-in snapshot = %d", r.StatusCode)
	}
}

// TestSwapQuarantinesCorruptSnapshot is the corruption gate: a bit-flipped
// snapshot is rejected with 422, the quarantine counter ticks, and the
// previously installed graph keeps serving untouched.
func TestSwapQuarantinesCorruptSnapshot(t *testing.T) {
	s := New(Config{})
	nw := testNetwork(t, 400, 11)
	s.AddNetwork("", nw)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "snap.girgb")
	writeSnapshot(t, path, 300, 23)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, _, bad := postSwap(t, ts.URL, SwapRequest{Path: path})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt swap: status %d, want 422", resp.StatusCode)
	}
	if bad.Error == "" {
		t.Fatal("corrupt swap: empty error body")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if s.Stats().Swaps != 0 {
		t.Fatal("corrupt snapshot counted as an installed swap")
	}
	// The old snapshot still serves: vertex 350 only exists in the original
	// 400-vertex graph, so routing to it proves no replacement happened.
	r, _, _ := postRoute(t, ts.URL, RouteRequest{S: 0, T: 350})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("route after quarantined swap = %d, want 200 on the old snapshot", r.StatusCode)
	}
	if got, _ := s.Network(""); got != nw {
		t.Fatal("network pointer changed despite quarantine")
	}
}

// TestSwapMissingFile: a nonexistent path is a client error, not corruption.
func TestSwapMissingFile(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _, _ := postSwap(t, ts.URL, SwapRequest{Path: filepath.Join(t.TempDir(), "missing.girgb")})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing file: status %d, want 400", resp.StatusCode)
	}
	if s.Stats().Quarantined != 0 {
		t.Fatal("missing file counted as corruption")
	}
}

// fingerprintHex mirrors the handler's formatting.
func fingerprintHex(fp uint64) string {
	return fmt.Sprintf("%016x", fp)
}
