package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/route"
)

// This file is the batch half of the routing API: POST /route/batch answers
// many queries under one admission slot, and POST /route is a batch of one —
// both run through routeOne, the single retry/breaker/budget core, over a
// pooled episodeState whose buffers are reused across every attempt and
// every item of a request.

// episodeState is the pooled per-request routing state: the scratch buffers
// and the Result every engine attempt builds into (core.RouteEpisodeInto).
// One admitted request — a whole batch — checks out one state and threads it
// through all its episodes, so steady-state serving stops allocating a
// Result path per episode.
type episodeState struct {
	sc  route.Scratch
	out route.Result
}

var episodePool = sync.Pool{New: func() interface{} { return new(episodeState) }}

// routeOutcome is what one admitted query resolves to: either an item-level
// rejection (errMsg set) or a routed episode (resp set). clientGone reports
// that the client departed during retry backoff — the caller stops
// processing further items, there is nobody left to answer.
type routeOutcome struct {
	status     int
	resp       RouteResponse
	errMsg     string
	retryAfter time.Duration
	clientGone bool
}

// routeOne runs one admitted, validated routing query: breaker gate, then
// budgeted engine episodes with transient-failure retries under the caller's
// deadline. It is the shared core of POST /route and POST /route/batch; the
// caller has resolved the graph, validated the query and acquired an
// admission slot. traced enables deterministic trace sampling of the
// per-hop episode tracer (the single-query path; batches are not traced);
// rt carries the request's distributed phase trace (nil when untraced) and
// queued the admission wait already measured by the caller, repeated into
// this query's Timings.
func (s *Server) routeOne(r *http.Request, nw *core.Network, graphName string, q RouteRequest, deadline time.Time, es *episodeState, traced bool, rt *reqTrace, queued time.Duration) routeOutcome {
	logger := obs.Logger(r.Context())
	protoName := q.Protocol
	tm := &Timings{QueueUs: queued.Microseconds()}

	// Circuit breaker: fail fast while this (graph, protocol) is unhealthy.
	br := s.breaker(graphName, protoName)
	if retryIn, err := br.Allow(); err != nil {
		rt.add(obs.SpanBreaker, time.Now(), 0, "", graphName+"/"+protoName, "open")
		logger.Warn("route rejected", "reason", "breaker open",
			"graph", graphName, "protocol", protoName, "retry_in_ms", retryIn.Milliseconds())
		return routeOutcome{
			status:     http.StatusServiceUnavailable,
			errMsg:     fmt.Sprintf("circuit breaker open for %s/%s", graphName, protoName),
			retryAfter: retryIn,
		}
	}

	requestID := s.reqID.Add(1)
	faultSeed := q.FaultSeed
	if faultSeed == 0 {
		faultSeed = hash64(requestID, uint64(q.S)<<32|uint64(uint32(q.T)))
	}
	start := time.Now()

	// Deterministic trace sampling: the decision and the trace id are pure
	// functions of (tracer seed, request sequence). The collector is reset
	// per attempt so the published trace holds the final attempt's spans;
	// earlier attempts survive as trace events.
	var (
		collector   *obs.SpanCollector
		traceEvents []string
	)
	if traced && s.tracer.Sampled(int(requestID)) {
		collector = &obs.SpanCollector{}
		for _, f := range q.Faults {
			traceEvents = append(traceEvents, fmt.Sprintf("fault %s rate=%g", f.Model, f.Rate))
		}
	}

	var (
		res      = &es.out
		epErr    error
		attempts int
		fwd      routeFwd
	)
	clustered := s.clusterEligible(nw, protoName, q)
	for attempt := 1; ; attempt++ {
		attempts = attempt
		remaining := time.Until(deadline)
		if remaining <= 0 {
			*res = route.Result{Path: append(res.Path[:0], q.S), Unique: 1, Stuck: -1, Failure: route.FailDeadline}
			break
		}
		var plan *faults.Plan
		if len(q.Faults) > 0 {
			// Salt the plan seed per attempt: transient fault draws (and the
			// crash sets of churn models) re-roll on retry, which is what
			// makes crashed-target a retryable class at all.
			plan, epErr = faults.NewPlan(hash64(faultSeed, uint64(attempt)), q.Faults...)
			if epErr != nil {
				break
			}
		}
		epCfg := core.EpisodeConfig{
			Protocol: core.Protocol(protoName),
			S:        q.S, T: q.T,
			MaxHops: s.cfg.MaxHops,
			Timeout: remaining,
			Faults:  plan,
			Episode: attempt,
		}
		if collector != nil {
			collector.Reset()
			epCfg.Observer = collector
		}
		if clustered {
			// Sharded path: partial greedy over the local shard, continuation
			// forwarded to the owning peer, merged result recorded as one
			// engine episode. Budget mapping mirrors RouteEpisodeInto's.
			fwd = s.clusterRoute(r.Context(), graphName, q.S, q.T,
				time.Now().Add(remaining), es, rt, tm)
			epErr = nil
		} else {
			epStart := time.Now()
			epErr = nw.RouteEpisodeInto(epCfg, &es.sc, res)
			epDur := time.Since(epStart)
			tm.RouteUs += epDur.Microseconds()
			s.phaseLat[phaseRoute].Record(epDur)
			rt.add(obs.SpanLocalRoute, epStart, epDur, "", "", spanErr(epErr, res))
		}
		if collector != nil {
			switch {
			case epErr != nil:
				traceEvents = append(traceEvents, fmt.Sprintf("attempt %d: error", attempt))
			case res.Success:
				traceEvents = append(traceEvents, fmt.Sprintf("attempt %d: delivered", attempt))
			default:
				traceEvents = append(traceEvents, fmt.Sprintf("attempt %d: %s", attempt, res.Failure))
			}
		}
		if epErr != nil || res.Success || !Transient(res.Failure) {
			break
		}
		if attempt >= s.cfg.Retry.MaxAttempts {
			break
		}
		// Back off before the next attempt, but never past the request
		// deadline or the client's departure.
		wait := s.cfg.Retry.Backoff(requestID, attempt)
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		s.retries.Add(1)
		logger.Info("route retrying", "attempt", attempt, "failure", string(res.Failure),
			"backoff_ms", wait.Milliseconds())
		if wait > 0 {
			bkStart := time.Now()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
				slept := time.Since(bkStart)
				tm.BackoffUs += slept.Microseconds()
				s.phaseLat[phaseBackoff].Record(slept)
				rt.add(obs.SpanRetryBackoff, bkStart, slept, "",
					fmt.Sprintf("attempt %d", attempt), "")
			case <-r.Context().Done():
				t.Stop()
				logger.Info("route abandoned", "reason", "client gone during backoff", "err", r.Context().Err())
				br.Record(true)
				return routeOutcome{
					status:     http.StatusServiceUnavailable,
					errMsg:     fmt.Sprintf("client gone during backoff: %v", r.Context().Err()),
					clientGone: true,
				}
			}
		}
	}

	// The breaker watches service health, not query answers: engine errors
	// and engine-inflicted failure classes count against it, while
	// definitive protocol outcomes (delivered, dead-end, truncated) count
	// as healthy service.
	stateBefore := br.State()
	br.Record(epErr != nil || Transient(res.Failure) || res.Failure == route.FailCancelled)
	if after := br.State(); after == BreakerOpen && stateBefore != BreakerOpen {
		logger.Warn("circuit breaker opened", "graph", graphName, "protocol", protoName,
			"opens", br.Opens())
	}

	if collector != nil && epErr == nil {
		s.tracer.Publish(obs.Trace{
			ID:        s.tracer.ID(int(requestID)),
			Episode:   int(requestID),
			Request:   obs.RequestID(r.Context()),
			Protocol:  protoName,
			Graph:     graphName,
			Failure:   string(res.Failure),
			Events:    traceEvents,
			Spans:     collector.Spans,
			Truncated: collector.Truncated,
		})
	}

	if epErr != nil {
		logger.Error("route episode failed", "err", epErr, "attempts", attempts)
		return routeOutcome{status: http.StatusInternalServerError, errMsg: epErr.Error()}
	}
	logger.Info("route episode", "graph", graphName, "protocol", protoName,
		"s", q.S, "t", q.T, "success", res.Success, "failure", string(res.Failure),
		"moves", res.Moves, "attempts", attempts, "forwards", fwd.forwards,
		"elapsed_ms", float64(time.Since(start).Microseconds())/1000)
	tm.TotalUs = tm.QueueUs + time.Since(start).Microseconds()
	resp := RouteResponse{
		Graph:    graphName,
		Protocol: protoName,
		S:        q.S, T: q.T,
		Success:   res.Success,
		Failure:   string(res.Failure),
		Moves:     res.Moves,
		Unique:    res.Unique,
		Attempts:  attempts,
		Forwards:  fwd.forwards,
		Hedges:    fwd.hedges,
		Failovers: fwd.failovers,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Timings:   tm,
	}
	if q.IncludePath {
		// The episode's Path aliases the pooled state and is overwritten by
		// the next attempt or item; the response keeps its own copy.
		resp.Path = append([]int(nil), res.Path...)
	}
	return routeOutcome{status: StatusFor(res.Failure), resp: resp}
}

// spanErr classifies one engine episode's outcome for its local_route span:
// the error text, the failure class of an unsuccessful episode, or "" when
// the walk delivered.
func spanErr(err error, res *route.Result) string {
	switch {
	case err != nil:
		return err.Error()
	case res.Success:
		return ""
	default:
		return string(res.Failure)
	}
}

// validateItem checks one query against the resolved network, mirroring the
// request-level validation of POST /route; a non-empty result is the item's
// rejection message with its status.
func validateItem(nw *core.Network, protoName string, s, t int, specs []faults.Spec) (int, string) {
	if _, err := core.Lookup(protoName); err != nil {
		return http.StatusNotFound, err.Error()
	}
	if n := nw.LiveN(); s < 0 || s >= n || t < 0 || t >= n {
		return http.StatusBadRequest, fmt.Sprintf("vertex pair (%d, %d) out of range (n = %d)", s, t, n)
	}
	if _, err := faults.NewPlan(0, specs...); err != nil {
		return http.StatusBadRequest, err.Error()
	}
	return 0, ""
}

// handleRouteBatch serves POST /route/batch: one admission slot for the
// whole batch, items answered sequentially on that worker under one shared
// request deadline, per-item breaker and retry semantics. Item failures are
// per-item statuses in the body; the envelope is 200 whenever the batch was
// served at all.
func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	logger := obs.Logger(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, 0, "POST required")
		return
	}
	if !s.beginRequest() {
		logger.Info("batch rejected", "reason", "draining")
		writeError(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "server draining")
		return
	}
	defer s.inflight.Done()

	var req BatchRouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	graphName := req.Graph
	if graphName == "" {
		graphName = DefaultGraph
	}
	nw, ok := s.Network(graphName)
	if !ok {
		writeError(w, http.StatusNotFound, 0, "unknown graph %q (installed: %s)",
			graphName, strings.Join(s.GraphNames(), ", "))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, 0, "empty batch")
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, 0, "batch of %d items exceeds the limit of %d",
			len(req.Items), s.cfg.MaxBatch)
		return
	}

	// One distributed trace covers the whole batch: the queue wait is shared
	// (one admission slot), items contribute their own phase spans.
	rt := s.startEntryTrace()
	defer func() { rt.finish("") }()

	// Admission: the whole batch is one unit of work — one slot, shed as one.
	qStart := time.Now()
	if err := s.pool.Acquire(r.Context()); err != nil {
		if err == ErrOverloaded {
			rt.finish("shed")
			logger.Warn("batch shed", "reason", "overloaded",
				"items", len(req.Items), "inflight", s.pool.InFlight(), "waiting", s.pool.Waiting())
			writeError(w, http.StatusTooManyRequests, s.cfg.RetryAfter, "overloaded: %d in flight, %d queued",
				s.pool.InFlight(), s.pool.Waiting())
			return
		}
		rt.finish("cancelled while queued")
		logger.Info("batch rejected", "reason", "cancelled while queued", "err", err)
		writeError(w, http.StatusServiceUnavailable, 0, "cancelled while queued: %v", err)
		return
	}
	defer s.pool.Release()
	queued := time.Since(qStart)
	s.phaseLat[phaseQueue].Record(queued)
	rt.add(obs.SpanQueueWait, qStart, queued, "", "", "")
	logger.Debug("batch admitted", "graph", graphName, "items", len(req.Items),
		"inflight", s.pool.InFlight(), "waiting", s.pool.Waiting())

	es := episodePool.Get().(*episodeState)
	defer episodePool.Put(es)

	start := time.Now()
	deadline := start.Add(s.cfg.RequestTimeout)
	results := make([]BatchItemResult, len(req.Items))
	clientGone := false
	for i, item := range req.Items {
		protoName := item.Protocol
		if protoName == "" {
			protoName = string(core.ProtoGreedy)
		}
		results[i].S, results[i].T = item.S, item.T
		if clientGone {
			results[i].Status = http.StatusServiceUnavailable
			results[i].Error = "client gone, batch abandoned"
			continue
		}
		if status, msg := validateItem(nw, protoName, item.S, item.T, item.Faults); status != 0 {
			results[i].Status = status
			results[i].Error = msg
			continue
		}
		out := s.routeOne(r, nw, graphName, RouteRequest{
			Protocol: protoName,
			S:        item.S, T: item.T,
			Faults:      item.Faults,
			FaultSeed:   item.FaultSeed,
			IncludePath: item.IncludePath,
		}, deadline, es, false, rt, queued)
		if out.errMsg != "" {
			results[i].Status = out.status
			results[i].Error = out.errMsg
			results[i].RetryAfterMs = out.retryAfter.Milliseconds()
			clientGone = out.clientGone
			continue
		}
		results[i] = BatchItemResult{
			Status:   out.status,
			Protocol: out.resp.Protocol,
			S:        out.resp.S, T: out.resp.T,
			Success:   out.resp.Success,
			Failure:   out.resp.Failure,
			Moves:     out.resp.Moves,
			Unique:    out.resp.Unique,
			Path:      out.resp.Path,
			Attempts:  out.resp.Attempts,
			Forwards:  out.resp.Forwards,
			Hedges:    out.resp.Hedges,
			Failovers: out.resp.Failovers,
			ElapsedMs: out.resp.ElapsedMs,
			Timings:   out.resp.Timings,
		}
	}
	writeJSON(w, http.StatusOK, BatchRouteResponse{
		Graph:     graphName,
		Items:     results,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}
