package serve

import (
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// handleMetrics serves GET /metrics: the Prometheus text exposition of the
// whole process — engine counters (episodes, moves, failure taxonomy, the
// wall-time histogram), the serving layer (pool, breakers, retries, swaps),
// the tracer and the Go runtime. The translation is dependency-free
// (obs.PromWriter) and the metric names are stable; DESIGN.md §9 carries the
// full name table.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, 0, "GET required")
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	if err := s.writeMetricsTo(w); err != nil {
		obs.Logger(r.Context()).Warn("metrics write failed", "err", err)
	}
}

// writeMetricsTo renders the full exposition to w. The federation endpoint
// (/cluster/metrics) calls this directly to scrape the local daemon
// in-process — no loopback HTTP round-trip.
func (s *Server) writeMetricsTo(w io.Writer) error {
	p := obs.NewPromWriter(w)
	obs.WriteEngineMetrics(p, core.Stats())
	s.writeServeMetrics(p)
	s.writeMutateMetrics(p)
	if s.clusterNode != nil {
		s.writeClusterMetrics(p)
		s.writeReplicationMetrics(p)
	}
	s.writeTraceMetrics(p)
	obs.WriteTracerMetrics(p, s.tracer)
	obs.WriteRuntimeMetrics(p)
	return p.Err()
}

// writeTraceMetrics emits the per-phase request-time histograms, the span-log
// counters, and the federation scrape counters. The phase histograms are
// recorded on every request — traced or not — so the attribution is complete
// even at low sample rates; spans only add the per-request join key.
func (s *Server) writeTraceMetrics(p *obs.PromWriter) {
	p.Family("smallworld_request_phase_seconds", "histogram", "Request wall time by phase (queue_wait, local_route, forward_rpc, hedge_wait, retry_backoff, anti_entropy).")
	for ph := 0; ph < phaseCount; ph++ {
		s.phaseLat[ph].WriteHistogramSamples(p, "smallworld_request_phase_seconds",
			[]obs.Label{{Name: "phase", Value: phaseNames[ph]}})
	}
	if s.spans != nil {
		st := s.spans.Stats()
		p.Family("smallworld_trace_spans_published_total", "counter", "Phase spans recorded by the distributed span log.")
		p.SampleInt("smallworld_trace_spans_published_total", nil, st.Published)
		p.Family("smallworld_trace_spans_dropped_total", "counter", "Phase spans overwritten before export (ring full).")
		p.SampleInt("smallworld_trace_spans_dropped_total", nil, st.Dropped)
		p.Family("smallworld_trace_spans_buffered", "gauge", "Completed spans currently held in the ring.")
		p.SampleInt("smallworld_trace_spans_buffered", nil, int64(st.Buffered))
	}
	if s.clusterNode != nil {
		p.Family("smallworld_federation_scrapes_total", "counter", "Peer scrapes attempted by GET /cluster/metrics.")
		p.SampleInt("smallworld_federation_scrapes_total", nil, s.fedScrapes.Load())
		p.Family("smallworld_federation_scrape_failures_total", "counter", "Peer scrapes that failed or returned unparsable expositions.")
		p.SampleInt("smallworld_federation_scrape_failures_total", nil, s.fedScrapeFails.Load())
	}
}

// breakerStateValue encodes breaker states as gauge values: 0 closed,
// 1 open, 2 half-open (so "anything non-zero needs attention" alerts work).
func breakerStateValue(st BreakerState) float64 {
	switch st {
	case BreakerOpen:
		return 1
	case BreakerHalfOpen:
		return 2
	}
	return 0
}

// writeServeMetrics emits the smallworld_serve_* families.
func (s *Server) writeServeMetrics(p *obs.PromWriter) {
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	p.Family("smallworld_serve_draining", "gauge", "1 while the server drains for shutdown.")
	p.SampleInt("smallworld_serve_draining", nil, draining)
	p.Family("smallworld_serve_graphs", "gauge", "Installed graph snapshots.")
	p.SampleInt("smallworld_serve_graphs", nil, int64(len(*s.graphs.Load())))
	p.Family("smallworld_serve_inflight", "gauge", "Requests holding a worker slot.")
	p.SampleInt("smallworld_serve_inflight", nil, int64(s.pool.InFlight()))
	p.Family("smallworld_serve_waiting", "gauge", "Admitted requests queued for a worker.")
	p.SampleInt("smallworld_serve_waiting", nil, int64(s.pool.Waiting()))
	p.Family("smallworld_serve_admitted_total", "counter", "Requests admitted by the pool.")
	p.SampleInt("smallworld_serve_admitted_total", nil, s.pool.Acquired())
	p.Family("smallworld_serve_shed_total", "counter", "Requests shed with 429 by the admission pool.")
	p.SampleInt("smallworld_serve_shed_total", nil, s.pool.Shed())
	p.Family("smallworld_serve_retries_total", "counter", "Transient-failure retry attempts.")
	p.SampleInt("smallworld_serve_retries_total", nil, s.retries.Load())
	p.Family("smallworld_serve_swaps_total", "counter", "Graph snapshots installed via /admin/swap.")
	p.SampleInt("smallworld_serve_swaps_total", nil, s.swaps.Load())
	p.Family("smallworld_serve_quarantined_total", "counter", "Swap snapshots rejected by checksum/format verification.")
	p.SampleInt("smallworld_serve_quarantined_total", nil, s.quarantined.Load())
	p.Family("smallworld_serve_swap_noops_total", "counter", "Path swaps skipped: fingerprint already installed.")
	p.SampleInt("smallworld_serve_swap_noops_total", nil, s.swapNoops.Load())
	p.Family("smallworld_serve_mutations_total", "counter", "Mutation batches committed via /admin/mutate.")
	p.SampleInt("smallworld_serve_mutations_total", nil, s.mutations.Load())
	p.Family("smallworld_serve_compact_swaps_total", "counter", "Compacted snapshots hot-swapped into the mutable slot.")
	p.SampleInt("smallworld_serve_compact_swaps_total", nil, s.compactSwaps.Load())

	// Breakers are labelled by their (graph, protocol) pair; keys are
	// sorted so consecutive scrapes diff cleanly.
	type brSample struct {
		graph, proto string
		state        float64
		opens        int64
	}
	s.breakerMu.Lock()
	samples := make([]brSample, 0, len(s.breakers))
	for key, b := range s.breakers {
		graph, proto := key, ""
		// Keys are "graph/protocol"; protocol names never contain '/', so
		// the last separator is the split point even for odd graph names.
		if i := strings.LastIndex(key, "/"); i >= 0 {
			graph, proto = key[:i], key[i+1:]
		}
		samples = append(samples, brSample{graph, proto, breakerStateValue(b.State()), b.Opens()})
	}
	s.breakerMu.Unlock()
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].graph != samples[j].graph {
			return samples[i].graph < samples[j].graph
		}
		return samples[i].proto < samples[j].proto
	})
	// One family at a time: the exposition format requires every sample of
	// a family to follow its TYPE line contiguously.
	p.Family("smallworld_serve_breaker_state", "gauge", "Circuit breaker state: 0 closed, 1 open, 2 half-open.")
	for _, b := range samples {
		p.Sample("smallworld_serve_breaker_state",
			[]obs.Label{{Name: "graph", Value: b.graph}, {Name: "protocol", Value: b.proto}}, b.state)
	}
	p.Family("smallworld_serve_breaker_opens_total", "counter", "Cumulative breaker trips to open.")
	for _, b := range samples {
		p.SampleInt("smallworld_serve_breaker_opens_total",
			[]obs.Label{{Name: "graph", Value: b.graph}, {Name: "protocol", Value: b.proto}}, b.opens)
	}
}

// handleTrace serves GET /debug/trace: the completed sampled episode traces
// followed by the distributed phase spans, both as JSON Lines, oldest first.
// The two record shapes share the stream — episode traces carry an "id" key,
// phase spans a "trace" key — so consumers (and tracestitch) can split them
// without a framing protocol. 404 when the daemon runs without either.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, 0, "GET required")
		return
	}
	if s.tracer == nil && s.spans == nil {
		writeError(w, http.StatusNotFound, 0, "tracing disabled (start the daemon with -trace-sample > 0)")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.tracer != nil {
		if err := s.tracer.WriteJSONL(w); err != nil {
			obs.Logger(r.Context()).Warn("trace write failed", "err", err)
			return
		}
	}
	if err := s.spans.WriteJSONL(w); err != nil {
		obs.Logger(r.Context()).Warn("span write failed", "err", err)
	}
}
