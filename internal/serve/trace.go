package serve

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// This file is the serving layer's half of distributed tracing: the phase
// vocabulary of the per-phase latency histograms, and reqTrace — the nil-safe
// per-request span builder that turns the request path's milestones (queue
// wait, breaker verdicts, engine episodes, forward RPCs, hedge waits, backoff
// sleeps) into obs.PhaseSpans with deterministic ids. Three entry points
// start a trace:
//
//	startEntryTrace  POST /route, /route/batch — the sampling decision and
//	                 the trace id are pure hashes of (seed, sequence), so two
//	                 identical runs trace identical requests with identical
//	                 ids at any GOMAXPROCS.
//	startHopTrace    POST /cluster/hop, /cluster/replicate, /cluster/segment —
//	                 adopt-only: the caller's Traceparent header carries the
//	                 trace id and the parent span; no header, no spans. The
//	                 entry daemon's sampling decision therefore propagates
//	                 across the whole hop chain.
//	startLocalTrace  work the daemon starts on its own behalf (anti-entropy
//	                 rounds, journal ships) — a separate deterministic id lane
//	                 so internal traces never collide with request traces.
//
// Every method is safe on a nil *reqTrace: a daemon with tracing off pays a
// nil check per record site and nothing else.

// The request phases with a dedicated latency histogram on /metrics
// (smallworld_request_phase_seconds{phase=...}). The names double as the
// span kinds cmd/tracestitch attributes time to.
const (
	phaseQueue = iota
	phaseRoute
	phaseForward
	phaseHedge
	phaseBackoff
	phaseAntiEntropy
	phaseCount
)

// phaseNames spells the histogram's phase label values, indexed by the
// constants above.
var phaseNames = [phaseCount]string{
	obs.SpanQueueWait,
	obs.SpanLocalRoute,
	obs.SpanForwardRPC,
	obs.SpanHedgeWait,
	obs.SpanRetryBackoff,
	obs.SpanAntiEntropy,
}

// reqTrace accumulates the spans of one trace on one daemon: a root span
// (request, hop, or anti_entropy) opened at construction and published by
// finish, plus flat phase children recorded as they complete. Span ids are
// assigned serially on the owning goroutine (obs.SpanID over a per-trace
// counter), so ids are deterministic even when the RPCs they name race.
type reqTrace struct {
	log        *obs.SpanLog
	trace      string
	svc        string
	n          uint64
	rootID     string
	rootParent string
	rootKind   string
	rootDetail string
	rootStart  time.Time
	done       bool
}

// startEntryTrace samples one entry request (POST /route or /route/batch)
// into a new trace; nil when tracing is off or the request fell outside the
// sample.
func (s *Server) startEntryTrace() *reqTrace {
	if s.spans == nil {
		return nil
	}
	seq := s.traceSeq.Add(1)
	if !s.spans.Sampled(seq) {
		return nil
	}
	return s.newTrace(s.spans.TraceID(seq), "", obs.SpanRequest, "")
}

// startHopTrace adopts the trace context a cluster RPC arrived with; nil when
// tracing is off or the caller sent no (or a malformed) Traceparent header —
// a bad header never fails the RPC, the hop just goes unrecorded.
func (s *Server) startHopTrace(r *http.Request, detail string) *reqTrace {
	if s.spans == nil {
		return nil
	}
	trace, parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader))
	if !ok {
		return nil
	}
	return s.newTrace(trace, parent, obs.SpanHop, detail)
}

// startLocalTrace samples one internally-initiated unit of work (an
// anti-entropy round, a journal ship) into a new trace on the internal id
// lane.
func (s *Server) startLocalTrace(kind, detail string) *reqTrace {
	if s.spans == nil {
		return nil
	}
	seq := s.localSeq.Add(1)
	if !s.spans.Sampled(seq) {
		return nil
	}
	return s.newTrace(s.spans.InternalTraceID(seq), "", kind, detail)
}

func (s *Server) newTrace(trace, parent, kind, detail string) *reqTrace {
	rt := &reqTrace{
		log:        s.spans,
		trace:      trace,
		svc:        s.spans.Service(),
		rootParent: parent,
		rootKind:   kind,
		rootDetail: detail,
		rootStart:  time.Now(),
	}
	// A hop chain can revisit a daemon (d0 -> d1 -> d0): each visit must
	// allocate span ids on its own lane or the second visit would repeat the
	// first's ids and corrupt the trace tree. The adopted parent span id is
	// unique per visit, so it seeds the lane; the entry visit keeps lane 0.
	if parent != "" {
		rt.n = obs.HashString(parent)
	}
	rt.rootID = rt.allocID()
	return rt
}

// allocID hands out the next deterministic span id of this (trace, service)
// pair. Callers that need the id before the span completes (forward RPCs put
// it in the Traceparent header they send) allocate here and end later.
func (rt *reqTrace) allocID() string {
	if rt == nil {
		return ""
	}
	id := obs.SpanID(rt.trace, rt.svc, rt.n)
	rt.n++
	return id
}

// traceparent formats the header value that makes spanID the parent of
// whatever the receiving daemon records ("" on an untraced request).
func (rt *reqTrace) traceparent(spanID string) string {
	if rt == nil || spanID == "" {
		return ""
	}
	return obs.FormatTraceparent(rt.trace, spanID)
}

// add records one completed phase span under the root.
func (rt *reqTrace) add(kind string, start time.Time, d time.Duration, peer, detail, errMsg string) {
	rt.end(rt.allocID(), kind, start, d, peer, detail, errMsg)
}

// end records a completed phase span under a pre-allocated id.
func (rt *reqTrace) end(id, kind string, start time.Time, d time.Duration, peer, detail, errMsg string) {
	if rt == nil {
		return
	}
	rt.log.Publish(obs.PhaseSpan{
		Trace:   rt.trace,
		ID:      id,
		Parent:  rt.rootID,
		Service: rt.svc,
		Kind:    kind,
		Start:   start.UnixNano(),
		Dur:     int64(d),
		Peer:    peer,
		Detail:  detail,
		Err:     errMsg,
	})
}

// finish closes and publishes the root span. Idempotent, so handlers can
// defer it and still finish early on a classified error path.
func (rt *reqTrace) finish(errMsg string) {
	if rt == nil || rt.done {
		return
	}
	rt.done = true
	rt.log.Publish(obs.PhaseSpan{
		Trace:   rt.trace,
		ID:      rt.rootID,
		Parent:  rt.rootParent,
		Service: rt.svc,
		Kind:    rt.rootKind,
		Start:   rt.rootStart.UnixNano(),
		Dur:     int64(time.Since(rt.rootStart)),
		Detail:  rt.rootDetail,
		Err:     errMsg,
	})
}
