package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/route"
)

func postBatch(t *testing.T, url string, req BatchRouteRequest) (*http.Response, BatchRouteResponse, ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok BatchRouteResponse
	var bad ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&bad)
	}
	return resp, ok, bad
}

// TestBatchMixedOutcomes sends one batch whose items succeed, fail
// definitively, and fail validation — and checks each item carries the same
// status POST /route would have returned for it, while the envelope is 200.
func TestBatchMixedOutcomes(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, ok, _ := postBatch(t, ts.URL, BatchRouteRequest{Items: []BatchItem{
		{S: 1, T: 200, IncludePath: true},    // routed, default protocol
		{Protocol: "test-gated", S: 0, T: 1}, // definitive dead end: 200, success=false
		{Protocol: "nope", S: 0, T: 1},       // unknown protocol: 404
		{S: 0, T: 1 << 30},                   // vertex out of range: 400
		{S: 3, T: 250},                       // routed again after rejected items
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status = %d, want 200", resp.StatusCode)
	}
	if ok.Graph != DefaultGraph || len(ok.Items) != 5 {
		t.Fatalf("envelope graph=%q items=%d", ok.Graph, len(ok.Items))
	}

	it := ok.Items[0]
	if it.Status != http.StatusOK || it.Protocol != "greedy" || it.Attempts != 1 {
		t.Fatalf("item 0 = %+v, want routed 200 via greedy", it)
	}
	if it.Success && len(it.Path) != it.Moves+1 {
		t.Fatalf("item 0 path length %d inconsistent with %d moves", len(it.Path), it.Moves)
	}
	if it := ok.Items[1]; it.Status != http.StatusOK || it.Success || it.Failure != string(route.FailDeadEnd) {
		t.Fatalf("item 1 = %+v, want definitive dead-end 200", it)
	}
	if it := ok.Items[2]; it.Status != http.StatusNotFound || it.Error == "" {
		t.Fatalf("item 2 = %+v, want 404 with message", it)
	}
	if it := ok.Items[3]; it.Status != http.StatusBadRequest || it.Error == "" {
		t.Fatalf("item 3 = %+v, want 400 with message", it)
	}
	if it := ok.Items[4]; it.Status != http.StatusOK || it.Error != "" {
		t.Fatalf("item 4 = %+v, want routed 200 after rejected items", it)
	}
	// Items echo their queries so results stay addressable by position.
	if ok.Items[3].S != 0 || ok.Items[3].T != 1<<30 {
		t.Fatalf("item 3 does not echo its query: %+v", ok.Items[3])
	}
}

// TestBatchResultsMatchSingleRoutes proves the batch path and the single
// path answer identical deterministic queries identically (they share
// routeOne, but this pins the wiring).
func TestBatchResultsMatchSingleRoutes(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 400, 11))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pairs := [][2]int{{1, 200}, {7, 333}, {50, 51}, {399, 0}}
	items := make([]BatchItem, len(pairs))
	for i, p := range pairs {
		items[i] = BatchItem{S: p[0], T: p[1], IncludePath: true}
	}
	_, batch, _ := postBatch(t, ts.URL, BatchRouteRequest{Items: items})
	if len(batch.Items) != len(pairs) {
		t.Fatalf("items = %d, want %d", len(batch.Items), len(pairs))
	}
	for i, p := range pairs {
		_, single, _ := postRoute(t, ts.URL, RouteRequest{S: p[0], T: p[1], IncludePath: true})
		b := batch.Items[i]
		if b.Success != single.Success || b.Failure != single.Failure ||
			b.Moves != single.Moves || b.Unique != single.Unique {
			t.Errorf("pair %v: batch %+v != single %+v", p, b, single)
		}
		if fmt.Sprint(b.Path) != fmt.Sprint(single.Path) {
			t.Errorf("pair %v: batch path %v != single path %v", p, b.Path, single.Path)
		}
	}
}

// TestBatchValidation exercises the envelope-level 4xx/413 surface.
func TestBatchValidation(t *testing.T) {
	s := New(Config{MaxBatch: 4})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty batch: 400.
	resp, _, bad := postBatch(t, ts.URL, BatchRouteRequest{})
	if resp.StatusCode != http.StatusBadRequest || bad.Error == "" {
		t.Fatalf("empty batch = %d %q, want 400", resp.StatusCode, bad.Error)
	}
	// Oversized batch: 413 before any routing.
	over := make([]BatchItem, 5)
	for i := range over {
		over[i] = BatchItem{S: 0, T: 1}
	}
	resp, _, bad = postBatch(t, ts.URL, BatchRouteRequest{Items: over})
	if resp.StatusCode != http.StatusRequestEntityTooLarge || bad.Error == "" {
		t.Fatalf("oversized batch = %d %q, want 413", resp.StatusCode, bad.Error)
	}
	// Unknown graph: 404 for the whole batch.
	resp, _, _ = postBatch(t, ts.URL, BatchRouteRequest{Graph: "nope", Items: []BatchItem{{S: 0, T: 1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph = %d, want 404", resp.StatusCode)
	}
	// GET: 405.
	get, err := http.Get(ts.URL + "/route/batch")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /route/batch = %d, want 405", get.StatusCode)
	}
}

// TestBatchSharedDeadline proves the batch runs under ONE request deadline:
// when an early item burns the whole budget, the remaining items are cut
// immediately with per-item 504 deadline classes instead of each getting a
// fresh budget.
func TestBatchSharedDeadline(t *testing.T) {
	s := New(Config{
		Workers:        1,
		RequestTimeout: 300 * time.Millisecond,
		MaxHops:        -1,
		Retry:          RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slowMode.Store(true)
	defer slowMode.Store(false)

	resp, ok, _ := postBatch(t, ts.URL, BatchRouteRequest{Items: []BatchItem{
		{Protocol: "test-switchable", S: 0, T: 1}, // spins until the deadline cuts it
		{S: 0, T: 1}, // no budget left
		{S: 2, T: 3}, // no budget left
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status = %d, want 200", resp.StatusCode)
	}
	for i, it := range ok.Items {
		if it.Status != StatusFor(route.FailDeadline) || it.Failure != string(route.FailDeadline) {
			t.Errorf("item %d = status %d failure %q, want 504 deadline", i, it.Status, it.Failure)
		}
	}
	// The trailing items must be immediate cuts, not fresh budgets: the whole
	// batch stays within ~the request timeout.
	if ok.ElapsedMs > 2*300 {
		t.Errorf("batch elapsed %.1fms, want ≈ the 300ms shared deadline", ok.ElapsedMs)
	}
}

// TestBatchDrainRejected: a draining server rejects whole batches up front.
func TestBatchDrainRejected(t *testing.T) {
	s := New(Config{})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()

	resp, _, _ := postBatch(t, ts.URL, BatchRouteRequest{Items: []BatchItem{{S: 0, T: 1}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch while draining = %d, want 503", resp.StatusCode)
	}
}

// TestBatchOneAdmissionSlot proves a whole batch occupies exactly one pool
// slot: with Workers=1 and QueueDepth=1, a gated batch plus one queued batch
// saturate the pool and a third is shed 429 — regardless of item counts.
func TestBatchOneAdmissionSlot(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ch := make(chan struct{})
	gate.Store(&ch)
	defer gate.Store(nil)

	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Protocol: "test-gated", S: 0, T: 1}
	}
	statuses := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(BatchRouteRequest{Items: items})
			resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// One batch holds the worker (gated inside its first item), one waits.
	waitFor(t, func() bool { return s.pool.InFlight() == 1 && s.pool.Waiting() == 1 })

	resp, _, _ := postBatch(t, ts.URL, BatchRouteRequest{Items: items[:1]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third batch = %d, want 429 (pool holds one slot per batch)", resp.StatusCode)
	}

	close(ch)
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK {
			t.Errorf("admitted batch status = %d, want 200", st)
		}
	}
}

// TestBatchHammerWithSwaps is the race test: concurrent batches (mixed valid
// and out-of-range items) against concurrent snapshot swaps. Run under
// -race; the invariants checked here are "every envelope decodes" and
// "every item status is from the known set" — no torn graphs, no panics.
func TestBatchHammerWithSwaps(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, RequestTimeout: 5 * time.Second})
	s.AddNetwork("", testNetwork(t, 300, 5))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	valid := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true,
		http.StatusTooManyRequests: true, http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout: true, http.StatusBadGateway: true,
	}
	var wg sync.WaitGroup
	const clients, rounds = 6, 5
	errs := make(chan string, clients*rounds+rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				items := []BatchItem{
					{S: (c * 7) % 250, T: (r*31 + 13) % 250, IncludePath: true},
					{S: 1, T: 299},     // valid on the 300-graph, out of range on the 200-swap
					{S: 0, T: 1 << 20}, // always out of range
				}
				body, _ := json.Marshal(BatchRouteRequest{Items: items})
				resp, err := http.Post(ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					continue
				}
				if resp.StatusCode == http.StatusOK {
					var br BatchRouteResponse
					if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
						errs <- "decode: " + err.Error()
					} else {
						for i, it := range br.Items {
							if !valid[it.Status] {
								errs <- fmt.Sprintf("item %d: unexpected status %d", i, it.Status)
							}
						}
					}
				}
				resp.Body.Close()
			}
		}(c)
	}
	// Swap between two snapshot sizes while the batches fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			n := 200 + 100*(r%2)
			body, _ := json.Marshal(SwapRequest{N: float64(n), Seed: uint64(r + 1)})
			resp, err := http.Post(ts.URL+"/admin/swap", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- "swap: " + err.Error()
				continue
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
