package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// blackhole is a two-sided network partition for tests: every cluster call
// between a cut pair of daemons fails at the transport, in both directions,
// until healed. The serving daemons stay alive — only the network between
// them is gone, which is exactly the split-brain scenario.
type blackhole struct {
	mu  sync.Mutex
	cut map[[2]string]bool
}

func newBlackhole() *blackhole { return &blackhole{cut: map[[2]string]bool{}} }

// Partition cuts both directions between a and b.
func (b *blackhole) Partition(a, c string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cut[[2]string{a, c}] = true
	b.cut[[2]string{c, a}] = true
}

// Heal restores both directions between a and b.
func (b *blackhole) Heal(a, c string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.cut, [2]string{a, c})
	delete(b.cut, [2]string{c, a})
}

func (b *blackhole) blocked(from, to string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cut[[2]string{from, to}]
}

// bhTransport is the per-daemon RoundTripper consulting the shared
// blackhole before letting a request out.
type bhTransport struct {
	bh   *blackhole
	self string
}

func (t *bhTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.bh.blocked(t.self, r.URL.Host) {
		return nil, fmt.Errorf("blackhole: %s -> %s partitioned", t.self, r.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestPartitionNoSplitBrain is the partition-injection chaos drill: a
// two-sided blackhole separates a replica from its shard primary mid-stream.
// The invariants under test:
//
//  1. No split-brain: the partitioned replica keeps refusing writes — the
//     write role does not fail over, so the two sides can never diverge.
//  2. The primary takes the unreachable replica down after its strikes, and
//     an indirectly relayed view cannot resurrect it — only direct contact.
//  3. After the heal, one gossip exchange plus one anti-entropy round make
//     the replica bit-identical to the primary again: it never keeps serving
//     its stale generation once repair has run.
func TestPartitionNoSplitBrain(t *testing.T) {
	nw := testNetwork(t, 100, 9)
	bh := newBlackhole()
	daemons := newReplicaSet(t, nw, 2,
		Config{RequestTimeout: time.Second},
		func(addr string) *http.Client {
			return &http.Client{Transport: &bhTransport{bh: bh, self: addr}}
		})
	primary, replica := daemons[0], daemons[1]

	// Healthy stream first: one batch acked and shipped.
	resp, _, bad := postMutate(t, primary.ts.URL, MutateRequest{
		Graph: "live", Ops: addVertexOps(nw, nw.Graph.N()),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-partition mutate: status %d (%s)", resp.StatusCode, bad.Error)
	}
	waitPosition(t, replica, primary.log.Position())

	bh.Partition(primary.addr, replica.addr)

	// The primary keeps acking writes — availability on the write side — and
	// every ship fails into the blackhole until the strikes take the replica
	// down (default Strikes is 3). The writes continue inside the wait loop:
	// a gossip reply that was already in flight when the partition dropped
	// resets the strike count when it lands, so a fixed count of three could
	// wedge the peer at suspect — only fresh failures flip the detector.
	next := nw.Graph.N() + 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _, bad := postMutate(t, primary.ts.URL, MutateRequest{
			Graph: "live", Ops: addVertexOps(nw, next),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("partitioned mutate %d: status %d (%s)", next, resp.StatusCode, bad.Error)
		}
		next++
		if next < nw.Graph.N()+4 {
			continue
		}
		if st := primary.srv.Stats().Cluster.Peers[replica.addr]; st == "down" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never went down on the primary: %+v", primary.srv.Stats().Cluster.Peers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fails := primary.srv.Stats().Cluster.Replication.ShipFailures; fails < 3 {
		t.Fatalf("ship failures = %d, want >= 3 into the blackhole", fails)
	}

	// No split-brain: the cut-off replica still refuses writes.
	wr, _, _ := postMutate(t, replica.ts.URL, MutateRequest{
		Graph: "live", Ops: addVertexOps(nw, nw.Graph.N()+1),
	})
	if wr.StatusCode != http.StatusConflict {
		t.Fatalf("partitioned replica accepted a write: status %d, want 409", wr.StatusCode)
	}
	if replica.log.Position().Seq != 1 {
		t.Fatalf("partitioned replica moved to seq %d without the primary", replica.log.Position().Seq)
	}

	// A third party relaying the replica's old identity is indirect evidence;
	// it must not resurrect the down peer.
	primary.node.Members().Receive(cluster.Peer{}, []cluster.Peer{replica.node.Self()})
	if st := primary.srv.Stats().Cluster.Peers[replica.addr]; st != "down" {
		t.Fatalf("indirect view revived the down replica: %s", st)
	}
	// And because it is down, it leaves the ship set: a write during the
	// partition no longer even attempts it.
	failsBefore := primary.srv.Stats().Cluster.Replication.ShipFailures
	resp, _, _ = postMutate(t, primary.ts.URL, MutateRequest{
		Graph: "live", Ops: addVertexOps(nw, next),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate with replica down: status %d", resp.StatusCode)
	}
	time.Sleep(20 * time.Millisecond)
	if fails := primary.srv.Stats().Cluster.Replication.ShipFailures; fails != failsBefore {
		t.Fatalf("down replica still shipped to: failures %d -> %d", failsBefore, fails)
	}

	bh.Heal(primary.addr, replica.addr)

	// One direct gossip exchange heals membership in both directions — the
	// replica contacts the primary (direct revival on the primary's side) and
	// learns the primary's live position from the answer.
	view := replica.node.Members().View()
	gr := postGossip(t, replica, primary, view)
	replica.node.Members().Receive(gr.Self, gr.View)
	if st := primary.srv.Stats().Cluster.Peers[replica.addr]; st != "alive" {
		t.Fatalf("direct contact did not revive the replica on the primary: %s", st)
	}

	// One anti-entropy round later the replica is bit-identical again: no
	// stale-generation serving survives the heal. The replica held at seq 1,
	// so the pull covers every batch acked during the partition.
	want := primary.log.Position().Seq - 1
	if got := replica.srv.AntiEntropyRound(context.Background()); got != want {
		t.Fatalf("post-heal anti-entropy pulled %d batches, want %d", got, want)
	}
	if got, want := replica.log.Position(), primary.log.Position(); got != want {
		t.Fatalf("post-heal replica at %+v, want %+v", got, want)
	}
	pl, rl := readyLiveOf(t, primary), readyLiveOf(t, replica)
	if rl.Fingerprint != pl.Fingerprint || rl.Generation != pl.Generation || rl.Epoch != pl.Epoch {
		t.Fatalf("post-heal replica serves (fp=%s gen=%d epoch=%d), primary (fp=%s gen=%d epoch=%d)",
			rl.Fingerprint, rl.Generation, rl.Epoch, pl.Fingerprint, pl.Generation, pl.Epoch)
	}
}

// postGossip performs one push/pull gossip exchange from d to peer over the
// partition-aware transport, failing the test on a transport error.
func postGossip(t *testing.T, d, peer *replicaDaemon, view []cluster.Peer) cluster.GossipResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var resp cluster.GossipResponse
	status, err := d.srv.postPeerJSON(ctx, peer.node.Self(), "/cluster/gossip",
		cluster.GossipRequest{From: d.node.Self(), View: view}, &resp, "")
	if err != nil || status != http.StatusOK {
		t.Fatalf("gossip %s -> %s: status %d err %v", d.addr, peer.addr, status, err)
	}
	return resp
}
