package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:           8,
		FailureThreshold: 0.5,
		MinSamples:       4,
		OpenFor:          time.Second,
		HalfOpenProbes:   2,
		Now:              clk.Now,
	})
}

// record runs one admitted request through the breaker.
func record(t *testing.T, b *Breaker, failure bool) {
	t.Helper()
	if _, err := b.Allow(); err != nil {
		t.Fatalf("Allow rejected while expecting admission: %v", err)
	}
	b.Record(failure)
}

// TestBreakerOpensOnFailureRate verifies the sliding-window trip condition:
// below MinSamples nothing trips, at the threshold it does.
func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)

	// Three straight failures: under MinSamples, still closed.
	for i := 0; i < 3; i++ {
		record(t, b, true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 3 failures = %v, want closed", got)
	}
	// Fourth failure reaches MinSamples with rate 1.0: open.
	record(t, b, true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 4 failures = %v, want open", got)
	}
	if _, err := b.Allow(); err != ErrBreakerOpen {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

// TestBreakerStaysClosedUnderThreshold verifies a healthy majority keeps
// the breaker closed as the window slides.
func TestBreakerStaysClosedUnderThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)
	for i := 0; i < 50; i++ {
		record(t, b, i%4 == 0) // 25% failures < 50% threshold
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerRecovery walks the full open → half-open → closed arc and the
// relapse arc (probe failure reopens).
func TestBreakerRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		record(t, b, true)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	retryIn, err := b.Allow()
	if err != ErrBreakerOpen {
		t.Fatalf("Allow = %v, want ErrBreakerOpen", err)
	}
	if retryIn <= 0 || retryIn > time.Second {
		t.Fatalf("retryIn = %v, want in (0, 1s]", retryIn)
	}

	// Open interval elapses: half-open admits bounded probes.
	clk.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after open interval = %v, want half-open", got)
	}
	// First probe fails: straight back to open with a fresh clock.
	record(t, b, true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	// Next round: two successful probes close it.
	clk.Advance(time.Second)
	record(t, b, false)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probes = %v, want half-open", got)
	}
	record(t, b, false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/2 probes = %v, want closed", got)
	}
	// The window was reset on close: old failures cannot re-trip.
	record(t, b, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after single post-recovery failure = %v, want closed", got)
	}
}

// TestBreakerHalfOpenBoundsProbes verifies half-open admits at most
// HalfOpenProbes concurrent probes and rejects the rest.
func TestBreakerHalfOpenBoundsProbes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		record(t, b, true)
	}
	clk.Advance(time.Second)
	// Admit HalfOpenProbes probes without recording yet.
	for i := 0; i < 2; i++ {
		if _, err := b.Allow(); err != nil {
			t.Fatalf("probe %d rejected: %v", i, err)
		}
	}
	if _, err := b.Allow(); err != ErrBreakerOpen {
		t.Fatalf("probe overflow = %v, want ErrBreakerOpen", err)
	}
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerConcurrentHammer hammers one breaker from many goroutines
// under the race detector: the invariant is simply that the state machine
// never deadlocks or corrupts (state stays one of the three values and the
// books stay consistent enough to keep admitting after recovery).
func TestBreakerConcurrentHammer(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := b.Allow(); err != nil {
					continue
				}
				b.Record((w+i)%4 == 0)
			}
		}(w)
	}
	// Advance the clock concurrently so open intervals elapse mid-hammer.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(100 * time.Millisecond)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("corrupt state %v", s)
	}
	// Whatever state the hammer left, recovery must still work.
	clk.Advance(2 * time.Second)
	for i := 0; i < 8; i++ {
		if _, err := b.Allow(); err == nil {
			b.Record(false)
		}
		clk.Advance(2 * time.Second)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
}
