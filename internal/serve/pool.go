package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by Pool.Acquire when the pool's workers are all
// busy and its wait queue is full — the signal to shed the request (HTTP
// 429) instead of queueing it unboundedly.
var ErrOverloaded = errors.New("serve: pool overloaded")

// Pool is the admission controller: at most `workers` requests execute
// concurrently and at most `queue` more wait for a worker. Everything past
// workers+queue is rejected immediately with ErrOverloaded. Bounding the
// queue is the point — an unbounded queue converts overload into unbounded
// latency and memory, while a bounded one converts it into fast, explicit
// 429s the client can back off from.
type Pool struct {
	slots    chan struct{} // worker semaphore, capacity = workers
	admitted atomic.Int64  // holding or waiting for a slot
	capacity int64         // workers + queue

	// Monotonic counters, exported through the serve expvar map.
	shed     atomic.Int64 // rejected with ErrOverloaded
	acquired atomic.Int64 // successfully admitted and run
}

// NewPool builds a pool of `workers` concurrent slots with a wait queue of
// depth `queue`. workers < 1 and queue < 0 are clamped.
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Pool{
		slots:    make(chan struct{}, workers),
		capacity: int64(workers + queue),
	}
}

// Acquire admits the caller or rejects it. It returns nil when a worker
// slot is held (pair with Release), ErrOverloaded when the queue is full,
// or ctx.Err() when the caller's context ends while waiting in the queue.
func (p *Pool) Acquire(ctx context.Context) error {
	if p.admitted.Add(1) > p.capacity {
		p.admitted.Add(-1)
		p.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case p.slots <- struct{}{}:
		p.acquired.Add(1)
		return nil
	case <-ctx.Done():
		p.admitted.Add(-1)
		return ctx.Err()
	}
}

// Release returns the caller's worker slot.
func (p *Pool) Release() {
	<-p.slots
	p.admitted.Add(-1)
}

// InFlight reports the number of requests currently holding a worker slot.
func (p *Pool) InFlight() int { return len(p.slots) }

// Waiting reports the number of admitted requests not yet holding a slot.
func (p *Pool) Waiting() int {
	w := int(p.admitted.Load()) - len(p.slots)
	if w < 0 {
		w = 0
	}
	return w
}

// Shed reports the number of requests rejected with ErrOverloaded.
func (p *Pool) Shed() int64 { return p.shed.Load() }

// Acquired reports the number of requests admitted so far.
func (p *Pool) Acquired() int64 { return p.acquired.Load() }
