package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/torus"
)

// newTracedCluster is newReplicatedCluster with a per-daemon span log. The
// service names are the stable "d0", "d1", ... spellings — not the httptest
// addresses, whose random ports would defeat the bit-identical-ids assertion
// across runs — and every request is sampled.
func newTracedCluster(t *testing.T, nw *core.Network, specs []replicaSpec, cfg Config, mcfg cluster.Config) []*shardDaemon {
	t.Helper()
	daemons := make([]*shardDaemon, len(specs))
	for i, spec := range specs {
		p, err := torus.ParsePrefix(spec.shard)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.RequestIDSalt = uint64(i + 1)
		c.Spans = obs.NewSpanLog(obs.SpanLogConfig{
			Service:    fmt.Sprintf("d%d", i),
			Seed:       uint64(i + 1),
			SampleRate: 1,
		})
		srv := New(c)
		srv.AddNetwork(DefaultGraph, nw)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		addr := strings.TrimPrefix(ts.URL, "http://")
		mc := mcfg
		mc.Replica = spec.replica
		node, err := cluster.NewNode(nw.Graph, p, addr, mc)
		if err != nil {
			t.Fatal(err)
		}
		srv.EnableCluster(node, nil)
		daemons[i] = &shardDaemon{srv: srv, ts: ts, node: node, addr: addr}
	}
	for _, d := range daemons {
		for _, p := range daemons {
			if p != d {
				d.node.Members().Add(p.node.Self())
			}
		}
	}
	return daemons
}

// stitchedTrace is the test-side reconstruction of one trace across daemons.
type stitchedTrace struct {
	spans    []obs.PhaseSpan
	roots    int
	rootKind string
	orphans  int
	services map[string]bool
}

// stitchSpans merges every daemon's span log and groups by trace id,
// verifying tree structure the way cmd/tracestitch's -check does.
func stitchSpans(daemons []*shardDaemon) map[string]*stitchedTrace {
	var all []obs.PhaseSpan
	for _, d := range daemons {
		all = append(all, d.srv.spans.Snapshot()...)
	}
	traces := map[string]*stitchedTrace{}
	byID := map[string]map[string]bool{}
	for _, sp := range all {
		tr := traces[sp.Trace]
		if tr == nil {
			tr = &stitchedTrace{services: map[string]bool{}}
			traces[sp.Trace] = tr
			byID[sp.Trace] = map[string]bool{}
		}
		tr.spans = append(tr.spans, sp)
		tr.services[sp.Service] = true
		byID[sp.Trace][sp.ID] = true
	}
	for id, tr := range traces {
		for _, sp := range tr.spans {
			switch {
			case sp.Parent == "":
				tr.roots++
				tr.rootKind = sp.Kind
			case !byID[id][sp.Parent]:
				tr.orphans++
			}
		}
	}
	return traces
}

// spanKey is the timing-free identity of one span — what must be
// bit-identical across reruns of the same workload.
func spanKey(sp obs.PhaseSpan) string {
	return sp.Trace + "/" + sp.ID + "/" + sp.Parent + "/" + sp.Service + "/" + sp.Kind
}

// tracedWorkload drives the deterministic query mix of the propagation test
// against a fresh traced cluster and returns the sorted span identity set
// plus the stitched traces.
func tracedWorkload(t *testing.T, seed uint64) ([]string, map[string]*stitchedTrace, int) {
	t.Helper()
	nw := testNetwork(t, 600, 11)
	daemons := newTracedCluster(t, nw, []replicaSpec{{"0", 0}, {"10", 0}, {"11", 0}},
		Config{RequestTimeout: 5 * time.Second}, cluster.Config{Seed: seed})

	n := nw.Graph.N()
	requests := 0
	forwarded := 0
	for i := 0; i < 30; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			continue
		}
		entry := daemons[i%len(daemons)]
		status, got, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt})
		if status != http.StatusOK {
			t.Fatalf("pair (%d,%d): status %d (%s)", s, tt, status, er.Error)
		}
		requests++
		if got.Forwards > 0 {
			forwarded++
		}
		if got.Timings == nil {
			t.Fatalf("pair (%d,%d): response carries no timings", s, tt)
		}
		if got.Timings.TotalUs < got.Timings.RouteUs {
			t.Fatalf("pair (%d,%d): total %dus < route %dus", s, tt, got.Timings.TotalUs, got.Timings.RouteUs)
		}
	}
	// One batch request: its items share the envelope's single trace.
	batch := BatchRouteRequest{Items: []BatchItem{{S: 1, T: 99}, {S: 2, T: 77}, {S: 3, T: 55}}}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(daemons[0].ts.URL+"/route/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchRouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	requests++
	for _, it := range br.Items {
		if it.Status == http.StatusOK && it.Timings == nil {
			t.Fatal("batch item carries no timings")
		}
	}
	if forwarded == 0 {
		t.Fatal("no query crossed a shard boundary — the test exercised nothing")
	}

	traces := stitchSpans(daemons)
	var keys []string
	for _, tr := range traces {
		for _, sp := range tr.spans {
			keys = append(keys, spanKey(sp))
		}
	}
	sort.Strings(keys)
	return keys, traces, requests
}

// TestClusterTracePropagation pins the tentpole invariant: every request
// through a 3-shard cluster yields exactly one connected span tree — one
// request-kind root, no orphans — with forwarded walks spanning multiple
// daemons, and rerunning the identical workload at a different GOMAXPROCS
// reproduces the identical trace and span ids.
func TestClusterTracePropagation(t *testing.T) {
	keys1, traces, requests := tracedWorkload(t, 4)

	if len(traces) != requests {
		t.Fatalf("%d traces for %d requests (sample rate 1)", len(traces), requests)
	}
	multi := 0
	for id, tr := range traces {
		if tr.roots != 1 {
			t.Fatalf("trace %s: %d roots, want exactly 1", id, tr.roots)
		}
		if tr.rootKind != obs.SpanRequest {
			t.Fatalf("trace %s: root kind %q, want %q", id, tr.rootKind, obs.SpanRequest)
		}
		if tr.orphans != 0 {
			t.Fatalf("trace %s: %d orphan spans", id, tr.orphans)
		}
		if len(tr.services) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no trace spans two daemons — Traceparent propagation is broken")
	}

	// Same workload, fresh cluster, restricted parallelism: the ids are pure
	// hashes of (seed, sequence, service), so the identity sets must match
	// bit for bit.
	old := runtime.GOMAXPROCS(1)
	keys2, _, _ := tracedWorkload(t, 4)
	runtime.GOMAXPROCS(old)
	if len(keys1) != len(keys2) {
		t.Fatalf("rerun produced %d spans, first run %d", len(keys2), len(keys1))
	}
	for i := range keys1 {
		if keys1[i] != keys2[i] {
			t.Fatalf("span identity diverged across reruns:\n  run1: %s\n  run2: %s", keys1[i], keys2[i])
		}
	}
}

// TestHedgedTraceConnected pins the orphan-prevention rule on the hedge
// path: when a hedged forward is cancelled because the other attempt won,
// the loser's forward_rpc span is still published (err "cancelled"), so a
// hop tree recorded by the losing peer keeps a recorded parent.
func TestHedgedTraceConnected(t *testing.T) {
	nw := testNetwork(t, 600, 11)
	cfg := Config{
		Workers: 4, RequestTimeout: 3 * time.Second,
		HedgeAfter: 10 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 5},
	}
	daemons := newTracedCluster(t, nw,
		[]replicaSpec{{"0", 0}, {"1", 1}},
		cfg, cluster.Config{Seed: 3})
	entry, survivor := daemons[0], daemons[1]

	// Shard 1's replica 0 is a tarpit (accepts the hop, answers only when
	// cancelled), so every forward to shard 1 hedges onto the survivor.
	tarpit := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer tarpit.Close()
	tarpitPeer := cluster.Peer{
		ID:          strings.TrimPrefix(tarpit.URL, "http://"),
		Shard:       "1",
		Fingerprint: entry.node.Self().Fingerprint,
		Replica:     0,
	}
	entry.node.Members().Add(tarpitPeer)
	survivor.node.Members().Add(tarpitPeer)
	entry.srv.hedgeTimer = func(d time.Duration) (<-chan time.Time, func()) {
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch, func() {}
	}

	n := nw.Graph.N()
	hedged := 0
	for i := 0; i < 30 && hedged == 0; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			continue
		}
		status, got, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt})
		if status != http.StatusOK {
			t.Fatalf("pair (%d,%d): status %d (%s)", s, tt, status, er.Error)
		}
		if got.Hedges > 0 {
			hedged++
		}
	}
	if hedged == 0 {
		t.Fatal("no episode ever hedged")
	}

	traces := stitchSpans(daemons)
	sawHedge, sawCancelled := false, false
	for id, tr := range traces {
		if tr.roots != 1 || tr.orphans != 0 {
			t.Fatalf("trace %s: roots=%d orphans=%d, want 1/0", id, tr.roots, tr.orphans)
		}
		for _, sp := range tr.spans {
			if sp.Kind == obs.SpanHedgeWait {
				sawHedge = true
			}
			if sp.Kind == obs.SpanForwardRPC && sp.Err == "cancelled" {
				sawCancelled = true
			}
		}
	}
	if !sawHedge {
		t.Fatal("no hedge_wait span recorded")
	}
	if !sawCancelled {
		t.Fatal("no cancelled loser forward_rpc span recorded — hop trees on the losing peer would orphan")
	}
}

// TestDebugTraceServesSpans pins the /debug/trace contract: with a span log
// and no episode tracer, the endpoint answers 200 with one JSON line per
// span (a "trace" key), and the per-phase histograms appear on /metrics.
func TestDebugTraceServesSpans(t *testing.T) {
	nw := testNetwork(t, 300, 5)
	srv := New(Config{
		RequestTimeout: 2 * time.Second,
		Spans:          obs.NewSpanLog(obs.SpanLogConfig{Service: "solo", Seed: 7, SampleRate: 1}),
	})
	srv.AddNetwork(DefaultGraph, nw)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, _, er := postRoute(t, ts.URL, RouteRequest{S: 1, T: 42}); er.Error != "" {
		t.Fatalf("route failed: %s", er.Error)
	}
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d", resp.StatusCode)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp obs.PhaseSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil || sp.Trace == "" {
			t.Fatalf("non-span line on /debug/trace: %s", sc.Text())
		}
		lines++
	}
	if lines < 2 {
		t.Fatalf("%d span lines, want at least root + queue/route phases", lines)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`smallworld_request_phase_seconds_bucket{phase="queue_wait"`,
		`smallworld_request_phase_seconds_bucket{phase="local_route"`,
		"smallworld_trace_spans_published_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics is missing %q", want)
		}
	}
}

// TestSpanIDDeterminism pins the pure-hash id derivation itself under
// concurrency: hammering SpanID/DistTraceID from many goroutines yields the
// same values a serial loop computes.
func TestSpanIDDeterminism(t *testing.T) {
	const lanes = 8
	var wg sync.WaitGroup
	got := make([][]string, lanes)
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			ids := make([]string, 64)
			for i := range ids {
				trace := obs.DistTraceID(42, uint64(i))
				ids[i] = trace + ":" + obs.SpanID(trace, "svc", uint64(i%7))
			}
			got[l] = ids
		}(l)
	}
	wg.Wait()
	for l := 1; l < lanes; l++ {
		for i := range got[0] {
			if got[l][i] != got[0][i] {
				t.Fatalf("lane %d diverged at %d: %s != %s", l, i, got[l][i], got[0][i])
			}
		}
	}
}
