package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/torus"
)

// replicaSpec places one test daemon: which shard it serves and as which
// replica.
type replicaSpec struct {
	shard   string
	replica int
}

// newReplicatedCluster is newTestCluster with replica placement: one daemon
// per spec, full static membership.
func newReplicatedCluster(t *testing.T, nw *core.Network, specs []replicaSpec, cfg Config, mcfg cluster.Config) []*shardDaemon {
	t.Helper()
	daemons := make([]*shardDaemon, len(specs))
	for i, spec := range specs {
		p, err := torus.ParsePrefix(spec.shard)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.RequestIDSalt = uint64(i + 1)
		srv := New(c)
		srv.AddNetwork(DefaultGraph, nw)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		addr := strings.TrimPrefix(ts.URL, "http://")
		mc := mcfg
		mc.Replica = spec.replica
		node, err := cluster.NewNode(nw.Graph, p, addr, mc)
		if err != nil {
			t.Fatal(err)
		}
		srv.EnableCluster(node, nil)
		daemons[i] = &shardDaemon{srv: srv, ts: ts, node: node, addr: addr}
	}
	for _, d := range daemons {
		for _, p := range daemons {
			if p != d {
				d.node.Members().Add(p.node.Self())
			}
		}
	}
	return daemons
}

// TestForwardFailover pins the replicated-shard failover: with shard 1's
// primary dead, every cross-shard query still answers bit-identically to
// single-node routing via the surviving replica — zero shard-unreachable —
// and the failovers counter records the reroutes.
func TestForwardFailover(t *testing.T) {
	nw := testNetwork(t, 600, 7)
	cfg := Config{
		Workers: 4, RequestTimeout: 3 * time.Second,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 9},
		Breaker: BreakerConfig{Window: 8, FailureThreshold: 0.5, MinSamples: 2, OpenFor: 30 * time.Second, HalfOpenProbes: 1},
	}
	daemons := newReplicatedCluster(t, nw,
		[]replicaSpec{{"0", 0}, {"1", 0}, {"1", 1}},
		cfg, cluster.Config{Seed: 2})
	entry := daemons[0]
	daemons[1].ts.Close() // shard 1 loses its first replica before any traffic

	var sc route.Scratch
	var ref route.Result
	n := nw.Graph.N()
	forwarded := 0
	for i := 0; i < 40; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			continue
		}
		route.GreedyCSR(nw.Graph, tt, s, route.Budget{}, &sc, &ref)
		status, got, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt})
		if status != http.StatusOK {
			t.Fatalf("pair (%d,%d): status %d (%s)", s, tt, status, er.Error)
		}
		if got.Success != ref.Success || got.Moves != ref.Moves || got.Failure != string(ref.Failure) {
			t.Fatalf("pair (%d,%d): failover result (success=%v moves=%d failure=%q) != single-node (success=%v moves=%d failure=%q)",
				s, tt, got.Success, got.Moves, got.Failure, ref.Success, ref.Moves, ref.Failure)
		}
		if got.Forwards > 0 {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Fatal("no query crossed a shard boundary — the test exercised nothing")
	}
	st := entry.srv.Stats().Cluster
	if st.Failovers == 0 {
		t.Fatal("no forward failed over to the surviving replica")
	}
	if st.ShardUnreachable != 0 {
		t.Fatalf("%d episodes classified shard-unreachable despite a surviving replica", st.ShardUnreachable)
	}
}

// TestHedgedForward pins the hedging race with an injected timer: shard 1's
// first replica hangs (never answers, never errors), the hedge fires at the
// surviving replica and its answer wins — bit-identical to single-node — and
// every requested hedge delay is the policy's deterministic [After, 1.5*After)
// value.
func TestHedgedForward(t *testing.T) {
	nw := testNetwork(t, 600, 11)
	const hedgeAfter = 10 * time.Millisecond
	cfg := Config{
		Workers: 4, RequestTimeout: 3 * time.Second,
		HedgeAfter: hedgeAfter,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 5},
	}
	daemons := newReplicatedCluster(t, nw,
		[]replicaSpec{{"0", 0}, {"1", 1}},
		cfg, cluster.Config{Seed: 3})
	entry, survivor := daemons[0], daemons[1]

	// Shard 1's replica 0 is a tarpit: it accepts the hop and never answers,
	// until the winner's cancellation releases it. Slow, not dead — the
	// failure detector and breaker never see a failure from it.
	tarpit := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read is armed and the
		// winner's cancellation actually fires this context.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer tarpit.Close()
	tarpitPeer := cluster.Peer{
		ID:          strings.TrimPrefix(tarpit.URL, "http://"),
		Shard:       "1",
		Fingerprint: entry.node.Self().Fingerprint,
		Replica:     0,
	}
	entry.node.Members().Add(tarpitPeer)
	survivor.node.Members().Add(tarpitPeer)

	// The injected hedge timer fires immediately and records every requested
	// delay, so the test is deterministic and still observes the policy.
	var mu sync.Mutex
	var delays []time.Duration
	entry.srv.hedgeTimer = func(d time.Duration) (<-chan time.Time, func()) {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch, func() {}
	}

	var sc route.Scratch
	var ref route.Result
	n := nw.Graph.N()
	hedged := 0
	for i := 0; i < 30 && hedged == 0; i++ {
		s := (i * 7919) % n
		tt := (i*104729 + 13) % n
		if s == tt {
			continue
		}
		route.GreedyCSR(nw.Graph, tt, s, route.Budget{}, &sc, &ref)
		status, got, er := clusterPost(t, entry.ts.URL, RouteRequest{S: s, T: tt})
		if status != http.StatusOK {
			t.Fatalf("pair (%d,%d): status %d (%s)", s, tt, status, er.Error)
		}
		if got.Success != ref.Success || got.Moves != ref.Moves {
			t.Fatalf("pair (%d,%d): hedged result diverged from single-node", s, tt)
		}
		if got.Hedges > 0 {
			hedged++
		}
	}
	if hedged == 0 {
		t.Fatal("no episode ever hedged — the tarpit replica was never first choice")
	}
	st := entry.srv.Stats().Cluster
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge counters: hedges=%d wins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
	if st.ShardUnreachable != 0 {
		t.Fatalf("%d shard-unreachable episodes despite a winning hedge", st.ShardUnreachable)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) == 0 {
		t.Fatal("hedge timer never consulted")
	}
	for _, d := range delays {
		if d < hedgeAfter || d >= hedgeAfter+hedgeAfter/2 {
			t.Fatalf("hedge delay %v outside the deterministic [%v, %v) window",
				d, hedgeAfter, hedgeAfter+hedgeAfter/2)
		}
	}
}

// BenchmarkRouteCluster3Shard2Replica is BenchmarkRouteCluster3Shard with
// every shard served by two replicas — the replication overhead on the hot
// forward path (bigger membership, failover-ordered owner resolution) with
// hedging configured but never firing.
func BenchmarkRouteCluster3Shard2Replica(b *testing.B) {
	nw := benchNetwork(b, 2000, 11)
	var urls []string
	var nodes []*cluster.Node
	i := 0
	for _, shard := range []string{"0", "10", "11"} {
		for replica := 0; replica < 2; replica++ {
			p, err := torus.ParsePrefix(shard)
			if err != nil {
				b.Fatal(err)
			}
			srv := New(Config{Workers: 4, RequestIDSalt: uint64(i + 1),
				RequestTimeout: 10 * time.Second, HedgeAfter: 100 * time.Millisecond,
				Logger: benchLogger()})
			srv.AddNetwork(DefaultGraph, nw)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			addr := strings.TrimPrefix(ts.URL, "http://")
			node, err := cluster.NewNode(nw.Graph, p, addr, cluster.Config{Seed: 1, Replica: replica})
			if err != nil {
				b.Fatal(err)
			}
			srv.EnableCluster(node, nil)
			urls = append(urls, ts.URL)
			nodes = append(nodes, node)
			i++
		}
	}
	for _, n := range nodes {
		for _, p := range nodes {
			if p != n {
				n.Members().Add(p.Self())
			}
		}
	}
	benchRoutes(b, urls, nw.Graph.N())
}
