// Package atomicio provides crash-safe file replacement: content is written
// to a temporary file in the destination directory, fsynced, and renamed
// over the destination, so a crash, SIGKILL, or full disk at any point
// leaves either the old file or the new one — never a truncated hybrid.
// The durability layer (graph snapshots, checkpoint manifests) and every
// CLI that writes outputs worth keeping route their writes through here.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write. The
// writer passed to write is buffered; on success the temp file is fsynced
// before the rename and the directory is fsynced after it, so the
// replacement survives power loss. On any error (including one returned by
// write) the destination is untouched and the temp file is removed.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flush %s: %w", tmp.Name(), err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives power loss. Filesystems that refuse to fsync directories are
// tolerated silently: the rename itself is still atomic there.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("atomicio: fsync dir %s: %w", dir, err)
	}
	return nil
}
