package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content %q", got)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content %q", got)
	}
}

func TestWriteFileErrorLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-writ") // buffered garbage that must vanish
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("destination clobbered: %q", got)
	}
	// The failed temp file must not linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
