package atomicio

import (
	"errors"
	"syscall"
)

// ignorableSyncError reports whether a directory fsync failure is expected
// on this platform rather than a durability problem: some filesystems and
// OSes (notably network mounts) reject fsync on directory handles with
// EINVAL or ENOTSUP.
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
