// Package graphio serializes generated graphs so the CLI tools can exchange
// them with external analysis pipelines: a plain-text format with a header,
// one vertex line per vertex (weight and coordinates) and one edge line per
// edge. The format round-trips everything the routing objectives need
// (positions, weights, intensity, wmin).
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Write serializes g. The format is line-oriented:
//
//	girg <n> <m> <dim> <intensity> <wmin>
//	v <weight> <x_1> ... <x_dim>      (n lines, vertex id = line order)
//	e <u> <v>                         (m lines, u < v)
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	dim := 0
	if g.Positions() != nil {
		dim = g.Space().Dim()
	}
	fmt.Fprintf(bw, "girg %d %d %d %g %g\n", g.N(), g.M(), dim, g.Intensity(), g.WMin())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "v %g", g.Weight(v))
		if dim > 0 {
			for _, c := range g.Pos(v) {
				fmt.Fprintf(bw, " %g", c)
			}
		}
		bw.WriteByte('\n')
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(bw, "e %d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("graphio: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "girg" {
		return nil, fmt.Errorf("graphio: bad header %q", sc.Text())
	}
	var (
		n, m, dim       int
		intensity, wmin float64
		err             error
	)
	if n, err = strconv.Atoi(header[1]); err != nil {
		return nil, fmt.Errorf("graphio: bad n: %w", err)
	}
	if m, err = strconv.Atoi(header[2]); err != nil {
		return nil, fmt.Errorf("graphio: bad m: %w", err)
	}
	if dim, err = strconv.Atoi(header[3]); err != nil {
		return nil, fmt.Errorf("graphio: bad dim: %w", err)
	}
	if intensity, err = strconv.ParseFloat(header[4], 64); err != nil {
		return nil, fmt.Errorf("graphio: bad intensity: %w", err)
	}
	if wmin, err = strconv.ParseFloat(header[5], 64); err != nil {
		return nil, fmt.Errorf("graphio: bad wmin: %w", err)
	}
	var pos *torus.Positions
	if dim > 0 {
		space, err := torus.NewSpace(dim)
		if err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		pos = torus.NewPositions(space, n)
	}
	weights := make([]float64, n)
	coords := make([]float64, dim)
	for v := 0; v < n; v++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("graphio: truncated at vertex %d", v)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 2+dim || fields[0] != "v" {
			return nil, fmt.Errorf("graphio: bad vertex line %q", sc.Text())
		}
		if weights[v], err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("graphio: bad weight on vertex %d: %w", v, err)
		}
		for i := 0; i < dim; i++ {
			if coords[i], err = strconv.ParseFloat(fields[2+i], 64); err != nil {
				return nil, fmt.Errorf("graphio: bad coordinate on vertex %d: %w", v, err)
			}
		}
		if pos != nil {
			pos.Set(v, coords)
		}
	}
	b, err := graph.NewBuilder(n, pos, weights, intensity, wmin)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	for i := 0; i < m; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("graphio: truncated at edge %d", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 || fields[0] != "e" {
			return nil, fmt.Errorf("graphio: bad edge line %q", sc.Text())
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: bad edge endpoint: %w", err)
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graphio: bad edge endpoint: %w", err)
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("graphio: invalid edge %d-%d", u, v)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return b.Finish(), nil
}

// WriteEdgeList emits a bare "u<TAB>v" edge list (no attributes), the
// lowest common denominator for external tools.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(bw, "%d\t%d\n", u, v)
			}
		}
	}
	return bw.Flush()
}
