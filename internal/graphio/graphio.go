// Package graphio serializes generated graphs so the CLI tools can exchange
// them with external analysis pipelines, in two formats that round-trip
// everything the routing objectives need (positions, weights, intensity,
// wmin):
//
//   - a plain-text format with a header, one vertex line per vertex and one
//     edge line per edge — greppable, diffable, the lowest-friction way in
//     and out of other tooling;
//   - a versioned binary format (see binary.go) whose header, weight,
//     position and edge sections each carry a CRC32, for snapshots that
//     must be verifiable after crashes, copies, and bit rot.
//
// Read auto-detects the format from the leading magic bytes. All parse and
// integrity failures are classified *CorruptError values — section and byte
// offset included — so a truncated or bit-flipped snapshot is rejected with
// a diagnosis instead of being silently mis-parsed.
package graphio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Write serializes g in the text format. The format is line-oriented:
//
//	girg <n> <m> <dim> <intensity> <wmin>
//	v <weight> <x_1> ... <x_dim>      (n lines, vertex id = line order)
//	e <u> <v>                         (m lines, u < v)
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	dim := 0
	if g.Positions() != nil {
		dim = g.Space().Dim()
	}
	fmt.Fprintf(bw, "girg %d %d %d %g %g\n", g.N(), g.M(), dim, g.Intensity(), g.WMin())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "v %g", g.Weight(v))
		if dim > 0 {
			for _, c := range g.Pos(v) {
				fmt.Fprintf(bw, " %g", c)
			}
		}
		bw.WriteByte('\n')
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(bw, "e %d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// Read parses a snapshot in either format, dispatching on the leading
// magic bytes: binary snapshots start with the GIRB magic, everything else
// is parsed as the text format. Corrupt input of either format returns a
// classified *CorruptError; errors of the underlying reader are returned
// as-is.
func Read(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.Equal(head, binMagic[:]) {
		return readBinary(br)
	}
	return readText(br)
}

// ReadFile opens and parses a snapshot file (either format).
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// lineReader hands out lines of any length (the old Scanner-based reader
// capped lines at 1 MiB, which high-dimensional vertex lines can exceed)
// and tracks each line's starting byte offset for corruption reports.
type lineReader struct {
	br  *bufio.Reader
	off int64 // offset of the next unread byte
}

// next returns the next line (trailing newline stripped) and its starting
// offset. At end of input it returns io.EOF; a final line without a
// newline is still returned.
func (lr *lineReader) next() (line string, start int64, err error) {
	start = lr.off
	s, err := lr.br.ReadString('\n')
	lr.off += int64(len(s))
	if err == io.EOF && len(s) > 0 {
		err = nil
	}
	if err != nil {
		return "", start, err
	}
	return strings.TrimSuffix(s, "\n"), start, nil
}

// textLine reads one expected line of the named section, classifying a
// premature end of input as corruption.
func (lr *lineReader) textLine(section string, what string) (string, int64, error) {
	line, start, err := lr.next()
	if err == io.EOF {
		return "", start, corruptf("text", section, start, "truncated at %s", what)
	}
	if err != nil {
		return "", start, err
	}
	return line, start, nil
}

// readText parses the text format from br.
func readText(br *bufio.Reader) (*graph.Graph, error) {
	lr := &lineReader{br: br}
	header, start, err := lr.next()
	if err == io.EOF {
		return nil, corruptf("text", "header", 0, "empty input")
	}
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(header)
	if len(fields) != 6 || fields[0] != "girg" {
		return nil, corruptf("text", "header", start, "bad header %q", header)
	}
	var (
		n, m, dim       int
		intensity, wmin float64
	)
	if n, err = strconv.Atoi(fields[1]); err != nil || n < 0 {
		return nil, corruptf("text", "header", start, "bad n %q", fields[1])
	}
	if m, err = strconv.Atoi(fields[2]); err != nil || m < 0 {
		return nil, corruptf("text", "header", start, "bad m %q", fields[2])
	}
	if dim, err = strconv.Atoi(fields[3]); err != nil {
		return nil, corruptf("text", "header", start, "bad dim %q", fields[3])
	}
	if intensity, err = strconv.ParseFloat(fields[4], 64); err != nil {
		return nil, corruptf("text", "header", start, "bad intensity %q", fields[4])
	}
	if wmin, err = strconv.ParseFloat(fields[5], 64); err != nil {
		return nil, corruptf("text", "header", start, "bad wmin %q", fields[5])
	}
	if n >= maxVertices {
		return nil, corruptf("text", "header", start, "implausible vertex count %d", n)
	}
	if m >= maxEdges {
		return nil, corruptf("text", "header", start, "implausible edge count %d", m)
	}
	var space torus.Space
	if dim > 0 {
		if space, err = torus.NewSpace(dim); err != nil {
			return nil, corruptf("text", "header", start, "%v", err)
		}
	}

	// Vertex and coordinate stores grow with the lines actually read, so a
	// header lying about n cannot size an allocation.
	weights := make([]float64, 0, allocHint(n))
	var coords []float64
	if dim > 0 {
		coords = make([]float64, 0, allocHint(n*dim))
	}
	for v := 0; v < n; v++ {
		line, start, err := lr.textLine("vertices", fmt.Sprintf("vertex %d of %d", v, n))
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 2+dim || fields[0] != "v" {
			return nil, corruptf("text", "vertices", start, "bad vertex line %q", line)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, corruptf("text", "vertices", start, "bad weight on vertex %d: %v", v, err)
		}
		weights = append(weights, w)
		for i := 0; i < dim; i++ {
			c, err := strconv.ParseFloat(fields[2+i], 64)
			if err != nil {
				return nil, corruptf("text", "vertices", start, "bad coordinate on vertex %d: %v", v, err)
			}
			coords = append(coords, c)
		}
	}
	var pos *torus.Positions
	if dim > 0 {
		if pos, err = torus.NewPositionsRaw(space, coords); err != nil {
			return nil, corruptf("text", "vertices", lr.off, "%v", err)
		}
	}

	b, err := graph.NewBuilder(n, pos, weights, intensity, wmin)
	if err != nil {
		return nil, corruptf("text", "header", 0, "%v", err)
	}
	for i := 0; i < m; i++ {
		line, start, err := lr.textLine("edges", fmt.Sprintf("edge %d of %d", i, m))
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "e" {
			return nil, corruptf("text", "edges", start, "bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, corruptf("text", "edges", start, "bad edge endpoint %q", fields[1])
		}
		v, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, corruptf("text", "edges", start, "bad edge endpoint %q", fields[2])
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, corruptf("text", "edges", start, "invalid edge %d-%d (n = %d)", u, v, n)
		}
		b.AddEdge(u, v)
	}

	// Anything but whitespace after the last edge line means the header
	// undercounted — refuse rather than silently drop data.
	for {
		line, start, err := lr.next()
		if err == io.EOF {
			return b.Finish(), nil
		}
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(line) != "" {
			return nil, corruptf("text", "trailer", start, "trailing data after the last edge line: %q", line)
		}
	}
}

// WriteEdgeList emits a bare "u<TAB>v" edge list (no attributes), the
// lowest common denominator for external tools.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(bw, "%d\t%d\n", u, v)
			}
		}
	}
	return bw.Flush()
}
