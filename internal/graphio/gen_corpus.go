//go:build ignore

// gen_corpus regenerates the committed FuzzRead seed corpus under
// internal/graphio/testdata/fuzz/FuzzRead: valid text and binary snapshots
// of a small attributed graph plus truncated and bit-flipped variants, in
// the "go test fuzz v1" corpus-file encoding. Run from the repo root:
//
//	go run ./internal/graphio/gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/torus"
)

func main() {
	g := corpusGraph()
	var text, bin bytes.Buffer
	if err := graphio.Write(&text, g); err != nil {
		log.Fatal(err)
	}
	if err := graphio.WriteBinary(&bin, g); err != nil {
		log.Fatal(err)
	}

	seeds := map[string][]byte{
		"valid-text":   text.Bytes(),
		"valid-binary": bin.Bytes(),
	}
	for name, src := range map[string][]byte{"text": text.Bytes(), "binary": bin.Bytes()} {
		seeds[name+"-truncated"] = src[:len(src)/2]
		flip := bytes.Clone(src)
		flip[len(flip)/2] ^= 0x40
		seeds[name+"-bitflip"] = flip
		seeds[name+"-trailing"] = append(bytes.Clone(src), " x"...)
	}
	seeds["huge-header-text"] = []byte("girg 1000000000 999999999 2 1 1\n")
	seeds["huge-header-binary"] = []byte{'G', 'I', 'R', 'B', 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}

	dir := filepath.Join("internal", "graphio", "testdata", "fuzz", "FuzzRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}

// corpusGraph mirrors the fuzz test's helper of the same name: the
// deterministic toy graph every seed derives from.
func corpusGraph() *graph.Graph {
	const n = 5
	space, err := torus.NewSpace(2)
	if err != nil {
		panic(err)
	}
	coords := make([]float64, 2*n)
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		coords[2*v] = float64(v) / n
		coords[2*v+1] = float64(n-v) / (n + 1)
		weights[v] = 1 + float64(v)/2
	}
	pos, err := torus.NewPositionsRaw(space, coords)
	if err != nil {
		panic(err)
	}
	b, err := graph.NewBuilder(n, pos, weights, float64(n), 1)
	if err != nil {
		panic(err)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 4)
	b.AddEdge(3, 4)
	return b.Finish()
}
