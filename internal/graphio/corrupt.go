package graphio

import "fmt"

// CorruptError classifies snapshot input that failed structural or
// integrity validation: which format was being decoded, which section the
// problem sits in, and the byte offset where it was detected. Every parse
// failure in this package is a *CorruptError, so callers can distinguish
// "the snapshot is bad" (reject it, count it, quarantine it) from I/O
// errors on the medium (retry, surface to the operator), which are returned
// unwrapped.
type CorruptError struct {
	// Format is the format being decoded: "text" or "binary".
	Format string
	// Section locates the failure: "header", "vertices", "weights",
	// "positions", "edges", or "trailer".
	Section string
	// Offset is the byte offset into the stream where the corruption was
	// detected (the start of the offending line for the text format).
	Offset int64
	// Reason says what was wrong.
	Reason string
}

// Error renders the classification in one line.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("graphio: corrupt %s snapshot: %s (section %s, offset %d)",
		e.Format, e.Reason, e.Section, e.Offset)
}

// corruptf builds a *CorruptError with a formatted reason.
func corruptf(format, section string, offset int64, reasonFormat string, args ...interface{}) error {
	return &CorruptError{
		Format:  format,
		Section: section,
		Offset:  offset,
		Reason:  fmt.Sprintf(reasonFormat, args...),
	}
}
