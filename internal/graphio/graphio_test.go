package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/girg"
	"repro/internal/graph"
)

func sampleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	p := girg.DefaultParams(400)
	p.FixedN = true
	g, err := girg.Generate(p, 7, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("sizes: (%d,%d) vs (%d,%d)", g2.N(), g2.M(), g.N(), g.M())
	}
	if g2.Intensity() != g.Intensity() || g2.WMin() != g.WMin() {
		t.Fatal("model params lost")
	}
	for v := 0; v < g.N(); v++ {
		if g2.Weight(v) != g.Weight(v) {
			t.Fatalf("weight of %d: %v vs %v", v, g2.Weight(v), g.Weight(v))
		}
		p1, p2 := g.Pos(v), g2.Pos(v)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("position of %d differs", v)
			}
		}
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

func TestRoundTripNoGeometry(t *testing.T) {
	b, _ := graph.NewBuilder(3, nil, nil, 3, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finish()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 2 || g2.Pos(0) != nil {
		t.Fatalf("roundtrip: N=%d M=%d", g2.N(), g2.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "foo 1 2 3\n",
		"bad n":            "girg x 0 0 1 1\n",
		"truncated vertex": "girg 2 0 0 2 1\nv 1\n",
		"bad vertex":       "girg 1 0 0 1 1\nw 1\n",
		"bad weight":       "girg 1 0 0 1 1\nv abc\n",
		"truncated edge":   "girg 2 1 0 2 1\nv 1\nv 1\n",
		"bad edge":         "girg 2 1 0 2 1\nv 1\nv 1\ne 0 5\n",
		"self loop":        "girg 2 1 0 2 1\nv 1\nv 1\ne 1 1\n",
		"wrong dim count":  "girg 1 0 2 1 1\nv 1 0.5\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteEdgeList(t *testing.T) {
	b, _ := graph.NewBuilder(4, nil, nil, 4, 1)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Finish()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "0\t1\n1\t2\n"
	if buf.String() != want {
		t.Fatalf("edge list %q, want %q", buf.String(), want)
	}
}
