package graphio

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
	"repro/internal/torus"
)

// The binary snapshot format. Layout (all integers little-endian):
//
//	magic     [4]byte  "GIRB"
//	version   uint16   1
//	header    36 bytes n(u64) m(u64) dim(u16) flags(u16) intensity(f64) wmin(f64)
//	crc32     uint32   IEEE CRC of the 42 bytes above (magic + version + header)
//	weights   n × f64 payload, then uint32 payload CRC
//	positions n × dim × f64 payload, then uint32 payload CRC (absent when dim = 0)
//	edges     m × (u32, u32) payload with u < v, then uint32 payload CRC
//
// and nothing after the edge CRC: trailing bytes are corruption. Every
// section is independently checksummed, so ReadBinary can say *which* part
// of a snapshot a bit flip landed in, and a truncated file fails with a
// classified error instead of mis-parsing.

var binMagic = [4]byte{'G', 'I', 'R', 'B'}

const (
	binVersion = 1
	// binPrelude is the byte length of everything before the weights
	// section: magic, version, header payload, header CRC.
	binPrelude = 4 + 2 + 36 + 4

	// maxVertices and maxEdges bound what a header may claim. Vertex ids
	// are int32 in the CSR representation and edge endpoints uint32 on the
	// wire, so anything beyond these is structurally impossible and gets
	// rejected before any allocation is sized from it.
	maxVertices = 1 << 31
	maxEdges    = 1 << 31
)

// WriteBinary serializes g in the checksummed binary format. Pair it with
// atomicio.WriteFile when writing to disk so a crash never leaves a
// half-written snapshot.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	dim := 0
	if g.Positions() != nil {
		dim = g.Space().Dim()
	}
	var pre [binPrelude]byte
	copy(pre[0:4], binMagic[:])
	binary.LittleEndian.PutUint16(pre[4:6], binVersion)
	binary.LittleEndian.PutUint64(pre[6:14], uint64(g.N()))
	binary.LittleEndian.PutUint64(pre[14:22], uint64(g.M()))
	binary.LittleEndian.PutUint16(pre[22:24], uint16(dim))
	binary.LittleEndian.PutUint16(pre[24:26], 0) // flags, reserved
	binary.LittleEndian.PutUint64(pre[26:34], math.Float64bits(g.Intensity()))
	binary.LittleEndian.PutUint64(pre[34:42], math.Float64bits(g.WMin()))
	binary.LittleEndian.PutUint32(pre[42:46], crc32.ChecksumIEEE(pre[:42]))
	if _, err := bw.Write(pre[:]); err != nil {
		return err
	}

	sec := newSectionWriter(bw)
	for v := 0; v < g.N(); v++ {
		sec.float64(g.Weight(v))
	}
	if err := sec.finish(); err != nil {
		return err
	}
	if dim > 0 {
		sec = newSectionWriter(bw)
		for _, c := range g.Positions().Raw() {
			sec.float64(c)
		}
		if err := sec.finish(); err != nil {
			return err
		}
	}
	sec = newSectionWriter(bw)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				sec.uint32(uint32(u))
				sec.uint32(uint32(v))
			}
		}
	}
	if err := sec.finish(); err != nil {
		return err
	}
	return bw.Flush()
}

// sectionWriter accumulates one section's payload CRC while streaming the
// payload through a scratch buffer, then appends the CRC trailer.
type sectionWriter struct {
	w   *bufio.Writer
	crc uint32
	buf [8]byte
	err error
}

func newSectionWriter(w *bufio.Writer) *sectionWriter {
	return &sectionWriter{w: w}
}

func (s *sectionWriter) bytes(b []byte) {
	if s.err != nil {
		return
	}
	s.crc = crc32.Update(s.crc, crc32.IEEETable, b)
	_, s.err = s.w.Write(b)
}

func (s *sectionWriter) float64(v float64) {
	binary.LittleEndian.PutUint64(s.buf[:8], math.Float64bits(v))
	s.bytes(s.buf[:8])
}

func (s *sectionWriter) uint32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:4], v)
	s.bytes(s.buf[:4])
}

func (s *sectionWriter) finish() error {
	if s.err != nil {
		return s.err
	}
	binary.LittleEndian.PutUint32(s.buf[:4], s.crc)
	_, err := s.w.Write(s.buf[:4])
	return err
}

// binReader reads checksummed sections while tracking the stream offset
// for corruption reports.
type binReader struct {
	br  *bufio.Reader
	off int64
}

// full reads exactly len(b) bytes; a short read is classified corruption in
// the named section (the stream ended inside it), any other I/O error is
// returned as-is.
func (r *binReader) full(section string, b []byte) error {
	n, err := io.ReadFull(r.br, b)
	r.off += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return corruptf("binary", section, r.off, "truncated: stream ends %d bytes into the section's remaining %d", n, len(b))
	}
	return err
}

// section reads a payload of total bytes in bounded chunks, handing each
// chunk to consume, then verifies the payload CRC trailer. Chunked reading
// keeps allocation proportional to data actually present, so a header
// claiming billions of vertices fails fast on a short stream instead of
// sizing buffers from the lie.
func (r *binReader) section(name string, total int64, consume func(chunk []byte)) error {
	const chunkSize = 1 << 16
	buf := make([]byte, chunkSize)
	crc := uint32(0)
	for remaining := total; remaining > 0; {
		n := int64(chunkSize)
		if n > remaining {
			n = remaining
		}
		if err := r.full(name, buf[:n]); err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
		consume(buf[:n])
		remaining -= n
	}
	var trailer [4]byte
	if err := r.full(name, trailer[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != crc {
		return corruptf("binary", name, r.off-4, "checksum mismatch: stored %08x, computed %08x", got, crc)
	}
	return nil
}

// readBinary decodes the binary format from br, whose next bytes start at
// the magic.
func readBinary(br *bufio.Reader) (*graph.Graph, error) {
	r := &binReader{br: br}
	var pre [binPrelude]byte
	if err := r.full("header", pre[:]); err != nil {
		return nil, err
	}
	if [4]byte(pre[0:4]) != binMagic {
		return nil, corruptf("binary", "header", 0, "bad magic %q", pre[0:4])
	}
	if got, want := binary.LittleEndian.Uint32(pre[42:46]), crc32.ChecksumIEEE(pre[:42]); got != want {
		return nil, corruptf("binary", "header", 42, "checksum mismatch: stored %08x, computed %08x", got, want)
	}
	if v := binary.LittleEndian.Uint16(pre[4:6]); v != binVersion {
		return nil, corruptf("binary", "header", 4, "unsupported version %d (this build reads %d)", v, binVersion)
	}
	n64 := binary.LittleEndian.Uint64(pre[6:14])
	m64 := binary.LittleEndian.Uint64(pre[14:22])
	dim := int(binary.LittleEndian.Uint16(pre[22:24]))
	intensity := math.Float64frombits(binary.LittleEndian.Uint64(pre[26:34]))
	wmin := math.Float64frombits(binary.LittleEndian.Uint64(pre[34:42]))
	if n64 >= maxVertices {
		return nil, corruptf("binary", "header", 6, "implausible vertex count %d", n64)
	}
	if m64 >= maxEdges {
		return nil, corruptf("binary", "header", 14, "implausible edge count %d", m64)
	}
	n, m := int(n64), int(m64)
	if !(intensity > 0) || math.IsInf(intensity, 0) {
		return nil, corruptf("binary", "header", 26, "invalid intensity %v", intensity)
	}
	if !(wmin > 0) || math.IsInf(wmin, 0) {
		return nil, corruptf("binary", "header", 34, "invalid wmin %v", wmin)
	}
	var space torus.Space
	if dim > 0 {
		var err error
		if space, err = torus.NewSpace(dim); err != nil {
			return nil, corruptf("binary", "header", 22, "%v", err)
		}
	}

	weights := make([]float64, 0, allocHint(n))
	err := r.section("weights", int64(n)*8, func(chunk []byte) {
		for i := 0; i+8 <= len(chunk); i += 8 {
			weights = append(weights, math.Float64frombits(binary.LittleEndian.Uint64(chunk[i:])))
		}
	})
	if err != nil {
		return nil, err
	}

	var pos *torus.Positions
	if dim > 0 {
		coords := make([]float64, 0, allocHint(n*dim))
		err := r.section("positions", int64(n)*int64(dim)*8, func(chunk []byte) {
			for i := 0; i+8 <= len(chunk); i += 8 {
				coords = append(coords, math.Float64frombits(binary.LittleEndian.Uint64(chunk[i:])))
			}
		})
		if err != nil {
			return nil, err
		}
		if pos, err = torus.NewPositionsRaw(space, coords); err != nil {
			return nil, corruptf("binary", "positions", r.off, "%v", err)
		}
	}

	b, err := graph.NewBuilder(n, pos, weights, intensity, wmin)
	if err != nil {
		return nil, corruptf("binary", "header", 0, "%v", err)
	}
	var edgeErr error
	secStart := r.off
	err = r.section("edges", int64(m)*8, func(chunk []byte) {
		if edgeErr != nil {
			return
		}
		for i := 0; i+8 <= len(chunk); i += 8 {
			u := binary.LittleEndian.Uint32(chunk[i:])
			v := binary.LittleEndian.Uint32(chunk[i+4:])
			if u >= uint32(n) || v >= uint32(n) || u == v {
				edgeErr = corruptf("binary", "edges", secStart+int64(i), "invalid edge %d-%d (n = %d)", u, v, n)
				return
			}
			b.AddEdge(int(u), int(v))
		}
		secStart += int64(len(chunk))
	})
	if err != nil {
		return nil, err
	}
	if edgeErr != nil {
		return nil, edgeErr
	}

	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, corruptf("binary", "trailer", r.off, "trailing data after the edge section")
	}
	return b.Finish(), nil
}

// allocHint caps a header-derived preallocation size: real data grows the
// slice the rest of the way, a lying header never sizes an allocation.
func allocHint(n int) int {
	const most = 1 << 16
	if n < most {
		return n
	}
	return most
}
