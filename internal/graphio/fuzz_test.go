package graphio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// corpusGraph is the deterministic attributed toy graph the fuzz seeds and
// gen_corpus.go encode: small enough for corpus files, rich enough (weights,
// 2-d positions, edges) to reach every decoder section.
func corpusGraph() *graph.Graph {
	const n = 5
	space, err := torus.NewSpace(2)
	if err != nil {
		panic(err)
	}
	coords := make([]float64, 2*n)
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		coords[2*v] = float64(v) / n
		coords[2*v+1] = float64(n-v) / (n + 1)
		weights[v] = 1 + float64(v)/2
	}
	pos, err := torus.NewPositionsRaw(space, coords)
	if err != nil {
		panic(err)
	}
	b, err := graph.NewBuilder(n, pos, weights, float64(n), 1)
	if err != nil {
		panic(err)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 4)
	b.AddEdge(3, 4)
	return b.Finish()
}

// FuzzRead is the decoder robustness contract: Read must return an error on
// malformed input — never panic, never mis-parse, never allocate
// proportionally to a lying header. One target covers both formats because
// Read auto-detects on the magic bytes, exactly like production input
// arrives (go test -fuzz accepts a single target per run).
//
// Regenerate the seed corpus under testdata/fuzz/FuzzRead with:
//
//	go run ./internal/graphio/gen_corpus.go
func FuzzRead(f *testing.F) {
	// Live seeds built from the real encoders, so the mutator starts from
	// inputs that exercise the deep paths of both decoders.
	g := corpusGraph()
	var text, bin bytes.Buffer
	if err := Write(&text, g); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		f.Fatal(err)
	}
	f.Add(text.Bytes())
	f.Add(bin.Bytes())
	// Truncations and single-byte corruptions of valid snapshots.
	for _, src := range [][]byte{text.Bytes(), bin.Bytes()} {
		f.Add(src[:len(src)/2])
		for _, i := range []int{0, 5, len(src) / 2, len(src) - 1} {
			mut := bytes.Clone(src)
			mut[i] ^= 0x40
			f.Add(mut)
		}
		f.Add(append(bytes.Clone(src), " x"...))
	}
	// Headers that promise far more data than they carry.
	f.Add([]byte("girg 1000000000 999999999 2 1 1\n"))
	f.Add([]byte{'G', 'I', 'R', 'B', 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatal("Read returned a graph AND an error")
			}
			return
		}
		// Accepted input must round-trip losslessly through both encoders:
		// a decoder that silently mis-parsed would break here.
		for name, enc := range map[string]func(*bytes.Buffer) error{
			"text":   func(b *bytes.Buffer) error { return Write(b, got) },
			"binary": func(b *bytes.Buffer) error { return WriteBinary(b, got) },
		} {
			var buf bytes.Buffer
			if err := enc(&buf); err != nil {
				t.Fatalf("%s re-encode of accepted input: %v", name, err)
			}
			again, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s re-read of accepted input: %v", name, err)
			}
			if again.Fingerprint() != got.Fingerprint() {
				t.Fatalf("%s round-trip changed the graph", name)
			}
		}
	})
}

// TestCorruptClassified replays the committed seed corpus and checks that
// every rejection is a classified *CorruptError (or wraps one), not an
// anonymous parse failure — operators triage on Section and Offset.
func TestCorruptClassified(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRead")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no seed corpus: %v", err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, ok := decodeCorpusFile(raw)
		if !ok {
			t.Fatalf("%s: not a v1 corpus file", e.Name())
		}
		if _, err := Read(bytes.NewReader(data)); err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("%s: rejection not classified: %v", e.Name(), err)
			} else if ce.Format == "" || ce.Section == "" {
				t.Errorf("%s: classification incomplete: %+v", e.Name(), ce)
			}
		}
	}
}

// decodeCorpusFile extracts the []byte value of a "go test fuzz v1" corpus
// file (one quoted []byte line, as gen_corpus.go writes them).
func decodeCorpusFile(raw []byte) ([]byte, bool) {
	lines := bytes.SplitN(raw, []byte("\n"), 3)
	if len(lines) < 2 || !bytes.Equal(lines[0], []byte("go test fuzz v1")) {
		return nil, false
	}
	line := lines[1]
	const pre, post = "[]byte(", ")"
	if !bytes.HasPrefix(line, []byte(pre)) || !bytes.HasSuffix(line, []byte(post)) {
		return nil, false
	}
	s, err := strconv.Unquote(string(line[len(pre) : len(line)-len(post)]))
	if err != nil {
		return nil, false
	}
	return []byte(s), true
}
