package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// patchHeaderCRC recomputes the header checksum after a deliberate header
// mutation, so the test under it reaches the field validation it targets.
func patchHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[42:46], crc32.ChecksumIEEE(b[:42]))
}

// patchSectionCRC recomputes one section's payload checksum
// (payload = b[payloadStart:crcPos], trailer at crcPos).
func patchSectionCRC(b []byte, payloadStart, crcPos int) {
	binary.LittleEndian.PutUint32(b[crcPos:crcPos+4], crc32.ChecksumIEEE(b[payloadStart:crcPos]))
}

func encodeBinary(t *testing.T) ([]byte, uint64) {
	t.Helper()
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g.Fingerprint()
}

func TestBinaryRoundTrip(t *testing.T) {
	raw, want := encodeBinary(t)
	g2, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != want {
		t.Fatal("binary round-trip changed the graph")
	}
}

func TestBinaryRoundTripNoGeometry(t *testing.T) {
	g := corpusGraph()
	var text bytes.Buffer
	if err := Write(&text, g); err != nil {
		t.Fatal(err)
	}
	// text → graph → binary → graph: the two formats describe one graph.
	g1, err := Read(&text)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("text and binary disagree about the same graph")
	}
}

// TestBinaryBitFlipClassified flips one byte in each section and checks the
// decoder reports that section (never a panic, never a silent success).
func TestBinaryBitFlipClassified(t *testing.T) {
	raw, _ := encodeBinary(t)
	g, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n, dim := g.N(), g.Space().Dim()
	weightsAt := int64(binPrelude)
	positionsAt := weightsAt + int64(n)*8 + 4
	edgesAt := positionsAt + int64(n*dim)*8 + 4
	cases := []struct {
		section string
		offset  int64
	}{
		{"header", 8},
		{"weights", weightsAt + 3},
		{"positions", positionsAt + 3},
		{"edges", edgesAt + 3},
	}
	for _, tc := range cases {
		mut := bytes.Clone(raw)
		mut[tc.offset] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s flip: got %v, want *CorruptError", tc.section, err)
			continue
		}
		if ce.Section != tc.section {
			t.Errorf("flip at %d classified as section %q, want %q", tc.offset, ce.Section, tc.section)
		}
		if ce.Format != "binary" {
			t.Errorf("%s flip: format %q", tc.section, ce.Format)
		}
	}
}

// TestBinaryTruncations cuts the snapshot at every byte boundary: each
// prefix must be rejected with an error, never accepted or crash.
func TestBinaryTruncations(t *testing.T) {
	raw, _ := encodeBinary(t)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte snapshot", cut, len(raw))
		}
	}
}

func TestBinaryRejectsTrailingData(t *testing.T) {
	raw, _ := encodeBinary(t)
	_, err := Read(bytes.NewReader(append(bytes.Clone(raw), 0)))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "trailer" {
		t.Fatalf("trailing byte: got %v, want trailer CorruptError", err)
	}
}

func TestBinaryRejectsFutureVersion(t *testing.T) {
	raw, _ := encodeBinary(t)
	mut := bytes.Clone(raw)
	mut[4] = 2 // version u16 LE at offset 4
	// The header CRC covers the version, so recompute it or the CRC check
	// fires first; patching both isolates the version check.
	patchHeaderCRC(mut)
	_, err := Read(bytes.NewReader(mut))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "header" {
		t.Fatalf("future version: got %v", err)
	}
}

func TestBinaryRejectsImplausibleCounts(t *testing.T) {
	raw, _ := encodeBinary(t)
	mut := bytes.Clone(raw)
	for i := 6; i < 14; i++ { // n u64 LE at offset 6
		mut[i] = 0xff
	}
	patchHeaderCRC(mut)
	_, err := Read(bytes.NewReader(mut))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "header" {
		t.Fatalf("implausible n: got %v", err)
	}
}

func TestBinaryRejectsInvalidEdge(t *testing.T) {
	g := corpusGraph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// First edge endpoint lives right after weights and positions sections.
	edgeAt := binPrelude + g.N()*8 + 4 + g.N()*g.Space().Dim()*8 + 4
	mut := bytes.Clone(raw)
	mut[edgeAt] = 0xee // vertex id far beyond n=5
	patchSectionCRC(mut, edgeAt, len(raw)-4)
	_, err := Read(bytes.NewReader(mut))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "edges" {
		t.Fatalf("invalid edge id: got %v", err)
	}
}
