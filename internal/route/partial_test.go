package route

import (
	"testing"
	"time"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// stitchCluster routes s→t by chaining GreedyCSRPartial segments across the
// given shard masks, the way the serving layer's hop forwarding does, and
// returns the merged episode.
func stitchCluster(t *testing.T, g *graph.Graph, masks [][]bool, codes []uint64, bits int, prefixes []torus.Prefix, src, dst int) Result {
	t.Helper()
	ownerOf := func(v int) int {
		for i, p := range prefixes {
			if p.Matches(codes[v], bits) {
				return i
			}
		}
		t.Fatalf("vertex %d unowned", v)
		return -1
	}
	var sc Scratch
	var merged Result
	shard := ownerOf(src)
	cur := src
	first := true
	for hops := 0; ; hops++ {
		if hops > 64 {
			t.Fatal("stitching did not terminate")
		}
		var seg Result
		exit := GreedyCSRPartial(g, dst, cur, masks[shard], Budget{}, &sc, &seg)
		if first {
			merged = Result{Path: append([]int(nil), seg.Path...)}
			first = false
		} else {
			// The segment starts at the exit vertex the previous shard
			// already appended.
			merged.Path = append(merged.Path, seg.Path[1:]...)
		}
		merged.Moves = len(merged.Path) - 1
		if exit < 0 {
			merged.Success = seg.Success
			merged.Stuck = seg.Stuck
			merged.Truncated = seg.Truncated
			merged.Failure = seg.Failure
			merged.Unique = len(merged.Path)
			return merged
		}
		cur = exit
		shard = ownerOf(exit)
	}
}

// TestGreedyCSRPartialStitchEquivalence checks the cluster invariant the hop
// forwarding relies on: chaining per-shard partial segments reproduces the
// single-node GreedyCSR episode exactly — same path, same classification.
func TestGreedyCSRPartialStitchEquivalence(t *testing.T) {
	p := girg.DefaultParams(1500)
	p.FixedN = true
	g, err := girg.Generate(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codes, bits, err := graph.MortonCodes(g)
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"0", "10", "11"}
	prefixes := make([]torus.Prefix, len(specs))
	masks := make([][]bool, len(specs))
	for i, s := range specs {
		prefixes[i], err = torus.ParsePrefix(s)
		if err != nil {
			t.Fatal(err)
		}
		masks[i], err = graph.OwnedMask(codes, bits, prefixes[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	var sc Scratch
	rng := xrand.New(5)
	crossed := 0
	for i := 0; i < 200; i++ {
		s, d := rng.IntN(g.N()), rng.IntN(g.N())
		if s == d {
			continue
		}
		var want Result
		GreedyCSR(g, d, s, Budget{}, &sc, &want)
		got := stitchCluster(t, g, masks, codes, bits, prefixes, s, d)
		if got.Success != want.Success || got.Moves != want.Moves ||
			got.Unique != want.Unique || got.Failure != want.Failure || got.Stuck != want.Stuck {
			t.Fatalf("pair (%d,%d): stitched %+v != single-node %+v", s, d, got, want)
		}
		for j := range want.Path {
			if got.Path[j] != want.Path[j] {
				t.Fatalf("pair (%d,%d): path diverges at hop %d: %v vs %v", s, d, j, got.Path, want.Path)
			}
		}
		if want.Moves > 0 {
			crossed++
		}
	}
	if crossed == 0 {
		t.Fatal("no non-trivial episodes routed; test graph too sparse")
	}
}

// TestGreedyCSRPartialExitUnclassified pins the partial-segment contract:
// an exiting segment is unclassified (FailNone, not Success) and its exit
// vertex is never the target.
func TestGreedyCSRPartialExitUnclassified(t *testing.T) {
	p := girg.DefaultParams(800)
	p.FixedN = true
	g, err := girg.Generate(p, 3, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A mask owning only the even vertices forces quick exits.
	owned := make([]bool, g.N())
	for v := range owned {
		owned[v] = v%2 == 0
	}
	var sc Scratch
	rng := xrand.New(9)
	exits := 0
	for i := 0; i < 100; i++ {
		s, d := rng.IntN(g.N())&^1, rng.IntN(g.N())
		if s == d {
			continue
		}
		var seg Result
		exit := GreedyCSRPartial(g, d, s, owned, Budget{}, &sc, &seg)
		if exit < 0 {
			continue
		}
		exits++
		if exit == d {
			t.Fatalf("exit vertex is the target %d", d)
		}
		if owned[exit] {
			t.Fatalf("exit vertex %d is owned", exit)
		}
		if seg.Success || seg.Failure != FailNone {
			t.Fatalf("exiting segment classified: %+v", seg)
		}
		if seg.Path[len(seg.Path)-1] != exit {
			t.Fatalf("segment path %v does not end at exit %d", seg.Path, exit)
		}
	}
	if exits == 0 {
		t.Fatal("no segment ever exited; mask too permissive")
	}
}

// TestGreedyCSRPartialBudgetCut checks budget cuts classify exactly like
// GreedyCSR's: FailDeadline with the path reset to the source.
func TestGreedyCSRPartialBudgetCut(t *testing.T) {
	p := girg.DefaultParams(500)
	p.FixedN = true
	g, err := girg.Generate(p, 2, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]bool, g.N())
	for v := range owned {
		owned[v] = true
	}
	var sc Scratch
	var res Result
	exit := GreedyCSRPartial(g, g.N()-1, 0, owned, Budget{MaxScans: 1}, &sc, &res)
	if exit != -1 {
		t.Fatalf("budget-cut segment returned exit %d", exit)
	}
	if res.Failure != FailDeadline || len(res.Path) != 1 || res.Path[0] != 0 {
		t.Fatalf("budget cut = %+v, want FailDeadline with path [0]", res)
	}
	var res2 Result
	exit = GreedyCSRPartial(g, g.N()-1, 0, owned, Budget{Deadline: time.Now().Add(-time.Second)}, &sc, &res2)
	if exit != -1 || res2.Failure != FailDeadline {
		t.Fatalf("past-deadline segment = exit %d %+v, want FailDeadline", exit, res2)
	}
}
