package route

import (
	"time"

	"repro/internal/graph"
)

// GreedyCSRPartial is GreedyCSR restricted to one shard of a Morton-prefix
// partition: it routes greedily from s toward t over the full CSR arrays but
// stops the moment the walk steps onto a vertex the shard does not own,
// returning that vertex so the caller can forward the continuation to the
// owning peer (internal/serve's /cluster/hop path).
//
// The scores, comparison order and tie-breaks are exactly GreedyCSR's, so
// stitching the per-shard segments back together reproduces the single-node
// episode bit for bit: greedy under the standard objective is strictly
// φ-increasing, hence the walk never revisits a vertex even across shard
// boundaries, and Unique == len(Path) holds for every segment and for the
// merged path.
//
// Return values:
//
//	exit >= 0: the walk stepped onto non-owned vertex exit (never t —
//	    arriving at the target is delivery wherever it lives). out holds the
//	    segment so far: Path ends at exit, Success false, Failure FailNone —
//	    deliberately unclassified, because the episode is not over.
//	exit == -1: the episode terminated on this shard. out is classified
//	    exactly as GreedyCSR would: delivered, dead-end, or a budget cut
//	    (FailDeadline with the path reset to s).
//
// owned must have length g.N(); owned[s] is not required — a hop request
// that raced a membership change still routes, it just forwards again on the
// next step.
func GreedyCSRPartial(g *graph.Graph, t, s int, owned []bool, b Budget, sc *Scratch, out *Result) (exit int) {
	out.reset(s)
	offsets, adj := g.CSR()
	pos := g.Positions()
	space := pos.Space()
	xt := pos.At(t)
	weights := g.Weights()
	norm := 1 / (g.WMin() * g.Intensity())
	sc.beginScores(g.N())
	scores, stamps, epoch := sc.scores, sc.stamps, sc.epoch

	score := func(v int) float64 {
		if stamps[v] == epoch {
			return scores[v]
		}
		var ph float64
		if v == t {
			ph = inf
		} else {
			w := 1.0
			if weights != nil {
				w = weights[v]
			}
			ph = w * norm / space.DistPow(pos.At(v), xt)
		}
		scores[v] = ph
		stamps[v] = epoch
		return ph
	}

	scans := 0
	v := s
	for v != t {
		scans++
		if b.MaxScans > 0 && scans > b.MaxScans {
			out.cutDeadline(s)
			return -1
		}
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			out.cutDeadline(s)
			return -1
		}
		best := -1
		var bestScore float64
		for _, u32 := range adj[offsets[v]:offsets[v+1]] {
			u := int(u32)
			su := score(u)
			if best == -1 || better(su, bestScore, u, best) {
				best, bestScore = u, su
			}
		}
		if best < 0 || !better(bestScore, score(v), best, v) {
			out.Stuck = v
			out.Unique = len(out.Path)
			out.classify()
			return -1
		}
		out.step(best)
		v = best
		if v != t && !owned[v] {
			// Crossed the shard boundary: hand the walk to v's owner. The
			// segment stays unclassified — Success false, Failure FailNone —
			// which no terminal episode ever is.
			out.Unique = len(out.Path)
			return v
		}
	}
	out.Success = true
	out.Unique = len(out.Path)
	out.classify()
	return -1
}
