package route

import (
	"container/heap"
	"math"
)

// HistoryPatch is the first patching example of Section 5: the message
// carries the list of visited vertices plus, per visited vertex, the best
// unexplored incident edge. The protocol routes greedily while possible;
// stuck in a local optimum, it moves to the globally best unexplored edge
// leaving the visited set. Moving there costs a walk through already-visited
// vertices, which the protocol pays for in Moves (shortest such walk, found
// by BFS over the visited subgraph).
//
// The protocol satisfies (P1) greedy choices, (P2) poly-time exploration
// (every phase visits a fresh vertex after at most |visited| moves) and (P3)
// poly-time exhaustive search (edges are explored in objective order, so
// the component of the best-so-far vertex above its objective is exhausted
// before anything worse is touched).
type HistoryPatch struct {
	// MaxMoves caps message transmissions; 0 means 64*n + 256.
	MaxMoves int
}

// Name returns "history".
func (HistoryPatch) Name() string { return "history" }

func init() { Register(HistoryPatch{}) }

// frontierEdge is a candidate unexplored edge (from a visited vertex to an
// unvisited neighbor), ordered by the neighbor's objective.
type frontierEdge struct {
	score float64
	to    int
	from  int
}

type frontierHeap []frontierEdge

func (h frontierHeap) Len() int { return len(h) }
func (h frontierHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].to < h[j].to
}
func (h frontierHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x interface{}) { *h = append(*h, x.(frontierEdge)) }
func (h *frontierHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Route runs the history-patched protocol from s toward obj.Target. It is a
// one-line adapter over the RouteInto convention.
func (a HistoryPatch) Route(g Graph, obj Objective, s int) Result {
	var res Result
	a.RouteInto(g, obj, s, nil, &res)
	return res
}

// RouteInto routes into out, reusing out's Path backing array and sc's
// unique-count marks. The protocol's own exploration state (visited set,
// frontier heap) is still allocated per episode — history carries
// per-episode message state by design; only greedy is the zero-alloc path.
func (a HistoryPatch) RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	maxMoves := a.MaxMoves
	if maxMoves == 0 {
		maxMoves = 64*g.N() + 256
	}
	out.reset(s)
	res := out
	visited := map[int]bool{}
	frontier := &frontierHeap{}

	visit := func(v int) {
		visited[v] = true
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if !visited[u] {
				heap.Push(frontier, frontierEdge{score: obj.Score(u), to: u, from: v})
			}
		}
	}

	pos := s
	visit(s)
	for res.Moves <= maxMoves {
		if pos == obj.Target {
			res.Success = true
			res.finalize(sc, g.N())
			return
		}
		// (P1): on a fresh vertex with a strictly better neighbor, move
		// greedily to the best neighbor.
		if u := bestNeighborIface(g, obj, pos); u >= 0 && better(obj.Score(u), obj.Score(pos), u, pos) {
			res.step(u)
			pos = u
			if !visited[u] {
				visit(u)
			}
			continue
		}
		// Local optimum: take the globally best unexplored edge.
		var next frontierEdge
		found := false
		for frontier.Len() > 0 {
			e := heap.Pop(frontier).(frontierEdge)
			if !visited[e.to] {
				next, found = e, true
				break
			}
		}
		if !found {
			res.Stuck = pos
			res.finalize(sc, g.N()) // component exhausted
			return
		}
		// Walk within the visited subgraph from pos to next.from, then
		// across the unexplored edge.
		for _, v := range walkVisited(g, visited, pos, next.from) {
			res.step(v)
		}
		res.step(next.to)
		pos = next.to
		visit(pos)
	}
	res.Truncated = true
	res.finalize(sc, g.N())
}

// walkVisited returns the vertices after `from` on a shortest path from
// `from` to `to` inside the visited set (empty if from == to). Both
// endpoints must be visited.
func walkVisited(g Graph, visited map[int]bool, from, to int) []int {
	if from == to {
		return nil
	}
	prev := map[int]int{from: from}
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == to {
			break
		}
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if !visited[u] {
				continue
			}
			if _, seen := prev[u]; !seen {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if _, ok := prev[to]; !ok {
		// The visited set is connected by construction, so this cannot
		// happen; return a direct hop as a defensive fallback.
		return []int{to}
	}
	var rev []int
	for v := to; v != from; v = prev[v] {
		rev = append(rev, v)
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// GravityPressure is the gravity-pressure patching heuristic of
// Cvetkovski-Crovella discussed in Sections 4-5: in gravity mode the
// message moves greedily; at a local optimum it switches to pressure mode,
// always moving to the neighbor visited the fewest times (ties broken by
// objective), until it reaches a vertex with a better objective than the
// optimum where it got stuck, then resumes gravity mode. The paper points
// out this protocol violates (P3) and can explore large parts of the giant
// before returning, which E6 measures.
type GravityPressure struct {
	// MaxMoves caps message transmissions; 0 means 64*n + 256.
	MaxMoves int
}

// Name returns "gravity-pressure".
func (GravityPressure) Name() string { return "gravity-pressure" }

func init() { Register(GravityPressure{}) }

// Route runs gravity-pressure from s toward obj.Target. It is a one-line
// adapter over the RouteInto convention.
func (a GravityPressure) Route(g Graph, obj Objective, s int) Result {
	var res Result
	a.RouteInto(g, obj, s, nil, &res)
	return res
}

// RouteInto routes into out, reusing out's Path backing array and sc's
// unique-count marks (the per-episode visit counts stay a map).
func (a GravityPressure) RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	maxMoves := a.MaxMoves
	if maxMoves == 0 {
		maxMoves = 64*g.N() + 256
	}
	out.reset(s)
	res := out
	visits := map[int]int{s: 1}
	pos := s
	pressure := false
	stuckScore := math.Inf(-1)
	for res.Moves <= maxMoves {
		if pos == obj.Target {
			res.Success = true
			res.finalize(sc, g.N())
			return
		}
		if pressure && obj.Score(pos) > stuckScore {
			pressure = false
		}
		var next int
		if !pressure {
			u := bestNeighborIface(g, obj, pos)
			if u < 0 {
				res.Stuck = pos
				res.finalize(sc, g.N()) // isolated vertex
				return
			}
			if better(obj.Score(u), obj.Score(pos), u, pos) {
				next = u
			} else {
				pressure = true
				stuckScore = obj.Score(pos)
				continue
			}
		} else {
			next = leastVisitedNeighbor(g, obj, visits, pos)
			if next < 0 {
				res.Stuck = pos
				res.finalize(sc, g.N())
				return
			}
		}
		visits[next]++
		res.step(next)
		pos = next
	}
	res.Truncated = true
	res.finalize(sc, g.N())
}

// leastVisitedNeighbor returns pos's neighbor with the fewest visits,
// breaking ties by objective then id; -1 if pos is isolated.
func leastVisitedNeighbor(g Graph, obj Objective, visits map[int]int, pos int) int {
	best := -1
	bestVisits := 0
	var bestScore float64
	for _, u32 := range g.Neighbors(pos) {
		u := int(u32)
		vc := visits[u]
		if best == -1 || vc < bestVisits ||
			(vc == bestVisits && better(obj.Score(u), bestScore, u, best)) {
			best, bestVisits, bestScore = u, vc, obj.Score(u)
		}
	}
	return best
}
