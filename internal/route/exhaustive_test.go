package route

import (
	"testing"

	"repro/internal/xrand"
)

// componentOf returns the vertex set of s's connected component.
func componentOf(g Graph, s int) map[int]bool {
	seen := map[int]bool{s: true}
	stack := []int{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[int(u)] {
				seen[int(u)] = true
				stack = append(stack, int(u))
			}
		}
	}
	return seen
}

// TestPatchersExhaustComponentOnFailure: when the target is unreachable,
// a correct patcher must have visited every vertex of the source component
// before giving up — this is the operational content of (P2).
func TestPatchersExhaustComponentOnFailure(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 100; trial++ {
		// Random connected component of size k plus an isolated target.
		k := 3 + rng.IntN(25)
		n := k + 1
		var edges [][2]int
		for v := 1; v < k; v++ {
			edges = append(edges, [2]int{rng.IntN(v), v})
		}
		for i := 0; i < k; i++ {
			u, v := rng.IntN(k), rng.IntN(k)
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		g := newTestGraph(n, edges)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		obj := scoreObjective(scores, k) // target = the isolated vertex
		s := rng.IntN(k)
		comp := componentOf(g, s)

		for name, routeFn := range map[string]func() Result{
			"phidfs":  func() Result { return PhiDFS{}.Route(g, obj, s) },
			"history": func() Result { return HistoryPatch{}.Route(g, obj, s) },
		} {
			res := routeFn()
			if res.Success {
				t.Fatalf("trial %d %s: succeeded to unreachable target", trial, name)
			}
			if res.Truncated {
				t.Fatalf("trial %d %s: truncated instead of exhausting", trial, name)
			}
			visited := map[int]bool{}
			for _, v := range res.Path {
				visited[v] = true
			}
			for v := range comp {
				if !visited[v] {
					t.Fatalf("trial %d %s: component vertex %d never visited (component %d vertices, visited %d)",
						trial, name, v, len(comp), len(visited))
				}
			}
		}
	}
}

// TestPhiDFSAdversarialTopologies runs Algorithm 2 on structured graphs
// with adversarial objective orderings.
func TestPhiDFSAdversarialTopologies(t *testing.T) {
	rng := xrand.New(37)
	build := map[string]func(n int) [][2]int{
		"path": func(n int) [][2]int {
			var e [][2]int
			for v := 1; v < n; v++ {
				e = append(e, [2]int{v - 1, v})
			}
			return e
		},
		"cycle": func(n int) [][2]int {
			var e [][2]int
			for v := 1; v < n; v++ {
				e = append(e, [2]int{v - 1, v})
			}
			return append(e, [2]int{n - 1, 0})
		},
		"star": func(n int) [][2]int {
			var e [][2]int
			for v := 1; v < n; v++ {
				e = append(e, [2]int{0, v})
			}
			return e
		},
		"clique": func(n int) [][2]int {
			var e [][2]int
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					e = append(e, [2]int{u, v})
				}
			}
			return e
		},
	}
	for name, mk := range build {
		for trial := 0; trial < 25; trial++ {
			n := 4 + rng.IntN(12)
			g := newTestGraph(n, mk(n))
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = rng.Float64()
			}
			s, tgt := rng.IntN(n), rng.IntN(n)
			obj := scoreObjective(scores, tgt)
			res := PhiDFS{}.Route(g, obj, s)
			if !res.Success {
				t.Fatalf("%s trial %d: failed on connected graph (%+v)", name, trial, res)
			}
			checkPathValid(t, g, res)
		}
	}
}

// TestPhiDFSWorstCaseDescendingPath: scores strictly decreasing along a
// path away from the target forces maximal backtracking; the run must stay
// within the polynomial move budget and still succeed.
func TestPhiDFSWorstCaseDescendingPath(t *testing.T) {
	const n = 50
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v - 1, v})
	}
	g := newTestGraph(n, edges)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(n - i) // descending toward the target end
	}
	obj := scoreObjective(scores, n-1)
	res := PhiDFS{}.Route(g, obj, 0)
	if !res.Success {
		t.Fatalf("failed: %+v", res)
	}
	if res.Moves > 10*n*n {
		t.Fatalf("quadratic blowup: %d moves on a path of %d", res.Moves, n)
	}
}

// TestHistoryPatchMoveAccounting: jumping to a frontier edge must pay for
// the walk through visited territory, so moves >= unique-1 always, and on a
// star the walk back through the hub is visible.
func TestHistoryPatchMoveAccounting(t *testing.T) {
	// Star with a tail: hub 0, leaves 1..4, target 5 hanging off leaf 4.
	// Greedy jumps to the best leaf and strands; the patcher must pop the
	// frontier in score order, walking back through the hub each time.
	g := newTestGraph(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}})
	obj := scoreObjective([]float64{1, 5, 4, 3, 2, 0}, 5)
	res := HistoryPatch{}.Route(g, obj, 0)
	if !res.Success {
		t.Fatalf("%+v", res)
	}
	if res.Moves < res.Unique-1 {
		t.Fatalf("moves %d below spanning-walk floor for %d vertices", res.Moves, res.Unique)
	}
	// 0->1 (greedy), 1->0->2, 2->0->3, 3->0->4 (frontier pops with hub
	// walks), then 4->5 (target is 4's best neighbor): 8 moves.
	if res.Moves != 8 {
		t.Fatalf("moves = %d, want 8 (path %v)", res.Moves, res.Path)
	}
}

// TestGravityPressureEscapesLocalOptimum on a dumbbell: two cliques joined
// by a low-score bridge. Greedy dies at the first clique's top; gravity-
// pressure must pump through the bridge.
func TestGravityPressureEscapesLocalOptimum(t *testing.T) {
	// Vertices 0-3: clique A (source side), 4: bridge, 5-8: clique B with
	// the target.
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5},
		{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
	}
	g := newTestGraph(9, edges)
	scores := []float64{5, 6, 7, 8, 1, 2, 3, 4, 0}
	obj := scoreObjective(scores, 8)
	gres := Greedy(g, obj, 0)
	if gres.Success {
		t.Fatal("greedy should die in clique A")
	}
	pres := GravityPressure{}.Route(g, obj, 0)
	if !pres.Success {
		t.Fatalf("gravity-pressure failed: %+v", pres)
	}
	checkPathValid(t, g, pres)
}
