package route

// GreedyRouter is the pure greedy protocol of Algorithm 1 as a registered
// Protocol: from the current vertex, move to the neighbor with the largest
// objective if it improves on the current vertex, otherwise drop the packet.
type GreedyRouter struct{}

// Name returns "greedy".
func (GreedyRouter) Name() string { return "greedy" }

// Route runs Algorithm 1 from s toward obj.Target.
func (GreedyRouter) Route(g Graph, obj Objective, s int) Result {
	return Greedy(g, obj, s)
}

func init() { Register(GreedyRouter{}) }

// Graph is the read-only view routing protocols need. *graph.Graph
// satisfies it.
type Graph interface {
	N() int
	Neighbors(v int) []int32
	Weight(v int) float64
}

// Greedy runs Algorithm 1 from s toward obj.Target and returns the episode.
func Greedy(g Graph, obj Objective, s int) Result {
	res := newResult(s)
	v := s
	for v != obj.Target {
		u := bestNeighborIface(g, obj, v)
		if u < 0 || !better(obj.Score(u), obj.Score(v), u, v) {
			res.Stuck = v
			return res.finish()
		}
		res.step(u)
		v = u
	}
	res.Success = true
	return res.finish()
}

func bestNeighborIface(g Graph, obj Objective, v int) int {
	best := -1
	var bestScore float64
	for _, u32 := range g.Neighbors(v) {
		u := int(u32)
		s := obj.Score(u)
		if best == -1 || better(s, bestScore, u, best) {
			best, bestScore = u, s
		}
	}
	return best
}

// Hop is one point of a routing trajectory: the vertex, its model weight
// and its objective value. Experiment F1 plots these per step.
type Hop struct {
	V     int
	W     float64
	Score float64
}

// Trajectory expands a result's path into per-hop (weight, objective)
// records for trajectory analysis (Figure 1).
func Trajectory(g Graph, obj Objective, res Result) []Hop {
	hops := make([]Hop, len(res.Path))
	for i, v := range res.Path {
		hops[i] = Hop{V: v, W: g.Weight(v), Score: obj.Score(v)}
	}
	return hops
}
