package route

// GreedyRouter is the pure greedy protocol of Algorithm 1 as a registered
// Protocol: from the current vertex, move to the neighbor with the largest
// objective if it improves on the current vertex, otherwise drop the packet.
type GreedyRouter struct{}

// Name returns "greedy".
func (GreedyRouter) Name() string { return "greedy" }

// Route runs Algorithm 1 from s toward obj.Target.
func (GreedyRouter) Route(g Graph, obj Objective, s int) Result {
	return Greedy(g, obj, s)
}

// RouteInto is the zero-alloc v2 path: it routes into out, reusing out's
// Path backing array (sc is not needed — greedy keeps no aux state and
// never revisits a vertex, so Unique is the path length).
func (GreedyRouter) RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	greedyInto(g, obj, s, out)
}

// RouteBatch routes the batch episode-by-episode; greedy has no cross-episode
// setup to amortize beyond the reused buffers.
func (GreedyRouter) RouteBatch(g Graph, objs []Objective, srcs []int, sc *Scratch, out []Result) {
	for i := range srcs {
		greedyInto(g, objs[i], srcs[i], &out[i])
	}
}

func init() { Register(GreedyRouter{}) }

// Graph is the read-only view routing protocols need. *graph.Graph
// satisfies it.
type Graph interface {
	N() int
	Neighbors(v int) []int32
	Weight(v int) float64
}

// Greedy runs Algorithm 1 from s toward obj.Target and returns the episode.
// It is a one-line adapter over the RouteInto convention.
func Greedy(g Graph, obj Objective, s int) Result {
	var res Result
	greedyInto(g, obj, s, &res)
	return res
}

// greedyInto is Algorithm 1 building into out. A greedy path visits every
// vertex at most once (scores strictly increase along it, ties broken by
// id), so Unique is simply the path length and no visited set is needed.
func greedyInto(g Graph, obj Objective, s int, out *Result) {
	out.reset(s)
	v := s
	for v != obj.Target {
		u := bestNeighborIface(g, obj, v)
		if u < 0 || !better(obj.Score(u), obj.Score(v), u, v) {
			out.Stuck = v
			out.Unique = len(out.Path)
			out.classify()
			return
		}
		out.step(u)
		v = u
	}
	out.Success = true
	out.Unique = len(out.Path)
	out.classify()
}

func bestNeighborIface(g Graph, obj Objective, v int) int {
	best := -1
	var bestScore float64
	for _, u32 := range g.Neighbors(v) {
		u := int(u32)
		s := obj.Score(u)
		if best == -1 || better(s, bestScore, u, best) {
			best, bestScore = u, s
		}
	}
	return best
}

// Hop is one point of a routing trajectory: the vertex, its model weight
// and its objective value.
//
// Deprecated: Hop predates the Observer hook and duplicates MoveEvent minus
// the (Episode, Step) coordinates. Use MoveEvent and Moves (or Observe
// directly); Hop remains only for pre-observer callers.
type Hop struct {
	V     int
	W     float64
	Score float64
}

// Trajectory expands a result's path into per-hop (weight, objective)
// records for trajectory analysis (Figure 1).
//
// Deprecated: use Moves, which returns the same (V, W, Score) stream as
// MoveEvents — the type every observer and analyzer already consumes.
// Trajectory is a thin conversion over the same replay.
func Trajectory(g Graph, obj Objective, res Result) []Hop {
	evs := Moves(g, obj, res, 0)
	hops := make([]Hop, len(evs))
	for i, ev := range evs {
		hops[i] = Hop{V: ev.V, W: ev.W, Score: ev.Score}
	}
	return hops
}
