package route

import (
	"time"

	"repro/internal/graph"
)

// This file is the overlay-aware half of the concrete fast path: GreedyCSR
// and GreedyCSRPartial lifted onto a live graph.Overlay. The base CSR scan
// stays exactly as in GreedyCSR; each dirty vertex's sorted add/del delta
// is merged into the scan in place (two-pointer walks, no allocation), and
// added vertices read their adjacency straight from the delta. Scores,
// comparison order and tie-breaks are GreedyCSR's, so routing over an
// overlay is bit-identical to routing over Overlay.Materialize() — the
// invariant that lets a compactor hot-swap the folded snapshot in without
// changing a single answer.
//
// A tombstoned current vertex reads an empty adjacency and classifies as
// the existing dead-end failure — a walk that reaches a departed vertex
// (or starts on one) degrades, it never panics or hangs.

// overlayScorer is the shared scoring state of the overlay fast paths.
type overlayScorer struct {
	o       *graph.Overlay
	t       int
	norm    float64
	scores  []float64
	stamps  []uint32
	epoch   uint32
	baseN   int
	weights []float64
}

func newOverlayScorer(o *graph.Overlay, t int, sc *Scratch) overlayScorer {
	sc.beginScores(o.N())
	return overlayScorer{
		o:       o,
		t:       t,
		norm:    1 / (o.WMin() * o.Intensity()),
		scores:  sc.scores,
		stamps:  sc.stamps,
		epoch:   sc.epoch,
		baseN:   o.Base().N(),
		weights: o.Base().Weights(),
	}
}

// score is phi(v) with epoch-stamped memoization, spelled exactly as
// GreedyCSR's inline closure so the float sequence is bit-identical.
func (s *overlayScorer) score(v int) float64 {
	if s.stamps[v] == s.epoch {
		return s.scores[v]
	}
	var ph float64
	if v == s.t {
		ph = inf
	} else {
		w := 1.0
		if v >= s.baseN {
			w = s.o.Weight(v)
		} else if s.weights != nil {
			w = s.weights[v]
		}
		space := s.o.Space()
		ph = w * s.norm / space.DistPow(s.o.Pos(v), s.o.Pos(s.t))
	}
	s.scores[v] = ph
	s.stamps[v] = s.epoch
	return ph
}

// GreedyCSROverlay is GreedyCSR over a live overlay: Algorithm 1 from s
// toward t under the standard objective, scanning merged adjacency (base
// CSR minus per-vertex del plus add) without allocating. The episode is
// bit-identical to GreedyCSR(o.Materialize(), t, s, ...): identical scores
// in a score-equivalent comparison order, identical budget accounting.
// Pass the overlay's own N()-sized scratch; added vertices score like any
// other.
func GreedyCSROverlay(o *graph.Overlay, t, s int, b Budget, sc *Scratch, out *Result) {
	out.reset(s)
	base := o.Base()
	offsets, adj := base.CSR()
	sco := newOverlayScorer(o, t, sc)
	baseN := sco.baseN

	scans := 0
	v := s
	for v != t {
		scans++
		if b.MaxScans > 0 && scans > b.MaxScans {
			out.cutDeadline(s)
			return
		}
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			out.cutDeadline(s)
			return
		}
		best := -1
		var bestScore float64
		if !o.Tombstoned(v) {
			add, del := o.Delta(v)
			var bs []int32
			if v < baseN {
				bs = adj[offsets[v]:offsets[v+1]]
			}
			ai, di := 0, 0
			for _, u32 := range bs {
				for di < len(del) && del[di] < u32 {
					di++
				}
				if di < len(del) && del[di] == u32 {
					continue
				}
				for ai < len(add) && add[ai] < u32 {
					u := int(add[ai])
					ai++
					su := sco.score(u)
					if best == -1 || better(su, bestScore, u, best) {
						best, bestScore = u, su
					}
				}
				u := int(u32)
				su := sco.score(u)
				if best == -1 || better(su, bestScore, u, best) {
					best, bestScore = u, su
				}
			}
			for ; ai < len(add); ai++ {
				u := int(add[ai])
				su := sco.score(u)
				if best == -1 || better(su, bestScore, u, best) {
					best, bestScore = u, su
				}
			}
		}
		if best < 0 || !better(bestScore, sco.score(v), best, v) {
			out.Stuck = v
			out.Unique = len(out.Path)
			out.classify()
			return
		}
		out.step(best)
		v = best
	}
	out.Success = true
	out.Unique = len(out.Path)
	out.classify()
}

// GreedyCSROverlayPartial is GreedyCSRPartial over a live overlay: the
// shard-local segment of a greedy walk on the mutating graph. owned must
// have length o.N() — the shard map is responsible for assigning added
// vertices to shards before they become routable. Exit semantics match
// GreedyCSRPartial exactly: exit >= 0 hands the walk to the owner of that
// vertex with the segment unclassified, exit == -1 is a terminal episode
// (delivered, dead-end — including a tombstoned current vertex — or a
// budget cut).
func GreedyCSROverlayPartial(o *graph.Overlay, t, s int, owned []bool, b Budget, sc *Scratch, out *Result) (exit int) {
	out.reset(s)
	base := o.Base()
	offsets, adj := base.CSR()
	sco := newOverlayScorer(o, t, sc)
	baseN := sco.baseN

	scans := 0
	v := s
	for v != t {
		scans++
		if b.MaxScans > 0 && scans > b.MaxScans {
			out.cutDeadline(s)
			return -1
		}
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			out.cutDeadline(s)
			return -1
		}
		best := -1
		var bestScore float64
		if !o.Tombstoned(v) {
			add, del := o.Delta(v)
			var bs []int32
			if v < baseN {
				bs = adj[offsets[v]:offsets[v+1]]
			}
			ai, di := 0, 0
			for _, u32 := range bs {
				for di < len(del) && del[di] < u32 {
					di++
				}
				if di < len(del) && del[di] == u32 {
					continue
				}
				for ai < len(add) && add[ai] < u32 {
					u := int(add[ai])
					ai++
					su := sco.score(u)
					if best == -1 || better(su, bestScore, u, best) {
						best, bestScore = u, su
					}
				}
				u := int(u32)
				su := sco.score(u)
				if best == -1 || better(su, bestScore, u, best) {
					best, bestScore = u, su
				}
			}
			for ; ai < len(add); ai++ {
				u := int(add[ai])
				su := sco.score(u)
				if best == -1 || better(su, bestScore, u, best) {
					best, bestScore = u, su
				}
			}
		}
		if best < 0 || !better(bestScore, sco.score(v), best, v) {
			out.Stuck = v
			out.Unique = len(out.Path)
			out.classify()
			return -1
		}
		out.step(best)
		v = best
		if v != t && !owned[v] {
			out.Unique = len(out.Path)
			return v
		}
	}
	out.Success = true
	out.Unique = len(out.Path)
	out.classify()
	return -1
}
