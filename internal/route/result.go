package route

// Failure classifies why a routing episode did not deliver its message. The
// taxonomy is shared by protocols, the fault-injection subsystem and the
// engine's expvar counters, so chaos experiments can report *how* routing
// degrades, not just that it does.
type Failure string

const (
	// FailNone marks a successful episode (the zero value).
	FailNone Failure = ""
	// FailDeadEnd marks a protocol that gave up on its own: pure greedy
	// stuck in a local optimum, or a patching protocol that exhausted the
	// source's component without finding the target.
	FailDeadEnd Failure = "dead-end"
	// FailTruncated marks an episode that hit the protocol's own move cap
	// before succeeding or provably failing.
	FailTruncated Failure = "truncated"
	// FailDeadline marks an episode the engine cut off at its per-episode
	// hop or wall-time budget (core.MilgramConfig) — the classification that
	// turns a hang into a counted failure.
	FailDeadline Failure = "deadline"
	// FailCrashedTarget marks an episode whose source or target vertex was
	// permanently crashed by a fault plan: delivery is impossible and the
	// engine classifies it without running the protocol.
	FailCrashedTarget Failure = "crashed-target"
	// FailCancelled marks episodes a cancelled batch context skipped; they
	// appear in counters, not in per-episode Results.
	FailCancelled Failure = "cancelled"
	// FailShardUnreachable marks a cluster episode whose greedy walk crossed
	// into a shard no reachable peer serves: the owning daemon is down (or
	// serving a mismatched snapshot) and the hop forward failed fast instead
	// of hanging. Single-process engines never produce it.
	FailShardUnreachable Failure = "shard-unreachable"
)

// Failures lists the taxonomy in reporting order.
func Failures() []Failure {
	return []Failure{FailDeadEnd, FailTruncated, FailDeadline, FailCrashedTarget, FailCancelled, FailShardUnreachable}
}

// Result describes one routing episode.
type Result struct {
	// Success reports whether the message reached the target.
	Success bool
	// Path is the sequence of message positions, starting at the source;
	// for pure greedy routing it is strictly objective-increasing, for
	// patched protocols it includes backtracking moves.
	Path []int
	// Moves is the number of message transmissions, len(Path)-1.
	Moves int
	// Unique is the number of distinct vertices the message visited.
	Unique int
	// Stuck is the local-optimum vertex where pure greedy routing gave up,
	// or -1 (always -1 on success and for patched protocols that exhaust
	// the component instead).
	Stuck int
	// Truncated reports that the protocol hit its move cap before either
	// succeeding or provably failing (only patched protocols can set it).
	Truncated bool
	// Failure classifies an unsuccessful episode (FailNone on success).
	// Protocols report FailDeadEnd or FailTruncated; the engine overrides
	// with FailDeadline or FailCrashedTarget for episodes it cut off itself.
	Failure Failure
}

// reset readies r for a fresh episode starting at s, reusing the Path
// backing array. Every protocol builds into a *Result through this
// convention (the RouteInto surface); the legacy value-returning Route entry
// points are one-line adapters over it.
func (r *Result) reset(s int) {
	r.Path = append(r.Path[:0], s)
	r.Moves = 0
	r.Unique = 0
	r.Stuck = -1
	r.Truncated = false
	r.Success = false
	r.Failure = FailNone
}

func (r *Result) step(v int) {
	r.Path = append(r.Path, v)
	r.Moves++
}

// finalize classifies the finished episode and counts its distinct vertices
// (allocation-free when a Scratch is supplied). n is the vertex count of the
// routed graph, sizing the scratch marks.
func (r *Result) finalize(sc *Scratch, n int) {
	r.Unique = uniqueCount(r.Path, sc, n)
	r.classify()
}

// classify derives the Failure class from the Success/Truncated flags.
func (r *Result) classify() {
	switch {
	case r.Success:
		r.Failure = FailNone
	case r.Truncated:
		r.Failure = FailTruncated
	default:
		r.Failure = FailDeadEnd
	}
}

// CopyInto deep-copies r into out, reusing out's Path backing array. Engines
// use it where a Result built on reusable scratch buffers must outlive the
// next episode.
func (r *Result) CopyInto(out *Result) {
	path := append(out.Path[:0], r.Path...)
	*out = *r
	out.Path = path
}
