package route

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// churnOverlay applies batches of deterministic mutations to a fresh overlay
// over g: vertex joins placed uniformly with a handful of edges, vertex
// leaves, and random edge insertions/removals. It returns the drifted
// overlay.
func churnOverlay(t testing.TB, g *graph.Graph, batches int, seed uint64) *graph.Overlay {
	t.Helper()
	o := graph.NewOverlay(g)
	rng := xrand.New(seed)
	dim := g.Space().Dim()
	for b := 0; b < batches; b++ {
		e := o.Edit()
		// One join with a few edges to live base vertices.
		pos := make([]float64, dim)
		for i := range pos {
			pos[i] = rng.Float64()
		}
		nv, err := e.AddVertex(pos, g.WMin()*(1+rng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			u := rng.IntN(nv)
			if u != nv && !e.Tombstoned(u) && !e.HasEdge(nv, u) {
				if err := e.AddEdge(nv, u); err != nil {
					t.Fatal(err)
				}
			}
		}
		// One leave.
		for tries := 0; tries < 20; tries++ {
			v := rng.IntN(g.N())
			if !e.Tombstoned(v) {
				if err := e.RemoveVertex(v); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		// A few random edge flips.
		for k := 0; k < 6; k++ {
			u, v := rng.IntN(g.N()), rng.IntN(g.N())
			if u == v || e.Tombstoned(u) || e.Tombstoned(v) {
				continue
			}
			if e.HasEdge(u, v) {
				if err := e.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := e.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		o = e.Finish()
	}
	return o
}

func TestGreedyCSROverlayEmptyMatchesCSR(t *testing.T) {
	g := girgForRouting(t, 2000, 21)
	o := graph.NewOverlay(g)
	rng := xrand.New(5)
	var sc1, sc2 Scratch
	var out1, out2 Result
	for i := 0; i < 50; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		GreedyCSR(g, tgt, s, Budget{}, &sc1, &out1)
		GreedyCSROverlay(o, tgt, s, Budget{}, &sc2, &out2)
		sameEpisode(t, "empty overlay", out1, out2)
	}
}

func TestGreedyCSROverlayMatchesMaterialized(t *testing.T) {
	g := girgForRouting(t, 2000, 22)
	o := churnOverlay(t, g, 40, 7)
	mg, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	var sc1, sc2 Scratch
	var out1, out2 Result
	for i := 0; i < 80; i++ {
		s, tgt := rng.IntN(o.N()), rng.IntN(o.N())
		GreedyCSR(mg, tgt, s, Budget{}, &sc1, &out1)
		GreedyCSROverlay(o, tgt, s, Budget{}, &sc2, &out2)
		sameEpisode(t, "churned overlay", out1, out2)
	}
	// Budget cuts must land on the same scan.
	for i := 0; i < 30; i++ {
		s, tgt := rng.IntN(o.N()), rng.IntN(o.N())
		for _, cap := range []int{1, 2, 3, 5} {
			GreedyCSR(mg, tgt, s, Budget{MaxScans: cap}, &sc1, &out1)
			GreedyCSROverlay(o, tgt, s, Budget{MaxScans: cap}, &sc2, &out2)
			sameEpisode(t, "budget cut", out1, out2)
		}
	}
}

// TestAllProtocolsOverlayMatchMaterialized is the acceptance check that
// routing over the overlay is bit-identical to routing over the compacted
// snapshot for every registered protocol, via the interface path and the
// generalized GeoGraph objective.
func TestAllProtocolsOverlayMatchMaterialized(t *testing.T) {
	g := girgForRouting(t, 1500, 23)
	o := churnOverlay(t, g, 30, 8)
	mg, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	for _, name := range Registered() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var sc1, sc2 Scratch
		var out1, out2 Result
		for i := 0; i < 25; i++ {
			s, tgt := rng.IntN(o.N()), rng.IntN(o.N())
			RouteInto(p, mg, NewStandard(mg, tgt), s, &sc1, &out1)
			RouteInto(p, o, NewStandard(o, tgt), s, &sc2, &out2)
			sameEpisode(t, name, out1, out2)
		}
	}
}

func TestGreedyCSROverlayTombstonedDeadEnd(t *testing.T) {
	g := girgForRouting(t, 800, 24)
	victim, tgt := -1, -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			if victim < 0 {
				victim = v
			} else if tgt < 0 && v != victim {
				tgt = v
			}
		}
	}
	e := graph.NewOverlay(g).Edit()
	if err := e.RemoveVertex(victim); err != nil {
		t.Fatal(err)
	}
	o := e.Finish()
	var sc Scratch
	var out Result
	// A walk starting on a departed vertex dead-ends immediately.
	GreedyCSROverlay(o, tgt, victim, Budget{}, &sc, &out)
	if out.Success || out.Failure != FailDeadEnd || out.Stuck != victim {
		t.Fatalf("tombstoned source: %+v", out)
	}
	// A walk toward a departed target terminates with a classified failure
	// (the target is unreachable; greedy dead-ends in bounded time).
	GreedyCSROverlay(o, victim, tgt, Budget{MaxScans: 1 << 20}, &sc, &out)
	if out.Success {
		t.Fatal("delivered to a tombstoned target")
	}
	if out.Failure == FailNone {
		t.Fatalf("unclassified failure: %+v", out)
	}
	// Interface path: the overlay's empty Neighbors gives the same class.
	res := Greedy(o, NewStandard(o, tgt), victim)
	if res.Success || res.Failure != FailDeadEnd {
		t.Fatalf("interface path on tombstoned source: %+v", res)
	}
}

// TestGreedyCSROverlayPartialStitch splits the overlay's id space into two
// synthetic shards and checks the stitched segments reproduce the
// single-node overlay episode bit for bit — the cluster invariant lifted
// onto live graphs.
func TestGreedyCSROverlayPartialStitch(t *testing.T) {
	g := girgForRouting(t, 1500, 25)
	o := churnOverlay(t, g, 25, 11)
	owned := make([][]bool, 2)
	for shard := range owned {
		owned[shard] = make([]bool, o.N())
		for v := 0; v < o.N(); v++ {
			owned[shard][v] = v%2 == shard
		}
	}
	rng := xrand.New(12)
	var scFull, scSeg Scratch
	var full, seg Result
	for i := 0; i < 40; i++ {
		s, tgt := rng.IntN(o.N()), rng.IntN(o.N())
		GreedyCSROverlay(o, tgt, s, Budget{}, &scFull, &full)

		var stitched Result
		stitched.Path = append(stitched.Path[:0], s)
		cur, hops := s, 0
		for {
			shard := cur % 2
			exit := GreedyCSROverlayPartial(o, tgt, cur, owned[shard], Budget{}, &scSeg, &seg)
			stitched.Path = append(stitched.Path, seg.Path[1:]...)
			if exit < 0 {
				stitched.Success = seg.Success
				stitched.Stuck = seg.Stuck
				stitched.Failure = seg.Failure
				stitched.Truncated = seg.Truncated
				break
			}
			cur = exit
			if hops++; hops > o.N() {
				t.Fatal("stitch loop did not terminate")
			}
		}
		stitched.Moves = len(stitched.Path) - 1
		stitched.Unique = len(stitched.Path)
		sameEpisode(t, "stitched", full, stitched)
	}
}

func TestGreedyCSROverlayZeroAlloc(t *testing.T) {
	g := girgForRouting(t, 2000, 26)
	o := churnOverlay(t, g, 20, 13)
	var sc Scratch
	var out Result
	rng := xrand.New(14)
	pairs := make([][2]int, 64)
	for i := range pairs {
		pairs[i] = [2]int{rng.IntN(o.N()), rng.IntN(o.N())}
	}
	// Warm the path buffer.
	for _, p := range pairs {
		GreedyCSROverlay(o, p[1], p[0], Budget{}, &sc, &out)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		i++
		GreedyCSROverlay(o, p[1], p[0], Budget{}, &sc, &out)
	})
	if allocs != 0 {
		t.Fatalf("GreedyCSROverlay allocates %.1f per episode, want 0", allocs)
	}
}
