package route

import (
	"math"
)

// PhiDFS is a faithful translation of the paper's Algorithm 2 (Section 5):
// a distributed patching protocol satisfying (P1)-(P3) in which the message
// and every vertex store only a constant number of pointers and objective
// values. Whenever the message reaches a vertex whose objective beats
// everything seen so far, a greedy depth-first search restricted to vertices
// of at least that objective is started; if that Phi-DFS completes without
// finding the target it is discarded and the paused outer DFS resumes.
//
// Per-vertex state (the paper's v.Phi, v.parent, v.started_new_dfs,
// v.previous_Phi) lives in flat arrays indexed by vertex; message state is
// the triple (best_seen_objective, Phi, last_visited_vertex). The recursion
// of the pseudocode is unrolled into an explicit action loop so the
// constant-memory claim stays visible: each loop iteration is one EXPLORE or
// BACKTRACK_TO call.
type PhiDFS struct {
	// MaxMoves caps the number of message transmissions; 0 means the
	// default of 64*n + 256. The cap only guards against pathological
	// graphs — Theorem 3.4 gives O(log log n) moves a.a.s.
	MaxMoves int
}

// Name returns "phi-dfs".
func (PhiDFS) Name() string { return "phi-dfs" }

func init() { Register(PhiDFS{}) }

type phiDFSKind uint8

const (
	actExplore phiDFSKind = iota + 1
	actBacktrack
)

// Route runs Algorithm 2 from s toward obj.Target. It is a one-line adapter
// over the RouteInto convention.
func (a PhiDFS) Route(g Graph, obj Objective, s int) Result {
	var res Result
	a.RouteInto(g, obj, s, nil, &res)
	return res
}

// RouteInto routes into out, reusing out's Path backing array and sc's
// unique-count marks. The per-vertex DFS state arrays are still allocated
// per episode — they are the protocol's distributed per-vertex memory, not
// scratch the caller owns.
func (a PhiDFS) RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	n := g.N()
	maxMoves := a.MaxMoves
	if maxMoves == 0 {
		maxMoves = 64*n + 256
	}

	// Per-vertex state. vPhi is NaN while the vertex has never been
	// visited; NaN compares unequal to everything, which is exactly the
	// "not visited in the current Phi-DFS" semantics the pseudocode needs.
	vPhi := make([]float64, n)
	for i := range vPhi {
		vPhi[i] = math.NaN()
	}
	parent := make([]int32, n)
	started := make([]bool, n)
	prevPhi := make([]float64, n)

	// Message state (ROUTING lines 2-5).
	mBest := math.Inf(-1)
	mPhi := math.Inf(-1)
	mLast := s

	out.reset(s)
	res := out
	pos := s // current message position

	// moveTo performs one message transmission, maintaining
	// m.last_visited_vertex. A "transition" to the current position is not
	// a transmission (the RESET_TO_OLD_PHI re-entry).
	moveTo := func(v int) {
		if v == pos {
			return
		}
		mLast = pos
		pos = v
		res.step(v)
	}

	kind, cur := actExplore, s
	for res.Moves <= maxMoves {
		switch kind {
		case actExplore:
			moveTo(cur)
			v := cur
			if v == obj.Target {
				res.Success = true
				res.finalize(sc, n)
				return
			}
			// Line 8: already visited in the current Phi-DFS?
			if vPhi[v] == mPhi {
				kind, cur = actBacktrack, mLast
				continue
			}
			best := bestNeighborIface(g, obj, v)
			// Lines 11-12: potentially start a new DFS with Phi = phi(v).
			if phiV := obj.Score(v); phiV > mBest {
				mBest = phiV
				if best >= 0 && obj.Score(best) >= phiV {
					started[v] = true
					prevPhi[v] = mPhi
					mPhi = phiV
				}
			}
			// Line 13: INIT_VERTEX.
			vPhi[v] = mPhi
			parent[v] = int32(mLast)
			// Lines 14-17: go to the best neighbor if one clears Phi.
			if best >= 0 && obj.Score(best) >= mPhi {
				kind, cur = actExplore, best
				continue
			}
			kind, cur = actBacktrack, mLast

		case actBacktrack:
			moveTo(cur)
			v := cur
			// Line 19: the next unexplored child of v in the current
			// Phi-DFS — best objective strictly below the child we just
			// finished (the cursor phi(m.last_visited_vertex)), at least
			// Phi, excluding the parent.
			cursor := obj.Score(mLast)
			if u := nextChild(g, obj, v, int(parent[v]), mPhi, cursor); u >= 0 {
				kind, cur = actExplore, u
				continue
			}
			if started[v] {
				// Lines 24-27: the Phi-DFS rooted at v failed; resume the
				// previous DFS in the state where we left it, coming from
				// v.parent. Deviation from the literal pseudocode: re-entering
				// EXPLORE(v) as written would hit the "already visited" branch
				// (v.Phi == m.Phi after the reset) and backtrack past v with
				// cursor phi(v), silently skipping v's still-unscanned
				// children in the resumed DFS — which can strand parts of the
				// component and violate (P2). We instead resume by rescanning
				// v's children from the top, which matches the paper's stated
				// intent that vertices of the failed inner DFS are treated as
				// unvisited by the resumed DFS.
				started[v] = false
				mPhi = prevPhi[v]
				vPhi[v] = prevPhi[v]
				mLast = int(parent[v])
				if u := bestNeighborIface(g, obj, v); u >= 0 && obj.Score(u) >= mPhi {
					kind, cur = actExplore, u
					continue
				}
				if int(parent[v]) == v {
					res.Stuck = v
					res.finalize(sc, n)
					return
				}
				kind, cur = actBacktrack, int(parent[v])
				continue
			}
			if int(parent[v]) == v {
				// The bottom-level DFS exhausted the component of s
				// without finding the target.
				res.Stuck = v
				res.finalize(sc, n)
				return
			}
			kind, cur = actBacktrack, int(parent[v])
		}
	}
	res.Truncated = true
	res.finalize(sc, n)
}

// nextChild returns v's neighbor with the largest objective that is
// strictly below cursor, at least phi, and not the parent; -1 if none.
func nextChild(g Graph, obj Objective, v, parent int, phi, cursor float64) int {
	best := -1
	var bestScore float64
	for _, u32 := range g.Neighbors(v) {
		u := int(u32)
		if u == parent {
			continue
		}
		s := obj.Score(u)
		if s < phi || s >= cursor {
			continue
		}
		if best == -1 || better(s, bestScore, u, best) {
			best, bestScore = u, s
		}
	}
	return best
}
