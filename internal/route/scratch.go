package route

// Scratch is the reusable per-worker state of the v2 routing surface: the
// buffers an episode needs that would otherwise be allocated fresh per call.
// One Scratch serves one goroutine at a time; engines keep one per worker
// (core.RunMilgram) or pool them per request (internal/serve) and thread the
// same value through every episode that worker runs, so steady-state routing
// performs zero heap allocations (see RouteInto and GreedyCSR).
//
// The zero value is ready to use: buffers grow on first use and are retained
// across episodes. A Scratch never shrinks; sizing is bounded by the largest
// graph it has routed on.
type Scratch struct {
	// scores/stamps is the epoch-stamped objective cache of the concrete
	// fast paths (GreedyCSR): scores[v] is valid iff stamps[v] == epoch, so
	// invalidating the whole cache between episodes is one increment instead
	// of an O(n) refill.
	scores []float64
	stamps []uint32
	epoch  uint32

	// seen/seenEpoch marks visited vertices (unique-count, adapter paths)
	// with the same epoch trick.
	seen      []uint32
	seenEpoch uint32
}

// beginScores readies the score cache for a graph on n vertices and a fresh
// episode: all cached entries from previous episodes become invalid.
func (sc *Scratch) beginScores(n int) {
	if len(sc.scores) < n {
		sc.scores = make([]float64, n)
		sc.stamps = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide, clear them
		clear(sc.stamps)
		sc.epoch = 1
	}
}

// beginSeen readies the visited-marks buffer for a graph on n vertices.
func (sc *Scratch) beginSeen(n int) {
	if len(sc.seen) < n {
		sc.seen = make([]uint32, n)
		sc.seenEpoch = 0
	}
	sc.seenEpoch++
	if sc.seenEpoch == 0 {
		clear(sc.seen)
		sc.seenEpoch = 1
	}
}

// uniqueCount returns the number of distinct vertices in path. With a
// Scratch it runs allocation-free over the epoch-stamped marks; without one
// it falls back to a throwaway map (the legacy Route entry points).
func uniqueCount(path []int, sc *Scratch, n int) int {
	if sc == nil {
		seen := make(map[int]struct{}, len(path))
		for _, v := range path {
			seen[v] = struct{}{}
		}
		return len(seen)
	}
	sc.beginSeen(n)
	unique := 0
	for _, v := range path {
		if sc.seen[v] != sc.seenEpoch {
			sc.seen[v] = sc.seenEpoch
			unique++
		}
	}
	return unique
}
