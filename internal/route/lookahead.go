package route

import (
	"math"
)

// lookaheadTargetScore is the finite stand-in for the target's objective
// inside lookahead aggregation: any vertex that sees the target outscores
// every vertex that does not, while the target itself keeps its +Inf score
// so the final hop still goes to it.
const lookaheadTargetScore = math.MaxFloat64 / 4

// LookaheadGreedy is greedy routing on the one-hop lookahead objective as a
// registered Protocol: Algorithm 1 run on NewLookahead(g, obj) instead of
// obj itself ("know thy neighbor's neighbor", Section 1.1 related work).
type LookaheadGreedy struct{}

// Name returns "greedy+lookahead".
func (LookaheadGreedy) Name() string { return "greedy+lookahead" }

// Route runs greedy routing under the lookahead-wrapped objective.
func (LookaheadGreedy) Route(g Graph, obj Objective, s int) Result {
	return Greedy(g, NewLookahead(g, obj), s)
}

// RouteInto routes into out, reusing out's Path backing array. The lookahead
// score cache is built per episode (it memoizes the wrapped objective, which
// changes with the target), so this path reuses the Result but is not
// zero-alloc.
func (LookaheadGreedy) RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	greedyInto(g, NewLookahead(g, obj), s, out)
}

func init() { Register(LookaheadGreedy{}) }

// NewLookahead wraps an objective with one-hop lookahead — the "know thy
// neighbor's neighbor" enhancement of Manku, Naor and Wieder discussed in
// the paper's related work (Section 1.1): a vertex is as good as the best
// vertex it can reach in one hop,
//
//	psi(v) = max( phi(v), max_{u in N(v)} phi(u) ),
//
// with the target counted as a huge finite value so that psi stays totally
// ordered and greedy routing on psi terminates (psi strictly increases along
// the path; a vertex adjacent to the target always forwards straight to it,
// whose score remains +Inf). This still only uses information about direct
// neighbors — two hops of it travel with the scores.
func NewLookahead(g Graph, inner Objective) Objective {
	cache := newScoreCache(g.N())
	phi := func(v int) float64 {
		if v == inner.Target {
			return lookaheadTargetScore
		}
		return inner.Score(v)
	}
	score := func(v int) float64 {
		if v == inner.Target {
			return math.Inf(1)
		}
		if s, ok := cache.get(v); ok {
			return s
		}
		best := phi(v)
		for _, u := range g.Neighbors(v) {
			if s := phi(int(u)); s > best {
				best = s
			}
		}
		cache.put(v, best)
		return best
	}
	return Objective{Target: inner.Target, Score: score}
}
