package route

import (
	"math"
	"testing"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// testGraph is a minimal route.Graph for handcrafted topologies.
type testGraph struct {
	adj     [][]int32
	weights []float64
}

func newTestGraph(n int, edges [][2]int) *testGraph {
	g := &testGraph{adj: make([][]int32, n), weights: make([]float64, n)}
	for i := range g.weights {
		g.weights[i] = 1
	}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], int32(e[1]))
		g.adj[e[1]] = append(g.adj[e[1]], int32(e[0]))
	}
	return g
}

func (g *testGraph) N() int                  { return len(g.adj) }
func (g *testGraph) Neighbors(v int) []int32 { return g.adj[v] }
func (g *testGraph) Weight(v int) float64    { return g.weights[v] }

// scoreObjective builds an Objective from a fixed score table with target t.
func scoreObjective(scores []float64, t int) Objective {
	return Objective{Target: t, Score: func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		return scores[v]
	}}
}

// checkPathValid verifies every consecutive pair on the path is an edge.
func checkPathValid(t *testing.T, g Graph, res Result) {
	t.Helper()
	for i := 1; i < len(res.Path); i++ {
		a, b := res.Path[i-1], res.Path[i]
		found := false
		for _, u := range g.Neighbors(a) {
			if int(u) == b {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path step %d: %d -> %d is not an edge (path %v)", i, a, b, res.Path)
		}
	}
	if res.Moves != len(res.Path)-1 {
		t.Fatalf("Moves = %d, path length %d", res.Moves, len(res.Path))
	}
}

func TestGreedySuccessOnChain(t *testing.T) {
	// 0 - 1 - 2 - 3 with increasing scores.
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	obj := scoreObjective([]float64{1, 2, 3, 0}, 3)
	res := Greedy(g, obj, 0)
	if !res.Success {
		t.Fatalf("greedy failed: %+v", res)
	}
	want := []int{0, 1, 2, 3}
	if len(res.Path) != 4 {
		t.Fatalf("path %v", res.Path)
	}
	for i := range want {
		if res.Path[i] != want[i] {
			t.Fatalf("path %v, want %v", res.Path, want)
		}
	}
	if res.Moves != 3 || res.Unique != 4 || res.Stuck != -1 {
		t.Fatalf("result %+v", res)
	}
	checkPathValid(t, g, res)
}

func TestGreedyDeadEnd(t *testing.T) {
	// 0 - 1 - 2, target 3 connected only to 2, but 1's best neighbor is 0
	// (a local optimum at 1).
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	obj := scoreObjective([]float64{5, 4, 3, 0}, 3)
	res := Greedy(g, obj, 1)
	if res.Success {
		t.Fatal("greedy should fail from local optimum")
	}
	if res.Stuck != 1 && res.Stuck != 0 {
		t.Fatalf("stuck at %d", res.Stuck)
	}
}

func TestGreedyStartAtTarget(t *testing.T) {
	g := newTestGraph(2, [][2]int{{0, 1}})
	obj := scoreObjective([]float64{1, 0}, 0)
	res := Greedy(g, obj, 0)
	if !res.Success || res.Moves != 0 || res.Unique != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestGreedyDirectNeighborOfTarget(t *testing.T) {
	// If {s, t} is an edge, the algorithm sends directly to t (the target
	// maximizes every objective).
	g := newTestGraph(3, [][2]int{{0, 1}, {0, 2}})
	obj := scoreObjective([]float64{1, 100, 0}, 2)
	res := Greedy(g, obj, 0)
	if !res.Success || res.Moves != 1 || res.Path[1] != 2 {
		t.Fatalf("%+v", res)
	}
}

func TestGreedyIsolatedSource(t *testing.T) {
	g := newTestGraph(2, nil)
	obj := scoreObjective([]float64{1, 0}, 1)
	res := Greedy(g, obj, 0)
	if res.Success || res.Stuck != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestGreedyMonotoneObjective(t *testing.T) {
	// On random graphs the greedy path must have strictly increasing
	// scores.
	rng := xrand.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.IntN(30)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(0.2) {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := newTestGraph(n, edges)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		tgt := rng.IntN(n)
		obj := scoreObjective(scores, tgt)
		res := Greedy(g, obj, rng.IntN(n))
		checkPathValid(t, g, res)
		for i := 1; i < len(res.Path); i++ {
			if obj.Score(res.Path[i]) <= obj.Score(res.Path[i-1]) {
				t.Fatalf("objective not increasing along greedy path")
			}
		}
	}
}

// randomConnectedCase builds a random graph and returns it with random
// scores and an (s, t) pair guaranteed to be in the same component.
func randomConnectedCase(rng *xrand.RNG) (*testGraph, Objective, int) {
	n := 10 + rng.IntN(40)
	var edges [][2]int
	// A random tree keeps everything connected, plus random extra edges.
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.IntN(v), v})
	}
	extra := rng.IntN(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	g := newTestGraph(n, edges)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	tgt := rng.IntN(n)
	return g, scoreObjective(scores, tgt), tgt
}

func TestPhiDFSAlwaysSucceedsConnected(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := PhiDFS{}.Route(g, obj, s)
		if !res.Success {
			t.Fatalf("trial %d: PhiDFS failed on connected graph: %+v", trial, res)
		}
		checkPathValid(t, g, res)
	}
}

func TestHistoryPatchAlwaysSucceedsConnected(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 200; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := HistoryPatch{}.Route(g, obj, s)
		if !res.Success {
			t.Fatalf("trial %d: HistoryPatch failed on connected graph: %+v", trial, res)
		}
		checkPathValid(t, g, res)
	}
}

func TestGravityPressureSucceedsConnected(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 100; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := GravityPressure{}.Route(g, obj, s)
		if !res.Success {
			t.Fatalf("trial %d: gravity-pressure failed: %+v", trial, res)
		}
		checkPathValid(t, g, res)
	}
}

func TestPatchersFailCleanlyWhenDisconnected(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; target in the other component.
	g := newTestGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	obj := scoreObjective([]float64{1, 2, 3, 4, 0}, 4)
	for name, route := range map[string]func() Result{
		"phidfs":  func() Result { return PhiDFS{}.Route(g, obj, 0) },
		"history": func() Result { return HistoryPatch{}.Route(g, obj, 0) },
	} {
		res := route()
		if res.Success {
			t.Errorf("%s succeeded across components", name)
		}
		if res.Truncated {
			t.Errorf("%s hit the move cap instead of detecting exhaustion", name)
		}
		if res.Stuck < 0 || res.Stuck > 2 {
			t.Errorf("%s stuck marker %d outside source component", name, res.Stuck)
		}
	}
}

func TestPhiDFSIsolatedSource(t *testing.T) {
	g := newTestGraph(2, nil)
	obj := scoreObjective([]float64{1, 0}, 1)
	res := PhiDFS{}.Route(g, obj, 0)
	if res.Success || res.Truncated {
		t.Fatalf("%+v", res)
	}
}

func TestPhiDFSStartAtTarget(t *testing.T) {
	g := newTestGraph(2, [][2]int{{0, 1}})
	obj := scoreObjective([]float64{1, 0}, 0)
	res := PhiDFS{}.Route(g, obj, 0)
	if !res.Success || res.Moves != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestPhiDFSGreedyChoicesP1(t *testing.T) {
	// Property (P1): whenever the message visits a vertex for the first
	// time and the vertex has a neighbor of larger objective, the next
	// vertex on the path is the best neighbor.
	rng := xrand.New(17)
	for trial := 0; trial < 100; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := PhiDFS{}.Route(g, obj, s)
		seen := map[int]bool{}
		for i, v := range res.Path {
			first := !seen[v]
			seen[v] = true
			if !first || i == len(res.Path)-1 {
				continue
			}
			u := bestNeighborIface(g, obj, v)
			if u >= 0 && better(obj.Score(u), obj.Score(v), u, v) {
				if res.Path[i+1] != u {
					t.Fatalf("trial %d: (P1) violated at step %d: fresh vertex %d has best neighbor %d but moved to %d",
						trial, i, v, u, res.Path[i+1])
				}
			}
		}
	}
}

func TestHistoryPatchGreedyChoicesP1(t *testing.T) {
	rng := xrand.New(19)
	for trial := 0; trial < 100; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := HistoryPatch{}.Route(g, obj, s)
		seen := map[int]bool{}
		for i, v := range res.Path {
			first := !seen[v]
			seen[v] = true
			if !first || i == len(res.Path)-1 {
				continue
			}
			u := bestNeighborIface(g, obj, v)
			if u >= 0 && better(obj.Score(u), obj.Score(v), u, v) {
				if res.Path[i+1] != u {
					t.Fatalf("trial %d: (P1) violated at fresh vertex %d", trial, v)
				}
			}
		}
	}
}

func TestPhiDFSExhaustiveSearchP3(t *testing.T) {
	// Property (P3)-flavored check: on success or exhaustion, the number of
	// moves stays polynomial in the number of unique vertices (we use a
	// generous cubic bound from the paper's own analysis of Algorithm 2).
	rng := xrand.New(23)
	for trial := 0; trial < 100; trial++ {
		g, obj, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := PhiDFS{}.Route(g, obj, s)
		bound := 10 * res.Unique * res.Unique * res.Unique
		if res.Moves > bound {
			t.Fatalf("trial %d: %d moves for %d unique vertices", trial, res.Moves, res.Unique)
		}
	}
}

func TestPhiDFSMoveCap(t *testing.T) {
	g, obj, _ := randomConnectedCase(xrand.New(29))
	res := PhiDFS{MaxMoves: 1}.Route(g, obj, 0)
	if !res.Success && !res.Truncated && res.Stuck < 0 {
		t.Fatalf("capped run neither succeeded nor reported: %+v", res)
	}
	if res.Moves > 2 {
		t.Fatalf("cap not enforced: %d moves", res.Moves)
	}
}

// --- Objectives on real GIRG graphs ---

func girgForRouting(t testing.TB, n float64, seed uint64) *graph.Graph {
	t.Helper()
	p := girg.DefaultParams(n)
	p.FixedN = true
	g, err := girg.Generate(p, seed, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStandardObjectiveFormula(t *testing.T) {
	g := girgForRouting(t, 500, 1)
	tgt := 0
	obj := NewStandard(g, tgt)
	if !math.IsInf(obj.Score(tgt), 1) {
		t.Fatal("target score not +Inf")
	}
	space := g.Space()
	for v := 1; v < 20; v++ {
		want := g.Weight(v) / (g.WMin() * g.Intensity() * space.DistPow(g.Pos(v), g.Pos(tgt)))
		if got := obj.Score(v); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("score(%d) = %v, want %v", v, got, want)
		}
		// Cached value must be identical.
		if got2 := obj.Score(v); got2 != obj.Score(v) {
			t.Fatal("cache not stable")
		}
	}
}

func TestGeometricObjectiveOrdersByDistance(t *testing.T) {
	g := girgForRouting(t, 300, 2)
	obj := NewGeometric(g, 0)
	space := g.Space()
	for v := 1; v < 50; v++ {
		for u := v + 1; u < 50; u++ {
			dv := space.Dist(g.Pos(v), g.Pos(0))
			du := space.Dist(g.Pos(u), g.Pos(0))
			if (dv < du) != (obj.Score(v) > obj.Score(u)) {
				t.Fatalf("geometric objective does not invert distance")
			}
		}
	}
}

func TestRelaxedObjectiveProperties(t *testing.T) {
	g := girgForRouting(t, 500, 3)
	std := NewStandard(g, 0)
	relaxed := NewRelaxed(std, g, 0.2, 42)
	if !math.IsInf(relaxed.Score(0), 1) {
		t.Fatal("relaxed target score not +Inf")
	}
	// Deterministic across instances with the same seed.
	relaxed2 := NewRelaxed(NewStandard(g, 0), g, 0.2, 42)
	for v := 1; v < 100; v++ {
		if relaxed.Score(v) != relaxed2.Score(v) {
			t.Fatal("relaxed objective not deterministic")
		}
	}
	// eps = 0 reduces to the standard objective.
	zero := NewRelaxed(NewStandard(g, 0), g, 0, 7)
	for v := 1; v < 100; v++ {
		if math.Abs(zero.Score(v)-std.Score(v))/std.Score(v) > 1e-12 {
			t.Fatal("eps=0 relaxation deviates from standard objective")
		}
	}
	// Bounded deviation: scoretilde / score within [M^-eps, M^+eps].
	for v := 1; v < 100; v++ {
		phi := std.Score(v)
		m := math.Min(g.Weight(v), 1/phi)
		if m < 1 {
			m = 1
		}
		ratio := relaxed.Score(v) / phi
		lo, hi := math.Pow(m, -0.2), math.Pow(m, 0.2)
		if ratio < lo-1e-12 || ratio > hi+1e-12 {
			t.Fatalf("relaxed ratio %v outside [%v, %v]", ratio, lo, hi)
		}
	}
}

func TestBestNeighborOnGraph(t *testing.T) {
	g := girgForRouting(t, 300, 4)
	obj := NewStandard(g, 0)
	for v := 1; v < 50; v++ {
		got := BestNeighbor(g, obj, v)
		if g.Degree(v) == 0 {
			if got != -1 {
				t.Fatalf("isolated vertex has best neighbor %d", got)
			}
			continue
		}
		for _, u := range g.Neighbors(v) {
			if obj.Score(int(u)) > obj.Score(got) {
				t.Fatalf("BestNeighbor(%d) missed a better neighbor", v)
			}
		}
	}
}

func TestGreedyOnGIRGSucceedsOften(t *testing.T) {
	// Theorem 3.1 smoke test: success probability over random giant-pair
	// routings is bounded away from 0.
	g := girgForRouting(t, 2000, 5)
	giant := graph.GiantComponent(g)
	rng := xrand.New(6)
	const pairs = 200
	success := 0
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		res := Greedy(g, NewStandard(g, tgt), s)
		if res.Success {
			success++
		}
	}
	if rate := float64(success) / pairs; rate < 0.3 {
		t.Fatalf("greedy success rate %v too low", rate)
	}
}

func TestPatchingOnGIRGAlwaysSucceedsInGiant(t *testing.T) {
	g := girgForRouting(t, 2000, 8)
	giant := graph.GiantComponent(g)
	rng := xrand.New(9)
	const pairs = 60
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		obj := NewStandard(g, tgt)
		if res := (PhiDFS{}).Route(g, obj, s); !res.Success {
			t.Fatalf("PhiDFS failed within giant: %+v", res)
		}
		if res := (HistoryPatch{}).Route(g, obj, s); !res.Success {
			t.Fatalf("HistoryPatch failed within giant: %+v", res)
		}
	}
}

func TestPatchedNotSlowerThanGreedyWhenGreedyWins(t *testing.T) {
	// When pure greedy succeeds, a (P1)-respecting patcher follows the
	// identical path (greedy choices are forced).
	g := girgForRouting(t, 1500, 10)
	giant := graph.GiantComponent(g)
	rng := xrand.New(11)
	for i := 0; i < 50; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		obj := NewStandard(g, tgt)
		gres := Greedy(g, obj, s)
		if !gres.Success {
			continue
		}
		pres := PhiDFS{}.Route(g, obj, s)
		if pres.Moves != gres.Moves {
			t.Fatalf("patched path (%d moves) differs from greedy (%d) despite greedy success",
				pres.Moves, gres.Moves)
		}
		hres := HistoryPatch{}.Route(g, obj, s)
		if hres.Moves != gres.Moves {
			t.Fatalf("history path (%d moves) differs from greedy (%d)", hres.Moves, gres.Moves)
		}
	}
}

func TestTrajectoryRecords(t *testing.T) {
	g := newTestGraph(3, [][2]int{{0, 1}, {1, 2}})
	g.weights = []float64{1, 5, 2}
	obj := scoreObjective([]float64{1, 2, 0}, 2)
	res := Greedy(g, obj, 0)
	hops := Trajectory(g, obj, res)
	if len(hops) != 3 {
		t.Fatalf("hops %v", hops)
	}
	if hops[1].V != 1 || hops[1].W != 5 || hops[1].Score != 2 {
		t.Fatalf("hop %v", hops[1])
	}
	if !math.IsInf(hops[2].Score, 1) {
		t.Fatal("target hop score not +Inf")
	}
}

func BenchmarkGreedyOnGIRG(b *testing.B) {
	g := girgForRouting(b, 10000, 12)
	giant := graph.GiantComponent(g)
	rng := xrand.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		_ = Greedy(g, NewStandard(g, tgt), s)
	}
}

func BenchmarkPhiDFSOnGIRG(b *testing.B) {
	g := girgForRouting(b, 10000, 14)
	giant := graph.GiantComponent(g)
	rng := xrand.New(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		_ = PhiDFS{}.Route(g, NewStandard(g, tgt), s)
	}
}
