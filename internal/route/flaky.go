package route

import (
	"sync/atomic"
)

// FlakyGraph wraps a Graph so that every adjacency query independently
// drops each incident edge with a fixed probability — the transient link
// failures of the robustness discussion after Theorem 3.5 ("it is no
// problem if some of the edges fail during execution of the routing, since
// the current vertex can send the message to any other good neighbor
// instead"). Failures are transient: the same edge may be present on the
// next query. The wrapper is deterministic given its seed and the sequence
// of queries, and — unlike its original implementation, which reused one
// neighbor buffer and one RNG across callers — safe for concurrent
// episodes: drop decisions are pure hashes of (seed, query number, edge)
// and every call returns a freshly allocated slice.
//
// Deprecated: use the "edge-drop" model of package faults, whose
// per-episode views additionally make concurrent batches bit-identical to
// sequential ones (a shared FlakyGraph's query numbering depends on episode
// interleaving). FlakyGraph remains for the E12 experiment and pre-faults
// callers.
type FlakyGraph struct {
	inner    Graph
	failProb float64
	seed     uint64
	queries  atomic.Uint64
}

// NewFlakyGraph wraps g with per-query edge failure probability p.
func NewFlakyGraph(g Graph, p float64, seed uint64) *FlakyGraph {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &FlakyGraph{inner: g, failProb: p, seed: seed}
}

// N returns the number of vertices.
func (f *FlakyGraph) N() int { return f.inner.N() }

// Weight returns the vertex weight of the wrapped graph.
func (f *FlakyGraph) Weight(v int) float64 { return f.inner.Weight(v) }

// Neighbors returns the currently reachable neighbors of v: each underlying
// edge is dropped independently with the failure probability. Every call
// returns a fresh slice and advances the shared query counter atomically,
// so concurrent episodes are safe (though their interleaving determines
// which query number each episode observes).
func (f *FlakyGraph) Neighbors(v int) []int32 {
	all := f.inner.Neighbors(v)
	if f.failProb == 0 {
		return all
	}
	q := f.queries.Add(1) - 1
	out := make([]int32, 0, len(all))
	for _, u := range all {
		if hashFloat(f.seed^(q*0x9e3779b97f4a7c15), uint64(v)<<32^uint64(uint32(u))) >= f.failProb {
			out = append(out, u)
		}
	}
	return out
}

var _ Graph = (*FlakyGraph)(nil)
