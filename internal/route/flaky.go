package route

import (
	"repro/internal/xrand"
)

// FlakyGraph wraps a Graph so that every adjacency query independently
// drops each incident edge with a fixed probability — the transient link
// failures of the robustness discussion after Theorem 3.5 ("it is no
// problem if some of the edges fail during execution of the routing, since
// the current vertex can send the message to any other good neighbor
// instead"). Failures are transient: the same edge may be present on the
// next query. The wrapper is deterministic given its seed and the sequence
// of queries.
//
// It is intended for the greedy protocol (experiment E12); the patching
// protocols assume a stable topology for their parent pointers and visited
// walks.
type FlakyGraph struct {
	inner    Graph
	failProb float64
	rng      *xrand.RNG
	buf      []int32
}

// NewFlakyGraph wraps g with per-query edge failure probability p.
func NewFlakyGraph(g Graph, p float64, seed uint64) *FlakyGraph {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &FlakyGraph{inner: g, failProb: p, rng: xrand.New(seed)}
}

// N returns the number of vertices.
func (f *FlakyGraph) N() int { return f.inner.N() }

// Weight returns the vertex weight of the wrapped graph.
func (f *FlakyGraph) Weight(v int) float64 { return f.inner.Weight(v) }

// Neighbors returns the currently reachable neighbors of v: each underlying
// edge is dropped independently with the failure probability. The returned
// slice is reused across calls.
func (f *FlakyGraph) Neighbors(v int) []int32 {
	all := f.inner.Neighbors(v)
	if f.failProb == 0 {
		return all
	}
	f.buf = f.buf[:0]
	for _, u := range all {
		if !f.rng.Bernoulli(f.failProb) {
			f.buf = append(f.buf, u)
		}
	}
	return f.buf
}

var _ Graph = (*FlakyGraph)(nil)
