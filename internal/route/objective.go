// Package route implements the paper's routing protocols on geometric
// graphs: the greedy routing of Algorithm 1 (Section 2.2), the patching
// protocols of Section 5 — including a faithful translation of the paper's
// distributed Algorithm 2 — and the relaxed (approximate) objective
// functions of Theorem 3.5, plus the degree-agnostic geometric objective the
// experimental literature compares against (Section 4).
//
// Everything is expressed against an Objective: a per-vertex score that the
// target vertex maximizes. The standard GIRG objective is
//
//	phi(v) = w_v / (w_min * n * ||x_v - x_t||^d),
//
// the probability scale of v connecting to t — "forward to the acquaintance
// most likely to know the target".
package route

import (
	"math"

	"repro/internal/torus"
)

// Objective assigns each vertex a score toward a fixed target; the target
// itself scores +Inf. Routing protocols move the message to
// score-maximizing neighbors.
type Objective struct {
	// Target is the destination vertex.
	Target int
	// Score returns the objective of vertex v; it must return +Inf exactly
	// for v == Target. Implementations may cache internally; they are not
	// required to be safe for concurrent use.
	Score func(v int) float64
}

// GeoGraph is the geometric read surface the objective constructors need:
// adjacency plus positions, weights and the model normalization constants.
// Both the immutable *graph.Graph and the live *graph.Overlay satisfy it,
// so one objective implementation scores frozen snapshots and mutating
// graphs identically.
type GeoGraph interface {
	Graph
	Pos(v int) []float64
	Space() torus.Space
	Intensity() float64
	WMin() float64
}

// NewStandard returns the paper's objective phi for target t on g, with
// per-vertex caching (patching protocols re-score vertices many times).
func NewStandard(g GeoGraph, t int) Objective {
	space := g.Space()
	xt := g.Pos(t)
	norm := 1 / (g.WMin() * g.Intensity())
	cache := newScoreCache(g.N())
	score := func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		if s, ok := cache.get(v); ok {
			return s
		}
		s := g.Weight(v) * norm / space.DistPow(g.Pos(v), xt)
		cache.put(v, s)
		return s
	}
	return Objective{Target: t, Score: score}
}

// NewGeometric returns the degree-agnostic objective 1/||x_v - x_t||: pure
// geometric routing as studied by Boguñá–Krioukov (Section 4 discussion).
func NewGeometric(g GeoGraph, t int) Objective {
	space := g.Space()
	xt := g.Pos(t)
	score := func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		return 1 / space.Dist(g.Pos(v), xt)
	}
	return Objective{Target: t, Score: score}
}

// NewRelaxed wraps an objective with the multiplicative per-vertex noise of
// Theorem 3.5: scoretilde(v) = score(v) * M_v^{delta_v} with
// M_v = min{w_v, score(v)^-1} and delta_v drawn once per vertex uniformly
// from [-eps, +eps] (deterministically from seed). With eps -> 0 this is
// the o(1)-exponent relaxation the theorem allows; larger eps stress-tests
// beyond it. The target remains the unique maximum.
func NewRelaxed(inner Objective, g GeoGraph, eps float64, seed uint64) Objective {
	cache := newScoreCache(g.N())
	score := func(v int) float64 {
		if v == inner.Target {
			return math.Inf(1)
		}
		if s, ok := cache.get(v); ok {
			return s
		}
		phi := inner.Score(v)
		m := g.Weight(v)
		if inv := 1 / phi; inv < m {
			m = inv
		}
		if m < 1 {
			m = 1 // noise exponent is only meaningful on the >= 1 scale
		}
		delta := (2*hashFloat(seed, uint64(v)) - 1) * eps
		s := phi * math.Pow(m, delta)
		cache.put(v, s)
		return s
	}
	return Objective{Target: inner.Target, Score: score}
}

// hashFloat maps (seed, v) to a deterministic uniform value in [0, 1).
func hashFloat(seed, v uint64) float64 {
	x := seed ^ (v+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * 0x1p-53
}

// scoreCache memoizes per-vertex scores; NaN marks "unset".
type scoreCache struct {
	vals []float64
}

func newScoreCache(n int) *scoreCache {
	c := &scoreCache{vals: make([]float64, n)}
	for i := range c.vals {
		c.vals[i] = math.NaN()
	}
	return c
}

func (c *scoreCache) get(v int) (float64, bool) {
	s := c.vals[v]
	return s, !math.IsNaN(s)
}

func (c *scoreCache) put(v int, s float64) { c.vals[v] = s }

// better reports whether vertex a strictly beats vertex b under the given
// scores, breaking exact ties by vertex id so every protocol has a total
// order (the paper assumes distinct objectives; ties have measure zero but
// ids make the code deterministic regardless).
func better(scoreA, scoreB float64, a, b int) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return a < b
}

// BestNeighbor returns v's neighbor with the maximal objective, or -1 if v
// is isolated.
func BestNeighbor(g Graph, obj Objective, v int) int {
	best := -1
	bestScore := math.Inf(-1)
	for _, u32 := range g.Neighbors(v) {
		u := int(u32)
		s := obj.Score(u)
		if best == -1 || better(s, bestScore, u, best) {
			best, bestScore = u, s
		}
	}
	return best
}
