package route_test

import (
	"fmt"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
)

// ExampleGreedy routes one message greedily on a GIRG (Algorithm 1).
func ExampleGreedy() {
	p := girg.DefaultParams(2000)
	p.FixedN = true
	g, err := girg.Generate(p, 42, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	giant := graph.GiantComponent(g)
	s, t := giant[0], giant[len(giant)-1]
	res := route.Greedy(g, route.NewStandard(g, t), s)
	fmt.Println("delivered:", res.Success)
	fmt.Println("objective increased monotonically:", res.Stuck == -1)
	// Output:
	// delivered: true
	// objective increased monotonically: true
}

// ExamplePhiDFS shows the paper's Algorithm 2: guaranteed delivery within a
// connected component, using constant memory per node.
func ExamplePhiDFS() {
	p := girg.DefaultParams(2000)
	p.Lambda = 0.02 // sparse: plain greedy would sometimes fail here
	p.FixedN = true
	g, err := girg.Generate(p, 7, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	giant := graph.GiantComponent(g)
	s, t := giant[0], giant[len(giant)-1]
	res := route.PhiDFS{}.Route(g, route.NewStandard(g, t), s)
	fmt.Println("delivered:", res.Success)
	// Output:
	// delivered: true
}
