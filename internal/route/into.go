package route

import (
	"math"
	"time"

	"repro/internal/graph"
)

// inf is math.Inf(1) hoisted out of the hot loop.
var inf = math.Inf(1)

// This file is the v2 protocol surface: routing into caller-owned Results
// over reusable per-worker Scratch state, so the steady-state hot path
// performs zero heap allocations per episode.
//
// Three tiers, fastest first:
//
//   - GreedyCSR: concrete-type greedy routing on *graph.Graph under the
//     standard GIRG objective phi, scores computed inline from the CSR
//     arrays — no interface dispatch, no Objective closure, no per-episode
//     allocation at all (enforced by a testing.AllocsPerRun gate).
//   - IntoRouter / BatchRouter: optional Protocol extensions. Protocols
//     implementing them route into a caller-owned Result with scratch
//     reuse; all built-ins do.
//   - The adapter: any other Protocol keeps working — RouteInto falls back
//     to the allocating Route call and copies the result into out.
type (
	// IntoRouter is the zero-alloc extension of Protocol: RouteInto routes
	// one episode from s toward obj.Target into out, reusing out's Path
	// backing array and sc's buffers. Implementations must not retain sc or
	// out, and out.Path is only valid until out's next reuse — callers that
	// keep paths across episodes copy them (Result.CopyInto). sc may be nil,
	// at the cost of per-episode allocations.
	IntoRouter interface {
		Protocol
		RouteInto(g Graph, obj Objective, s int, sc *Scratch, out *Result)
	}

	// BatchRouter is the batch extension of Protocol: RouteBatch routes
	// episode i from srcs[i] toward objs[i].Target into out[i], amortizing
	// per-episode setup across the batch. len(objs), len(srcs) and len(out)
	// must agree.
	BatchRouter interface {
		Protocol
		RouteBatch(g Graph, objs []Objective, srcs []int, sc *Scratch, out []Result)
	}
)

// RouteInto routes one episode under p into out. Protocols implementing
// IntoRouter get the zero-alloc path; every other Protocol falls back
// through an adapter that calls the legacy Route and copies the episode into
// out, so pre-v2 protocols keep working unmodified.
func RouteInto(p Protocol, g Graph, obj Objective, s int, sc *Scratch, out *Result) {
	if ir, ok := p.(IntoRouter); ok {
		ir.RouteInto(g, obj, s, sc, out)
		return
	}
	res := p.Route(g, obj, s)
	res.CopyInto(out)
}

// RouteBatch routes len(srcs) episodes under p, episode i from srcs[i]
// toward objs[i].Target into out[i]. Protocols implementing BatchRouter run
// their own batch loop; others are driven episode-by-episode through
// RouteInto.
func RouteBatch(p Protocol, g Graph, objs []Objective, srcs []int, sc *Scratch, out []Result) {
	if br, ok := p.(BatchRouter); ok {
		br.RouteBatch(g, objs, srcs, sc, out)
		return
	}
	for i := range srcs {
		RouteInto(p, g, objs[i], srcs[i], sc, &out[i])
	}
}

// Budget bounds one GreedyCSR episode the way the engine's budgetGraph
// bounds interface-path episodes: MaxScans caps adjacency scans (greedy
// performs exactly one per path vertex, so the cap lands on the same scan at
// any worker count) and Deadline is the wall-clock backstop. Exceeding
// either resets the episode to a FailDeadline result whose path is just the
// source, bit-identical to the engine's interface-path classification.
type Budget struct {
	// MaxScans is the adjacency-scan budget (0 = unlimited).
	MaxScans int
	// Deadline is the wall-clock cutoff (zero = none).
	Deadline time.Time
}

// GreedyCSR is the concrete-type fast path of the v2 surface: Algorithm 1
// from s toward t on a *graph.Graph under the standard objective
//
//	phi(v) = w_v / (wmin * intensity * ||x_v - x_t||^dim),
//
// with neighbor scans running directly over the CSR arrays (no interface
// dispatch, no bounds checks beyond the slice window) and per-vertex scores
// memoized in sc's epoch-stamped cache (no Objective closure, no per-episode
// cache allocation). The episode it produces is bit-identical to
// Greedy(g, NewStandard(g, t), s): identical scores in identical comparison
// order, including the id tie-break.
//
// The graph must carry geometry (positions); weights may be nil (treated as
// 1, as Graph.Weight does). Steady-state calls perform zero heap
// allocations — TestGreedyCSRZeroAlloc gates this with testing.AllocsPerRun.
func GreedyCSR(g *graph.Graph, t, s int, b Budget, sc *Scratch, out *Result) {
	out.reset(s)
	offsets, adj := g.CSR()
	pos := g.Positions()
	space := pos.Space()
	xt := pos.At(t)
	weights := g.Weights()
	norm := 1 / (g.WMin() * g.Intensity())
	sc.beginScores(g.N())
	scores, stamps, epoch := sc.scores, sc.stamps, sc.epoch

	// score is phi(v) with epoch-stamped memoization; the target scores
	// +Inf, exactly as NewStandard spells it. The closure captures only
	// locals and never escapes, so it compiles allocation-free.
	score := func(v int) float64 {
		if stamps[v] == epoch {
			return scores[v]
		}
		var ph float64
		if v == t {
			ph = inf
		} else {
			w := 1.0
			if weights != nil {
				w = weights[v]
			}
			ph = w * norm / space.DistPow(pos.At(v), xt)
		}
		scores[v] = ph
		stamps[v] = epoch
		return ph
	}

	scans := 0
	v := s
	for v != t {
		// Budget check, in budgetGraph's order: count the scan, cut past
		// MaxScans, then the wall clock.
		scans++
		if b.MaxScans > 0 && scans > b.MaxScans {
			out.cutDeadline(s)
			return
		}
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			out.cutDeadline(s)
			return
		}
		best := -1
		var bestScore float64
		for _, u32 := range adj[offsets[v]:offsets[v+1]] {
			u := int(u32)
			su := score(u)
			if best == -1 || better(su, bestScore, u, best) {
				best, bestScore = u, su
			}
		}
		if best < 0 || !better(bestScore, score(v), best, v) {
			out.Stuck = v
			out.Unique = len(out.Path) // greedy never revisits
			out.classify()
			return
		}
		out.step(best)
		v = best
	}
	out.Success = true
	out.Unique = len(out.Path)
	out.classify()
}

// cutDeadline resets r to the engine's budget-cut shape: a failed
// FailDeadline episode whose path is just the source.
func (r *Result) cutDeadline(s int) {
	r.reset(s)
	r.Unique = 1
	r.Failure = FailDeadline
}
