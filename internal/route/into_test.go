package route

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// sameEpisode asserts two Results describe the identical episode.
func sameEpisode(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.Success != got.Success || want.Moves != got.Moves ||
		want.Unique != got.Unique || want.Stuck != got.Stuck ||
		want.Truncated != got.Truncated || want.Failure != got.Failure ||
		!reflect.DeepEqual(want.Path, got.Path) {
		t.Fatalf("%s: episodes differ:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestRouteIntoMatchesRouteAllProtocols drives every registered built-in
// through both API generations on random GIRG pairs and demands bit-identical
// episodes, with the scratch-backed Results reused across episodes to expose
// stale-state bugs.
func TestRouteIntoMatchesRouteAllProtocols(t *testing.T) {
	g := girgForRouting(t, 3000, 11)
	rng := xrand.New(99)
	for _, name := range Registered() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var sc Scratch
		var out Result
		for i := 0; i < 25; i++ {
			s := rng.IntN(g.N())
			tgt := rng.IntN(g.N())
			obj := NewStandard(g, tgt)
			want := p.Route(g, obj, s)
			// Fresh objective: memoizing objectives (lookahead) must not
			// leak one episode's cache into the next comparison.
			RouteInto(p, g, NewStandard(g, tgt), s, &sc, &out)
			sameEpisode(t, name, want, out)
		}
	}
}

// TestRouteIntoAdapterForLegacyProtocols checks that a Protocol implementing
// only the v1 surface still works through RouteInto/RouteBatch, with the
// result copied into the caller's Result.
func TestRouteIntoAdapterForLegacyProtocols(t *testing.T) {
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	obj := scoreObjective([]float64{0.1, 0.2, 0.3, 0}, 3)
	legacy := legacyOnly{}
	var out Result
	out.Path = append(out.Path, 7, 7, 7, 7, 7, 7) // dirty reusable buffer
	RouteInto(legacy, g, obj, 0, nil, &out)
	want := legacy.Route(g, obj, 0)
	sameEpisode(t, "legacy adapter", want, out)

	objs := []Objective{obj, obj}
	srcs := []int{0, 1}
	outs := make([]Result, 2)
	RouteBatch(legacy, g, objs, srcs, nil, outs)
	sameEpisode(t, "legacy batch[0]", legacy.Route(g, obj, 0), outs[0])
	sameEpisode(t, "legacy batch[1]", legacy.Route(g, obj, 1), outs[1])
}

// legacyOnly is a v1-only Protocol (no RouteInto/RouteBatch): the adapter
// path must carry it unmodified.
type legacyOnly struct{}

func (legacyOnly) Name() string { return "test-legacy-only" }
func (legacyOnly) Route(g Graph, obj Objective, s int) Result {
	return Greedy(g, obj, s)
}

// TestGreedyCSRMatchesInterfaceGreedy is the core equivalence of the fast
// path: on random GIRGs, GreedyCSR must produce episodes bit-identical to
// Greedy under NewStandard — same paths, same dead-ends, same tie-breaks.
func TestGreedyCSRMatchesInterfaceGreedy(t *testing.T) {
	for _, seed := range []uint64{3, 17, 41} {
		g := girgForRouting(t, 2000, seed)
		rng := xrand.New(seed * 7)
		var sc Scratch
		var out Result
		for i := 0; i < 60; i++ {
			s := rng.IntN(g.N())
			tgt := rng.IntN(g.N())
			want := Greedy(g, NewStandard(g, tgt), s)
			GreedyCSR(g, tgt, s, Budget{}, &sc, &out)
			sameEpisode(t, "csr", want, out)
		}
	}
}

// TestGreedyCSRBudgetMatchesEngineCut pins the budget semantics: exceeding
// MaxScans (or the deadline) must yield the engine's budget-cut shape — a
// source-only FailDeadline episode — and the scan count at which the cut
// fires must match the per-path-vertex accounting of the engine's
// budget-wrapped graph (one scan per Neighbors call, cut when count exceeds
// the cap).
func TestGreedyCSRBudgetMatchesEngineCut(t *testing.T) {
	g := girgForRouting(t, 2000, 23)
	rng := xrand.New(5)
	var sc Scratch
	var out Result
	cut := Result{Path: []int{0}, Unique: 1, Stuck: -1, Failure: FailDeadline}
	for i := 0; i < 200; i++ {
		s := rng.IntN(g.N())
		tgt := rng.IntN(g.N())
		full := Greedy(g, NewStandard(g, tgt), s)
		scans := len(full.Path) // greedy scans each path vertex except the target...
		if full.Success {
			scans--
		}
		// An exactly-sufficient budget completes the episode.
		GreedyCSR(g, tgt, s, Budget{MaxScans: scans}, &sc, &out)
		sameEpisode(t, "exact budget", full, out)
		if scans > 1 {
			// One scan short cuts it.
			GreedyCSR(g, tgt, s, Budget{MaxScans: scans - 1}, &sc, &out)
			cut.Path[0] = s
			sameEpisode(t, "short budget", cut, out)
		}
	}
	// An already-expired deadline cuts before the first move.
	s := 1
	GreedyCSR(g, 0, s, Budget{Deadline: time.Now().Add(-time.Second)}, &sc, &out)
	cut.Path[0] = s
	sameEpisode(t, "expired deadline", cut, out)
}

// TestGreedyCSRZeroAlloc is the enforced allocation gate of the v2 hot path:
// after warm-up, a GreedyCSR episode performs zero heap allocations.
func TestGreedyCSRZeroAlloc(t *testing.T) {
	g := girgForRouting(t, 2000, 9)
	rng := xrand.New(77)
	var sc Scratch
	var out Result
	// Warm up: grow the scratch cache and the path buffer to steady state.
	for i := 0; i < 50; i++ {
		GreedyCSR(g, rng.IntN(g.N()), rng.IntN(g.N()), Budget{}, &sc, &out)
	}
	srcs := make([]int, 64)
	tgts := make([]int, 64)
	for i := range srcs {
		srcs[i], tgts[i] = rng.IntN(g.N()), rng.IntN(g.N())
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		GreedyCSR(g, tgts[i%64], srcs[i%64], Budget{}, &sc, &out)
		i++
	})
	if allocs != 0 {
		t.Fatalf("GreedyCSR allocates %.1f times per episode, want 0", allocs)
	}
}

// TestGreedyRouterRouteIntoZeroAllocOnCustomObjective verifies the generic
// IntoRouter path at least reuses the Result: with a closure objective that
// does not itself allocate, steady-state episodes are allocation-free.
func TestGreedyRouterRouteIntoZeroAllocOnCustomObjective(t *testing.T) {
	g := newTestGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0}
	obj := scoreObjective(scores, 4)
	var out Result
	var r GreedyRouter
	r.RouteInto(g, obj, 0, nil, &out) // warm up the path buffer
	allocs := testing.AllocsPerRun(32, func() {
		r.RouteInto(g, obj, 0, nil, &out)
	})
	if allocs != 0 {
		t.Fatalf("GreedyRouter.RouteInto allocates %.1f times per episode, want 0", allocs)
	}
}

// TestScratchEpochWraparound forces the uint32 episode epoch to wrap and
// checks the caches stay sound (stale stamps from epoch 2^32-1 must not leak
// into the fresh epoch).
func TestScratchEpochWraparound(t *testing.T) {
	var sc Scratch
	sc.beginScores(4)
	sc.scores[2] = 123
	sc.stamps[2] = sc.epoch // valid entry in the current epoch
	sc.epoch = math.MaxUint32
	sc.beginScores(4)
	if sc.epoch == 0 {
		t.Fatal("epoch 0 would validate zeroed stamps")
	}
	for v, st := range sc.stamps {
		if st == sc.epoch {
			t.Fatalf("stale stamp for vertex %d survived wraparound", v)
		}
	}
	sc.seenEpoch = math.MaxUint32
	sc.beginSeen(4)
	if sc.seenEpoch == 0 {
		t.Fatal("seen epoch 0 would validate zeroed marks")
	}
}

// TestResultCopyInto checks the deep copy reuses the destination's backing
// array and detaches from the source.
func TestResultCopyInto(t *testing.T) {
	src := Result{Success: true, Path: []int{3, 1, 2}, Moves: 2, Unique: 3, Stuck: -1}
	var dst Result
	dst.Path = make([]int, 0, 8)
	base := &dst.Path[:1][0]
	src.CopyInto(&dst)
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("copy differs: %+v vs %+v", src, dst)
	}
	if &dst.Path[0] != base {
		t.Fatal("CopyInto reallocated the destination path buffer")
	}
	dst.Path[0] = 99
	if src.Path[0] == 99 {
		t.Fatal("CopyInto aliases the source path")
	}
}

// TestMovesMatchesTrajectory pins the satellite refactor: the deprecated
// Trajectory is a thin conversion over Moves, and both replay the same
// (V, W, Score) stream.
func TestMovesMatchesTrajectory(t *testing.T) {
	g := girgForRouting(t, 500, 31)
	obj := NewStandard(g, 7)
	res := Greedy(g, obj, 3)
	evs := Moves(g, obj, res, 4)
	hops := Trajectory(g, obj, res)
	if len(evs) != len(res.Path) || len(hops) != len(res.Path) {
		t.Fatalf("lengths: %d events, %d hops, %d path", len(evs), len(hops), len(res.Path))
	}
	for i, ev := range evs {
		if ev.Episode != 4 || ev.Step != i {
			t.Fatalf("event %d has coordinates (%d, %d)", i, ev.Episode, ev.Step)
		}
		if ev.V != hops[i].V || ev.W != hops[i].W || ev.Score != hops[i].Score {
			t.Fatalf("event %d: %+v vs hop %+v", i, ev, hops[i])
		}
	}
}

// TestGreedyCSRUnweightedGraph covers the weights == nil branch of the
// inline phi (Graph.Weight treats missing weights as 1).
func TestGreedyCSRUnweightedGraph(t *testing.T) {
	space, err := torus.NewSpace(1)
	if err != nil {
		t.Fatal(err)
	}
	pos := torus.NewPositions(space, 16)
	for i := 0; i < 16; i++ {
		pos.Set(i, []float64{float64(i) / 16})
	}
	b, err := graph.NewBuilder(16, pos, nil, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Finish()
	var sc Scratch
	var out Result
	want := Greedy(g, NewStandard(g, 15), 0)
	GreedyCSR(g, 15, 0, Budget{}, &sc, &out)
	sameEpisode(t, "unweighted", want, out)
}
