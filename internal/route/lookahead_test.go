package route

import (
	"math"
	"testing"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestLookaheadScoreDefinition(t *testing.T) {
	// Path 0 - 1 - 2 - 3, target 3; phi table below.
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	inner := scoreObjective([]float64{1, 2, 5, 0}, 3)
	look := NewLookahead(g, inner)
	// psi(0) = max(phi(0), phi(1)) = 2.
	if got := look.Score(0); got != 2 {
		t.Fatalf("psi(0) = %v", got)
	}
	// psi(1) = max(phi(1), phi(0), phi(2)) = 5.
	if got := look.Score(1); got != 5 {
		t.Fatalf("psi(1) = %v", got)
	}
	// psi(2) sees the target: huge but finite.
	if got := look.Score(2); got != lookaheadTargetScore {
		t.Fatalf("psi(2) = %v", got)
	}
	// The target itself stays +Inf.
	if !math.IsInf(look.Score(3), 1) {
		t.Fatal("target psi not +Inf")
	}
}

func TestLookaheadGreedyTerminatesAndDelivers(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 200; trial++ {
		g, inner, _ := randomConnectedCase(rng)
		s := rng.IntN(g.N())
		res := Greedy(g, NewLookahead(g, inner), s)
		checkPathValid(t, g, res)
		// psi strictly increases along the path, so no vertex repeats.
		seen := map[int]bool{}
		for _, v := range res.Path {
			if seen[v] {
				t.Fatalf("trial %d: lookahead greedy revisited %d", trial, v)
			}
			seen[v] = true
		}
	}
}

func TestLookaheadSeesThroughOneValley(t *testing.T) {
	// 0 - 1 - 2 with phi(1) < phi(0) < phi(2): plain greedy dies at 0,
	// lookahead routes through the valley vertex 1.
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	inner := scoreObjective([]float64{3, 1, 6, 0}, 3)
	if Greedy(g, inner, 0).Success {
		t.Fatal("plain greedy should be stuck at 0")
	}
	res := Greedy(g, NewLookahead(g, inner), 0)
	if !res.Success {
		t.Fatalf("lookahead greedy failed: %+v", res)
	}
}

func TestLookaheadBeatsGreedyOnGIRG(t *testing.T) {
	g := girgSparse(t, 4000, 43)
	giant := graph.GiantComponent(g)
	rng := xrand.New(44)
	const pairs = 200
	plain, look := 0, 0
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		inner := NewStandard(g, tgt)
		if Greedy(g, inner, s).Success {
			plain++
		}
		if Greedy(g, NewLookahead(g, inner), s).Success {
			look++
		}
	}
	if look < plain {
		t.Fatalf("lookahead (%d) worse than plain greedy (%d)", look, plain)
	}
	if plain == pairs {
		t.Skip("graph too easy to differentiate")
	}
	if look == plain {
		t.Logf("lookahead == plain greedy (%d of %d); acceptable but unusual", look, pairs)
	}
}

func TestLookaheadFinalHopGoesToTarget(t *testing.T) {
	g := girgSparse(t, 1500, 45)
	giant := graph.GiantComponent(g)
	rng := xrand.New(46)
	for i := 0; i < 80; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		res := Greedy(g, NewLookahead(g, NewStandard(g, tgt)), s)
		if res.Success && res.Path[len(res.Path)-1] != tgt {
			t.Fatalf("successful path does not end at target: %v", res.Path)
		}
	}
}

func girgSparse(t testing.TB, n float64, seed uint64) *graph.Graph {
	t.Helper()
	p := girg.DefaultParams(n)
	p.Lambda = 0.02 // sparse: plain greedy fails often enough to compare
	p.FixedN = true
	g, err := girg.Generate(p, seed, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
