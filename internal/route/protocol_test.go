package route

import (
	"strings"
	"testing"
)

// stubProtocol is a registrable test protocol.
type stubProtocol struct{ name string }

func (p stubProtocol) Name() string                               { return p.name }
func (p stubProtocol) Route(g Graph, obj Objective, s int) Result { return Result{Path: []int{s}} }

func TestRegisterBuiltins(t *testing.T) {
	for _, name := range []string{"greedy", "greedy+lookahead", "phi-dfs", "history", "gravity-pressure"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("no-such-protocol")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-protocol"`) {
		t.Fatalf("error does not name the unknown protocol: %v", err)
	}
	for _, name := range []string{"greedy", "phi-dfs", "history"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list registered protocol %q: %v", name, err)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(stubProtocol{name: "test-dup"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "test-dup") {
			t.Fatalf("panic value %v does not name the duplicate", r)
		}
	}()
	Register(stubProtocol{name: "test-dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	Register(stubProtocol{name: ""})
}

func TestRegisteredOrder(t *testing.T) {
	names := Registered()
	if len(names) < 5 {
		t.Fatalf("Registered() = %v, want at least the 5 built-ins", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("Registered() repeats %q: %v", n, names)
		}
		seen[n] = true
	}
	sorted := RegisteredSorted()
	if len(sorted) != len(names) {
		t.Fatalf("RegisteredSorted() has %d names, Registered() %d", len(sorted), len(names))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("RegisteredSorted() not sorted: %v", sorted)
		}
	}
}

func TestObserveReplaysPathInStepOrder(t *testing.T) {
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	g.weights = []float64{1, 10, 100, 2}
	obj := scoreObjective([]float64{1, 2, 3, 0}, 3)
	res := Greedy(g, obj, 0)
	if !res.Success {
		t.Fatalf("greedy failed: %+v", res)
	}

	var events []MoveEvent
	Observe(g, obj, res, 7, ObserverFunc(func(ev MoveEvent) { events = append(events, ev) }))
	if len(events) != len(res.Path) {
		t.Fatalf("%d events for a %d-vertex path", len(events), len(res.Path))
	}
	for i, ev := range events {
		if ev.Episode != 7 {
			t.Fatalf("event %d: Episode = %d, want 7", i, ev.Episode)
		}
		if ev.Step != i {
			t.Fatalf("event %d: Step = %d", i, ev.Step)
		}
		if ev.V != res.Path[i] {
			t.Fatalf("event %d: V = %d, path vertex %d", i, ev.V, res.Path[i])
		}
		if ev.W != g.Weight(ev.V) {
			t.Fatalf("event %d: W = %g, weight %g", i, ev.W, g.Weight(ev.V))
		}
		if ev.Score != obj.Score(ev.V) {
			t.Fatalf("event %d: Score = %g, objective %g", i, ev.Score, obj.Score(ev.V))
		}
	}
}

func TestProtocolRouteMatchesFunctions(t *testing.T) {
	// The registered protocol values must dispatch to the same algorithms as
	// the direct function calls.
	g := newTestGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	obj := scoreObjective([]float64{1, 2, 3, 4, 0}, 4)

	direct := Greedy(g, obj, 0)
	viaIface := GreedyRouter{}.Route(g, obj, 0)
	if !pathsEqual(direct.Path, viaIface.Path) || direct.Success != viaIface.Success {
		t.Fatalf("GreedyRouter.Route = %+v, Greedy = %+v", viaIface, direct)
	}

	reg, err := Lookup("greedy")
	if err != nil {
		t.Fatal(err)
	}
	viaReg := reg.Route(g, obj, 0)
	if !pathsEqual(direct.Path, viaReg.Path) {
		t.Fatalf("registry greedy path %v, direct %v", viaReg.Path, direct.Path)
	}
}

func pathsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
