package route

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Protocol is a pluggable routing protocol: one algorithm that moves a
// message from a source toward an objective's target. Implementations must
// be stateless values (any per-episode state lives inside Route) so a single
// Protocol can serve concurrent episodes. The built-in protocols register
// themselves at init time; external protocols join the same registry through
// Register and are then addressable by name everywhere a protocol name is
// accepted (core.MilgramConfig, cmd/route -proto, ...).
type Protocol interface {
	// Name is the registry key and the report label, e.g. "greedy" or
	// "phi-dfs". Names must be non-empty and unique across the registry.
	Name() string
	// Route runs one episode from s toward obj.Target on g.
	Route(g Graph, obj Objective, s int) Result
}

// The protocol registry. Built-ins self-register from their files' init
// functions; Register is also the extension point for new protocols.
var (
	regMu     sync.RWMutex
	regByName = map[string]Protocol{}
	regOrder  []string
)

// Register adds a protocol to the registry. It panics on an empty name or a
// duplicate registration — both are programming errors caught at init time.
func Register(p Protocol) {
	name := p.Name()
	if name == "" {
		panic("route: Register with empty protocol name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[name]; dup {
		panic("route: duplicate protocol registration " + name)
	}
	regByName[name] = p
	regOrder = append(regOrder, name)
}

// Lookup resolves a protocol by its registered name. The error for an
// unknown name lists every registered protocol.
func Lookup(name string) (Protocol, error) {
	regMu.RLock()
	p, ok := regByName[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("route: unknown protocol %q (registered: %s)",
			name, strings.Join(Registered(), ", "))
	}
	return p, nil
}

// Registered returns the names of all registered protocols in registration
// order (built-ins first, then external registrations).
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// RegisteredSorted returns the registered names in lexicographic order, for
// stable display in error messages and CLIs.
func RegisteredSorted() []string {
	names := Registered()
	sort.Strings(names)
	return names
}

// MoveEvent is one step of a routing trajectory as seen by an Observer: the
// message sits on vertex V, whose model weight is W and whose objective
// value is Score. Step 0 is the initial placement on the source; step k >= 1
// is the k-th transmission. Episode numbers events within a batch
// (RunMilgram); single routes use episode 0. The (W, Score) pairs of one
// episode are exactly the Figure 1 trajectory: W rises doubly-exponentially
// into the core, then Score explodes toward the target.
type MoveEvent struct {
	Episode int
	Step    int
	V       int
	W       float64
	Score   float64
}

// Observer receives per-move events of routing episodes. Engines deliver the
// events of one episode in step order; implementations are called from a
// single goroutine at a time and need no internal locking.
type Observer interface {
	Move(MoveEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(MoveEvent)

// Move calls f(ev).
func (f ObserverFunc) Move(ev MoveEvent) { f(ev) }

// Observe replays a finished episode to an observer: one MoveEvent per path
// position, in step order, scored under obj. Engines call it after each
// episode so observers see a deterministic event stream even when episodes
// themselves ran concurrently.
func Observe(g Graph, obj Objective, res Result, episode int, obs Observer) {
	for i, v := range res.Path {
		obs.Move(MoveEvent{Episode: episode, Step: i, V: v, W: g.Weight(v), Score: obj.Score(v)})
	}
}

// Moves replays a finished episode through Observe and collects its
// MoveEvents — the slice form of the trajectory for analyzers that want the
// whole path at once (Figure 1, layer analysis) rather than a streaming
// observer.
func Moves(g Graph, obj Objective, res Result, episode int) []MoveEvent {
	evs := make([]MoveEvent, 0, len(res.Path))
	Observe(g, obj, res, episode, ObserverFunc(func(ev MoveEvent) {
		evs = append(evs, ev)
	}))
	return evs
}
