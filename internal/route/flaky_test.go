package route

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestFlakyGraphZeroFailure(t *testing.T) {
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	f := NewFlakyGraph(g, 0, 1)
	if f.N() != 4 {
		t.Fatalf("N = %d", f.N())
	}
	for v := 0; v < 4; v++ {
		if len(f.Neighbors(v)) != len(g.Neighbors(v)) {
			t.Fatalf("p=0 must not drop edges at vertex %d", v)
		}
	}
}

func TestFlakyGraphFullFailure(t *testing.T) {
	g := newTestGraph(3, [][2]int{{0, 1}, {1, 2}})
	f := NewFlakyGraph(g, 1, 1)
	for v := 0; v < 3; v++ {
		if len(f.Neighbors(v)) != 0 {
			t.Fatalf("p=1 must drop all edges")
		}
	}
}

func TestFlakyGraphDropRate(t *testing.T) {
	// Star with 1000 leaves: repeated queries drop ~p of the edges.
	n := 1001
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	g := newTestGraph(n, edges)
	const p = 0.3
	f := NewFlakyGraph(g, p, 2)
	total := 0
	const queries = 200
	for q := 0; q < queries; q++ {
		total += len(f.Neighbors(0))
	}
	got := float64(total) / float64(queries*(n-1))
	if got < 1-p-0.03 || got > 1-p+0.03 {
		t.Fatalf("survival rate %v, want ~%v", got, 1-p)
	}
}

func TestFlakyGraphTransient(t *testing.T) {
	// An edge dropped once must be able to reappear.
	g := newTestGraph(2, [][2]int{{0, 1}})
	f := NewFlakyGraph(g, 0.5, 3)
	seenPresent, seenAbsent := false, false
	for q := 0; q < 200; q++ {
		if len(f.Neighbors(0)) == 1 {
			seenPresent = true
		} else {
			seenAbsent = true
		}
	}
	if !seenPresent || !seenAbsent {
		t.Fatalf("failures not transient: present=%v absent=%v", seenPresent, seenAbsent)
	}
}

func TestFlakyGraphClampsProbability(t *testing.T) {
	g := newTestGraph(2, [][2]int{{0, 1}})
	if got := NewFlakyGraph(g, -1, 1).failProb; got != 0 {
		t.Fatalf("negative p clamped to %v", got)
	}
	if got := NewFlakyGraph(g, 2, 1).failProb; got != 1 {
		t.Fatalf("p>1 clamped to %v", got)
	}
}

func TestGreedySurvivesModerateEdgeFailures(t *testing.T) {
	// Robustness claim after Theorem 3.5: greedy routing keeps working
	// when some links fail per hop, because any good-enough neighbor keeps
	// the trajectory on track.
	p := girgDefault(t, 3000, 20)
	giant := graph.GiantComponent(p)
	rng := xrand.New(21)
	const pairs = 150
	baseline, flaky := 0, 0
	for i := 0; i < pairs; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		obj := NewStandard(p, tgt)
		if Greedy(p, obj, s).Success {
			baseline++
		}
		fg := NewFlakyGraph(p, 0.2, uint64(1000+i))
		if Greedy(fg, obj, s).Success {
			flaky++
		}
	}
	if baseline == 0 {
		t.Fatal("baseline greedy never succeeded")
	}
	ratio := float64(flaky) / float64(baseline)
	if ratio < 0.6 {
		t.Fatalf("20%% edge failures dropped success from %d to %d (ratio %v)", baseline, flaky, ratio)
	}
}

// TestFlakyGraphConcurrentEpisodes is the -race regression for the shared
// neighbor-buffer hazard: Protocol promises concurrency safety, so one
// FlakyGraph must serve parallel episodes without data races or corrupted
// adjacency slices. The original implementation reused one buffer and one
// RNG across callers and failed this test under -race.
func TestFlakyGraphConcurrentEpisodes(t *testing.T) {
	g := girgDefault(t, 2000, 23)
	giant := graph.GiantComponent(g)
	fg := NewFlakyGraph(g, 0.2, 99)
	rng := xrand.New(24)
	const episodes = 64
	type pair struct{ s, t int }
	pairs := make([]pair, episodes)
	for i := range pairs {
		pairs[i] = pair{giant[rng.IntN(len(giant))], giant[rng.IntN(len(giant))]}
	}
	var wg sync.WaitGroup
	results := make([]Result, episodes)
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := pairs[i]
			res := Greedy(fg, NewStandard(g, p.t), p.s)
			// Every step must be a true underlying edge: a corrupted shared
			// buffer would splice another episode's adjacency list in here.
			for k := 1; k < len(res.Path); k++ {
				a, b := res.Path[k-1], res.Path[k]
				found := false
				for _, u := range g.Neighbors(a) {
					if int(u) == b {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("episode %d: step %d -> %d is not an edge", i, a, b)
					return
				}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
}

func girgDefault(t testing.TB, n float64, seed uint64) *graph.Graph {
	t.Helper()
	return girgForRouting(t, n, seed)
}
