package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPromWriterEscaping pins the exposition escapes: label values via %q,
// HELP via backslash/newline replacement, infinities via +Inf/-Inf.
func TestPromWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("m", "gauge", "line one\nback\\slash")
	p.Sample("m", []Label{{Name: "l", Value: `a"b\c`}}, math.Inf(1))
	p.SampleInt("m", nil, -3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m line one\\nback\\\\slash\n" +
		"# TYPE m gauge\n" +
		"m{l=\"a\\\"b\\\\c\"} +Inf\n" +
		"m -3\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", got, want)
	}
}

// errWriter fails after n bytes, to exercise sticky errors.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(&errWriter{n: 10})
	for i := 0; i < 5; i++ {
		p.Sample("metric_name_longer_than_the_budget", nil, 1)
	}
	if p.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

// TestWriteEngineMetricsGolden pins the full engine translation — names,
// labels, cumulative histogram buckets, +Inf bound — against a fabricated
// snapshot, so a format regression is a visible diff, not a broken scrape.
func TestWriteEngineMetricsGolden(t *testing.T) {
	s := core.EngineStats{
		Episodes: 10, Moves: 55, Truncations: 2, Failures: 3, Panics: 1, Batches: 4,
		FailureTaxonomy: map[string]int64{
			"dead-end": 1, "truncated": 2, "deadline": 0, "crashed-target": 0, "cancelled": 0,
		},
		WallTimeHist: []core.DurationBucket{
			{UpperSeconds: 1e-6, Count: 4},
			{UpperSeconds: 2e-6, Count: 0},
			{UpperSeconds: math.Inf(1), Count: 6},
		},
		WallTimeTotal: 1500 * time.Microsecond,
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	WriteEngineMetrics(p, s)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP smallworld_engine_episodes_total Routing episodes finished by the engine.
# TYPE smallworld_engine_episodes_total counter
smallworld_engine_episodes_total 10
# HELP smallworld_engine_moves_total Message transmissions across all episodes.
# TYPE smallworld_engine_moves_total counter
smallworld_engine_moves_total 55
# HELP smallworld_engine_truncations_total Episodes that hit a protocol's move cap.
# TYPE smallworld_engine_truncations_total counter
smallworld_engine_truncations_total 2
# HELP smallworld_engine_failures_total Episodes that did not deliver (including panicked ones).
# TYPE smallworld_engine_failures_total counter
smallworld_engine_failures_total 3
# HELP smallworld_engine_panics_total Episodes whose protocol panicked (converted to errors).
# TYPE smallworld_engine_panics_total counter
smallworld_engine_panics_total 1
# HELP smallworld_engine_batches_total RunMilgram / RunMilgramCtx invocations.
# TYPE smallworld_engine_batches_total counter
smallworld_engine_batches_total 4
# HELP smallworld_engine_episode_failures_total Unsuccessful episodes by failure class.
# TYPE smallworld_engine_episode_failures_total counter
smallworld_engine_episode_failures_total{class="dead-end"} 1
smallworld_engine_episode_failures_total{class="truncated"} 2
smallworld_engine_episode_failures_total{class="deadline"} 0
smallworld_engine_episode_failures_total{class="crashed-target"} 0
smallworld_engine_episode_failures_total{class="cancelled"} 0
smallworld_engine_episode_failures_total{class="shard-unreachable"} 0
# HELP smallworld_engine_episode_duration_seconds Per-episode wall time.
# TYPE smallworld_engine_episode_duration_seconds histogram
smallworld_engine_episode_duration_seconds_bucket{le="1e-06"} 4
smallworld_engine_episode_duration_seconds_bucket{le="2e-06"} 4
smallworld_engine_episode_duration_seconds_bucket{le="+Inf"} 10
smallworld_engine_episode_duration_seconds_sum 0.0015
smallworld_engine_episode_duration_seconds_count 10
`
	if got := buf.String(); got != want {
		t.Fatalf("engine exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteEngineMetricsLiveStats checks the translation accepts a real
// Stats() snapshot: all 22 histogram buckets emit and the +Inf bucket equals
// the count.
func TestWriteEngineMetricsLiveStats(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	WriteEngineMetrics(p, core.Stats())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "smallworld_engine_episode_duration_seconds_bucket{"); n != 22 {
		t.Fatalf("emitted %d histogram buckets, want 22", n)
	}
	if !strings.Contains(out, `_bucket{le="+Inf"}`) {
		t.Fatal("missing +Inf bucket")
	}
}

// TestWriteTracerAndRuntimeMetrics smoke-tests the remaining writers,
// including the nil-tracer path the daemon uses when tracing is off.
func TestWriteTracerAndRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	WriteTracerMetrics(p, nil)
	WriteRuntimeMetrics(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"smallworld_trace_sampled_total 0",
		"smallworld_trace_held 0",
		"smallworld_go_goroutines ",
		"smallworld_go_heap_alloc_bytes ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	tr := NewTracer(TracerConfig{SampleRate: 1})
	feed(tr, 3)
	WriteTracerMetrics(NewPromWriter(&buf), tr)
	if !strings.Contains(buf.String(), "smallworld_trace_published_total 3") {
		t.Fatalf("tracer counters not exported:\n%s", buf.String())
	}
}
