package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip pins the header wire format: what Format emits,
// Parse accepts, and malformed values are rejected without error returns.
func TestTraceparentRoundTrip(t *testing.T) {
	trace := DistTraceID(7, 42)
	span := SpanID(trace, "d0", 3)
	v := FormatTraceparent(trace, span)
	if len(v) != 55 {
		t.Fatalf("traceparent %q is %d bytes, want 55", v, len(v))
	}
	gotTrace, gotSpan, ok := ParseTraceparent(v)
	if !ok || gotTrace != trace || gotSpan != span {
		t.Fatalf("round trip: got (%q, %q, %v), want (%q, %q, true)", gotTrace, gotSpan, ok, trace, span)
	}
	for _, bad := range []string{
		"",
		"00-" + trace + "-" + span,        // missing flags
		"00-" + trace + "-" + span + "-1", // short flags
		"00-" + strings.ToUpper(trace) + "-" + span + "-01", // uppercase hex
		"00-" + trace[:31] + "g-" + span + "-01",            // non-hex digit
		strings.Replace(v, "-", "_", 1),
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted malformed %q", bad)
		}
	}
}

// TestDistIDsDeterministic pins the pure-hash derivations: same inputs, same
// ids; distinct lanes, seqs and services, distinct ids.
func TestDistIDsDeterministic(t *testing.T) {
	if DistTraceID(1, 2) != DistTraceID(1, 2) {
		t.Fatal("DistTraceID not deterministic")
	}
	if DistTraceID(1, 2) == DistTraceID(1, 3) || DistTraceID(1, 2) == DistTraceID(2, 2) {
		t.Fatal("DistTraceID collides across seq/salt")
	}
	tr := DistTraceID(1, 2)
	if SpanID(tr, "a", 0) == SpanID(tr, "b", 0) {
		t.Fatal("SpanID collides across services")
	}
	if SpanID(tr, "a", 0) == SpanID(tr, "a", 1) {
		t.Fatal("SpanID collides across sequence numbers")
	}
}

// TestSpanLogRing pins the bounded ring: capacity-filled logs overwrite the
// oldest spans, count drops, and Snapshot returns oldest-first.
func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(SpanLogConfig{Service: "s", Seed: 1, SampleRate: 1, Capacity: 4})
	for i := 0; i < 6; i++ {
		l.Publish(PhaseSpan{Trace: "t", ID: string(rune('a' + i)), Service: "s", Kind: SpanRequest, Start: int64(i)})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d spans, want capacity 4", len(got))
	}
	for i, sp := range got {
		if want := int64(i + 2); sp.Start != want {
			t.Fatalf("snapshot[%d].Start = %d, want %d (oldest-first after wrap)", i, sp.Start, want)
		}
	}
	st := l.Stats()
	if st.Published != 6 || st.Dropped != 2 || st.Buffered != 4 {
		t.Fatalf("stats %+v, want published 6 dropped 2 buffered 4", st)
	}
}

// TestSpanLogSampling pins the deterministic sampler: rate 0 samples
// nothing, rate 1 everything, and a mid rate picks the same subset on every
// run (a pure hash of seq).
func TestSpanLogSampling(t *testing.T) {
	off := NewSpanLog(SpanLogConfig{Service: "s", SampleRate: 0})
	on := NewSpanLog(SpanLogConfig{Service: "s", SampleRate: 1})
	half1 := NewSpanLog(SpanLogConfig{Service: "s", Seed: 3, SampleRate: 0.5})
	half2 := NewSpanLog(SpanLogConfig{Service: "s", Seed: 3, SampleRate: 0.5})
	sampled := 0
	for seq := uint64(0); seq < 200; seq++ {
		if off.Sampled(seq) {
			t.Fatal("rate-0 log sampled a request")
		}
		if !on.Sampled(seq) {
			t.Fatal("rate-1 log skipped a request")
		}
		if half1.Sampled(seq) != half2.Sampled(seq) {
			t.Fatalf("sampling diverged at seq %d despite equal seeds", seq)
		}
		if half1.Sampled(seq) {
			sampled++
		}
	}
	if sampled < 60 || sampled > 140 {
		t.Fatalf("rate-0.5 sampled %d/200 — hash looks biased", sampled)
	}
}

// TestSpanLogNilSafe pins the nil contract every serve-layer call site
// relies on: all methods are no-ops on a nil log.
func TestSpanLogNilSafe(t *testing.T) {
	var l *SpanLog
	if l.Sampled(1) || l.Service() != "" || l.TraceID(1) != "" || l.InternalTraceID(1) != "" {
		t.Fatal("nil SpanLog not inert")
	}
	l.Publish(PhaseSpan{})
	if got := l.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	if st := l.Stats(); st != (SpanLogStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestSpanLogJSONL pins the wire shape: one object per line with the
// snake_case keys tracestitch decodes.
func TestSpanLogJSONL(t *testing.T) {
	l := NewSpanLog(SpanLogConfig{Service: "d0", Seed: 1, SampleRate: 1})
	l.Publish(PhaseSpan{Trace: "t1", ID: "s1", Service: "d0", Kind: SpanRequest, Start: 100, Dur: 50})
	l.Publish(PhaseSpan{Trace: "t1", ID: "s2", Parent: "s1", Service: "d0", Kind: SpanForwardRPC, Peer: "d1", Err: "boom"})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trace", "span", "service", "kind", "start_unix_ns", "dur_ns"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("span line missing %q: %s", key, lines[0])
		}
	}
	var sp PhaseSpan
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Parent != "s1" || sp.Peer != "d1" || sp.Err != "boom" {
		t.Fatalf("decoded span %+v lost fields", sp)
	}
}
