package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// This file is the distributed half of the trace recorder: where Tracer
// captures the per-hop trajectory of one routing episode inside one process,
// the span model here captures where a *request* spent its wall-clock time
// across the fleet — queueing, breaker checks, backoff sleeps, the local CSR
// segment, forward RPCs, hedge waits, anti-entropy pulls — with ids that are
// pure hashes (bit-identical at any GOMAXPROCS, like request ids), so two
// runs of the same workload produce the same trace and span ids and
// cmd/tracestitch can merge the JSONL of every daemon into one tree per
// request.

// Span kinds emitted by the serving layer. Kind is an open string — these
// constants are the vocabulary cmd/tracestitch and the per-phase histograms
// know about, but a PhaseSpan with a novel kind still stitches.
const (
	// SpanRequest is the root span of a trace on its entry daemon: the whole
	// server-side handling of one routed query.
	SpanRequest = "request"
	// SpanHop is the root span a *forwarding* daemon records for each
	// /cluster/hop (or /cluster/replicate, /cluster/segment) it serves; its
	// parent is the caller's forward_rpc span on another daemon.
	SpanHop = "hop"
	// SpanQueueWait is time spent in the admission pool before a worker slot
	// was acquired.
	SpanQueueWait = "queue_wait"
	// SpanBreaker is a circuit-breaker rejection: the request was refused
	// without routing (Detail carries the breaker state).
	SpanBreaker = "breaker"
	// SpanRetryBackoff is one backoff sleep between routing attempts.
	SpanRetryBackoff = "retry_backoff"
	// SpanLocalRoute is one engine episode (or partial CSR segment) executed
	// on the local shard.
	SpanLocalRoute = "local_route"
	// SpanForwardRPC is one POST /cluster/hop (or replicate/segment ship)
	// round trip to a peer, named in Peer.
	SpanForwardRPC = "forward_rpc"
	// SpanHedgeWait is the armed hedge delay: from the primary forward's
	// launch until the hedged attempt fired.
	SpanHedgeWait = "hedge_wait"
	// SpanAntiEntropy is one anti-entropy round on the puller (children are
	// the per-segment forward_rpc pulls).
	SpanAntiEntropy = "anti_entropy"
)

// PhaseSpan is one timed phase of a distributed request: a node of the
// per-trace tree cmd/tracestitch reconstructs. Start is wall-clock
// (UnixNano) — the fleet runs on one box in tests and CI, and stitching
// tolerates skew by trusting the parent/child ids, not the clocks.
type PhaseSpan struct {
	// Trace is the 32-hex-digit trace id shared by every span of one request
	// across all daemons.
	Trace string `json:"trace"`
	// ID is the 16-hex-digit span id, a pure hash of (trace, sequence).
	ID string `json:"span"`
	// Parent is the id of the enclosing span; "" marks a trace root.
	Parent string `json:"parent,omitempty"`
	// Service identifies the daemon that recorded the span (its advertise
	// address in a cluster, "local" standalone).
	Service string `json:"service"`
	// Kind is the phase name (SpanQueueWait, SpanForwardRPC, ...).
	Kind string `json:"kind"`
	// Start is the span's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Peer names the target of a forward_rpc span.
	Peer string `json:"peer,omitempty"`
	// Detail carries a small free-form annotation (breaker state, hedge
	// index, segment id).
	Detail string `json:"detail,omitempty"`
	// Err is the failure that ended the span, "" on success.
	Err string `json:"err,omitempty"`
}

// TraceHeader is the header that propagates trace context on cluster RPCs
// (POST /cluster/hop, /cluster/replicate, /cluster/segment), spelled like
// W3C trace-context so standard tooling recognizes the shape.
const TraceHeader = "Traceparent"

// FormatTraceparent encodes (trace, parent span) as a W3C-style
// `00-<trace>-<span>-01` header value.
func FormatTraceparent(trace, span string) string {
	return "00-" + trace + "-" + span + "-01"
}

// ParseTraceparent decodes a TraceHeader value. ok is false when the value
// is absent or malformed — the receiving daemon then simply records no
// spans for the request, it never fails the RPC over a bad header.
func ParseTraceparent(v string) (trace, span string, ok bool) {
	// 00-{32 hex}-{16 hex}-01 → 2+1+32+1+16+1+2 = 55 bytes.
	if len(v) != 55 || v[:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	trace, span = v[3:35], v[36:52]
	if !isHex(trace) || !isHex(span) {
		return "", "", false
	}
	return trace, span, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// HashString folds a string into the word-based mixer (8 bytes per word,
// length-salted), so span-id derivation can mix service names and trace ids
// without allocating.
func HashString(s string) uint64 {
	x := uint64(len(s))
	var word uint64
	for i := 0; i < len(s); i++ {
		word = word<<8 | uint64(s[i])
		if (i+1)%8 == 0 {
			x = Hash64(x, word)
			word = 0
		}
	}
	if len(s)%8 != 0 {
		x = Hash64(x, word)
	}
	return x
}

// DistTraceID derives the 128-bit (32 hex digit) trace id of the seq-th
// sampled request of a process salted with salt — two independent Hash64
// lanes, so the id is a pure function of (salt, seq) and bit-identical
// across runs and GOMAXPROCS settings.
func DistTraceID(salt, seq uint64) string {
	return fmt.Sprintf("%016x%016x", Hash64(salt, seq, 0xd15c), Hash64(salt, seq, 0xd15d))
}

// SpanID derives the 64-bit (16 hex digit) id of the n-th span a service
// records for a trace. Distinct services hash distinct lanes, so two
// daemons participating in one trace never collide, and the same (trace,
// service, n) triple always yields the same id — the determinism the
// trace-propagation tests assert.
func SpanID(trace, service string, n uint64) string {
	return fmt.Sprintf("%016x", Hash64(HashString(trace), HashString(service), n))
}

// SpanLogConfig tunes a SpanLog.
type SpanLogConfig struct {
	// Service stamps every span with the recording daemon's identity.
	Service string
	// Seed salts trace ids and the sampling decision (pin it in tests for
	// reproducible ids; daemons use the request-id salt).
	Seed uint64
	// SampleRate is the fraction of entry requests that start a trace, in
	// [0, 1]. Requests arriving with a Traceparent header are always
	// recorded — the entry daemon's decision propagates.
	SampleRate float64
	// Capacity bounds the completed-span ring (default 8192). When full,
	// new spans overwrite the oldest — recent traces win, and the dropped
	// counter records the loss.
	Capacity int
}

// SpanLog is a daemon's bounded ring of completed PhaseSpans plus the
// deterministic sampling and id derivation for new traces. All methods are
// nil-safe: a daemon with tracing off carries a nil *SpanLog and every
// record site stays a no-op without branching at the caller.
type SpanLog struct {
	cfg SpanLogConfig

	mu        sync.Mutex
	ring      []PhaseSpan
	next      int  // ring write cursor
	wrapped   bool // ring has overwritten at least one span
	published int64
	dropped   int64
}

// NewSpanLog builds a span log; capacity ≤ 0 selects the default.
func NewSpanLog(cfg SpanLogConfig) *SpanLog {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.Service == "" {
		cfg.Service = "local"
	}
	// A fleet commonly shares one -seed (same snapshot, same salt), but two
	// daemons at the same request sequence must not mint the same trace id —
	// the service name folds into the salt so each daemon ids its own lane.
	cfg.Seed = Hash64(cfg.Seed, HashString(cfg.Service))
	return &SpanLog{cfg: cfg, ring: make([]PhaseSpan, cfg.Capacity)}
}

// Service returns the identity stamped on recorded spans ("" when nil).
func (l *SpanLog) Service() string {
	if l == nil {
		return ""
	}
	return l.cfg.Service
}

// Sampled reports whether the seq-th entry request starts a trace — a pure
// hash of (seed, seq) against the sample rate, never an RNG.
func (l *SpanLog) Sampled(seq uint64) bool {
	if l == nil || l.cfg.SampleRate <= 0 {
		return false
	}
	if l.cfg.SampleRate >= 1 {
		return true
	}
	return hashFloat(l.cfg.Seed, seq, 0x5a30) < l.cfg.SampleRate
}

// TraceID derives the trace id of the seq-th entry request.
func (l *SpanLog) TraceID(seq uint64) string {
	if l == nil {
		return ""
	}
	return DistTraceID(l.cfg.Seed, seq)
}

// InternalTraceID derives the trace id of the seq-th *internal* trace — work
// the daemon starts on its own behalf (anti-entropy rounds) rather than for
// an entry request. The lane is salted apart from TraceID so the two
// sequences can never collide even at equal seq.
func (l *SpanLog) InternalTraceID(seq uint64) string {
	if l == nil {
		return ""
	}
	return DistTraceID(Hash64(l.cfg.Seed, 0xae17), seq)
}

// Publish appends one completed span to the ring.
func (l *SpanLog) Publish(sp PhaseSpan) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.wrapped {
		l.dropped++
	}
	l.ring[l.next] = sp
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.wrapped = true
	}
	l.published++
	l.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (l *SpanLog) Snapshot() []PhaseSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]PhaseSpan(nil), l.ring[:l.next]...)
	}
	out := make([]PhaseSpan, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// WriteJSONL streams the buffered spans as one JSON object per line — the
// format cmd/tracestitch consumes and GET /debug/trace appends after the
// episode traces.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range l.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SpanLogStats counts the log's activity for /metrics and expvar.
type SpanLogStats struct {
	Published int64 `json:"published"`
	Dropped   int64 `json:"dropped"`
	Buffered  int   `json:"buffered"`
}

// Stats reports the log's counters (zero when nil).
func (l *SpanLog) Stats() SpanLogStats {
	if l == nil {
		return SpanLogStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buffered := l.next
	if l.wrapped {
		buffered = len(l.ring)
	}
	return SpanLogStats{Published: l.published, Dropped: l.dropped, Buffered: buffered}
}
