package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

// TestLogConfigFormats checks both handlers produce parseable output and the
// level floor filters below it.
func TestLogConfigFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := (&LogConfig{Format: "json", Level: "warn"}).NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("too quiet")
	l.Warn("loud enough", "k", 7)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("warn-level logger emitted %d lines, want 1: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json log line does not parse: %v", err)
	}
	if rec["msg"] != "loud enough" || rec["k"] != float64(7) {
		t.Fatalf("json record = %v", rec)
	}

	buf.Reset()
	l, err = (&LogConfig{}).NewLogger(&buf) // zero value: text, info
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden")
	l.Info("shown")
	if got := buf.String(); !strings.Contains(got, "shown") || strings.Contains(got, "hidden") {
		t.Fatalf("default text logger output = %q", got)
	}
}

// TestLogConfigRejectsUnknown ensures typos fail loudly rather than falling
// back silently.
func TestLogConfigRejectsUnknown(t *testing.T) {
	if _, err := (&LogConfig{Level: "verbose"}).NewLogger(&bytes.Buffer{}); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := (&LogConfig{Format: "logfmt"}).NewLogger(&bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestRegisterLogFlags checks the flags land in the config.
func TestRegisterLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if c.Format != "json" || c.Level != "debug" {
		t.Fatalf("parsed config = %+v", c)
	}
}

// TestRequestIDs checks ids are unique, deterministic in the salt, and the
// sequence numbers are the 1-based counter services use as per-request seeds.
func TestRequestIDs(t *testing.T) {
	a, b := NewRequestIDs(42), NewRequestIDs(42)
	seen := make(map[string]bool)
	for i := 1; i <= 100; i++ {
		seqA, idA := a.Next()
		_, idB := b.Next()
		if seqA != uint64(i) {
			t.Fatalf("seq = %d, want %d", seqA, i)
		}
		if idA != idB {
			t.Fatalf("same salt, same seq, different ids: %q vs %q", idA, idB)
		}
		if len(idA) != 16 {
			t.Fatalf("id %q is not 16 hex chars", idA)
		}
		if seen[idA] {
			t.Fatalf("duplicate id %q", idA)
		}
		seen[idA] = true
	}
	if _, other := NewRequestIDs(43).Next(); seen[other] {
		t.Fatalf("different salt reproduced an id: %q", other)
	}
}

// TestContextHelpers checks the request-id and logger context plumbing,
// including the slog.Default fallback on a bare context.
func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("RequestID on bare context = %q", got)
	}
	if Logger(ctx) != slog.Default() {
		t.Fatal("Logger on bare context is not slog.Default")
	}
	ctx = WithRequestID(ctx, "deadbeef")
	var buf bytes.Buffer
	scoped := slog.New(slog.NewTextHandler(&buf, nil))
	ctx = WithLogger(ctx, scoped)
	if got := RequestID(ctx); got != "deadbeef" {
		t.Fatalf("RequestID = %q", got)
	}
	if Logger(ctx) != scoped {
		t.Fatal("Logger did not return the scoped logger")
	}
}

// TestHash64 pins the mixer's basic properties: deterministic, argument-order
// sensitive, and length sensitive (so (a, b) never collides with (a) by
// construction of the fold).
func TestHash64(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 ignores argument order")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Fatal("Hash64 ignores argument count")
	}
	if f := hashFloat(3, 4); f < 0 || f >= 1 {
		t.Fatalf("hashFloat out of [0,1): %v", f)
	}
}
