package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the read side of the Prometheus text exposition format: a
// dependency-free parser for what PromWriter emits (and what any conformant
// exporter emits), plus the merge that powers GET /cluster/metrics — scrape
// every gossip-known peer, parse, and re-emit one exposition with an
// instance label on every sample, so one scrape of any daemon sees the
// whole fleet.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name, including a _bucket/_sum/_count suffix.
	Name string
	// Labels are the sample's label pairs in source order.
	Labels []Label
	// Value is the parsed sample value (+Inf/-Inf/NaN included).
	Value float64
	// Raw is the verbatim value text, so re-emission does not reformat.
	Raw string
}

// PromFamily is one parsed metric family: its HELP/TYPE header and samples.
type PromFamily struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []PromSample
}

// ParseExposition parses a text exposition into its families, in source
// order. Samples whose family was never declared (no # TYPE line) are
// collected under an implicit "untyped" family; histogram _bucket/_sum/
// _count samples attach to their base family. The parser is permissive the
// way a federating scraper must be: unknown comment lines and timestamps
// are skipped, only structurally broken lines are errors.
func ParseExposition(r io.Reader) ([]*PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4<<20)
	var fams []*PromFamily
	byName := map[string]*PromFamily{}
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name, Type: "untyped"}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	// owner resolves the family a sample belongs to, peeling the histogram
	// and summary suffixes before giving up and declaring it untyped.
	owner := func(sample string) *PromFamily {
		if f, ok := byName[sample]; ok {
			return f
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, found := strings.CutSuffix(sample, suf); found {
				if f, ok := byName[base]; ok {
					return f
				}
			}
		}
		return family(sample)
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' {
			parts := strings.SplitN(text, " ", 4)
			if len(parts) >= 4 && parts[1] == "HELP" {
				family(parts[2]).Help = unescapeHelp(parts[3])
			} else if len(parts) >= 4 && parts[1] == "TYPE" {
				family(parts[2]).Type = parts[3]
			}
			continue
		}
		s, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", line, err)
		}
		f := owner(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return fams, nil
}

// parseSampleLine parses `name[{labels}] value [timestamp]`.
func parseSampleLine(text string) (PromSample, error) {
	var s PromSample
	nameEnd := strings.IndexAny(text, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	s.Name = text[:nameEnd]
	rest := text[nameEnd:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest[1:])
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels, rest = labels, tail
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("sample %s: missing value", s.Name)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value, s.Raw = v, fields[0]
	return s, nil
}

// parseLabels parses `name="value",...}` (the caller consumed the opening
// brace) and returns the remainder after the closing brace.
func parseLabels(text string) ([]Label, string, error) {
	var labels []Label
	for {
		text = strings.TrimLeft(text, " \t")
		if len(text) > 0 && text[0] == '}' {
			return labels, text[1:], nil
		}
		eq := strings.IndexByte(text, '=')
		if eq <= 0 || eq+1 >= len(text) || text[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed labels near %q", text)
		}
		name := strings.TrimSpace(text[:eq])
		value, tail, err := parseQuoted(text[eq+2:])
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, Label{Name: name, Value: value})
		text = strings.TrimLeft(tail, " \t")
		if len(text) > 0 && text[0] == ',' {
			text = text[1:]
		}
	}
}

// parseQuoted consumes an exposition-escaped label value up to its closing
// quote (escapes: \\ \" \n) and returns the remainder after the quote.
func parseQuoted(text string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '"':
			return b.String(), text[i+1:], nil
		case '\\':
			i++
			if i >= len(text) {
				return "", "", fmt.Errorf("unterminated escape in label value")
			}
			switch text[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(text[i])
			}
		default:
			b.WriteByte(text[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// RawSample emits one sample line with a pre-formatted value, so federated
// re-emission reproduces peer values byte-for-byte instead of round-tripping
// them through float formatting.
func (p *PromWriter) RawSample(name string, labels []Label, raw string) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, raw)
		return
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	p.printf("%s{%s} %s\n", name, b.String(), raw)
}

// Instance is one scraped daemon's parsed exposition, for MergeExpositions.
type Instance struct {
	// Name becomes the value of the instance label on every re-emitted
	// sample (the daemon's advertise address).
	Name     string
	Families []*PromFamily
}

// MergeExpositions re-emits the instances as one exposition: families appear
// in first-seen order across instances (HELP/TYPE from the first instance
// that declared them), and every sample gains a leading instance label. The
// merged output parses again with ParseExposition — federation is
// composable.
func MergeExpositions(p *PromWriter, instances []Instance) {
	var order []string
	merged := map[string]*PromFamily{}
	samples := map[string][]PromSample{}
	for _, inst := range instances {
		for _, f := range inst.Families {
			if _, ok := merged[f.Name]; !ok {
				merged[f.Name] = f
				order = append(order, f.Name)
			}
			for _, s := range f.Samples {
				labeled := s
				labeled.Labels = append([]Label{{Name: "instance", Value: inst.Name}}, s.Labels...)
				samples[f.Name] = append(samples[f.Name], labeled)
			}
		}
	}
	for _, name := range order {
		f := merged[name]
		p.Family(name, f.Type, f.Help)
		for _, s := range samples[name] {
			p.RawSample(s.Name, s.Labels, s.Raw)
		}
	}
}
