package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestLatencyHistQuantileAccuracy records a known distribution and checks
// every decile estimate is within the histogram's ~6% relative-error bound.
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	// 10k samples spread over four orders of magnitude: 100µs .. 1s.
	samples := make([]time.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Deterministic log-uniform spread.
		exp := 5 + 4*float64(i)/10000 // 10^5 .. 10^9 ns
		d := time.Duration(math.Pow(10, exp))
		samples = append(samples, d)
		h.Record(d)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", h.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
		got := h.Quantile(q)
		want := samples[int(q*float64(len(samples)-1))]
		// The estimate is an upper bound within one sub-bucket (~1/16).
		if got < want || float64(got) > float64(want)*1.10 {
			t.Errorf("q=%.2f: got %v, want in [%v, %v]", q, got, want, time.Duration(float64(want)*1.10))
		}
	}
}

// TestLatencyHistEdges covers the degenerate inputs: empty histogram, zero
// duration, the overflow bucket, and out-of-range q.
func TestLatencyHistEdges(t *testing.T) {
	var h LatencyHist
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Record(0)
	if got := h.Quantile(0.5); got != time.Microsecond {
		t.Fatalf("zero-duration quantile = %v, want 1µs upper bound", got)
	}
	var h2 LatencyHist
	h2.Record(100 * time.Hour) // far past the last octave
	if got := h2.Quantile(1.0); got <= 0 {
		t.Fatalf("overflow bucket quantile = %v, want positive", got)
	}
	h2.Record(time.Millisecond)
	if got, want := h2.Quantile(-1), h2.Quantile(0); got != want {
		t.Errorf("Quantile(-1) = %v != Quantile(0) = %v", got, want)
	}
	if got, want := h2.Quantile(2), h2.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %v != Quantile(1) = %v", got, want)
	}
}

// TestLatencyHistMonotone: as durations increase, the buckets they land in
// have non-decreasing indexes and strictly increasing upper bounds that
// never undercut the duration — the properties Quantile's scan relies on.
// (Small octaves leave some sub-bucket indexes unreachable; only reachable
// buckets matter.)
func TestLatencyHistMonotone(t *testing.T) {
	prevIdx, prevUpper := -1, time.Duration(-1)
	for us := uint64(0); us < 1<<22; us += 1 + us/64 {
		d := time.Duration(us) * time.Microsecond
		i := latBucket(d)
		if i < prevIdx {
			t.Fatalf("bucket index decreased: %v → bucket %d after %d", d, i, prevIdx)
		}
		if i == prevIdx {
			continue
		}
		u := latBucketUpper(i)
		if u <= prevUpper {
			t.Fatalf("bucket %d upper %v <= previous upper %v", i, u, prevUpper)
		}
		if u <= d {
			t.Fatalf("bucket %d upper %v does not bound %v", i, u, d)
		}
		prevIdx, prevUpper = i, u
	}
}

// TestLatencyHistConcurrent hammers Record from many goroutines; run under
// -race. The total must come out exact.
func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("median = %v", q)
	}
}
