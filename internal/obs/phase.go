package obs

// Phases is the two-phase decomposition of a greedy trajectory (Figure 1 of
// the paper): node weights first grow doubly-exponentially into the network
// core (the weight phase), then the objective grows doubly-exponentially
// toward the target (the objective phase). The boundary between the phases
// is the maximum-weight hop — the core vertex the walk peaks at.
type Phases struct {
	// Hops is the number of transmissions, len(spans)-1.
	Hops int
	// Boundary is the index of the first span attaining the maximum weight
	// (the phase boundary; -1 for an empty trace).
	Boundary int
	// PeakW is the maximum weight along the trajectory.
	PeakW float64
	// WeightHops and ObjectiveHops are the lengths of the two phases:
	// hops 1..Boundary climb the weight hierarchy, hops Boundary+1..Hops
	// climb the objective. They sum to Hops.
	WeightHops    int
	ObjectiveHops int
	// TwoPhase reports the Figure-1 shape: the trajectory has an interior
	// weight peak (both endpoints strictly below it), so a non-empty weight
	// phase is followed by a non-empty objective phase.
	TwoPhase bool
}

// Analyze splits a trajectory into the paper's two phases at its
// maximum-weight hop.
func Analyze(spans []Span) Phases {
	if len(spans) == 0 {
		return Phases{Boundary: -1}
	}
	p := Phases{Hops: len(spans) - 1, PeakW: spans[0].W}
	for i, s := range spans {
		if s.W > p.PeakW {
			p.PeakW, p.Boundary = s.W, i
		}
	}
	p.WeightHops = p.Boundary
	p.ObjectiveHops = p.Hops - p.Boundary
	p.TwoPhase = p.Boundary > 0 && p.Boundary < len(spans)-1 &&
		spans[0].W < p.PeakW && spans[len(spans)-1].W < p.PeakW
	return p
}

// AnalyzeTrace is Analyze on a completed trace.
func AnalyzeTrace(tr Trace) Phases { return Analyze(tr.Spans) }
