package obs

import (
	"testing"

	"repro/internal/girg"
	"repro/internal/route"
)

func spansOfWeights(ws ...float64) []Span {
	spans := make([]Span, len(ws))
	for i, w := range ws {
		spans[i] = Span{Step: i, W: w, Score: float64(i)}
	}
	return spans
}

// TestAnalyzeShapes covers the analyzer's boundary cases: empty, single
// vertex, monotone climbs (no second phase) and the Figure-1 interior peak.
func TestAnalyzeShapes(t *testing.T) {
	cases := []struct {
		name string
		ws   []float64
		want Phases
	}{
		{"empty", nil, Phases{Boundary: -1}},
		{"single", []float64{3}, Phases{Hops: 0, Boundary: 0, PeakW: 3}},
		{"monotone up", []float64{1, 2, 4, 8},
			Phases{Hops: 3, Boundary: 3, PeakW: 8, WeightHops: 3, ObjectiveHops: 0}},
		{"monotone down", []float64{8, 4, 2, 1},
			Phases{Hops: 3, Boundary: 0, PeakW: 8, WeightHops: 0, ObjectiveHops: 3}},
		{"two phase", []float64{1, 4, 16, 4, 1},
			Phases{Hops: 4, Boundary: 2, PeakW: 16, WeightHops: 2, ObjectiveHops: 2, TwoPhase: true}},
		{"peak tie picks first", []float64{1, 9, 9, 1},
			Phases{Hops: 3, Boundary: 1, PeakW: 9, WeightHops: 1, ObjectiveHops: 2, TwoPhase: true}},
	}
	for _, c := range cases {
		if got := Analyze(spansOfWeights(c.ws...)); got != c.want {
			t.Errorf("%s: Analyze = %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestAnalyzeSumsToHops checks the phase lengths always partition the path.
func TestAnalyzeSumsToHops(t *testing.T) {
	for _, ws := range [][]float64{{1}, {1, 2}, {2, 1}, {1, 5, 2}, {3, 1, 4, 1, 5, 9, 2, 6}} {
		p := Analyze(spansOfWeights(ws...))
		if p.WeightHops+p.ObjectiveHops != p.Hops {
			t.Errorf("weights %v: %d + %d != %d hops", ws, p.WeightHops, p.ObjectiveHops, p.Hops)
		}
	}
}

// TestGIRGTraceTwoPhase is the Figure-1 acceptance check: a greedy episode on
// a sparse GIRG between planted low-weight, far-apart endpoints, captured
// through the Tracer, must decompose into a non-trivial weight phase followed
// by a non-trivial objective phase (the paper's two-phase trajectory shape).
func TestGIRGTraceTwoPhase(t *testing.T) {
	p := girg.DefaultParams(30000)
	p.FixedN = true
	// Sparse kernel so the path is long enough to expose both phases (same
	// setup as experiment F1, at test scale).
	p.Lambda = 0.02
	planted := []girg.Plant{
		{Pos: []float64{0.1, 0.1}, W: p.WMin},
		{Pos: []float64{0.6, 0.6}, W: p.WMin},
	}
	for seed := uint64(1); seed <= 30; seed++ {
		g, err := girg.Generate(p, 900+seed, girg.Options{Planted: planted})
		if err != nil {
			t.Fatal(err)
		}
		obj := route.NewStandard(g, 1)
		res := route.Greedy(g, obj, 0)
		if !res.Success || res.Moves < 4 {
			continue
		}
		tr := NewTracer(TracerConfig{SampleRate: 1, Seed: seed, Protocol: "greedy"})
		route.Observe(g, obj, res, 0, tr)
		tr.Flush()
		traces := tr.Traces()
		if len(traces) != 1 {
			t.Fatalf("seed %d: captured %d traces, want 1", seed, len(traces))
		}
		ph := AnalyzeTrace(traces[0])
		if !ph.TwoPhase {
			continue // short paths can peak at an endpoint; try another draw
		}
		if ph.WeightHops < 1 || ph.ObjectiveHops < 1 {
			t.Fatalf("seed %d: TwoPhase with empty phase: %+v", seed, ph)
		}
		if ph.PeakW <= traces[0].Spans[0].W {
			t.Fatalf("seed %d: peak weight %.2f does not rise above the planted start %.2f",
				seed, ph.PeakW, traces[0].Spans[0].W)
		}
		t.Logf("seed %d: %d hops = %d weight-phase + %d objective-phase, peak w %.1f",
			seed, ph.Hops, ph.WeightHops, ph.ObjectiveHops, ph.PeakW)
		return
	}
	t.Fatal("no two-phase greedy trajectory found in 30 graph draws")
}
