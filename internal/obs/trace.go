package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/route"
)

// Span is one hop of a captured routing trajectory: the message sits on
// vertex V, whose model weight is W and whose objective value is Score —
// exactly one point of the paper's Figure 1. WallNs is the time since the
// trace opened at which the span was captured; because the engine replays
// trajectories to observers after an episode finishes, it measures capture
// time, not in-flight routing time, and is zero when no clock is set.
type Span struct {
	Step   int     `json:"step"`
	V      int     `json:"v"`
	W      float64 `json:"w"`
	Score  float64 `json:"score"`
	WallNs int64   `json:"wall_ns,omitempty"`
}

// spanJSON is the wire form of Span: Score is typed any because the standard
// objective scores the target vertex +Inf, which bare JSON numbers cannot
// represent — non-finite scores travel as the strings "+Inf"/"-Inf"/"NaN".
type spanJSON struct {
	Step   int     `json:"step"`
	V      int     `json:"v"`
	W      float64 `json:"w"`
	Score  any     `json:"score"`
	WallNs int64   `json:"wall_ns,omitempty"`
}

// MarshalJSON encodes the span, spelling a non-finite Score as a string.
func (s Span) MarshalJSON() ([]byte, error) {
	j := spanJSON{Step: s.Step, V: s.V, W: s.W, WallNs: s.WallNs}
	if math.IsInf(s.Score, 0) || math.IsNaN(s.Score) {
		j.Score = formatPromValue(s.Score)
	} else {
		j.Score = s.Score
	}
	return json.Marshal(j)
}

// UnmarshalJSON accepts both numeric and string-spelled scores.
func (s *Span) UnmarshalJSON(b []byte) error {
	var j spanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	s.Step, s.V, s.W, s.WallNs = j.Step, j.V, j.W, j.WallNs
	switch v := j.Score.(type) {
	case float64:
		s.Score = v
	case string:
		switch v {
		case "+Inf":
			s.Score = math.Inf(1)
		case "-Inf":
			s.Score = math.Inf(-1)
		case "NaN":
			s.Score = math.NaN()
		default:
			return fmt.Errorf("obs: unknown span score %q", v)
		}
	case nil:
	default:
		return fmt.Errorf("obs: span score has type %T", v)
	}
	return nil
}

// Trace is one completed routing trajectory with its identity and context.
type Trace struct {
	// ID is the deterministic trace id: a pure hash of the tracer seed and
	// the episode index, so the same workload yields the same ids at any
	// worker count.
	ID string `json:"id"`
	// Episode is the episode index within its batch (daemons use the
	// request sequence number).
	Episode int `json:"episode"`
	// Request is the X-Request-ID of the request that routed the episode
	// (daemon traces only), tying the trace to its slog lines.
	Request string `json:"request,omitempty"`
	// Protocol and Graph label the workload.
	Protocol string `json:"protocol,omitempty"`
	Graph    string `json:"graph,omitempty"`
	// Failure is the episode's failure class ("" = delivered).
	Failure string `json:"failure,omitempty"`
	// Events are out-of-band annotations: fault models in effect, retry
	// attempts and their outcomes.
	Events []string `json:"events,omitempty"`
	// Spans are the per-hop samples, in step order. Truncated reports that
	// the per-trace span cap cut the tail off.
	Spans     []Span `json:"spans"`
	Truncated bool   `json:"truncated,omitempty"`
}

// TraceID derives the deterministic id of one episode's trace.
func TraceID(seed uint64, episode int) string {
	return fmt.Sprintf("t%016x", Hash64(seed, uint64(episode)))
}

// TracerConfig tunes a Tracer. The zero value samples nothing.
type TracerConfig struct {
	// SampleRate is the deterministic sampling probability: episode e is
	// captured iff hash(Seed, e) < SampleRate, so the sampled set is a pure
	// function of (Seed, SampleRate) — identical at any GOMAXPROCS and
	// across runs. <= 0 captures nothing, >= 1 captures everything.
	SampleRate float64
	// Seed drives sampling and trace ids.
	Seed uint64
	// MaxSpans bounds the spans of one trace (default 4096); hops past the
	// bound are dropped and the trace marked Truncated.
	MaxSpans int
	// Capacity bounds the ring of completed traces (default 64); the
	// oldest trace is evicted first.
	Capacity int
	// Protocol and Graph are stamped on every captured trace.
	Protocol string
	Graph    string
	// Now supplies span capture timestamps. nil leaves WallNs zero, which
	// keeps traces bit-deterministic by default; set it (e.g. time.Now) when
	// capture timing matters more than reproducibility.
	Now func() time.Time
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.MaxSpans <= 0 {
		c.MaxSpans = 4096
	}
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	return c
}

// Tracer records sampled routing trajectories. It implements route.Observer
// for the engine's sequential replay streams (RunMilgram observers, single
// Route calls): events of one episode arrive contiguously in step order, so
// an episode-number change closes the previous trace; call Flush once the
// stream ends to close the last one. Services that route concurrently
// instead collect spans per request (SpanCollector) and Publish finished
// traces directly; Sampled and TraceID give them the same deterministic
// sampling and ids. All methods are safe for concurrent use and all methods
// are no-ops on a nil *Tracer, so "tracing disabled" needs no branching at
// call sites.
type Tracer struct {
	cfg TracerConfig

	mu        sync.Mutex
	open      *Trace    // trace being assembled by Move
	openStart time.Time // capture clock zero of the open trace
	skipEp    int       // last episode decided unsampled
	haveSkip  bool
	completed []Trace // bounded FIFO of finished traces

	sampled   atomic.Int64 // traces opened (sampling decisions that hit)
	published atomic.Int64 // traces completed into the ring
	dropped   atomic.Int64 // spans dropped by MaxSpans
}

// NewTracer builds a tracer (zero config fields take defaults).
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{cfg: cfg.withDefaults()}
}

// ID returns the deterministic trace id of an episode under this tracer's
// seed ("" on a nil tracer).
func (t *Tracer) ID(episode int) string {
	if t == nil {
		return ""
	}
	return TraceID(t.cfg.Seed, episode)
}

// Sampled reports the deterministic sampling decision for an episode.
func (t *Tracer) Sampled(episode int) bool {
	if t == nil || t.cfg.SampleRate <= 0 {
		return false
	}
	if t.cfg.SampleRate >= 1 {
		return true
	}
	return hashFloat(t.cfg.Seed, uint64(episode)) < t.cfg.SampleRate
}

// Move consumes one replayed trajectory event (route.Observer). Events must
// arrive episode-contiguous in step order — exactly what the engine's
// observer contract guarantees.
func (t *Tracer) Move(ev route.MoveEvent) {
	if t == nil || t.cfg.SampleRate <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open != nil {
		if ev.Episode == t.open.Episode {
			t.appendLocked(ev)
			return
		}
		t.finishLocked()
	}
	if t.haveSkip && ev.Episode == t.skipEp {
		return
	}
	if !t.Sampled(ev.Episode) {
		t.skipEp, t.haveSkip = ev.Episode, true
		return
	}
	t.open = &Trace{
		ID:       TraceID(t.cfg.Seed, ev.Episode),
		Episode:  ev.Episode,
		Protocol: t.cfg.Protocol,
		Graph:    t.cfg.Graph,
	}
	if t.cfg.Now != nil {
		t.openStart = t.cfg.Now()
	}
	t.sampled.Add(1)
	t.appendLocked(ev)
}

// appendLocked adds one span to the open trace, enforcing MaxSpans.
func (t *Tracer) appendLocked(ev route.MoveEvent) {
	if len(t.open.Spans) >= t.cfg.MaxSpans {
		t.open.Truncated = true
		t.dropped.Add(1)
		return
	}
	s := Span{Step: ev.Step, V: ev.V, W: ev.W, Score: ev.Score}
	if t.cfg.Now != nil {
		s.WallNs = t.cfg.Now().Sub(t.openStart).Nanoseconds()
	}
	t.open.Spans = append(t.open.Spans, s)
}

// finishLocked moves the open trace into the completed ring.
func (t *Tracer) finishLocked() {
	tr := t.open
	t.open = nil
	t.publishLocked(*tr)
}

// Flush closes the trace still being assembled by Move, if any. Call it
// when the observer stream ends (after RunMilgram returns).
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open != nil {
		t.finishLocked()
	}
}

// Publish adds an externally assembled trace (service request paths) to the
// completed ring.
func (t *Tracer) Publish(tr Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.publishLocked(tr)
}

func (t *Tracer) publishLocked(tr Trace) {
	if tr.Spans == nil {
		// A zero-hop trace (e.g. every attempt crashed at the source) still
		// promises "spans": [] on the wire, never null.
		tr.Spans = []Span{}
	}
	if len(t.completed) >= t.cfg.Capacity {
		n := copy(t.completed, t.completed[1:])
		t.completed = t.completed[:n]
	}
	t.completed = append(t.completed, tr)
	t.published.Add(1)
}

// Traces snapshots the completed traces, oldest first.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.completed))
	copy(out, t.completed)
	return out
}

// WriteJSONL writes the completed traces as JSON Lines, one trace per line
// — the export format of the daemon's GET /debug/trace and of trace files.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, tr := range t.Traces() {
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return nil
}

// TracerStats is a snapshot of the tracer's own counters, exported on
// /metrics so sampling health is itself observable.
type TracerStats struct {
	// Sampled counts traces opened, Published traces completed, Dropped
	// spans discarded by the per-trace span cap; Held is the current ring
	// population.
	Sampled, Published, Dropped int64
	Held                        int
}

// Stats snapshots the tracer counters (zero on a nil tracer).
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	held := len(t.completed)
	t.mu.Unlock()
	return TracerStats{
		Sampled:   t.sampled.Load(),
		Published: t.published.Load(),
		Dropped:   t.dropped.Load(),
		Held:      held,
	}
}

// SpanCollector gathers the spans of one episode replay on behalf of a
// concurrent caller (one collector per request, no locking), bounded like a
// Tracer trace. It implements route.Observer.
type SpanCollector struct {
	// Max bounds the collected spans (0 = the Tracer default, 4096).
	Max       int
	Spans     []Span
	Truncated bool
}

// Move appends one replayed event as a span.
func (c *SpanCollector) Move(ev route.MoveEvent) {
	max := c.Max
	if max <= 0 {
		max = 4096
	}
	if len(c.Spans) >= max {
		c.Truncated = true
		return
	}
	c.Spans = append(c.Spans, Span{Step: ev.Step, V: ev.V, W: ev.W, Score: ev.Score})
}

// Reset clears the collector for the next attempt.
func (c *SpanCollector) Reset() {
	c.Spans = c.Spans[:0]
	c.Truncated = false
}
