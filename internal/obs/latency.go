package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHist is a lock-free latency histogram with enough resolution for
// tail quantiles: durations are bucketed by their microsecond magnitude
// (log2 major bucket, as the engine's wall-time histogram does) and then
// subdivided into 16 linear sub-buckets per octave, bounding the relative
// quantile error at ~1/16 ≈ 6% — plenty for p99 gating, at a fixed cost of
// majors×16 atomic counters and no allocation per Record.
//
// The zero value is ready to use and safe for concurrent Record/Quantile.
type LatencyHist struct {
	// counts[major*latSub + minor] counts durations whose microsecond value
	// has bit length major and whose next 4 bits below the leading bit are
	// minor. Major 0 is "< 1µs"; the last major collects everything at or
	// above 2^(latMajors-1) µs (~34 minutes).
	counts [latMajors * latSub]atomic.Int64
	total  atomic.Int64
	sumUs  atomic.Int64
}

const (
	latMajors = 32 // log2 octaves of microseconds: up to ~2^31 µs ≈ 36 min
	latSub    = 16 // linear sub-buckets per octave: ~6% relative resolution
)

// latBucket maps a duration to its bucket index.
func latBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	major := bits.Len64(us)
	if major >= latMajors {
		major = latMajors - 1
	}
	minor := 0
	if major >= 5 {
		// The 4 bits below the leading bit subdivide the octave linearly.
		minor = int((us >> (major - 5)) & (latSub - 1))
	} else if major > 0 {
		// Small octaves have fewer than 4 trailing bits; spread what exists.
		minor = int(us&((1<<(major-1))-1)) << (5 - major) & (latSub - 1)
	}
	return major*latSub + minor
}

// latBucketUpper is the exclusive upper bound of bucket i, used as the
// quantile estimate for durations landing in it.
func latBucketUpper(i int) time.Duration {
	major, minor := i/latSub, i%latSub
	if major == 0 {
		return time.Microsecond
	}
	// The octave [2^(major-1), 2^major) µs split into latSub equal parts.
	lo := uint64(1) << (major - 1)
	if major < 5 {
		// Small octaves hold fewer than latSub distinct values; undo the
		// spread latBucket applied so the bound stays inside the octave.
		return time.Duration(lo+uint64(minor>>(5-major))+1) * time.Microsecond
	}
	width := lo / latSub
	upper := lo + uint64(minor+1)*width
	return time.Duration(upper) * time.Microsecond
}

// Record folds one duration into the histogram.
func (h *LatencyHist) Record(d time.Duration) {
	h.counts[latBucket(d)].Add(1)
	h.total.Add(1)
	h.sumUs.Add(int64(d / time.Microsecond))
}

// Count reports the number of recorded durations.
func (h *LatencyHist) Count() int64 { return h.total.Load() }

// Sum reports the exact total of the recorded durations (microsecond
// granularity) — unlike Quantile it carries no bucketing error, so
// Sum/Count is a true mean.
func (h *LatencyHist) Sum() time.Duration {
	return time.Duration(h.sumUs.Load()) * time.Microsecond
}

// Mean reports the mean recorded duration (0 with no samples).
func (h *LatencyHist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0, 1])
// of the recorded durations, within one sub-bucket (~6%) of the true value.
// A histogram with no samples returns 0. Concurrent Records move the answer
// by at most the in-flight samples; loadgen reads after its run completes.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile falls on.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return latBucketUpper(i)
		}
	}
	return latBucketUpper(len(h.counts) - 1)
}

// WriteHistogramSamples emits the histogram as cumulative Prometheus
// _bucket/_sum/_count samples under name, with labels on every line. Bucket
// bounds are one per octave (the upper edge of each log2 major, +Inf last)
// — 32 buckets per label set keeps the exposition small while preserving
// the ~2× resolution dashboards need for burn-rate math. The caller
// declares the family header once (several label sets share one family).
func (h *LatencyHist) WriteHistogramSamples(p *PromWriter, name string, labels []Label) {
	le := func(v float64) []Label {
		return append(append([]Label(nil), labels...), Label{Name: "le", Value: formatPromValue(v)})
	}
	var cum int64
	for major := 0; major < latMajors; major++ {
		for minor := 0; minor < latSub; minor++ {
			cum += h.counts[major*latSub+minor].Load()
		}
		bound := math.Inf(1)
		if major < latMajors-1 {
			bound = latBucketUpper(major*latSub + latSub - 1).Seconds()
		}
		p.SampleInt(name+"_bucket", le(bound), cum)
	}
	p.Sample(name+"_sum", labels, h.Sum().Seconds())
	p.SampleInt(name+"_count", labels, h.total.Load())
}
