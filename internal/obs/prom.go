package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/route"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4)
// without depending on a client library. Callers declare each metric family
// once with Family and then emit its samples; the writer handles value and
// label escaping. Errors are sticky: check Err once after the last sample.
type PromWriter struct {
	w   io.Writer
	err error
}

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Family declares a metric family: its # HELP and # TYPE header lines.
// mtype is "counter", "gauge" or "histogram".
func (p *PromWriter) Family(name, mtype, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, mtype)
}

// Sample emits one sample line. Labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatPromValue(v))
		return
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q covers the exposition format's three label escapes (\\, \" and
		// \n); label values here are registry names and failure classes, so
		// no other control characters can appear.
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	p.printf("%s{%s} %s\n", name, b.String(), formatPromValue(v))
}

// SampleInt is Sample for integer-valued counters and gauges.
func (p *PromWriter) SampleInt(name string, labels []Label, v int64) {
	p.Sample(name, labels, float64(v))
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// formatPromValue renders a sample value; infinities use the exposition
// spelling +Inf/-Inf (bucket bounds rely on this).
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslashes and newlines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteEngineMetrics translates the engine counter snapshot into the
// smallworld_engine_* families: episode/move/batch counters, the failure
// taxonomy as one counter family labelled by class, and the log2 wall-time
// histogram as a cumulative native Prometheus histogram. Metric names and
// labels are stable; the DESIGN.md §9 table documents them.
func WriteEngineMetrics(p *PromWriter, s core.EngineStats) {
	p.Family("smallworld_engine_episodes_total", "counter", "Routing episodes finished by the engine.")
	p.SampleInt("smallworld_engine_episodes_total", nil, s.Episodes)
	p.Family("smallworld_engine_moves_total", "counter", "Message transmissions across all episodes.")
	p.SampleInt("smallworld_engine_moves_total", nil, s.Moves)
	p.Family("smallworld_engine_truncations_total", "counter", "Episodes that hit a protocol's move cap.")
	p.SampleInt("smallworld_engine_truncations_total", nil, s.Truncations)
	p.Family("smallworld_engine_failures_total", "counter", "Episodes that did not deliver (including panicked ones).")
	p.SampleInt("smallworld_engine_failures_total", nil, s.Failures)
	p.Family("smallworld_engine_panics_total", "counter", "Episodes whose protocol panicked (converted to errors).")
	p.SampleInt("smallworld_engine_panics_total", nil, s.Panics)
	p.Family("smallworld_engine_batches_total", "counter", "RunMilgram / RunMilgramCtx invocations.")
	p.SampleInt("smallworld_engine_batches_total", nil, s.Batches)

	p.Family("smallworld_engine_episode_failures_total", "counter", "Unsuccessful episodes by failure class.")
	// FailureTaxonomy always carries the full key set; emit in the stable
	// reporting order of route.Failures so scrapes diff cleanly.
	for _, f := range route.Failures() {
		p.SampleInt("smallworld_engine_episode_failures_total",
			[]Label{{"class", string(f)}}, s.FailureTaxonomy[string(f)])
	}

	// The engine's log2 histogram translates to a cumulative _bucket series:
	// per-bucket counts are summed up to each bound, so a scrape is valid
	// even if a future engine version omits empty buckets again.
	p.Family("smallworld_engine_episode_duration_seconds", "histogram", "Per-episode wall time.")
	var cum int64
	for _, b := range s.WallTimeHist {
		cum += b.Count
		p.SampleInt("smallworld_engine_episode_duration_seconds_bucket",
			[]Label{{"le", formatPromValue(b.UpperSeconds)}}, cum)
	}
	p.Sample("smallworld_engine_episode_duration_seconds_sum", nil, s.WallTimeTotal.Seconds())
	p.SampleInt("smallworld_engine_episode_duration_seconds_count", nil, cum)
}

// WriteTracerMetrics exposes the tracer's own health (nil t exports zeros).
func WriteTracerMetrics(p *PromWriter, t *Tracer) {
	s := t.Stats()
	p.Family("smallworld_trace_sampled_total", "counter", "Routing episodes selected by trace sampling.")
	p.SampleInt("smallworld_trace_sampled_total", nil, s.Sampled)
	p.Family("smallworld_trace_published_total", "counter", "Completed traces added to the trace ring.")
	p.SampleInt("smallworld_trace_published_total", nil, s.Published)
	p.Family("smallworld_trace_spans_dropped_total", "counter", "Spans dropped by the per-trace span cap.")
	p.SampleInt("smallworld_trace_spans_dropped_total", nil, s.Dropped)
	p.Family("smallworld_trace_held", "gauge", "Completed traces currently held in the ring.")
	p.SampleInt("smallworld_trace_held", nil, int64(s.Held))
}

// WriteRuntimeMetrics exposes the Go runtime: goroutines, heap and GC — the
// numbers an operator checks first when a daemon misbehaves (deeper digging
// goes through the pprof endpoints).
func WriteRuntimeMetrics(p *PromWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Family("smallworld_go_goroutines", "gauge", "Live goroutines.")
	p.SampleInt("smallworld_go_goroutines", nil, int64(runtime.NumGoroutine()))
	p.Family("smallworld_go_heap_alloc_bytes", "gauge", "Heap bytes allocated and in use.")
	p.SampleInt("smallworld_go_heap_alloc_bytes", nil, int64(ms.HeapAlloc))
	p.Family("smallworld_go_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.")
	p.SampleInt("smallworld_go_heap_sys_bytes", nil, int64(ms.HeapSys))
	p.Family("smallworld_go_gc_cycles_total", "counter", "Completed GC cycles.")
	p.SampleInt("smallworld_go_gc_cycles_total", nil, int64(ms.NumGC))
	p.Family("smallworld_go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	p.Sample("smallworld_go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)
}
