package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/route"
)

// feed replays synthetic episodes through the observer interface: episode e
// gets e%5+1 events in step order, episodes in order — the engine's replay
// contract.
func feed(tr *Tracer, episodes int) {
	for e := 0; e < episodes; e++ {
		for s := 0; s <= e%5; s++ {
			tr.Move(route.MoveEvent{Episode: e, Step: s, V: 10*e + s, W: float64(s), Score: float64(s) / 10})
		}
	}
	tr.Flush()
}

// TestTracerCapturesStream checks the observer path end to end: rate 1
// captures every episode, spans arrive in step order, ids match TraceID.
func TestTracerCapturesStream(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, Seed: 3, Protocol: "greedy", Graph: "g"})
	feed(tr, 10)
	traces := tr.Traces()
	if len(traces) != 10 {
		t.Fatalf("captured %d traces, want 10", len(traces))
	}
	for e, trace := range traces {
		if trace.Episode != e || trace.ID != TraceID(3, e) {
			t.Fatalf("trace %d: episode %d id %q", e, trace.Episode, trace.ID)
		}
		if trace.Protocol != "greedy" || trace.Graph != "g" {
			t.Fatalf("trace %d: labels %q/%q", e, trace.Protocol, trace.Graph)
		}
		if len(trace.Spans) != e%5+1 {
			t.Fatalf("trace %d: %d spans, want %d", e, len(trace.Spans), e%5+1)
		}
		for i, sp := range trace.Spans {
			if sp.Step != i || sp.V != 10*e+i {
				t.Fatalf("trace %d span %d: %+v", e, i, sp)
			}
			if sp.WallNs != 0 {
				t.Fatalf("trace %d span %d: WallNs %d without a clock", e, i, sp.WallNs)
			}
		}
	}
	st := tr.Stats()
	if st.Sampled != 10 || st.Published != 10 || st.Dropped != 0 || st.Held != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTracerSamplingDeterministic checks the sampling decision is a pure
// function of (seed, episode): stable across tracers, different across seeds,
// and roughly proportional to the rate.
func TestTracerSamplingDeterministic(t *testing.T) {
	a := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 7})
	b := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 7})
	c := NewTracer(TracerConfig{SampleRate: 0.3, Seed: 8})
	hits, diff := 0, 0
	for e := 0; e < 2000; e++ {
		if a.Sampled(e) != b.Sampled(e) {
			t.Fatalf("episode %d: same seed, different decision", e)
		}
		if a.Sampled(e) {
			hits++
		}
		if a.Sampled(e) != c.Sampled(e) {
			diff++
		}
	}
	if hits < 450 || hits > 750 {
		t.Fatalf("rate 0.3 sampled %d/2000", hits)
	}
	if diff == 0 {
		t.Fatal("seed change did not move the sampled set")
	}
	if (&Tracer{cfg: TracerConfig{SampleRate: 0}}).Sampled(1) {
		t.Fatal("rate 0 sampled an episode")
	}
	if !NewTracer(TracerConfig{SampleRate: 1}).Sampled(123) {
		t.Fatal("rate 1 skipped an episode")
	}
}

// TestTracerRingEviction checks the completed ring is bounded FIFO.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, Capacity: 4})
	feed(tr, 10)
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("held %d traces, want 4", len(traces))
	}
	for i, trace := range traces {
		if trace.Episode != 6+i {
			t.Fatalf("ring[%d].Episode = %d, want %d (oldest evicted first)", i, trace.Episode, 6+i)
		}
	}
	if st := tr.Stats(); st.Published != 10 || st.Held != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTracerMaxSpans checks the per-trace span cap truncates instead of
// growing without bound.
func TestTracerMaxSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, MaxSpans: 3})
	for s := 0; s < 5; s++ {
		tr.Move(route.MoveEvent{Episode: 0, Step: s})
	}
	tr.Flush()
	traces := tr.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 3 || !traces[0].Truncated {
		t.Fatalf("traces = %+v", traces)
	}
	if st := tr.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
}

// TestTracerClock checks span timestamps come from the injected clock.
func TestTracerClock(t *testing.T) {
	now := time.Unix(100, 0)
	tr := NewTracer(TracerConfig{SampleRate: 1, Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	tr.Move(route.MoveEvent{Episode: 0, Step: 0})
	tr.Move(route.MoveEvent{Episode: 0, Step: 1})
	tr.Flush()
	// The clock ticks once for the trace start and once per span: spans land
	// 1ms and 2ms after the start.
	spans := tr.Traces()[0].Spans
	if spans[0].WallNs != int64(time.Millisecond) || spans[1].WallNs != int64(2*time.Millisecond) {
		t.Fatalf("WallNs = %d, %d", spans[0].WallNs, spans[1].WallNs)
	}
}

// TestTracerNil checks every method is a no-op on a nil tracer, so call
// sites need no "tracing enabled" branches.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Move(route.MoveEvent{})
	tr.Flush()
	tr.Publish(Trace{})
	if tr.Sampled(1) || tr.ID(1) != "" || tr.Traces() != nil {
		t.Fatal("nil tracer returned non-zero results")
	}
	if st := tr.Stats(); st != (TracerStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestPublishNormalizesSpans checks a zero-hop trace (every attempt crashed
// at the source) still serialises with "spans": [], never null — trace
// consumers key on the list being present.
func TestPublishNormalizesSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	tr.Publish(Trace{ID: "t0", Failure: "crashed-target"})
	b, err := json.Marshal(tr.Traces()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"spans":[]`)) {
		t.Fatalf("zero-hop trace JSON = %s, want \"spans\":[]", b)
	}
}

// TestWriteJSONL round-trips traces through the export format.
func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, Seed: 5})
	feed(tr, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var got []Trace
	for dec.More() {
		var tc Trace
		if err := dec.Decode(&tc); err != nil {
			t.Fatal(err)
		}
		got = append(got, tc)
	}
	if !reflect.DeepEqual(got, tr.Traces()) {
		t.Fatalf("JSONL round trip mismatch:\n%+v\n%+v", got, tr.Traces())
	}
}

// TestSpanJSONNonFinite round-trips the +Inf score the standard objective
// assigns the target vertex — bare JSON numbers cannot carry it, so the wire
// form spells it as a string.
func TestSpanJSONNonFinite(t *testing.T) {
	in := Span{Step: 2, V: 7, W: 1.5, Score: math.Inf(1)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"score":"+Inf"`)) {
		t.Fatalf("wire form = %s", b)
	}
	var out Span
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

// TestTracerEngineDeterminism runs the same Milgram batch under different
// GOMAXPROCS with a sampling tracer attached and requires bit-identical
// traces: the sampled set, the trace ids and every span must be pure
// functions of (seed, workload), never of scheduling.
func TestTracerEngineDeterminism(t *testing.T) {
	p := girg.DefaultParams(2000)
	p.FixedN = true
	run := func(procs int) []Trace {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		nw, err := core.NewGIRG(p, 7, girg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracer(TracerConfig{SampleRate: 0.5, Seed: 9, Protocol: "greedy"})
		if _, err := core.RunMilgram(nw, core.MilgramConfig{Pairs: 40, Seed: 11, Observer: tr}); err != nil {
			t.Fatal(err)
		}
		tr.Flush()
		traces := tr.Traces()
		if len(traces) == 0 {
			t.Fatal("sampling rate 0.5 over 40 episodes captured nothing")
		}
		return traces
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("traces differ across GOMAXPROCS:\n1: %+v\n8: %+v", serial, parallel)
	}
}
