package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestParseExpositionRoundTrip pins the parser against the writer: an
// exposition produced by PromWriter (families, labels, a histogram) parses
// into the same families and samples.
func TestParseExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("demo_total", "counter", "A counter with \"quotes\" and a\nnewline.")
	p.SampleInt("demo_total", nil, 42)
	p.Family("demo_state", "gauge", "Labeled gauge.")
	p.Sample("demo_state", []Label{{Name: "graph", Value: `a"b\c`}, {Name: "proto", Value: "greedy"}}, 1.5)
	var h LatencyHist
	h.Record(3 * time.Millisecond)
	h.Record(70 * time.Millisecond)
	p.Family("demo_seconds", "histogram", "A histogram.")
	h.WriteHistogramSamples(p, "demo_seconds", nil)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["demo_total"]; f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("demo_total parsed as %+v", f)
	}
	if !strings.Contains(byName["demo_total"].Help, `"quotes"`) {
		t.Fatalf("escaped help not unescaped: %q", byName["demo_total"].Help)
	}
	f := byName["demo_state"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("demo_state parsed as %+v", f)
	}
	s := f.Samples[0]
	if len(s.Labels) != 2 || s.Labels[0].Value != `a"b\c` || s.Labels[1].Value != "greedy" {
		t.Fatalf("labels parsed as %+v", s.Labels)
	}
	hf := byName["demo_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family %+v", hf)
	}
	var count, sum bool
	for _, s := range hf.Samples {
		switch s.Name {
		case "demo_seconds_count":
			count = s.Value == 2
		case "demo_seconds_sum":
			sum = s.Value > 0.07 && s.Value < 0.08
		}
	}
	if !count || !sum {
		t.Fatalf("histogram _count/_sum not attached to base family: count=%v sum=%v", count, sum)
	}
}

// TestParseExpositionPermissive pins scraper tolerance: unknown comments,
// timestamps, blank lines and undeclared samples all parse.
func TestParseExpositionPermissive(t *testing.T) {
	in := `# some random comment
up 1 1700000000000

# TYPE go_goroutines gauge
go_goroutines 12 1700000000000
escaped{name="a\nb\\c\"d"} +Inf
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["up"]; f == nil || f.Type != "untyped" || f.Samples[0].Value != 1 {
		t.Fatalf("undeclared sample parsed as %+v", f)
	}
	if f := byName["go_goroutines"]; f == nil || f.Samples[0].Value != 12 {
		t.Fatalf("timestamped sample parsed as %+v", f)
	}
	esc := byName["escaped"]
	if esc == nil || esc.Samples[0].Labels[0].Value != "a\nb\\c\"d" {
		t.Fatalf("escaped label parsed as %+v", esc)
	}
}

// TestMergeExpositions pins federation: instances merge into one exposition
// with a leading instance label per sample, family order is first-seen, and
// the result is itself parseable — composable federation.
func TestMergeExpositions(t *testing.T) {
	mk := func(v int64) []*PromFamily {
		var buf bytes.Buffer
		p := NewPromWriter(&buf)
		p.Family("demo_total", "counter", "A counter.")
		p.SampleInt("demo_total", []Label{{Name: "graph", Value: "default"}}, v)
		fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	MergeExpositions(p, []Instance{
		{Name: "d1:8080", Families: mk(1)},
		{Name: "d2:8080", Families: mk(2)},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}
	if len(fams) != 1 || fams[0].Name != "demo_total" || len(fams[0].Samples) != 2 {
		t.Fatalf("merged families %+v", fams)
	}
	for i, want := range []string{"d1:8080", "d2:8080"} {
		s := fams[0].Samples[i]
		if len(s.Labels) != 2 || s.Labels[0].Name != "instance" || s.Labels[0].Value != want {
			t.Fatalf("sample %d labels %+v, want leading instance=%s", i, s.Labels, want)
		}
		if s.Value != float64(i+1) {
			t.Fatalf("sample %d value %v", i, s.Value)
		}
	}

	// Second-level federation: merge the merged exposition again under a new
	// instance name; the sample keeps both labels.
	var buf2 bytes.Buffer
	p2 := NewPromWriter(&buf2)
	MergeExpositions(p2, []Instance{{Name: "region-a", Families: fams}})
	fams2, err := ParseExposition(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := fams2[0].Samples[0]
	if len(s.Labels) != 3 || s.Labels[0].Value != "region-a" || s.Labels[1].Value != "d1:8080" {
		t.Fatalf("re-federated labels %+v", s.Labels)
	}
}
