// Package obs is the unified observability layer of the repository: one
// place that defines how every binary logs, traces and exposes metrics, so
// a request can be followed through admission, retries, breaker trips and
// engine episodes with a single id, and a routing trajectory — the paper's
// central empirical object — can be captured, exported and split into its
// two Figure-1 phases.
//
// Four pillars:
//
//   - structured logging: a process-wide log/slog setup (LogConfig flags,
//     text or JSON handler, level) plus request-scoped loggers carried in a
//     context. The daemon edge generates a request id (RequestIDs), returns
//     it in an X-Request-ID header and threads it via WithRequestID /
//     WithLogger so every slog line of the request carries the same id.
//
//   - trace recorder: Tracer captures bounded per-hop spans of routing
//     episodes (hop index, vertex, model weight, objective value) with
//     deterministic sampling, keeps a bounded ring of completed traces and
//     exports them as JSONL (the daemon serves GET /debug/trace).
//
//   - phase analyzer: Analyze splits a trace at its maximum-weight hop into
//     the weight-increasing and objective-increasing phases of Figure 1, so
//     experiments and dashboards can report phase lengths.
//
//   - Prometheus exposition: PromWriter emits the text exposition format
//     without any dependency; WriteEngineMetrics and WriteRuntimeMetrics
//     translate the engine counters and the Go runtime into stable metric
//     names (package serve adds the serving-layer families).
package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// LogConfig is the shared logging configuration of the binaries; register
// it with RegisterLogFlags so every CLI exposes the same -log-format and
// -log-level flags.
type LogConfig struct {
	// Format selects the slog handler: "text" (human-readable key=value)
	// or "json" (machine-parseable, one object per line).
	Format string
	// Level is the minimum level emitted: debug | info | warn | error.
	Level string
}

// RegisterLogFlags registers -log-format and -log-level on fs and returns
// the config they fill.
func RegisterLogFlags(fs *flag.FlagSet) *LogConfig {
	c := &LogConfig{}
	fs.StringVar(&c.Format, "log-format", "text", "log format: text | json")
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level: debug | info | warn | error")
	return c
}

// NewLogger builds the slog logger described by the config, writing to w.
func (c *LogConfig) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch c.Level {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug | info | warn | error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch c.Format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text | json)", c.Format)
	}
}

// Setup builds the configured logger writing to w and installs it as the
// process-wide slog default, so package-level slog calls anywhere in the
// binary inherit the format and level.
func (c *LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	l, err := c.NewLogger(w)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}

// RequestIDs generates the request ids handed out at the daemon edge: a
// process salt mixed with a sequence number through the same splitmix-style
// hash the rest of the repository uses, so ids are unique per process,
// unguessable enough not to collide across restarts, and cheap (one atomic
// add, no RNG lock).
type RequestIDs struct {
	salt uint64
	seq  atomic.Uint64
}

// NewRequestIDs builds a generator salted with salt (e.g. the process start
// time; a fixed salt gives reproducible ids in tests).
func NewRequestIDs(salt uint64) *RequestIDs {
	return &RequestIDs{salt: salt}
}

// Next returns the next request: the 1-based sequence number (services use
// it as a deterministic per-request seed) and the id string for headers and
// logs.
func (r *RequestIDs) Next() (seq uint64, id string) {
	seq = r.seq.Add(1)
	return seq, fmt.Sprintf("%016x", Hash64(r.salt, seq))
}

// ctxKey keys the obs values stored in a request context.
type ctxKey int

const (
	ridKey ctxKey = iota
	loggerKey
)

// WithRequestID returns ctx carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey, id)
}

// RequestID returns the request id stored in ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// WithLogger returns ctx carrying a request-scoped logger (typically
// logger.With("request_id", id)).
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the request-scoped logger stored in ctx, falling back to
// slog.Default, so callers can log without checking how they were invoked.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return slog.Default()
}

// Hash64 mixes words into one well-distributed 64-bit value (splitmix64
// finalization) — the pure-hash determinism idiom shared with packages
// faults and serve, exported here so observability consumers (sampling,
// trace ids, request ids) agree on one mixer.
func Hash64(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// hashFloat maps the mixed words to a uniform value in [0, 1).
func hashFloat(vals ...uint64) float64 {
	return float64(Hash64(vals...)>>11) * 0x1p-53
}
