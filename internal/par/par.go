// Package par provides the tiny deterministic parallelism helper the
// experiment harness uses: fan a fixed index range out over a bounded
// worker pool. Callers precompute any random choices sequentially and make
// fn(i) a pure function of i, so parallel runs are bit-identical to
// sequential ones.
//
// Worker panics are contained: a panicking fn(i) no longer tears the whole
// process down from an unrecoverable worker goroutine. ForEachCtx surfaces
// the panic as a *PanicError naming the index; ForEach re-raises it as a
// *PanicError on the calling goroutine, where the caller can recover. In
// both cases the remaining workers stop claiming new work and drain
// cleanly. If several invocations panic, the lowest panicking index is
// reported: chunks are claimed in index order and a claimed chunk runs to
// its first panic, so the report is deterministic regardless of scheduling.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from one fn(i) invocation.
type PanicError struct {
	// Index is the invocation index whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error names the panicking index and value; the captured stack is
// available on the struct for loggers that want it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: fn(%d) panicked: %v", e.Index, e.Value)
}

// panicTracker records the lowest-index panic across workers.
type panicTracker struct {
	mu sync.Mutex
	pe *PanicError
}

// record keeps the panic with the smallest index.
func (t *panicTracker) record(pe *PanicError) {
	t.mu.Lock()
	if t.pe == nil || pe.Index < t.pe.Index {
		t.pe = pe
	}
	t.mu.Unlock()
}

// invoke runs fn(i), converting a panic into a *PanicError.
func invoke(fn func(i int), i int) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

// ForEach invokes fn(i) for every i in [0, n), using up to workers
// goroutines (0 means GOMAXPROCS). It returns when all invocations have
// finished. fn must be safe to call concurrently for distinct i. If any
// fn(i) panics, the remaining workers drain, and ForEach re-panics on the
// calling goroutine with a *PanicError naming the lowest panicking index.
func ForEach(n, workers int, fn func(i int)) {
	if pe := forEach(n, workers, fn); pe != nil {
		panic(pe)
	}
}

func forEach(n, workers int, fn func(i int)) *PanicError {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if pe := invoke(fn, i); pe != nil {
				return pe
			}
		}
		return nil
	}
	var (
		next    int64 = -1
		stopped atomic.Bool
		tracker panicTracker
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if pe := invoke(fn, i); pe != nil {
					tracker.record(pe)
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return tracker.pe
}

// ctxChunk is how many indices a worker claims per context check in
// ForEachCtx: large enough that the ctx.Err atomic load is amortized away on
// microsecond-scale fn bodies, small enough that cancellation takes effect
// within a few dozen invocations per worker.
const ctxChunk = 16

// ForEachCtx is ForEach with cooperative cancellation: workers claim indices
// in chunks of ctxChunk and re-check ctx between chunks. If ctx is cancelled
// (or its deadline passes) before all indices are processed, workers stop
// claiming new chunks and ForEachCtx returns ctx.Err(); indices already
// claimed may still run, so on a non-nil return the caller must treat the
// output as partial. A ctx that is already done on entry returns its error
// before any invocation. If any fn(i) panics, the panic is contained: the
// remaining workers drain cleanly and ForEachCtx returns a *PanicError
// naming the lowest panicking index (taking precedence over a concurrent
// cancellation). A nil error means every fn(i) ran exactly once.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// Workers resolves the worker count the ForEach family uses for n
// invocations with a requested pool size of workers (0 = GOMAXPROCS): the
// requested size capped at n, at least 1. Callers that keep per-worker state
// size their state slice with it before calling ForEachWorkerCtx with the
// same (n, workers).
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEachWorkerCtx is ForEachCtx for callers that thread per-worker state
// through the batch: fn receives (w, i) where w identifies the claiming
// worker, 0 <= w < Workers(n, workers). Distinct invocations with the same w
// never run concurrently, so fn may freely reuse state indexed by w — the
// hook the routing engine uses to run every episode of one worker on the
// same scratch buffers. Chunking, cancellation and panic containment are
// exactly ForEachCtx's.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(w, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = Workers(n, workers)
	if workers == 1 {
		for base := 0; base < n; base += ctxChunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := base; i < base+ctxChunk && i < n; i++ {
				if pe := invokeW(fn, 0, i); pe != nil {
					return pe
				}
			}
		}
		return ctx.Err()
	}
	var (
		next    int64
		stopped atomic.Bool
		tracker panicTracker
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil && !stopped.Load() {
				base := int(atomic.AddInt64(&next, ctxChunk)) - ctxChunk
				if base >= n {
					return
				}
				for i := base; i < base+ctxChunk && i < n; i++ {
					if pe := invokeW(fn, w, i); pe != nil {
						tracker.record(pe)
						stopped.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if tracker.pe != nil {
		return tracker.pe
	}
	return ctx.Err()
}

// invokeW runs fn(w, i), converting a panic into a *PanicError naming i.
func invokeW(fn func(w, i int), w, i int) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(w, i)
	return nil
}
