// Package par provides the tiny deterministic parallelism helper the
// experiment harness uses: fan a fixed index range out over a bounded
// worker pool. Callers precompute any random choices sequentially and make
// fn(i) a pure function of i, so parallel runs are bit-identical to
// sequential ones.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n), using up to workers
// goroutines (0 means GOMAXPROCS). It returns when all invocations have
// finished. fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
