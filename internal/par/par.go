// Package par provides the tiny deterministic parallelism helper the
// experiment harness uses: fan a fixed index range out over a bounded
// worker pool. Callers precompute any random choices sequentially and make
// fn(i) a pure function of i, so parallel runs are bit-identical to
// sequential ones.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n), using up to workers
// goroutines (0 means GOMAXPROCS). It returns when all invocations have
// finished. fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ctxChunk is how many indices a worker claims per context check in
// ForEachCtx: large enough that the ctx.Err atomic load is amortized away on
// microsecond-scale fn bodies, small enough that cancellation takes effect
// within a few dozen invocations per worker.
const ctxChunk = 16

// ForEachCtx is ForEach with cooperative cancellation: workers claim indices
// in chunks of ctxChunk and re-check ctx between chunks. If ctx is cancelled
// (or its deadline passes) before all indices are processed, workers stop
// claiming new chunks and ForEachCtx returns ctx.Err(); indices already
// claimed may still run, so on a non-nil return the caller must treat the
// output as partial. A ctx that is already done on entry returns its error
// before any invocation. A nil error means every fn(i) ran exactly once.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for base := 0; base < n; base += ctxChunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := base; i < base+ctxChunk && i < n; i++ {
				fn(i)
			}
		}
		return ctx.Err()
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				base := int(atomic.AddInt64(&next, ctxChunk)) - ctxChunk
				if base >= n {
					return
				}
				for i := base; i < base+ctxChunk && i < n; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
