package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	// fn(i) writing to out[i] must give identical results regardless of
	// worker count.
	const n = 500
	compute := func(workers int) []int {
		out := make([]int, n)
		ForEach(n, workers, func(i int) { out[i] = i * i })
		return out
	}
	seq := compute(1)
	parl := compute(8)
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	count := int32(0)
	ForEach(3, 64, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestForEachCtxCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		hits := make([]int32, n)
		if err := ForEachCtx(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := int32(0)
		err := ForEachCtx(ctx, 100, workers, func(int) { atomic.AddInt32(&called, 1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called != 0 {
			t.Fatalf("workers=%d: fn called %d times on a dead context", workers, called)
		}
	}
}

func TestForEachCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 100000
		called := int32(0)
		err := ForEachCtx(ctx, n, workers, func(int) {
			if atomic.AddInt32(&called, 1) == 50 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Workers stop claiming chunks after cancellation: far fewer than n
		// invocations (each worker may at most finish its current chunk).
		if c := atomic.LoadInt32(&called); int(c) >= n {
			t.Fatalf("workers=%d: all %d indices ran despite cancellation", workers, c)
		}
	}
}

func TestForEachCtxEmpty(t *testing.T) {
	called := false
	if err := ForEachCtx(context.Background(), 0, 4, func(int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachCtx(context.Background(), -3, 4, func(int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachCtxPanicContained(t *testing.T) {
	// A panicking fn must not take down the process: the panic surfaces as a
	// *PanicError naming the index, and the remaining workers drain cleanly
	// (every invocation either completes or is skipped — none is left
	// running after ForEachCtx returns).
	for _, workers := range []int{1, 4} {
		const n = 10000
		var running, completed int32
		err := ForEachCtx(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&running, 1)
			defer atomic.AddInt32(&running, -1)
			if i == 137 {
				panic("episode 137 is bad")
			}
			atomic.AddInt32(&completed, 1)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 137 {
			t.Fatalf("workers=%d: panic index %d, want 137", workers, pe.Index)
		}
		if !strings.Contains(pe.Error(), "137") || !strings.Contains(pe.Error(), "episode 137 is bad") {
			t.Fatalf("workers=%d: error %q does not name index and value", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if got := atomic.LoadInt32(&running); got != 0 {
			t.Fatalf("workers=%d: %d invocations still running after return", workers, got)
		}
		if got := atomic.LoadInt32(&completed); int(got) >= n {
			t.Fatalf("workers=%d: all %d indices completed despite panic", workers, got)
		}
	}
}

func TestForEachCtxPanicReportsLowestIndex(t *testing.T) {
	// With several panicking indices the reported one must be deterministic
	// regardless of worker scheduling: the lowest.
	for run := 0; run < 10; run++ {
		err := ForEachCtx(context.Background(), 64, 8, func(i int) {
			panic(i)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
		// Workers claim chunks in order, so index 0's chunk always runs; the
		// lowest recorded panic is therefore always 0.
		if pe.Index != 0 {
			t.Fatalf("run %d: reported index %d, want 0", run, pe.Index)
		}
	}
}

func TestForEachPanicRepanicsOnCaller(t *testing.T) {
	// ForEach has no error return: it re-raises the contained panic on the
	// calling goroutine, where the caller can recover it. The panic value is
	// the same *PanicError ForEachCtx would return.
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Index != 7 {
					t.Fatalf("workers=%d: panic index %d, want 7", workers, pe.Index)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachCtxDeterministicResults(t *testing.T) {
	// Like ForEach: fn(i) writing to out[i] gives identical results
	// regardless of worker count when the context never fires.
	const n = 500
	compute := func(workers int) []int {
		out := make([]int, n)
		if err := ForEachCtx(context.Background(), n, workers, func(i int) { out[i] = i * i }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := compute(1)
	parl := compute(8)
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}
