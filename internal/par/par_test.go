package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	// fn(i) writing to out[i] must give identical results regardless of
	// worker count.
	const n = 500
	compute := func(workers int) []int {
		out := make([]int, n)
		ForEach(n, workers, func(i int) { out[i] = i * i })
		return out
	}
	seq := compute(1)
	parl := compute(8)
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	count := int32(0)
	ForEach(3, 64, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}
