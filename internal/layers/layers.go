// Package layers implements the layer decomposition at the heart of the
// paper's proofs (Sections 7.3 and 8.1) as executable, checkable structure:
// vertices split into the first-phase class V1 (phi(v) <= w_v^-gamma) and
// the second-phase class V2, the first phase is cut into weight layers
// growing doubly exponentially (y_{j+1} = y_j^{gamma(zeta eps)}), the second
// into objective layers falling doubly exponentially
// (psi_{j+1} = psi_j^{gamma(eps)}).
//
// Lemma 8.1 proves that a.a.s. a greedy path crosses these layers in order,
// visiting each at most once, and Section 4 ("Trajectory of a Greedy Path")
// claims it visits a (1-o(1))-fraction of them. AnalyzePath measures
// exactly these properties on concrete paths; experiment E15 aggregates
// them over many routings.
package layers

import (
	"fmt"
	"math"

	"repro/internal/route"
)

// Phase classifies a path position relative to the scheme.
type Phase int

const (
	// PhaseBelow marks vertices outside the scheme (weight below w0 and
	// objective below phi0 — the start region Lemma 8.1 does not cover).
	PhaseBelow Phase = iota
	// PhaseWeight is the first phase (V1): layers indexed by weight.
	PhaseWeight
	// PhaseObjective is the second phase (V2): layers indexed by objective.
	PhaseObjective
	// PhaseAbove marks vertices beyond the last objective layer (the end
	// region: objective larger than the scheme's finest layer).
	PhaseAbove
)

// Scheme is a concrete layer decomposition for one target.
type Scheme struct {
	// Gamma is gamma(eps) = (1-eps)/(beta-2); GammaZeta is gamma(zeta*eps).
	Gamma     float64
	GammaZeta float64
	// W0 and Phi0 anchor the first weight layer and first objective layer.
	W0, Phi0 float64
	// WeightBounds are the ascending boundaries y_0 < y_1 < ...; weight
	// layer j covers [y_j, y_{j+1}).
	WeightBounds []float64
	// ObjBounds are the descending boundaries psi_0 > psi_1 > ...;
	// objective layer j covers (psi_{j+1}, psi_j].
	ObjBounds []float64
}

// Config are the free parameters of a scheme.
type Config struct {
	// Beta and Alpha are the model parameters (Alpha may be +Inf).
	Beta, Alpha float64
	// Eps is the layer epsilon (the paper's eps1); must be in (0, 1).
	Eps float64
	// W0 is the first weight boundary (the w0 >= w1(eps) of Lemma 8.1).
	W0 float64
	// Phi0 is the first objective boundary (phi0 <= phi1(eps)).
	Phi0 float64
	// WMax caps weight layers; PhiMin caps objective layers (use the
	// graph's max weight and wmin/n scales).
	WMax, PhiMin float64
}

// NewScheme builds the layer boundaries of Sections 7.3/8.1.
func NewScheme(c Config) (*Scheme, error) {
	if !(c.Beta > 2) || c.Eps <= 0 || c.Eps >= 1 {
		return nil, fmt.Errorf("layers: invalid beta %v or eps %v", c.Beta, c.Eps)
	}
	if c.W0 <= 1 || c.Phi0 <= 0 || c.Phi0 >= 1 {
		return nil, fmt.Errorf("layers: need w0 > 1 and phi0 in (0,1), got %v, %v", c.W0, c.Phi0)
	}
	if c.WMax <= c.W0 || c.PhiMin >= c.Phi0 || c.PhiMin <= 0 {
		return nil, fmt.Errorf("layers: bounds wmax %v, phimin %v inconsistent", c.WMax, c.PhiMin)
	}
	gamma := (1 - c.Eps) / (c.Beta - 2)
	if gamma <= 1 {
		return nil, fmt.Errorf("layers: gamma(eps) = %v <= 1; decrease eps or beta", gamma)
	}
	zeta := 1.5
	if !math.IsInf(c.Alpha, 1) {
		if z := (2*c.Alpha - 1) / (2*c.Alpha + 4 - 2*c.Beta); z > zeta {
			zeta = z
		}
	}
	gammaZeta := (1 - zeta*c.Eps) / (c.Beta - 2)
	if gammaZeta <= 1 {
		// Fall back to the plain gamma spacing: zeta*eps got too large for
		// doubly-exponential growth; the scheme stays valid, just denser.
		gammaZeta = gamma
	}
	s := &Scheme{Gamma: gamma, GammaZeta: gammaZeta, W0: c.W0, Phi0: c.Phi0}
	for y := c.W0; y <= c.WMax; y = math.Pow(y, gammaZeta) {
		s.WeightBounds = append(s.WeightBounds, y)
		if len(s.WeightBounds) > 64 {
			break // doubly exponential: cannot legitimately happen
		}
	}
	for psi := c.Phi0; psi >= c.PhiMin; psi = math.Pow(psi, gamma) {
		s.ObjBounds = append(s.ObjBounds, psi)
		if len(s.ObjBounds) > 64 {
			break
		}
	}
	if len(s.WeightBounds) == 0 || len(s.ObjBounds) == 0 {
		return nil, fmt.Errorf("layers: empty scheme")
	}
	return s, nil
}

// Layers returns the total number of layers (both phases).
func (s *Scheme) Layers() int { return len(s.WeightBounds) + len(s.ObjBounds) }

// Classify maps a vertex's (weight, objective) to its phase and its global
// layer order index: weight layers come first (0, 1, ...), then objective
// layers in decreasing-psi order, so a well-behaved greedy path has a
// strictly increasing order index. Order is -1 for PhaseBelow and
// Layers() for PhaseAbove.
func (s *Scheme) Classify(w, phi float64) (Phase, int) {
	inV2 := phi > math.Pow(w, -s.Gamma)
	if !inV2 {
		// First phase: locate the weight layer.
		if w < s.W0 {
			return PhaseBelow, -1
		}
		j := len(s.WeightBounds) - 1
		for ; j > 0; j-- {
			if w >= s.WeightBounds[j] {
				break
			}
		}
		return PhaseWeight, j
	}
	// Second phase. The bounds descend from psi_0 = Phi0; objectives above
	// Phi0 belong to the end region Lemma 8.1 hands off to the final
	// steps. Within the scheme, the layer of phi is the smallest bound
	// psi_j with phi <= psi_j; smaller objectives sit in deeper layers
	// that the path crosses first, so the order index grows with phi.
	if phi > s.ObjBounds[0] {
		return PhaseAbove, s.Layers()
	}
	for j := len(s.ObjBounds) - 1; j >= 0; j-- {
		if phi <= s.ObjBounds[j] {
			return PhaseObjective, len(s.WeightBounds) + (len(s.ObjBounds) - 1 - j)
		}
	}
	return PhaseAbove, s.Layers() // unreachable: phi <= ObjBounds[0] matched above
}

// PathAnalysis summarizes how a greedy path traverses the layers.
type PathAnalysis struct {
	// Orders is the per-hop global layer order index (-1 below scheme,
	// Layers() above it).
	Orders []int
	// Phases is the per-hop phase.
	Phases []Phase
	// Revisits counts hops that re-enter a layer left earlier.
	Revisits int
	// Monotone reports whether the in-scheme order indices never decrease.
	Monotone bool
	// VisitedFraction is the fraction of layers between the first and last
	// in-scheme layer that the path touched (the paper: 1-o(1)).
	VisitedFraction float64
	// PhaseSwitches counts transitions between the weight and objective
	// phases (the typical trajectory has exactly one).
	PhaseSwitches int
}

// AnalyzePath classifies every move of a routing trajectory against the
// scheme. The final move (the target, objective +Inf) is skipped. The input
// is the MoveEvent stream of one episode (route.Moves or a collected
// Observer); only the (W, Score) coordinates are read.
func (s *Scheme) AnalyzePath(hops []route.MoveEvent) PathAnalysis {
	a := PathAnalysis{Monotone: true}
	seen := map[int]bool{}
	prevOrder := -1
	prevPhase := PhaseBelow
	firstIn, lastIn := -1, -1
	visitedIn := map[int]bool{}
	for _, h := range hops {
		if math.IsInf(h.Score, 1) {
			break // the target
		}
		phase, order := s.Classify(h.W, h.Score)
		a.Orders = append(a.Orders, order)
		a.Phases = append(a.Phases, phase)
		inScheme := phase == PhaseWeight || phase == PhaseObjective
		if inScheme {
			if seen[order] && order != prevOrder {
				a.Revisits++
			}
			seen[order] = true
			if prevOrder >= 0 && order < prevOrder {
				a.Monotone = false
			}
			prevOrder = order
			if firstIn < 0 {
				firstIn = order
			}
			lastIn = order
			visitedIn[order] = true
		}
		if (phase == PhaseWeight || phase == PhaseObjective) &&
			(prevPhase == PhaseWeight || prevPhase == PhaseObjective) && phase != prevPhase {
			a.PhaseSwitches++
		}
		if phase != PhaseBelow { // below-scheme hops do not define a phase yet
			prevPhase = phase
		}
	}
	if firstIn >= 0 && lastIn >= firstIn {
		span := lastIn - firstIn + 1
		a.VisitedFraction = float64(len(visitedIn)) / float64(span)
	}
	return a
}
