package layers

import (
	"math"
	"testing"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func defaultConfig() Config {
	return Config{
		Beta: 2.5, Alpha: 2, Eps: 0.05,
		W0: 8, Phi0: 0.1,
		WMax: 1e6, PhiMin: 1e-7,
	}
}

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(defaultConfig()); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Config)) Config {
		c := defaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mutate(func(c *Config) { c.Beta = 2 }),
		mutate(func(c *Config) { c.Eps = 0 }),
		mutate(func(c *Config) { c.Eps = 1 }),
		mutate(func(c *Config) { c.W0 = 1 }),
		mutate(func(c *Config) { c.Phi0 = 1.5 }),
		mutate(func(c *Config) { c.WMax = 4 }),
		mutate(func(c *Config) { c.PhiMin = 0.5 }),
		mutate(func(c *Config) { c.Beta = 2.9; c.Eps = 0.95 }), // gamma <= 1
	}
	for i, c := range bad {
		if _, err := NewScheme(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSchemeBoundsDoublyExponential(t *testing.T) {
	s, err := NewScheme(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.WeightBounds) < 2 || len(s.ObjBounds) < 2 {
		t.Fatalf("scheme too small: %d weight, %d obj layers", len(s.WeightBounds), len(s.ObjBounds))
	}
	for j := 1; j < len(s.WeightBounds); j++ {
		prev, cur := s.WeightBounds[j-1], s.WeightBounds[j]
		if cur <= prev {
			t.Fatalf("weight bounds not increasing at %d", j)
		}
		if math.Abs(math.Log(cur)/math.Log(prev)-s.GammaZeta) > 1e-9 {
			t.Fatalf("weight ladder exponent broken at %d", j)
		}
	}
	for j := 1; j < len(s.ObjBounds); j++ {
		prev, cur := s.ObjBounds[j-1], s.ObjBounds[j]
		if cur >= prev {
			t.Fatalf("objective bounds not decreasing at %d", j)
		}
		if math.Abs(math.Log(cur)/math.Log(prev)-s.Gamma) > 1e-9 {
			t.Fatalf("objective ladder exponent broken at %d", j)
		}
	}
	if s.Layers() != len(s.WeightBounds)+len(s.ObjBounds) {
		t.Fatal("Layers() inconsistent")
	}
}

func TestClassifyRegions(t *testing.T) {
	s, err := NewScheme(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Low-weight, low-objective vertex: below the scheme.
	if ph, order := s.Classify(2, 1e-6); ph != PhaseBelow || order != -1 {
		t.Fatalf("below: %v %d", ph, order)
	}
	// Weight inside first layer, tiny objective: phase 1, layer 0.
	if ph, order := s.Classify(10, 1e-6); ph != PhaseWeight || order != 0 {
		t.Fatalf("first weight layer: %v %d", ph, order)
	}
	// Heavier vertex: later weight layer.
	_, o1 := s.Classify(10, 1e-6)
	_, o2 := s.Classify(10000, 1e-7)
	if o2 <= o1 {
		t.Fatalf("heavier vertex not in later layer: %d vs %d", o2, o1)
	}
	// V2 vertex (objective above w^-gamma = 100^-1.9 ~ 1.6e-4): objective
	// phase.
	if ph, _ := s.Classify(100, 0.01); ph != PhaseObjective {
		t.Fatalf("V2 vertex not in objective phase: %v", ph)
	}
	// Objective order increases with phi.
	if ph, _ := s.Classify(100, 1e-3); ph != PhaseObjective {
		t.Fatalf("1e-3 probe not in objective phase: %v", ph)
	}
	_, a := s.Classify(100, 1e-3)
	_, b := s.Classify(100, 0.05)
	if b <= a {
		t.Fatalf("objective order not increasing with phi: %d vs %d", b, a)
	}
	// Beyond phi0: above the scheme.
	if ph, order := s.Classify(100, 0.5); ph != PhaseAbove || order != s.Layers() {
		t.Fatalf("above: %v %d", ph, order)
	}
}

func TestClassifyOrderCoversBothPhases(t *testing.T) {
	// Weight orders < objective orders, always.
	s, err := NewScheme(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, wOrder := s.Classify(1e5, 1e-10) // deep in V1 (phi below w^-gamma)
	_, oOrder := s.Classify(100, 1e-3)  // objective phase
	if wOrder >= oOrder {
		t.Fatalf("weight order %d not before objective order %d", wOrder, oOrder)
	}
}

func TestAnalyzePathSynthetic(t *testing.T) {
	s, err := NewScheme(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A clean two-phase trajectory: weights climb, then objectives climb.
	hops := []route.MoveEvent{
		{V: 0, W: 2, Score: 1e-6},        // below scheme
		{V: 1, W: 10, Score: 2e-6},       // weight layer 0
		{V: 2, W: 600, Score: 1e-7},      // later weight layer (still V1)
		{V: 3, W: 50, Score: 1e-3},       // objective phase
		{V: 4, W: 5, Score: 0.05},        // later objective layer
		{V: 5, W: 1, Score: math.Inf(1)}, // target (skipped)
	}
	a := s.AnalyzePath(hops)
	if len(a.Orders) != 5 {
		t.Fatalf("orders %v", a.Orders)
	}
	if !a.Monotone {
		t.Fatalf("clean path reported non-monotone: %v", a.Orders)
	}
	if a.Revisits != 0 {
		t.Fatalf("revisits %d", a.Revisits)
	}
	if a.PhaseSwitches != 1 {
		t.Fatalf("phase switches %d, want 1", a.PhaseSwitches)
	}
	if a.VisitedFraction <= 0 || a.VisitedFraction > 1 {
		t.Fatalf("visited fraction %v", a.VisitedFraction)
	}
}

func TestAnalyzePathDetectsBacktrack(t *testing.T) {
	s, err := NewScheme(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hops := []route.MoveEvent{
		{W: 600, Score: 1e-7}, // high weight layer
		{W: 10, Score: 2e-6},  // back to layer 0: non-monotone
		{W: 600, Score: 1e-7}, // revisit
	}
	a := s.AnalyzePath(hops)
	if a.Monotone {
		t.Fatal("backtracking path reported monotone")
	}
	if a.Revisits == 0 {
		t.Fatal("revisit not counted")
	}
}

// TestRealGreedyPathsFollowLayers is the empirical Lemma 8.1: on real
// GIRGs, greedy paths traverse the layer order monotonically, visit each
// layer at most once, and switch phase at most once — in the overwhelming
// majority of routings.
func TestRealGreedyPathsFollowLayers(t *testing.T) {
	p := girg.DefaultParams(20000)
	p.Lambda = 0.02
	p.FixedN = true
	g, err := girg.Generate(p, 5, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxW := 0.0
	for v := 0; v < g.N(); v++ {
		maxW = math.Max(maxW, g.Weight(v))
	}
	s, err := NewScheme(Config{
		Beta: p.Beta, Alpha: p.Alpha, Eps: 0.05,
		W0: 8, Phi0: 0.1,
		WMax: maxW + 1, PhiMin: p.WMin / p.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	giant := graph.GiantComponent(g)
	rng := xrand.New(6)
	const pairs = 300
	var monotone, clean, oneSwitch, analyzed int
	for i := 0; i < pairs; i++ {
		src := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if src == tgt {
			continue
		}
		obj := route.NewStandard(g, tgt)
		res := route.Greedy(g, obj, src)
		if !res.Success || res.Moves < 3 {
			continue
		}
		analyzed++
		a := s.AnalyzePath(route.Moves(g, obj, res, 0))
		if a.Monotone {
			monotone++
		}
		if a.Revisits == 0 {
			clean++
		}
		if a.PhaseSwitches <= 1 {
			oneSwitch++
		}
	}
	if analyzed < 50 {
		t.Fatalf("only %d paths analyzed", analyzed)
	}
	if frac := float64(monotone) / float64(analyzed); frac < 0.85 {
		t.Fatalf("monotone fraction %v too low", frac)
	}
	if frac := float64(clean) / float64(analyzed); frac < 0.9 {
		t.Fatalf("no-revisit fraction %v too low", frac)
	}
	if frac := float64(oneSwitch) / float64(analyzed); frac < 0.85 {
		t.Fatalf("single-phase-switch fraction %v too low", frac)
	}
}
