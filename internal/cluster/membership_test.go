package cluster

import (
	"reflect"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testConfig(self string, clk *fakeClock) Config {
	return Config{
		Self:         Peer{ID: self, Shard: "0", Fingerprint: "f"},
		SuspectAfter: 3 * time.Second,
		DownAfter:    10 * time.Second,
		Strikes:      3,
		Seed:         42,
		Now:          clk.now,
	}
}

func states(m *Membership) map[string]PeerState {
	out := map[string]PeerState{}
	for _, st := range m.Snapshot() {
		out[st.Peer.ID] = st.State
	}
	return out
}

// TestSilenceDemotion walks one peer through alive → suspect → down purely
// by advancing the injected clock.
func TestSilenceDemotion(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership(testConfig("self:1", clk))
	m.Add(Peer{ID: "b:1"})

	if got := states(m)["b:1"]; got != StateAlive {
		t.Fatalf("fresh peer state %v, want alive", got)
	}
	clk.advance(3 * time.Second)
	if got := states(m)["b:1"]; got != StateSuspect {
		t.Fatalf("after SuspectAfter state %v, want suspect", got)
	}
	clk.advance(7 * time.Second)
	if got := states(m)["b:1"]; got != StateDown {
		t.Fatalf("after DownAfter state %v, want down", got)
	}
	if r := m.Routable(); len(r) != 0 {
		t.Fatalf("down peer still routable: %v", r)
	}

	// Direct contact revives.
	m.Receive(Peer{ID: "b:1"}, nil)
	if got := states(m)["b:1"]; got != StateAlive {
		t.Fatalf("after direct contact state %v, want alive", got)
	}
}

// TestStrikesDemotion checks that Strikes consecutive forward failures take
// a peer down without waiting for silence, and any success resets.
func TestStrikesDemotion(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership(testConfig("self:1", clk))
	m.Add(Peer{ID: "b:1"})

	m.ReportFailure("b:1")
	m.ReportFailure("b:1")
	if got := states(m)["b:1"]; got != StateAlive {
		t.Fatalf("two strikes already demoted: %v", got)
	}
	m.ReportSuccess("b:1")
	m.ReportFailure("b:1")
	m.ReportFailure("b:1")
	if got := states(m)["b:1"]; got != StateAlive {
		t.Fatalf("success did not reset strikes: %v", got)
	}
	m.ReportFailure("b:1")
	if got := states(m)["b:1"]; got != StateDown {
		t.Fatalf("three strikes state %v, want down", got)
	}
	// Struck peers only revive on direct contact.
	m.ReportSuccess("b:1")
	if got := states(m)["b:1"]; got != StateAlive {
		t.Fatalf("success after strike-out state %v, want alive", got)
	}
}

// TestIndirectCannotResurrect checks the zombie guard: a third-party view
// that still lists a down peer neither revives nor refreshes it.
func TestIndirectCannotResurrect(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership(testConfig("self:1", clk))
	m.Add(Peer{ID: "dead:1"})
	clk.advance(10 * time.Second)
	if got := states(m)["dead:1"]; got != StateDown {
		t.Fatalf("setup: state %v, want down", got)
	}

	// Gossip from a live peer relaying the dead one.
	m.Receive(Peer{ID: "c:1"}, []Peer{{ID: "dead:1"}})
	if got := states(m)["dead:1"]; got != StateDown {
		t.Fatalf("indirect view resurrected a down peer: %v", got)
	}
	if got := states(m)["c:1"]; got != StateAlive {
		t.Fatalf("direct sender not alive: %v", got)
	}

	// But an unknown peer in the same view is introduced.
	m.Receive(Peer{ID: "c:1"}, []Peer{{ID: "new:1"}})
	if got, ok := states(m)["new:1"]; !ok || got != StateAlive {
		t.Fatalf("indirect introduction failed: %v ok=%v", got, ok)
	}
}

// TestTickDeterminism checks the push-target schedule is a pure function of
// (seed, round sequence, ids): two memberships with the same inputs produce
// identical target sequences, and a different seed produces a different one.
func TestTickDeterminism(t *testing.T) {
	build := func(seed uint64) *Membership {
		clk := newFakeClock()
		cfg := testConfig("self:1", clk)
		cfg.Seed = seed
		cfg.Fanout = 2
		m := NewMembership(cfg)
		for _, id := range []string{"a:1", "b:1", "c:1", "d:1", "e:1"} {
			m.Add(Peer{ID: id})
		}
		return m
	}
	seq := func(m *Membership, rounds int) [][]string {
		var out [][]string
		for i := 0; i < rounds; i++ {
			var ids []string
			for _, p := range m.Tick() {
				ids = append(ids, p.ID)
			}
			out = append(out, ids)
		}
		return out
	}

	s1, s2 := seq(build(7), 20), seq(build(7), 20)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", s1, s2)
	}
	if reflect.DeepEqual(s1, seq(build(8), 20)) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The schedule varies across rounds (not stuck on one sample).
	varied := false
	for i := 1; i < len(s1); i++ {
		if !reflect.DeepEqual(s1[i], s1[0]) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("sampling never varied across 20 rounds")
	}
}

// TestViewBounded checks View never exceeds ViewSize+1 entries, always leads
// with self, and excludes down peers.
func TestViewBounded(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig("self:1", clk)
	cfg.ViewSize = 4
	m := NewMembership(cfg)
	for i := 0; i < 10; i++ {
		m.Add(Peer{ID: string(rune('a'+i)) + ":1"})
	}
	m.ReportFailure("a:1")
	m.ReportFailure("a:1")
	m.ReportFailure("a:1")

	v := m.View()
	if len(v) != 5 {
		t.Fatalf("view size %d, want 5 (self + ViewSize)", len(v))
	}
	if v[0].ID != "self:1" {
		t.Fatalf("view does not lead with self: %v", v)
	}
	for _, p := range v[1:] {
		if p.ID == "a:1" {
			t.Fatal("down peer shared in view")
		}
	}
}

// TestRoutableOrder checks alive peers precede suspect ones.
func TestRoutableOrder(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership(testConfig("self:1", clk))
	m.Add(Peer{ID: "old:1"})
	clk.advance(4 * time.Second) // old:1 now suspect
	m.Add(Peer{ID: "fresh:1"})

	r := m.Routable()
	if len(r) != 2 || r[0].ID != "fresh:1" || r[1].ID != "old:1" {
		t.Fatalf("routable order %v, want [fresh:1 old:1]", r)
	}
}

// TestSelfNeverTracked checks self and empty IDs are ignored everywhere.
func TestSelfNeverTracked(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership(testConfig("self:1", clk))
	m.Add(Peer{ID: "self:1"})
	m.Add(Peer{ID: ""})
	m.Receive(Peer{ID: "self:1"}, []Peer{{ID: "self:1"}, {ID: ""}})
	if n := len(m.Snapshot()); n != 0 {
		t.Fatalf("tracked %d peers, want 0", n)
	}
}
