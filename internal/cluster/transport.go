package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPTransport exchanges gossip over the peers' serving endpoints
// (POST http://<peer.ID>/cluster/gossip). The zero value is not usable;
// call NewHTTPTransport.
type HTTPTransport struct {
	client *http.Client
}

// NewHTTPTransport builds a transport whose exchanges time out after
// timeout (also the dial/header budget via the request context).
func NewHTTPTransport(timeout time.Duration) *HTTPTransport {
	return &HTTPTransport{client: &http.Client{Timeout: timeout}}
}

// Exchange implements Transport: one push/pull round trip with peer.
func (t *HTTPTransport) Exchange(ctx context.Context, peer Peer, req GossipRequest) (GossipResponse, error) {
	var resp GossipResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	url := "http://" + peer.ID + "/cluster/gossip"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client.Do(hreq)
	if err != nil {
		return resp, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		return resp, fmt.Errorf("gossip %s: status %d", peer.ID, hresp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(&resp); err != nil {
		return resp, fmt.Errorf("gossip %s: %w", peer.ID, err)
	}
	return resp, nil
}
