package cluster

import (
	"testing"
)

// TestRingStability checks keys remap only away from a removed endpoint:
// every key that stays on a surviving endpoint picks the same one.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"a:1", "b:1", "c:1"})
	reduced := NewRing([]string{"a:1", "c:1"})
	moved := 0
	for k := uint64(0); k < 2000; k++ {
		was, is := full.Pick(k), reduced.Pick(k)
		if was != "b:1" && was != is {
			t.Fatalf("key %d moved from surviving %s to %s", k, was, is)
		}
		if was == "b:1" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key ever landed on b:1")
	}
}

// TestRingBalance checks vnodes spread 3 endpoints within a loose factor.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"})
	counts := map[string]int{}
	const keys = 3000
	for k := uint64(0); k < keys; k++ {
		counts[r.Pick(k)]++
	}
	for addr, c := range counts {
		if c < keys/9 || c > keys*2/3 {
			t.Fatalf("endpoint %s got %d of %d keys — badly unbalanced: %v", addr, c, keys, counts)
		}
	}
}

// TestRingEdgeCases pins single-endpoint, duplicate and empty input.
func TestRingEdgeCases(t *testing.T) {
	if r := NewRing(nil); r != nil {
		t.Fatal("empty ring not nil")
	}
	if r := NewRing([]string{"", ""}); r != nil {
		t.Fatal("all-empty ring not nil")
	}
	r := NewRing([]string{"only:1", "only:1", ""})
	if got := r.Addrs(); len(got) != 1 || got[0] != "only:1" {
		t.Fatalf("addrs %v, want [only:1]", got)
	}
	for k := uint64(0); k < 10; k++ {
		if r.Pick(k) != "only:1" {
			t.Fatal("single-endpoint ring picked something else")
		}
	}
}

// TestRingDeterministic checks two rings over the same endpoints (any input
// order) pick identically.
func TestRingDeterministic(t *testing.T) {
	r1 := NewRing([]string{"a:1", "b:1", "c:1"})
	r2 := NewRing([]string{"c:1", "a:1", "b:1"})
	for k := uint64(0); k < 500; k++ {
		if r1.Pick(k) != r2.Pick(k) {
			t.Fatalf("input order changed pick for key %d", k)
		}
	}
}
