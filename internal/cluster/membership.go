package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// PeerState is the failure detector's verdict on one peer.
type PeerState int

const (
	// StateAlive peers answered (or were introduced) recently.
	StateAlive PeerState = iota
	// StateSuspect peers have been silent past SuspectAfter; they are still
	// routed to — the per-peer breaker decides whether that is wise — but a
	// suspect peer is the last choice when an alive one serves the shard.
	StateSuspect
	// StateDown peers were silent past DownAfter or struck out by forward
	// failures. They are not routed to and not gossiped onward, and only
	// direct contact revives them.
	StateDown
)

// String names the state for logs and metrics labels.
func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// Config tunes a Membership. The zero value (plus Self) is serviceable.
type Config struct {
	// Self identifies the local daemon; it is prepended to every shared
	// view and never expires.
	Self Peer
	// Replica is the local daemon's replica id within its shard (0 = the
	// shard's write primary). NewNode folds it into Self.
	Replica int
	// ViewSize bounds the peers shared per gossip exchange (default 16).
	ViewSize int
	// Fanout is how many peers each Tick pushes to (default 3).
	Fanout int
	// SuspectAfter is the silence that demotes a peer to suspect
	// (default 3s).
	SuspectAfter time.Duration
	// DownAfter is the silence that demotes a peer to down (default 10s).
	DownAfter time.Duration
	// Strikes is how many consecutive forward failures take a peer straight
	// to down (default 3); any success resets the count.
	Strikes int
	// Seed drives the deterministic peer sampling: Tick's targets are a
	// pure function of (Seed, round, peer ids), bit-identical at any
	// GOMAXPROCS.
	Seed uint64
	// Now overrides the clock for tests; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.ViewSize <= 0 {
		c.ViewSize = 16
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DownAfter <= c.SuspectAfter {
		c.DownAfter = c.SuspectAfter + 7*time.Second
	}
	if c.Strikes <= 0 {
		c.Strikes = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// member is one tracked peer with its failure-detector state.
type member struct {
	peer     Peer
	lastSeen time.Time
	strikes  int
	struck   bool // strikes reached the limit: down until direct contact
}

// Membership is the gossip view: a mutex-guarded peer table with a
// suspicion-based failure detector. All methods are safe for concurrent
// use; determinism comes from every sampling decision being a pure hash of
// (seed, round, ids) over a sorted snapshot, never from map order or
// timing.
type Membership struct {
	cfg Config

	mu    sync.Mutex
	self  Peer // cfg.Self plus the current live fields (SetSelfLive)
	peers map[string]*member
	round uint64
}

// NewMembership builds an empty membership around Self.
func NewMembership(cfg Config) *Membership {
	cfg = cfg.withDefaults()
	return &Membership{cfg: cfg, self: cfg.Self, peers: map[string]*member{}}
}

// Self returns the local peer identity, live fields included.
func (m *Membership) Self() Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self
}

// SetSelfLive updates the live-log position advertised in every subsequent
// gossip exchange: the serving layer calls it after each applied or imported
// mutation batch, so peers learn who is ahead without a separate protocol.
func (m *Membership) SetSelfLive(epoch uint64, generation int, liveFP string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.self.Epoch = epoch
	m.self.Generation = generation
	m.self.LiveFP = liveFP
}

// Add introduces a statically configured peer (the -peers/-join flags). It
// starts alive with a full grace period, exactly as if it had just
// answered.
func (m *Membership) Add(p Peer) {
	if p.ID == "" || p.ID == m.cfg.Self.ID {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.upsert(p, true)
}

// upsert merges one peer observation. direct reports first-hand contact
// (the peer spoke to us, answered us, or was configured explicitly): it
// refreshes liveness and revives down peers. Indirect observations (view
// entries relayed by a third party) only introduce unknown peers — they
// never refresh or revive known ones, so a stale view cannot resurrect a
// dead shard. Callers hold m.mu.
func (m *Membership) upsert(p Peer, direct bool) {
	e, ok := m.peers[p.ID]
	if !ok {
		m.peers[p.ID] = &member{peer: p, lastSeen: m.cfg.Now()}
		return
	}
	if direct {
		e.peer = p // shard/fingerprint may legitimately change on restart
		e.lastSeen = m.cfg.Now()
		e.strikes = 0
		e.struck = false
	}
}

// Receive merges one gossip exchange — the sender itself (direct contact)
// plus its relayed view (indirect) — and returns the bounded local view to
// answer with. It is the server half of push/pull; the client half feeds
// the response through Receive too, with from = the responder.
func (m *Membership) Receive(from Peer, view []Peer) []Peer {
	m.mu.Lock()
	if from.ID != "" && from.ID != m.cfg.Self.ID {
		m.upsert(from, true)
	}
	for _, p := range view {
		if p.ID == "" || p.ID == m.cfg.Self.ID {
			continue
		}
		m.upsert(p, false)
	}
	m.mu.Unlock()
	return m.View()
}

// ReportFailure strikes a peer after a failed forward; Strikes consecutive
// failures take it down without waiting for the silence timeout.
func (m *Membership) ReportFailure(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.peers[id]; ok {
		e.strikes++
		if e.strikes >= m.cfg.Strikes {
			e.struck = true
		}
	}
}

// ReportSuccess records first-hand evidence that a peer serves: a
// successful forward or gossip exchange.
func (m *Membership) ReportSuccess(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.peers[id]; ok {
		e.lastSeen = m.cfg.Now()
		e.strikes = 0
		e.struck = false
	}
}

// state derives the failure-detector verdict at time now. Callers hold m.mu.
func (m *Membership) state(e *member, now time.Time) PeerState {
	if e.struck {
		return StateDown
	}
	silence := now.Sub(e.lastSeen)
	switch {
	case silence >= m.cfg.DownAfter:
		return StateDown
	case silence >= m.cfg.SuspectAfter:
		return StateSuspect
	}
	return StateAlive
}

// PeerStatus is one row of the membership table, for /readyz, metrics and
// tests.
type PeerStatus struct {
	Peer    Peer      `json:"peer"`
	State   PeerState `json:"-"`
	StateS  string    `json:"state"`
	Strikes int       `json:"strikes,omitempty"`
}

// Snapshot lists every tracked peer with its current state, sorted by ID.
func (m *Membership) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	out := make([]PeerStatus, 0, len(m.peers))
	for _, e := range m.peers {
		st := m.state(e, now)
		out = append(out, PeerStatus{Peer: e.peer, State: st, StateS: st.String(), Strikes: e.strikes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.ID < out[j].Peer.ID })
	return out
}

// States maps every tracked peer id to its current failure-detector state
// in one lock acquisition — the hot forward path ranks replicas with this
// instead of the heavier Snapshot (no sorting, no state strings).
func (m *Membership) States() map[string]PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	out := make(map[string]PeerState, len(m.peers))
	for id, e := range m.peers {
		out[id] = m.state(e, now)
	}
	return out
}

// Routable returns the peers a forward may target — alive first, then
// suspect, each group sorted by ID. Down peers are excluded.
func (m *Membership) Routable() []Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	var alive, suspect []Peer
	for _, e := range m.peers {
		switch m.state(e, now) {
		case StateAlive:
			alive = append(alive, e.peer)
		case StateSuspect:
			suspect = append(suspect, e.peer)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
	sort.Slice(suspect, func(i, j int) bool { return suspect[i].ID < suspect[j].ID })
	return append(alive, suspect...)
}

// View returns the bounded view shared in gossip exchanges: self first,
// then up to ViewSize non-down peers. When more qualify than fit, the kept
// subset is a deterministic hash sample varied per round, so every peer
// eventually propagates (plain truncation of a sorted list would starve the
// tail forever).
func (m *Membership) View() []Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	var candidates []Peer
	for _, e := range m.peers {
		if m.state(e, now) != StateDown {
			candidates = append(candidates, e.peer)
		}
	}
	candidates = m.sample(candidates, m.cfg.ViewSize, m.round)
	return append([]Peer{m.self}, candidates...)
}

// Tick advances one gossip round and returns this round's push targets: a
// deterministic pure-hash sample of Fanout non-down peers. Rounds are
// counted internally, so the schedule is a pure function of (Seed, round
// sequence, peer ids) regardless of worker count or wall clock.
func (m *Membership) Tick() []Peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.round++
	now := m.cfg.Now()
	var candidates []Peer
	for _, e := range m.peers {
		if m.state(e, now) != StateDown {
			candidates = append(candidates, e.peer)
		}
	}
	return m.sample(candidates, m.cfg.Fanout, m.round)
}

// Round reports the gossip rounds ticked so far.
func (m *Membership) Round() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.round
}

// sample keeps up to k of the candidates, ordered by
// Hash64(seed, round, id): a deterministic shuffle that varies per round
// and never consults a shared RNG. Callers hold m.mu.
func (m *Membership) sample(candidates []Peer, k int, round uint64) []Peer {
	sort.Slice(candidates, func(i, j int) bool {
		hi := obs.Hash64(m.cfg.Seed, round, idHash(candidates[i].ID))
		hj := obs.Hash64(m.cfg.Seed, round, idHash(candidates[j].ID))
		if hi != hj {
			return hi < hj
		}
		return candidates[i].ID < candidates[j].ID
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

// idHash folds a peer id into the word-based mixer: 8 bytes per word,
// length-salted so "ab"+"c" and "a"+"bc" differ.
func idHash(id string) uint64 {
	x := uint64(len(id))
	var word uint64
	for i := 0; i < len(id); i++ {
		word = word<<8 | uint64(id[i])
		if (i+1)%8 == 0 {
			x = obs.Hash64(x, word)
			word = 0
		}
	}
	if len(id)%8 != 0 {
		x = obs.Hash64(x, word)
	}
	return x
}

// CountByState tallies the membership for metrics gauges.
func (m *Membership) CountByState() map[PeerState]int {
	counts := map[PeerState]int{StateAlive: 0, StateSuspect: 0, StateDown: 0}
	for _, st := range m.Snapshot() {
		counts[st.State]++
	}
	return counts
}

// String summarizes the table for logs.
func (m *Membership) String() string {
	c := m.CountByState()
	return fmt.Sprintf("cluster: %d alive, %d suspect, %d down",
		c[StateAlive], c[StateSuspect], c[StateDown])
}
