package cluster

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
)

// testGraph builds a small geometric graph with deterministic pseudo-random
// positions (splitmix64 stream).
func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	space := torus.MustSpace(2)
	pos := torus.NewPositions(space, n)
	x := uint64(123)
	next := func() float64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) * 0x1p-53
	}
	buf := make([]float64, 2)
	for i := 0; i < n; i++ {
		buf[0], buf[1] = next(), next()
		pos.Set(i, buf)
	}
	b, err := graph.NewBuilder(n, pos, nil, float64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(i-1, i)
	}
	return b.Finish()
}

func mustPrefix(t *testing.T, s string) torus.Prefix {
	t.Helper()
	p, err := torus.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNodePartition builds the 3-shard node set over one graph and checks
// the ownership masks partition the vertex set and OwnerOf resolves every
// foreign vertex to the peer whose mask owns it.
func TestNodePartition(t *testing.T) {
	g := testGraph(t, 300)
	clk := newFakeClock()
	specs := []string{"0", "10", "11"}
	nodes := make([]*Node, len(specs))
	for i, spec := range specs {
		n, err := NewNode(g, mustPrefix(t, spec), fmt.Sprintf("n%d:1", i), Config{Now: clk.now})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	// Full static mesh.
	for _, n := range nodes {
		for _, p := range nodes {
			if p != n {
				n.Members().Add(p.Self())
			}
		}
	}

	total := 0
	for _, n := range nodes {
		total += n.OwnedCount()
	}
	if total != g.N() {
		t.Fatalf("shards own %d vertices total, want %d", total, g.N())
	}

	for v := 0; v < g.N(); v++ {
		owners := 0
		for _, n := range nodes {
			if n.Owned(v) {
				owners++
				continue
			}
			peer, ok := n.OwnerOf(v)
			if !ok {
				t.Fatalf("node %s: no owner for foreign vertex %d", n.Self().ID, v)
			}
			// The resolved peer's node must actually own v.
			for _, o := range nodes {
				if o.Self().ID == peer.ID && !o.Owned(v) {
					t.Fatalf("node %s resolved vertex %d to %s, which does not own it",
						n.Self().ID, v, peer.ID)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("vertex %d owned by %d shards, want 1", v, owners)
		}
	}
}

// TestOwnerOfExcludesMismatchedFingerprint checks a peer serving a different
// snapshot is never resolved as an owner.
func TestOwnerOfExcludesMismatchedFingerprint(t *testing.T) {
	g := testGraph(t, 100)
	clk := newFakeClock()
	n, err := NewNode(g, mustPrefix(t, "0"), "a:1", Config{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	n.Members().Add(Peer{ID: "b:1", Shard: "1", Fingerprint: "deadbeef00000000"})
	for v := 0; v < g.N(); v++ {
		if n.Owned(v) {
			continue
		}
		if peer, ok := n.OwnerOf(v); ok {
			t.Fatalf("vertex %d resolved to mismatched-snapshot peer %s", v, peer.ID)
		}
	}
}

// TestOwnerOfExcludesDown checks a down peer is never resolved, the
// shard-unreachable precondition.
func TestOwnerOfExcludesDown(t *testing.T) {
	g := testGraph(t, 100)
	clk := newFakeClock()
	n, err := NewNode(g, mustPrefix(t, "0"), "a:1", Config{Now: clk.now, DownAfter: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	self := n.Self()
	n.Members().Add(Peer{ID: "b:1", Shard: "1", Fingerprint: self.Fingerprint})

	foreign := -1
	for v := 0; v < g.N(); v++ {
		if !n.Owned(v) {
			foreign = v
			break
		}
	}
	if foreign < 0 {
		t.Skip("prefix 0 owns everything in this draw")
	}
	if _, ok := n.OwnerOf(foreign); !ok {
		t.Fatal("live peer not resolved")
	}
	clk.advance(11e9)
	if peer, ok := n.OwnerOf(foreign); ok {
		t.Fatalf("down peer %s still resolved", peer.ID)
	}
}

// TestNewNodeRejectsEmptyShard checks a prefix owning zero vertices errors.
func TestNewNodeRejectsEmptyShard(t *testing.T) {
	g := testGraph(t, 20)
	clk := newFakeClock()
	// A 30-bit-deep all-ones prefix will own nothing with n=20 points w.h.p.
	spec := ""
	for i := 0; i < 30; i++ {
		spec += "1"
	}
	if _, err := NewNode(g, mustPrefix(t, spec), "a:1", Config{Now: clk.now}); err == nil {
		t.Fatal("empty shard accepted")
	}
}
