package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/torus"
)

// Node is one daemon's shard map: the graph it serves, the deep Morton code
// of every vertex, the ownership mask of the local prefix, and the
// membership view that resolves which peer owns a foreign vertex.
type Node struct {
	self    Peer
	prefix  torus.Prefix
	g       *graph.Graph
	codes   []uint64
	bits    int
	owned   []bool
	ownedN  int
	members *Membership
}

// NewNode builds the shard map of prefix over g and wraps the membership
// view around it. cfg.Self is overwritten with the node's own identity
// (id, shard spelling, snapshot fingerprint).
func NewNode(g *graph.Graph, prefix torus.Prefix, id string, cfg Config) (*Node, error) {
	codes, bits, err := graph.MortonCodes(g)
	if err != nil {
		return nil, err
	}
	owned, err := graph.OwnedMask(codes, bits, prefix)
	if err != nil {
		return nil, err
	}
	n := &Node{
		self: Peer{
			ID:          id,
			Shard:       prefix.String(),
			Fingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
			Replica:     cfg.Replica,
		},
		prefix: prefix,
		g:      g,
		codes:  codes,
		bits:   bits,
		owned:  owned,
	}
	for _, o := range owned {
		if o {
			n.ownedN++
		}
	}
	if n.ownedN == 0 {
		return nil, fmt.Errorf("cluster: shard %q owns no vertices of this snapshot", prefix.String())
	}
	cfg.Self = n.self
	n.members = NewMembership(cfg)
	return n, nil
}

// Self returns the local peer identity, including the live-log position
// last published with SetLive.
func (n *Node) Self() Peer { return n.members.Self() }

// Replica returns the local daemon's replica id within its shard.
func (n *Node) Replica() int { return n.self.Replica }

// SetLive publishes the local replicated-log position into the membership's
// self entry, so every subsequent gossip exchange advertises it.
func (n *Node) SetLive(epoch uint64, generation int, liveFP string) {
	n.members.SetSelfLive(epoch, generation, liveFP)
}

// Shard returns the local Morton prefix.
func (n *Node) Shard() torus.Prefix { return n.prefix }

// Graph returns the snapshot the shard map was built over. The serving
// layer compares it by pointer against the graph a request resolved: after
// a hot swap the mask no longer applies and routing falls back to
// single-node mode.
func (n *Node) Graph() *graph.Graph { return n.g }

// Members returns the membership view.
func (n *Node) Members() *Membership { return n.members }

// Owned reports whether vertex v belongs to the local shard.
func (n *Node) Owned(v int) bool { return n.owned[v] }

// OwnedMask exposes the ownership mask for the partial router; callers must
// not modify it.
func (n *Node) OwnedMask() []bool { return n.owned }

// OwnedCount returns the number of vertices the local shard owns.
func (n *Node) OwnedCount() int { return n.ownedN }

// OwnerOf resolves the first peer responsible for vertex v — the head of
// OwnersOf. ok is false when no routable peer covers the vertex — the
// shard-unreachable case.
func (n *Node) OwnerOf(v int) (Peer, bool) {
	owners := n.OwnersOf(v)
	if len(owners) == 0 {
		return Peer{}, false
	}
	return owners[0], true
}

// OwnersOf resolves every routable replica of the shard owning vertex v:
// each peer's shard prefix must match v's Morton code and it must serve the
// same snapshot (fingerprint equality), so a hop is never forwarded into a
// mismatched graph. Alive peers come before suspect ones (Routable orders
// them), and within a liveness class replicas are ordered by (replica id,
// peer id) — a deterministic failover sequence: the forward path tries them
// in order and hedges onto the next one.
func (n *Node) OwnersOf(v int) []Peer {
	code := n.codes[v]
	var owners []Peer
	for _, p := range n.members.Routable() {
		if p.Fingerprint != n.self.Fingerprint {
			continue
		}
		pp, err := torus.ParsePrefix(p.Shard)
		if err != nil || pp.Valid(n.bits) != nil {
			continue
		}
		if pp.Matches(code, n.bits) {
			owners = append(owners, p)
		}
	}
	// Routable returns alive peers before suspect ones; a stable sort by
	// (replica, id) within the slice would reorder across that boundary, so
	// order replicas only within each liveness class.
	sortReplicas(owners, n.members)
	return owners
}

// sortReplicas orders each liveness-contiguous run of peers by (replica id,
// peer id). Routable's alive-before-suspect partition is preserved because
// membership state is re-derived per peer and used as the primary key.
func sortReplicas(peers []Peer, m *Membership) {
	if len(peers) < 2 {
		return
	}
	state := m.States()
	sort.SliceStable(peers, func(i, j int) bool {
		si, sj := state[peers[i].ID], state[peers[j].ID]
		if si != sj {
			return si < sj
		}
		if peers[i].Replica != peers[j].Replica {
			return peers[i].Replica < peers[j].Replica
		}
		return peers[i].ID < peers[j].ID
	})
}

// ReplicaSet returns the routable peers serving the local shard — the
// targets of journal shipping and the candidates anti-entropy pulls from.
// Self is not tracked by membership and therefore not included.
func (n *Node) ReplicaSet() []Peer {
	var out []Peer
	for _, p := range n.members.Routable() {
		if p.SameShard(n.self) {
			out = append(out, p)
		}
	}
	sortReplicas(out, n.members)
	return out
}

// ReplicaLag is one same-shard replica's replication divergence as seen from
// the local daemon: the peer's gossip-advertised live position against the
// local one. Gossip-learned positions lag direct contact by up to a gossip
// round, so BatchesBehind is a floor on convergence, not an exact debt — but
// a value that keeps growing across rounds is a replica falling behind.
type ReplicaLag struct {
	// Peer is the replica's advertised id, State its failure-detector state.
	Peer  string `json:"peer"`
	State string `json:"state"`
	// Epoch and Generation are the peer's advertised live position (zero
	// until its first gossip exchange carries one).
	Epoch      uint64 `json:"epoch"`
	Generation int    `json:"generation"`
	// BatchesBehind is local epoch minus peer epoch when both are on the
	// same generation: positive means the peer is behind this daemon,
	// negative that it is ahead (anti-entropy will pull from it). Zero when
	// generations differ — epochs on different generations don't compare.
	BatchesBehind int64 `json:"batches_behind"`
	// GenerationSkew is peer generation minus local generation; nonzero
	// flags a misconfigured shard (compaction is disabled under replication).
	GenerationSkew int `json:"generation_skew"`
}

// ReplicaLags reports the divergence of every same-shard replica against the
// local live position (epoch, generation), ordered like ReplicaSet. Peers
// that have not advertised a live position yet report their zero values.
func (n *Node) ReplicaLags(epoch uint64, generation int) []ReplicaLag {
	replicas := n.ReplicaSet()
	if len(replicas) == 0 {
		return nil
	}
	states := n.members.States()
	out := make([]ReplicaLag, 0, len(replicas))
	for _, p := range replicas {
		lag := ReplicaLag{
			Peer:           p.ID,
			State:          states[p.ID].String(),
			Epoch:          p.Epoch,
			Generation:     p.Generation,
			GenerationSkew: p.Generation - generation,
		}
		if p.Generation == generation {
			lag.BatchesBehind = int64(epoch) - int64(p.Epoch)
		}
		out = append(out, lag)
	}
	return out
}

// Transport carries one gossip exchange to a peer and returns its answer.
type Transport interface {
	Exchange(ctx context.Context, peer Peer, req GossipRequest) (GossipResponse, error)
}

// GossipPhase is the deterministic jitter offset a daemon waits before its
// first gossip round: a pure hash of the peer id spread uniformly over
// [0, interval). Daemons started together therefore de-synchronize
// immediately instead of gossiping in lockstep rounds forever — same idea
// as the retry backoff's pure-hash jitter, and like it bit-identical at any
// GOMAXPROCS (no shared RNG, no wall clock).
func GossipPhase(id string, interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	return time.Duration(obs.Hash64(idHash(id), uint64(interval)) % uint64(interval))
}

// RunGossip drives the push/pull loop until ctx is done: after a
// deterministic per-peer phase offset (GossipPhase), every interval it
// ticks the membership round, pushes the bounded view to that round's
// deterministic peer sample, and merges each answer. Exchange failures
// strike the peer; the failure detector does the rest.
func (n *Node) RunGossip(ctx context.Context, interval time.Duration, t Transport, logger *slog.Logger) {
	if logger == nil {
		logger = slog.Default()
	}
	if phase := GossipPhase(n.self.ID, interval); phase > 0 {
		timer := time.NewTimer(phase)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		targets := n.members.Tick()
		view := n.members.View()
		for _, target := range targets {
			resp, err := t.Exchange(ctx, target, GossipRequest{From: n.Self(), View: view})
			if err != nil {
				n.members.ReportFailure(target.ID)
				logger.Debug("gossip exchange failed", "peer", target.ID, "err", err)
				continue
			}
			n.members.Receive(resp.Self, resp.View)
		}
	}
}
