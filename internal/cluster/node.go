package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Node is one daemon's shard map: the graph it serves, the deep Morton code
// of every vertex, the ownership mask of the local prefix, and the
// membership view that resolves which peer owns a foreign vertex.
type Node struct {
	self    Peer
	prefix  torus.Prefix
	g       *graph.Graph
	codes   []uint64
	bits    int
	owned   []bool
	ownedN  int
	members *Membership
}

// NewNode builds the shard map of prefix over g and wraps the membership
// view around it. cfg.Self is overwritten with the node's own identity
// (id, shard spelling, snapshot fingerprint).
func NewNode(g *graph.Graph, prefix torus.Prefix, id string, cfg Config) (*Node, error) {
	codes, bits, err := graph.MortonCodes(g)
	if err != nil {
		return nil, err
	}
	owned, err := graph.OwnedMask(codes, bits, prefix)
	if err != nil {
		return nil, err
	}
	n := &Node{
		self: Peer{
			ID:          id,
			Shard:       prefix.String(),
			Fingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
		},
		prefix: prefix,
		g:      g,
		codes:  codes,
		bits:   bits,
		owned:  owned,
	}
	for _, o := range owned {
		if o {
			n.ownedN++
		}
	}
	if n.ownedN == 0 {
		return nil, fmt.Errorf("cluster: shard %q owns no vertices of this snapshot", prefix.String())
	}
	cfg.Self = n.self
	n.members = NewMembership(cfg)
	return n, nil
}

// Self returns the local peer identity.
func (n *Node) Self() Peer { return n.self }

// Shard returns the local Morton prefix.
func (n *Node) Shard() torus.Prefix { return n.prefix }

// Graph returns the snapshot the shard map was built over. The serving
// layer compares it by pointer against the graph a request resolved: after
// a hot swap the mask no longer applies and routing falls back to
// single-node mode.
func (n *Node) Graph() *graph.Graph { return n.g }

// Members returns the membership view.
func (n *Node) Members() *Membership { return n.members }

// Owned reports whether vertex v belongs to the local shard.
func (n *Node) Owned(v int) bool { return n.owned[v] }

// OwnedMask exposes the ownership mask for the partial router; callers must
// not modify it.
func (n *Node) OwnedMask() []bool { return n.owned }

// OwnedCount returns the number of vertices the local shard owns.
func (n *Node) OwnedCount() int { return n.ownedN }

// OwnerOf resolves the peer responsible for vertex v among the routable
// members: its shard prefix must match v's Morton code and it must serve
// the same snapshot (fingerprint equality), so a hop is never forwarded
// into a mismatched graph. Alive peers win over suspect ones (Routable
// orders them); ok is false when no routable peer covers the vertex — the
// shard-unreachable case.
func (n *Node) OwnerOf(v int) (Peer, bool) {
	code := n.codes[v]
	for _, p := range n.members.Routable() {
		if p.Fingerprint != n.self.Fingerprint {
			continue
		}
		pp, err := torus.ParsePrefix(p.Shard)
		if err != nil || pp.Valid(n.bits) != nil {
			continue
		}
		if pp.Matches(code, n.bits) {
			return p, true
		}
	}
	return Peer{}, false
}

// Transport carries one gossip exchange to a peer and returns its answer.
type Transport interface {
	Exchange(ctx context.Context, peer Peer, req GossipRequest) (GossipResponse, error)
}

// RunGossip drives the push/pull loop until ctx is done: every interval it
// ticks the membership round, pushes the bounded view to that round's
// deterministic peer sample, and merges each answer. Exchange failures
// strike the peer; the failure detector does the rest.
func (n *Node) RunGossip(ctx context.Context, interval time.Duration, t Transport, logger *slog.Logger) {
	if logger == nil {
		logger = slog.Default()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		targets := n.members.Tick()
		view := n.members.View()
		for _, target := range targets {
			resp, err := t.Exchange(ctx, target, GossipRequest{From: n.self, View: view})
			if err != nil {
				n.members.ReportFailure(target.ID)
				logger.Debug("gossip exchange failed", "peer", target.ID, "err", err)
				continue
			}
			n.members.Receive(resp.Self, resp.View)
		}
	}
}
