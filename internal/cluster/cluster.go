// Package cluster turns the single-process routing daemon into a
// Morton-sharded cluster: each daemon owns the vertices whose deep Morton
// (Z-order) code starts with its shard prefix, routes greedily while the
// walk stays local, and forwards the continuation to the owning peer when
// it crosses a shard boundary. Because greedy routing under the GIRG
// objective is geometrically local — the paper's whole point — most hops
// stay shard-local and a forward is rare.
//
// Three pieces:
//
//   - Membership: a Brahms-style gossip view. Every daemon keeps a bounded
//     partial view of its peers, pushes it to a deterministic pure-hash
//     sample of them each tick and pulls their view back (push/pull), so
//     the cluster converges without any coordinator. A suspicion-based
//     failure detector (injectable clock) demotes silent peers to suspect
//     and then down; forward failures reported by the serving layer strike
//     peers down faster than silence alone would. Down peers are only
//     revived by direct contact — a stale third-party view cannot resurrect
//     a dead shard.
//
//   - Node: the shard map — the deep Morton code of every vertex, the
//     ownership mask of the local prefix, and OwnerOf, which resolves the
//     peer responsible for a vertex among the currently routable members
//     (alive or merely suspect, serving the same snapshot fingerprint).
//
//   - Ring: a consistent-hash multi-endpoint picker for clients
//     (cmd/route -server a,b,c and cmd/loadgen), so query load spreads
//     deterministically across entry daemons.
//
// The package is transport-agnostic: the serving layer (internal/serve)
// supplies the HTTP transport and the hop-forwarding path with its per-peer
// circuit breakers; tests drive Membership with a fake clock and an
// in-memory transport, bit-identical at any GOMAXPROCS.
package cluster

// Peer identifies one shard daemon of the cluster. ID doubles as the
// transport address (host:port the daemon advertises); Shard is its Morton
// prefix in binary-digit form; Fingerprint is the %016x digest of the graph
// snapshot it serves, so peers can detect shard/graph mismatch before
// forwarding a hop into the wrong snapshot.
//
// A shard may be served by several daemons — a replica set: peers sharing
// the same Shard and Fingerprint. Replica distinguishes them (0 is the
// write primary of the shard's replicated mutation log, if any), and the
// live fields advertise the replicated log's position so anti-entropy can
// tell who is behind from gossip alone: Epoch counts applied batches of the
// current Generation, and LiveFP is the %016x digest of the live graph
// (base plus overlay). Daemons without a mutation log leave them zero.
type Peer struct {
	ID          string `json:"id"`
	Shard       string `json:"shard"`
	Fingerprint string `json:"fingerprint"`
	Replica     int    `json:"replica,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Generation  int    `json:"generation,omitempty"`
	LiveFP      string `json:"live_fp,omitempty"`
}

// SameShard reports whether two peers serve the same shard of the same
// snapshot — the replica-set relation.
func (p Peer) SameShard(q Peer) bool {
	return p.Shard == q.Shard && p.Fingerprint == q.Fingerprint
}

// GossipRequest is one push half of a gossip exchange: the sender
// introduces itself and shares its bounded view.
type GossipRequest struct {
	From Peer   `json:"from"`
	View []Peer `json:"view"`
}

// GossipResponse is the pull half: the receiver answers with itself and its
// own bounded view.
type GossipResponse struct {
	Self Peer   `json:"self"`
	View []Peer `json:"view"`
}
