package cluster

import (
	"sort"

	"repro/internal/obs"
)

// Ring is a consistent-hash endpoint picker for multi-daemon clients
// (cmd/route -server a,b,c and cmd/loadgen): each key lands on a stable
// endpoint, and removing one endpoint only remaps its own keys. Vnodes
// smooth the load split. Immutable after construction, safe for concurrent
// Pick.
type Ring struct {
	addrs  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	addr int // index into addrs
}

// ringVnodes is the virtual-node count per endpoint — enough to keep the
// load split within a few percent of even for single-digit clusters.
const ringVnodes = 64

// NewRing builds a ring over the given endpoints (duplicates and empties
// dropped). A nil ring is returned for an empty list.
func NewRing(addrs []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		r.addrs = append(r.addrs, a)
	}
	if len(r.addrs) == 0 {
		return nil
	}
	sort.Strings(r.addrs)
	r.points = make([]ringPoint, 0, len(r.addrs)*ringVnodes)
	for i, a := range r.addrs {
		h := idHash(a)
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: obs.Hash64(h, uint64(v)), addr: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Pick returns the endpoint owning key: the first ring point at or after
// the key's hash, wrapping around.
func (r *Ring) Pick(key uint64) string {
	h := obs.Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.addrs[r.points[i].addr]
}

// Addrs lists the ring's endpoints, sorted.
func (r *Ring) Addrs() []string { return append([]string(nil), r.addrs...) }

// Sequence returns every endpoint in the key's ring order: the Pick winner
// first, then each remaining distinct endpoint as the ring is walked
// onward. Clients use it as a deterministic failover order — when the
// primary endpoint answers shard-unreachable or is down, the episode
// retries against Sequence(key)[1].
func (r *Ring) Sequence(key uint64) []string {
	h := obs.Hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.addrs))
	out := make([]string, 0, len(r.addrs))
	for i := 0; i < len(r.points) && len(out) < len(r.addrs); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, r.addrs[p.addr])
		}
	}
	return out
}
