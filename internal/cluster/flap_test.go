package cluster

import (
	"testing"
	"time"
)

// routableIDs flattens Routable() for membership assertions.
func routableIDs(m *Membership) map[string]bool {
	out := map[string]bool{}
	for _, p := range m.Routable() {
		out[p.ID] = true
	}
	return out
}

// TestFlapNotMarkedDown is the flapping gate: a peer that oscillates
// alive → suspect → alive — silent past SuspectAfter but always answering
// again before DownAfter — must never be observed down, over many flap
// cycles and for several flap cadences. Marking a flapping peer down would
// turn every transient network hiccup into a full shard outage.
func TestFlapNotMarkedDown(t *testing.T) {
	cases := []struct {
		name    string
		silence time.Duration // how long the peer stays quiet each cycle
		suspect bool          // long enough to look suspect at the silence peak?
	}{
		{"within-suspect-window", 2 * time.Second, false},
		{"flaps-to-suspect", 5 * time.Second, true},
		{"one-tick-under-down", 10*time.Second - time.Millisecond, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			m := NewMembership(testConfig("self", clk))
			m.Add(Peer{ID: "flappy", Shard: "1", Fingerprint: "f"})
			for cycle := 0; cycle < 8; cycle++ {
				clk.advance(tc.silence)
				st := states(m)["flappy"]
				if st == StateDown {
					t.Fatalf("cycle %d: flapping peer marked down after %v of silence (DownAfter is 10s)",
						cycle, tc.silence)
				}
				if tc.suspect && st != StateSuspect {
					t.Fatalf("cycle %d: want suspect at the silence peak, got %v", cycle, st)
				}
				if !routableIDs(m)["flappy"] {
					t.Fatalf("cycle %d: flapping peer dropped from the routable set while %v", cycle, st)
				}
				// The peer answers a gossip exchange: direct contact, back to
				// alive with a full grace period.
				m.ReportSuccess("flappy")
				if got := states(m)["flappy"]; got != StateAlive {
					t.Fatalf("cycle %d: peer not alive after direct contact, got %v", cycle, got)
				}
			}
		})
	}
}

// TestStrikesDoNotReviveDownPeer pins the one-way-street property of the
// failure detector: once a peer is down — struck out by forward failures or
// silent past DownAfter — further failure reports, indirect gossip mentions
// and strike-count resets via more failures must never put it back into the
// routable set. Only first-hand contact (ReportSuccess, Receive from the
// peer itself, explicit Add) revives.
func TestStrikesDoNotReviveDownPeer(t *testing.T) {
	type step struct {
		advance  time.Duration // clock advance before the action
		failures int           // ReportFailure calls
		indirect bool          // relay the peer in a third party's view
	}
	cases := []struct {
		name string
		down func(m *Membership, clk *fakeClock) // how the peer goes down
		then []step
	}{
		{
			name: "struck-out-then-more-failures",
			down: func(m *Membership, clk *fakeClock) {
				for i := 0; i < 3; i++ {
					m.ReportFailure("p")
				}
			},
			then: []step{{failures: 5}, {advance: time.Second, failures: 1}},
		},
		{
			name: "silent-then-failures-wrap-strikes",
			down: func(m *Membership, clk *fakeClock) { clk.advance(11 * time.Second) },
			// 2 failures stay under Strikes=3: if strikes were consulted
			// before silence, the low count must not read as healthy.
			then: []step{{failures: 2}},
		},
		{
			name: "struck-out-then-gossip-relay",
			down: func(m *Membership, clk *fakeClock) {
				for i := 0; i < 3; i++ {
					m.ReportFailure("p")
				}
			},
			then: []step{{indirect: true}, {advance: time.Second, indirect: true, failures: 1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			m := NewMembership(testConfig("self", clk))
			m.Add(Peer{ID: "p", Shard: "1", Fingerprint: "f"})
			m.Add(Peer{ID: "relay", Shard: "0", Fingerprint: "f"})
			tc.down(m, clk)
			if got := states(m)["p"]; got != StateDown {
				t.Fatalf("setup: peer not down, got %v", got)
			}
			for i, s := range tc.then {
				clk.advance(s.advance)
				for f := 0; f < s.failures; f++ {
					m.ReportFailure("p")
				}
				if s.indirect {
					m.Receive(Peer{ID: "relay", Shard: "0", Fingerprint: "f"},
						[]Peer{{ID: "p", Shard: "1", Fingerprint: "f"}})
				}
				if got := states(m)["p"]; got != StateDown {
					t.Fatalf("step %d: down peer revived to %v", i, got)
				}
				if routableIDs(m)["p"] {
					t.Fatalf("step %d: down peer back in the routable set", i)
				}
			}
			// The legitimate revival path still works: the peer itself answers.
			m.ReportSuccess("p")
			if got := states(m)["p"]; got != StateAlive {
				t.Fatalf("direct contact did not revive: %v", got)
			}
		})
	}
}
