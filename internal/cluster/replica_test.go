package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestGossipPhaseDistinct pins the gossip-jitter satellite: the phase offset
// is a pure hash of the peer id — deterministic at any GOMAXPROCS, inside
// [0, interval), and distinct across co-started peers so a replica set never
// gossips (or runs anti-entropy) in lockstep rounds.
func TestGossipPhaseDistinct(t *testing.T) {
	const interval = time.Second
	ids := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070",
		"10.0.0.4:7070", "10.0.0.5:7070", "10.0.0.6:7070"}
	seen := map[time.Duration]string{}
	for _, id := range ids {
		phase := GossipPhase(id, interval)
		if phase < 0 || phase >= interval {
			t.Fatalf("GossipPhase(%q) = %v, outside [0, %v)", id, phase, interval)
		}
		if prev, dup := seen[phase]; dup {
			t.Fatalf("peers %q and %q share phase %v — lockstep rounds", prev, id, phase)
		}
		seen[phase] = id
	}
	// Determinism under contention: hammer the same ids from GOMAXPROCS
	// goroutines and require every call to reproduce the sequential answer.
	var wg sync.WaitGroup
	errs := make(chan error, len(ids)*runtime.GOMAXPROCS(0))
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for phase, id := range seen {
				if got := GossipPhase(id, interval); got != phase {
					errs <- fmt.Errorf("GossipPhase(%q) = %v, want %v", id, got, phase)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if GossipPhase("any", 0) != 0 {
		t.Fatal("zero interval must yield zero phase")
	}
}

// TestHedgeDelayDeterministic pins the hedge policy: the delay is a pure
// function of (seed, key) in [After, 1.5*After), varied across keys.
func TestHedgeDelayDeterministic(t *testing.T) {
	h := HedgePolicy{After: 20 * time.Millisecond, Seed: 7}
	if !h.Enabled() {
		t.Fatal("policy with After > 0 reports disabled")
	}
	if (HedgePolicy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	lo, hi := h.After, h.After+h.After/2
	distinct := map[time.Duration]bool{}
	for key := uint64(0); key < 64; key++ {
		d := h.Delay(key)
		if d < lo || d >= hi {
			t.Fatalf("Delay(%d) = %v, outside [%v, %v)", key, d, lo, hi)
		}
		if d != h.Delay(key) {
			t.Fatalf("Delay(%d) not deterministic", key)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Fatal("every key hedges at the same instant — synchronized waves")
	}
	if d := (HedgePolicy{After: 1}).Delay(3); d != 1 {
		t.Fatalf("sub-resolvable After must fall back to the base delay, got %v", d)
	}
}

// newReplicatedNodes builds one shard ("0") served by k replicas plus one
// peer of the sibling shard ("1"), all over the same graph, with full static
// membership.
func newReplicatedNodes(t *testing.T, k int) []*Node {
	t.Helper()
	g := testGraph(t, 300)
	nodes := make([]*Node, 0, k+1)
	for i := 0; i < k; i++ {
		n, err := NewNode(g, mustPrefix(t, "0"), fmt.Sprintf("r%d:1", i), Config{Replica: i})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	sib, err := NewNode(g, mustPrefix(t, "1"), "s0:1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, sib)
	for _, n := range nodes {
		for _, p := range nodes {
			if p != n {
				n.Members().Add(p.Self())
			}
		}
	}
	return nodes
}

// TestOwnersOfReplicaOrder pins the failover sequence: every routable
// replica of the owning shard, alive before suspect, replica id breaking
// ties within a liveness class.
func TestOwnersOfReplicaOrder(t *testing.T) {
	nodes := newReplicatedNodes(t, 3)
	sib := nodes[3]
	// A vertex owned by shard "0", resolved from the sibling shard.
	v := -1
	for u := 0; u < nodes[0].Graph().N(); u++ {
		if nodes[0].Owned(u) {
			v = u
			break
		}
	}
	if v < 0 {
		t.Fatal("shard 0 owns nothing")
	}
	owners := sib.OwnersOf(v)
	if len(owners) != 3 {
		t.Fatalf("OwnersOf = %d peers, want the 3 replicas", len(owners))
	}
	for i, p := range owners {
		if p.Replica != i {
			t.Fatalf("owner %d has replica id %d — failover order broken: %+v", i, p.Replica, owners)
		}
	}
	// Striking the primary out moves it behind the surviving replicas.
	for i := 0; i < 3; i++ {
		sib.Members().ReportFailure(owners[0].ID)
	}
	owners = sib.OwnersOf(v)
	if len(owners) != 2 || owners[0].Replica != 1 || owners[1].Replica != 2 {
		t.Fatalf("after striking the primary: owners %+v, want replicas 1,2", owners)
	}
}

// TestReplicaSetScope pins the shipping target set: same-shard routable
// peers only, never self, never the sibling shard.
func TestReplicaSetScope(t *testing.T) {
	nodes := newReplicatedNodes(t, 2)
	rs := nodes[0].ReplicaSet()
	if len(rs) != 1 || rs[0].ID != "r1:1" {
		t.Fatalf("primary's replica set = %+v, want [r1:1]", rs)
	}
	if rs := nodes[2].ReplicaSet(); len(rs) != 0 {
		t.Fatalf("sibling shard's replica set = %+v, want empty", rs)
	}
}

// TestSetLivePropagates pins the live-position advertisement: SetLive shows
// up in Self and travels one gossip exchange to a peer's view of us.
func TestSetLivePropagates(t *testing.T) {
	nodes := newReplicatedNodes(t, 2)
	primary, replica := nodes[0], nodes[1]
	primary.SetLive(7, 1, "00000000000000aa")
	self := primary.Self()
	if self.Epoch != 7 || self.Generation != 1 || self.LiveFP != "00000000000000aa" {
		t.Fatalf("Self after SetLive = %+v", self)
	}
	replica.Members().Receive(primary.Self(), nil)
	for _, p := range replica.ReplicaSet() {
		if p.ID == self.ID {
			if p.Epoch != 7 || p.LiveFP != "00000000000000aa" {
				t.Fatalf("replica's view of primary = %+v, live fields lost", p)
			}
			return
		}
	}
	t.Fatal("primary missing from replica's set")
}

// TestRingSequence pins the client failover order: the sequence starts at
// Pick's winner, walks distinct endpoints in ring order, and is stable for a
// key.
func TestRingSequence(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"})
	for key := uint64(0); key < 200; key++ {
		seq := r.Sequence(key)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%d) = %v, want all 3 endpoints", key, seq)
		}
		if seq[0] != r.Pick(key) {
			t.Fatalf("Sequence(%d) head %q != Pick %q", key, seq[0], r.Pick(key))
		}
		seen := map[string]bool{}
		for _, a := range seq {
			if seen[a] {
				t.Fatalf("Sequence(%d) repeats %q", key, a)
			}
			seen[a] = true
		}
	}
}
