package cluster

import (
	"time"

	"repro/internal/obs"
)

// HedgePolicy decides when a cross-shard hop fires a second, concurrent
// attempt at the next surviving replica: after a deterministic delay the
// first request has not answered within, the hedge launches and the first
// response — from either attempt — wins, the loser cancelled via context.
// A slow-or-dying replica then costs one hedge delay of latency instead of
// a full request timeout or a classified failure.
//
// The delay is a pure hash of (Seed, key) spread over [After, 1.5*After):
// deterministic for a given request (tests can predict it exactly, like the
// retry backoff's jitter), varied across requests so hedges don't fire in
// synchronized waves when a replica slows down under load.
type HedgePolicy struct {
	// After is the base delay before the hedge fires; 0 disables hedging.
	After time.Duration
	// Seed salts the per-request jitter.
	Seed uint64
}

// Enabled reports whether the policy ever hedges.
func (h HedgePolicy) Enabled() bool { return h.After > 0 }

// Delay returns the deterministic hedge delay for one request key, in
// [After, 1.5*After).
func (h HedgePolicy) Delay(key uint64) time.Duration {
	if h.After <= 0 {
		return 0
	}
	span := uint64(h.After) / 2
	if span == 0 {
		return h.After
	}
	return h.After + time.Duration(obs.Hash64(h.Seed, key)%span)
}
