// Package ckpt gives long-running sweeps crash-safe progress: a
// write-ahead journal of completed work units that a restarted run replays
// to skip everything already done. Because the routing engine's batches
// are pure functions of their configuration (pure-hash fault determinism,
// sequential pair draws), a resumed sweep that replays its journal
// produces a final report bit-identical to an uninterrupted run — the
// journal stores results, not side effects.
//
// A checkpoint directory holds two files:
//
//	MANIFEST     json {version, key}, written atomically; the key binds the
//	             journal to one sweep configuration, so resuming with
//	             different parameters fails loudly instead of mixing results
//	journal.wal  append-only records: u32 keyLen | u32 payloadLen | key |
//	             payload | u32 crc  (CRC32 over lengths + key + payload)
//
// Appends are flushed to the OS per record and fsynced every SyncEvery
// records (default: every record), so a SIGKILL loses at most the record
// being written. Open replays the journal, truncates a torn tail (the
// half-record a crash left behind), and rejects mid-journal corruption —
// a record that fails its CRC while intact records follow it — with a
// classified *CorruptError, because that is bit rot, not a crash.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/atomicio"
)

const (
	manifestName = "MANIFEST"
	journalName  = "journal.wal"

	manifestVersion = 1

	// maxKeyLen and maxPayloadLen bound what a record header may claim;
	// anything larger is corruption, not data.
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 28
)

// CorruptError reports a journal whose middle is damaged: a record failed
// its CRC (or carried an impossible length) while intact data follows it.
// A torn tail — the final record cut short by a crash — is not an error;
// Open truncates and continues.
type CorruptError struct {
	// Path is the journal file.
	Path string
	// Offset is the byte offset of the damaged record.
	Offset int64
	// Reason says what was wrong.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: corrupt journal %s: %s (offset %d)", e.Path, e.Reason, e.Offset)
}

// manifest is the persisted identity of a checkpoint directory.
type manifest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
}

// Options tunes a Journal.
type Options struct {
	// SyncEvery fsyncs the journal file after every k appended records.
	// The default 1 makes every completed record durable before the next
	// unit of work starts; raise it to trade durability of the last few
	// records for fewer fsyncs on sweeps with very cheap cells.
	SyncEvery int
}

// Journal is an append-only record of completed (key, payload) work units.
// It is safe for concurrent use.
type Journal struct {
	dir string
	key string

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	done     map[string][]byte
	reused   int
	appended int
	synced   int // appends since last fsync
	every    int
}

// Exists reports whether dir already holds a journal with at least one
// durable byte — the condition under which a fresh run should demand an
// explicit resume decision instead of silently appending.
func Exists(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, journalName))
	return err == nil && st.Size() > 0
}

// Open opens (creating if necessary) the checkpoint directory and replays
// its journal. key is the sweep identity — typically experiment id, seed,
// scale and any sweep-shaping flags rendered into a string; opening an
// existing directory with a different key fails, because its records were
// computed under a different configuration.
func Open(dir, key string, opts ...Options) (*Journal, error) {
	opt := Options{}
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("ckpt: manifest %s unreadable: %w", mpath, err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("ckpt: manifest %s has version %d, this build writes %d", mpath, m.Version, manifestVersion)
		}
		if m.Key != key {
			return nil, fmt.Errorf("ckpt: checkpoint %s belongs to a different sweep:\n  journal: %s\n  this run: %s\nresume with matching parameters or choose a fresh directory", dir, m.Key, key)
		}
	case os.IsNotExist(err):
		if err := atomicio.WriteFile(mpath, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(manifest{Version: manifestVersion, Key: key})
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("ckpt: %w", err)
	}

	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	j := &Journal{dir: dir, key: key, f: f, done: map[string][]byte{}, every: opt.SyncEvery}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	j.bw = bufio.NewWriterSize(f, 1<<16)
	return j, nil
}

// replay loads every intact record, truncates a torn tail, and positions
// the file at the end for appending.
func (j *Journal) replay() error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	size := st.Size()
	br := bufio.NewReaderSize(j.f, 1<<16)
	var off int64
	truncateAt := int64(-1)
	for off < size {
		recStart := off
		var lens [8]byte
		n, err := io.ReadFull(br, lens[:])
		off += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			truncateAt = recStart // torn mid-length-field
			break
		}
		if err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		keyLen := int64(binary.LittleEndian.Uint32(lens[0:4]))
		payloadLen := int64(binary.LittleEndian.Uint32(lens[4:8]))
		end := recStart + 8 + keyLen + payloadLen + 4
		if end > size {
			truncateAt = recStart // record extends past EOF: torn append
			break
		}
		if keyLen > maxKeyLen || payloadLen > maxPayloadLen {
			return &CorruptError{Path: j.path(), Offset: recStart,
				Reason: fmt.Sprintf("impossible record lengths key=%d payload=%d", keyLen, payloadLen)}
		}
		body := make([]byte, keyLen+payloadLen+4)
		n, err = io.ReadFull(br, body)
		off += int64(n)
		if err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		crc := crc32.ChecksumIEEE(lens[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:keyLen+payloadLen])
		if stored := binary.LittleEndian.Uint32(body[keyLen+payloadLen:]); stored != crc {
			if end == size {
				truncateAt = recStart // damaged final record: treat as torn
				break
			}
			return &CorruptError{Path: j.path(), Offset: recStart,
				Reason: fmt.Sprintf("record checksum mismatch (stored %08x, computed %08x) with intact data after it", stored, crc)}
		}
		key := string(body[:keyLen])
		payload := make([]byte, payloadLen)
		copy(payload, body[keyLen:keyLen+payloadLen])
		j.done[key] = payload
		j.reused++
	}
	if truncateAt >= 0 {
		if err := j.f.Truncate(truncateAt); err != nil {
			return fmt.Errorf("ckpt: truncating torn tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		if _, err := j.f.Seek(truncateAt, io.SeekStart); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		return nil
	}
	if _, err := j.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

func (j *Journal) path() string { return filepath.Join(j.dir, journalName) }

// Key returns the sweep identity the journal is bound to.
func (j *Journal) Key() string { return j.key }

// Reused returns how many intact records Open replayed — the work a
// resumed sweep gets to skip.
func (j *Journal) Reused() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reused
}

// Len returns the number of distinct completed keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Get returns the journaled payload of key, if present. The returned slice
// must not be modified.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.done[key]
	return p, ok
}

// Put appends one completed record and flushes it to the OS; every
// Options.SyncEvery appends it also fsyncs, making the batch durable. A
// re-Put of an existing key appends a superseding record (last wins on
// replay).
func (j *Journal) Put(key string, payload []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("ckpt: key of %d bytes exceeds the %d-byte limit", len(key), maxKeyLen)
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("ckpt: payload of %d bytes exceeds the %d-byte limit", len(payload), maxPayloadLen)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("ckpt: journal is closed")
	}
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:8], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(lens[:])
	crc = crc32.Update(crc, crc32.IEEETable, []byte(key))
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	for _, b := range [][]byte{lens[:], []byte(key), payload, trailer[:]} {
		if _, err := j.bw.Write(b); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	j.synced++
	if j.synced >= j.every {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		j.synced = 0
	}
	stored := make([]byte, len(payload))
	copy(stored, payload)
	j.done[key] = stored
	j.appended++
	return nil
}

// Sync forces any unsynced appends to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	j.synced = 0
	return nil
}

// Close syncs and closes the journal. The Journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.bw.Flush()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	j.bw = nil
	return err
}

// Run is the journal-or-compute helper sweeps are written in terms of: if
// j already holds key, the journaled value is decoded and returned without
// computing; otherwise compute runs and, on success, its JSON-encoded
// result is journaled under key before being returned. A nil j always
// computes — callers need no branching for the checkpoint-less path.
func Run[T any](j *Journal, key string, compute func() (T, error)) (T, error) {
	if j != nil {
		if payload, ok := j.Get(key); ok {
			var v T
			if err := json.Unmarshal(payload, &v); err != nil {
				return v, fmt.Errorf("ckpt: journaled record %q does not decode (journal from an incompatible build?): %w", key, err)
			}
			return v, nil
		}
	}
	v, err := compute()
	if err != nil || j == nil {
		return v, err
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return v, fmt.Errorf("ckpt: encoding record %q: %w", key, err)
	}
	return v, j.Put(key, payload)
}
