package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, "sweep-1")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 || j.Reused() != 0 {
		t.Fatalf("fresh journal: Len=%d Reused=%d", j.Len(), j.Reused())
	}
	for i := 0; i < 10; i++ {
		if err := j.Put(fmt.Sprintf("cell/%d", i), []byte(fmt.Sprintf("result-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, "sweep-1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Reused() != 10 || j2.Len() != 10 {
		t.Fatalf("reopen: Reused=%d Len=%d, want 10", j2.Reused(), j2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := j2.Get(fmt.Sprintf("cell/%d", i))
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("result-%d", i))) {
			t.Fatalf("cell/%d: got %q ok=%v", i, got, ok)
		}
	}
	if _, ok := j2.Get("cell/99"); ok {
		t.Fatal("phantom record")
	}
}

func TestKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, "e=E16 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(dir, "e=E16 seed=2"); err == nil {
		t.Fatal("journal for a different sweep accepted")
	}
}

func TestLastPutWins(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, "k")
	j.Put("a", []byte("first"))
	j.Put("a", []byte("second"))
	j.Close()
	j2, err := Open(dir, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, _ := j2.Get("a")
	if string(got) != "second" {
		t.Fatalf("got %q", got)
	}
}

// TestTortureTruncate cuts the journal at every byte boundary of the last
// record (and beyond, into the penultimate record) and asserts that Open
// always recovers: complete records survive, the torn tail is discarded,
// and the journal accepts appends again.
func TestTortureTruncate(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, "torture")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put("keep/0", []byte("payload-zero")); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("keep/1", []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, dir)
	if err := j.Put("torn", []byte("payload-torn")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := sizeBefore; cut <= int64(len(full)); cut++ {
		dir2 := t.TempDir()
		j2, err := Open(dir2, "torture")
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if err := os.WriteFile(filepath.Join(dir2, journalName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j3, err := Open(dir2, "torture")
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if got, ok := j3.Get("keep/0"); !ok || string(got) != "payload-zero" {
			t.Fatalf("cut at %d: keep/0 lost (%q, %v)", cut, got, ok)
		}
		if got, ok := j3.Get("keep/1"); !ok || string(got) != "payload-one" {
			t.Fatalf("cut at %d: keep/1 lost (%q, %v)", cut, got, ok)
		}
		if got, ok := j3.Get("torn"); cut < int64(len(full)) && ok {
			t.Fatalf("cut at %d: torn record resurrected as %q", cut, got)
		} else if cut == int64(len(full)) && (!ok || string(got) != "payload-torn") {
			t.Fatalf("uncut journal lost the last record")
		}
		// The recovered journal must accept appends and survive a reopen.
		if err := j3.Put("after", []byte("appended")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		j3.Close()
		j4, err := Open(dir2, "torture")
		if err != nil {
			t.Fatalf("cut at %d: reopen after recovery: %v", cut, err)
		}
		if got, ok := j4.Get("after"); !ok || string(got) != "appended" {
			t.Fatalf("cut at %d: appended record lost", cut)
		}
		j4.Close()
	}
}

// TestMidJournalCorruptionRejected flips a byte in the first record while
// intact records follow: that is bit rot, not a crash, and Open must
// refuse with a classified error instead of silently dropping work.
func TestMidJournalCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, "rot")
	j.Put("first", []byte("payload-aaaa"))
	j.Put("second", []byte("payload-bbbb"))
	j.Close()
	path := filepath.Join(dir, journalName)
	raw, _ := os.ReadFile(path)
	raw[12] ^= 0x40 // inside the first record's key/payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, "rot")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-journal corruption: err = %v, want *CorruptError", err)
	}
	if ce.Offset != 0 {
		t.Fatalf("corruption offset %d, want 0", ce.Offset)
	}
}

func TestRunComputesAndReplays(t *testing.T) {
	type result struct {
		Rows []string `json:"rows"`
		Mean float64  `json:"mean"`
	}
	dir := t.TempDir()
	j, err := Open(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	computed := 0
	compute := func() (result, error) {
		computed++
		return result{Rows: []string{"a", "b"}, Mean: 3.25}, nil
	}
	first, err := Run(j, "cell", compute)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(j, "cell", compute)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 1 {
		t.Fatalf("compute ran %d times, want 1", computed)
	}
	if first.Mean != again.Mean || len(again.Rows) != 2 || again.Rows[1] != "b" {
		t.Fatalf("replayed %+v, want %+v", again, first)
	}
	j.Close()

	// A reopened journal replays without computing.
	j2, err := Open(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	replayed, err := Run(j2, "cell", compute)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 1 || replayed.Mean != 3.25 {
		t.Fatalf("reopen replay: computed=%d, %+v", computed, replayed)
	}

	// A nil journal computes every time.
	if _, err := Run[result](nil, "cell", compute); err != nil || computed != 2 {
		t.Fatalf("nil journal: err=%v computed=%d", err, computed)
	}
}

func TestRunPropagatesComputeError(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, "err")
	defer j.Close()
	boom := errors.New("boom")
	_, err := Run(j, "cell", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if j.Len() != 0 {
		t.Fatal("failed compute was journaled")
	}
}

func TestExists(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("empty dir reported as existing journal")
	}
	j, _ := Open(dir, "k")
	if Exists(dir) {
		t.Fatal("record-less journal reported as existing")
	}
	j.Put("a", []byte("x"))
	j.Close()
	if !Exists(dir) {
		t.Fatal("journal with records not detected")
	}
}

func fileSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
