// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, confidence intervals for proportions,
// and least-squares fits used to check the paper's scaling laws (hop counts
// against log log n, failure probability against wmin).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (q in [0, 1]) using linear interpolation
// between order statistics; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Proportion summarizes a Bernoulli sample: the point estimate and a Wilson
// score interval at ~95% confidence.
type Proportion struct {
	P      float64 // point estimate successes/trials
	Lo, Hi float64 // Wilson 95% interval
	N      int     // trials
}

// NewProportion builds the Wilson interval for k successes in n trials.
func NewProportion(k, n int) Proportion {
	if n == 0 {
		return Proportion{P: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	return Proportion{P: p, Lo: math.Max(0, center-half), Hi: math.Min(1, center+half), N: n}
}

// LinearFit is a least-squares line y = Intercept + Slope*x with its
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y against x by ordinary least squares. It requires at least
// two points with distinct x; otherwise all fields are NaN.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit
}

// FitExpDecay fits y = A * exp(-b x) by regressing log y on x, using only
// strictly positive y values. Returns the decay rate b, the prefactor A,
// and the R^2 of the log-linear fit. It is the tool for Theorem 3.2's
// exponential failure decay. NaN if fewer than two usable points remain.
func FitExpDecay(x, y []float64) (rate, prefactor, r2 float64) {
	var xs, logs []float64
	for i := range x {
		if y[i] > 0 {
			xs = append(xs, x[i])
			logs = append(logs, math.Log(y[i]))
		}
	}
	fit := FitLine(xs, logs)
	return -fit.Slope, math.Exp(fit.Intercept), fit.R2
}

// LogLog2 returns log2(log2(x)) for x > 2, the hop-count scale of
// Theorem 3.3 (any fixed log base only shifts constants; base 2 keeps the
// numbers readable).
func LogLog2(x float64) float64 {
	return math.Log2(math.Log2(x))
}

// TheoryHopConstant returns 2/|log(beta-2)| (natural log), the leading
// constant of Theorem 3.3 and of the average distance in the giant
// component. Hop counts reported against log log n (natural) should have
// slope approaching this constant.
func TheoryHopConstant(beta float64) float64 {
	return 2 / math.Abs(math.Log(beta-2))
}
