package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileMonotoneInQ(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWilsonBracketsEstimate(t *testing.T) {
	f := func(k, n uint16) bool {
		nn := int(n%1000) + 1
		kk := int(k) % (nn + 1)
		p := NewProportion(kk, nn)
		return p.Lo <= p.P+1e-12 && p.P <= p.Hi+1e-12 && p.Lo >= 0 && p.Hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
