package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Mean(xs); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 2.5 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if got := StdErr(xs); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("StdErr = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) ||
		!math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(StdErr([]float64{1})) {
		t.Fatal("degenerate inputs must yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 1.0/3); math.Abs(got-2) > 1e-12 {
		t.Fatalf("q1/3 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestProportionWilson(t *testing.T) {
	p := NewProportion(50, 100)
	if p.P != 0.5 || p.N != 100 {
		t.Fatalf("%+v", p)
	}
	if p.Lo >= p.P || p.Hi <= p.P {
		t.Fatalf("interval does not bracket estimate: %+v", p)
	}
	// Known value: Wilson 95% for 50/100 is about (0.404, 0.596).
	if math.Abs(p.Lo-0.404) > 0.005 || math.Abs(p.Hi-0.596) > 0.005 {
		t.Fatalf("Wilson interval %+v", p)
	}
	// Extremes stay within [0, 1].
	p0 := NewProportion(0, 20)
	if p0.Lo != 0 || p0.Hi <= 0 {
		t.Fatalf("%+v", p0)
	}
	p1 := NewProportion(20, 20)
	if p1.Hi != 1 || p1.Lo >= 1 {
		t.Fatalf("%+v", p1)
	}
	if !math.IsNaN(NewProportion(0, 0).P) {
		t.Fatal("0 trials must be NaN")
	}
}

func TestProportionCoverage(t *testing.T) {
	// The Wilson interval should cover the true p in ~95% of repetitions.
	rng := xrand.New(1)
	const trueP = 0.3
	const reps = 2000
	covered := 0
	for r := 0; r < reps; r++ {
		k := rng.Binomial(200, trueP)
		ci := NewProportion(k, 200)
		if ci.Lo <= trueP && trueP <= ci.Hi {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.92 || rate > 0.99 {
		t.Fatalf("Wilson coverage %v", rate)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit := FitLine(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := xrand.New(2)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := rng.Float64() * 10
		x = append(x, xi)
		y = append(y, 2+0.5*xi+0.1*rng.Normal())
	}
	fit := FitLine(x, y)
	if math.Abs(fit.Slope-0.5) > 0.02 || math.Abs(fit.Intercept-2) > 0.05 {
		t.Fatalf("fit %+v", fit)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if !math.IsNaN(FitLine([]float64{1}, []float64{2}).Slope) {
		t.Fatal("single point must be NaN")
	}
	if !math.IsNaN(FitLine([]float64{1, 1}, []float64{1, 2}).Slope) {
		t.Fatal("vertical data must be NaN")
	}
	fit := FitLine([]float64{1, 2}, []float64{3, 3})
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("horizontal fit %+v", fit)
	}
}

func TestFitExpDecay(t *testing.T) {
	// y = 3 e^{-0.7 x}.
	var x, y []float64
	for i := 0; i < 20; i++ {
		xi := float64(i) / 2
		x = append(x, xi)
		y = append(y, 3*math.Exp(-0.7*xi))
	}
	rate, pre, r2 := FitExpDecay(x, y)
	if math.Abs(rate-0.7) > 1e-9 || math.Abs(pre-3) > 1e-9 || r2 < 0.999 {
		t.Fatalf("rate=%v pre=%v r2=%v", rate, pre, r2)
	}
	// Zero values must be skipped, not break the fit.
	y[5] = 0
	rate, _, _ = FitExpDecay(x, y)
	if math.Abs(rate-0.7) > 1e-9 {
		t.Fatalf("rate with zero entry = %v", rate)
	}
}

func TestTheoryHopConstant(t *testing.T) {
	// beta = 2.5: 2/|ln(0.5)| = 2/ln 2.
	if got := TheoryHopConstant(2.5); math.Abs(got-2/math.Ln2) > 1e-12 {
		t.Fatalf("constant = %v", got)
	}
	// Closer to 3 the constant blows up (distances grow), closer to 2 it
	// shrinks... both sides of beta-2 = 1/e give finite values; check
	// monotone blow-up toward beta = 3.
	if TheoryHopConstant(2.9) < TheoryHopConstant(2.5) {
		t.Fatal("constant should grow toward beta = 3")
	}
}

func TestLogLog2(t *testing.T) {
	if got := LogLog2(16); math.Abs(got-2) > 1e-12 {
		t.Fatalf("LogLog2(16) = %v", got)
	}
	if got := LogLog2(256); math.Abs(got-3) > 1e-12 {
		t.Fatalf("LogLog2(256) = %v", got)
	}
}
