package graph

import (
	"testing"

	"repro/internal/torus"
)

// shardTestGraph builds a small geometric graph with deterministic
// pseudo-random positions.
func shardTestGraph(t *testing.T, n int) *Graph {
	t.Helper()
	space := torus.MustSpace(2)
	pos := torus.NewPositions(space, n)
	x := uint64(99)
	next := func() float64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) * 0x1p-53
	}
	buf := make([]float64, 2)
	for i := 0; i < n; i++ {
		buf[0], buf[1] = next(), next()
		pos.Set(i, buf)
	}
	b, err := NewBuilder(n, pos, nil, float64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(i-1, i)
	}
	return b.Finish()
}

// TestOwnedMaskPartition checks that the 3-shard prefix set partitions the
// vertices: every vertex owned by exactly one shard.
func TestOwnedMaskPartition(t *testing.T) {
	g := shardTestGraph(t, 400)
	codes, bits, err := MortonCodes(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != g.N() {
		t.Fatalf("got %d codes for %d vertices", len(codes), g.N())
	}
	masks := make([][]bool, 0, 3)
	for _, spec := range []string{"0", "10", "11"} {
		p, err := torus.ParsePrefix(spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := OwnedMask(codes, bits, p)
		if err != nil {
			t.Fatal(err)
		}
		masks = append(masks, m)
	}
	for v := 0; v < g.N(); v++ {
		owners := 0
		for _, m := range masks {
			if m[v] {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("vertex %d owned by %d shards, want 1", v, owners)
		}
	}
}

// TestOwnedMaskValidation checks the over-long-prefix and no-geometry error
// paths.
func TestOwnedMaskValidation(t *testing.T) {
	g := shardTestGraph(t, 10)
	codes, bits, err := MortonCodes(g)
	if err != nil {
		t.Fatal(err)
	}
	long, err := torus.ParsePrefix(longPrefix(bits + 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OwnedMask(codes, bits, long); err == nil {
		t.Error("over-long prefix accepted")
	}

	b, err := NewBuilder(4, nil, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.AddEdge(0, 1)
	if _, _, err := MortonCodes(b.Finish()); err == nil {
		t.Error("MortonCodes accepted a graph without geometry")
	}
}

func longPrefix(bits int) string {
	b := make([]byte, bits)
	for i := range b {
		b[i] = '0'
	}
	return string(b)
}

// TestFingerprintMemoized checks the memoized digest matches a fresh
// computation and stays stable across calls.
func TestFingerprintMemoized(t *testing.T) {
	g := shardTestGraph(t, 50)
	first := g.Fingerprint()
	if second := g.Fingerprint(); second != first {
		t.Fatalf("fingerprint changed between calls: %x then %x", first, second)
	}
	if direct := g.fingerprint(); direct != first {
		t.Fatalf("memoized fingerprint %x != direct digest %x", first, direct)
	}
}
