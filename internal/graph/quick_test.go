package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// TestQuickUnionFindReflexiveSymmetric checks union-find invariants over
// random merge sequences.
func TestQuickUnionFindReflexiveSymmetric(t *testing.T) {
	f := func(seed uint32, merges []uint16) bool {
		const n = 40
		uf := NewUnionFind(n)
		for _, m := range merges {
			a := int(m) % n
			b := int(m>>8) % n
			uf.Union(a, b)
			// Merged elements must be connected, symmetrically.
			if !uf.Connected(a, b) || !uf.Connected(b, a) {
				return false
			}
		}
		// Set sizes sum to n; sets count matches distinct roots.
		roots := map[int]bool{}
		total := 0
		counted := map[int]bool{}
		for v := 0; v < n; v++ {
			r := uf.Find(v)
			roots[r] = true
			if !counted[r] {
				total += uf.SetSize(v)
				counted[r] = true
			}
		}
		return len(roots) == uf.Sets() && total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBFSTriangleInequality: BFS distances satisfy the triangle
// inequality through any intermediate vertex.
func TestQuickBFSTriangleInequality(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		n := 5 + rng.IntN(20)
		b, err := NewBuilder(n, nil, nil, float64(n), 1)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(0.25) {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.Finish()
		dists := make([][]int32, n)
		for s := 0; s < n; s++ {
			dists[s] = BFS(g, s)
		}
		for a := 0; a < n; a++ {
			for c := 0; c < n; c++ {
				if dists[a][c] < 0 {
					continue
				}
				// Symmetry.
				if dists[c][a] != dists[a][c] {
					return false
				}
				for m := 0; m < n; m++ {
					if dists[a][m] >= 0 && dists[m][c] >= 0 &&
						dists[a][c] > dists[a][m]+dists[m][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDegreeSumEqualsTwiceEdges: the handshake lemma survives arbitrary
// duplicate-laden edge lists.
func TestQuickDegreeSumEqualsTwiceEdges(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 30
		b, err := NewBuilder(n, nil, nil, n, 1)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			u := int(p) % n
			v := int(p>>8) % n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Finish()
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
