package graph

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint digests the graph's entire content — sizes, model
// parameters, weights, positions, adjacency — into 64 bits (FNV-1a). Two
// graphs with equal fingerprints are, for all practical purposes, the same
// snapshot: the serving layer logs it when installing snapshots and the
// durability tests use it to assert that round-trips and resumed runs
// reproduce graphs bit-for-bit.
//
// The digest is O(n+m) but the graph is immutable, so it is computed once
// and memoized — readiness probes and cluster membership exchanges read it
// per request.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.Do(func() { g.fp = g.fingerprint() })
	return g.fp
}

func (g *Graph) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.n))
	put(uint64(len(g.adj)))
	put(math.Float64bits(g.intensity))
	put(math.Float64bits(g.wmin))
	if g.pos != nil {
		put(uint64(g.pos.Space().Dim()))
		for _, c := range g.pos.Raw() {
			put(math.Float64bits(c))
		}
	} else {
		put(0)
	}
	if g.weights != nil {
		for _, w := range g.weights {
			put(math.Float64bits(w))
		}
	}
	for _, o := range g.offsets {
		put(uint64(uint32(o)))
	}
	for _, v := range g.adj {
		put(uint64(uint32(v)))
	}
	return h.Sum64()
}
