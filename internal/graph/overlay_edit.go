package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/torus"
)

// OverlayEdit is one mutation batch under construction: a mutable
// copy-on-write view derived from a published Overlay. Ops validate
// eagerly — an invalid op errors and leaves the edit unchanged, so a
// caller can reject a whole batch atomically by discarding the edit — and
// Finish freezes the result into the next Overlay (epoch + 1) without
// touching the parent: readers of the old overlay keep a consistent view.
//
// Edits are not safe for concurrent use; the mutation log serializes them.
type OverlayEdit struct {
	next     *Overlay // the overlay under construction; the parent is never modified
	owned    map[int32]bool
	finished bool
}

// Edit derives a mutation batch from o. The delta map is copied up front
// (O(dirty vertices)); per-vertex lists and the attribute extensions are
// cloned only when the batch actually touches them.
func (o *Overlay) Edit() *OverlayEdit {
	next := &Overlay{
		base:         o.base,
		epoch:        o.epoch + 1,
		tomb:         append([]uint64(nil), o.tomb...),
		tombCount:    o.tombCount,
		deltas:       make(map[int32]*vertexDelta, len(o.deltas)+8),
		addedPos:     o.addedPos[:len(o.addedPos):len(o.addedPos)],
		addedW:       o.addedW[:len(o.addedW):len(o.addedW)],
		edgesAdded:   o.edgesAdded,
		edgesRemoved: o.edgesRemoved,
	}
	for v, d := range o.deltas {
		next.deltas[v] = d
	}
	return &OverlayEdit{next: next, owned: map[int32]bool{}}
}

// N returns the live vertex-id space with this edit's ops applied so far.
func (e *OverlayEdit) N() int { return e.next.N() }

// Tombstoned reports whether v is removed with this edit's ops applied.
func (e *OverlayEdit) Tombstoned(v int) bool { return e.next.Tombstoned(v) }

// HasEdge reports whether {u, v} is live with this edit's ops applied.
func (e *OverlayEdit) HasEdge(u, v int) bool { return e.next.HasEdge(u, v) }

// Finish freezes the batch into the next Overlay. The edit must not be
// used afterwards.
func (e *OverlayEdit) Finish() *Overlay {
	if e.finished {
		panic("graph: OverlayEdit.Finish called twice")
	}
	e.finished = true
	return e.next
}

// delta returns a mutable vertexDelta for v, cloning the parent's on first
// touch so the parent overlay stays frozen.
func (e *OverlayEdit) delta(v int32) *vertexDelta {
	d, ok := e.next.deltas[v]
	if !ok {
		d = &vertexDelta{}
		e.next.deltas[v] = d
		e.owned[v] = true
		return d
	}
	if !e.owned[v] {
		d = &vertexDelta{
			add: append([]int32(nil), d.add...),
			del: append([]int32(nil), d.del...),
		}
		e.next.deltas[v] = d
		e.owned[v] = true
	}
	return d
}

// normalize drops v's delta entry if it became empty (the canonical form
// Fingerprint and replay equality rely on).
func (e *OverlayEdit) normalize(v int32) {
	if d, ok := e.next.deltas[v]; ok && len(d.add) == 0 && len(d.del) == 0 {
		delete(e.next.deltas, v)
		delete(e.owned, v)
	}
}

// insertSorted inserts x into sorted s (x must not be present).
func insertSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeSorted removes x from sorted s (x must be present).
func removeSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// AddVertex joins a new vertex with the given position and model weight,
// isolated until AddEdge connects it. Ids are assigned sequentially from
// the live N; tombstoned ids are never reused. The position must match the
// base geometry's dimension with finite coordinates (wrapped onto the unit
// torus), and the weight must be finite and at least the model's wmin so
// the objective's normalization stays a true lower bound.
func (e *OverlayEdit) AddVertex(pos []float64, w float64) (int, error) {
	if e.next.base.pos == nil {
		return 0, fmt.Errorf("graph: add-vertex: base graph has no geometry")
	}
	dim := e.next.base.Space().Dim()
	if len(pos) != dim {
		return 0, fmt.Errorf("graph: add-vertex: position has %d coordinates, want %d", len(pos), dim)
	}
	for i, c := range pos {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return 0, fmt.Errorf("graph: add-vertex: non-finite coordinate %d (%v)", i, c)
		}
	}
	if math.IsNaN(w) || math.IsInf(w, 0) || w < e.next.base.wmin {
		return 0, fmt.Errorf("graph: add-vertex: weight %v outside [wmin=%v, +inf)", w, e.next.base.wmin)
	}
	v := e.next.N()
	for _, c := range pos {
		e.next.addedPos = append(e.next.addedPos, torus.Wrap(c))
	}
	e.next.addedW = append(e.next.addedW, w)
	return v, nil
}

// RemoveVertex tombstones a live vertex, removing its incident live edges
// first (each surviving endpoint's delta is updated, so the departed id
// appears in no live adjacency list). The id stays in range: position and
// weight survive so a walk holding a stale reference still scores it, and
// its empty adjacency classifies that walk as a dead end.
func (e *OverlayEdit) RemoveVertex(v int) error {
	if v < 0 || v >= e.next.N() {
		return fmt.Errorf("graph: remove-vertex: vertex %d out of range (n = %d)", v, e.next.N())
	}
	if e.next.Tombstoned(v) {
		return fmt.Errorf("graph: remove-vertex: vertex %d already removed", v)
	}
	// Detach every live incident edge; Neighbors snapshots the merged list
	// so the iteration survives the delta updates below.
	for _, u := range append([]int32(nil), e.next.Neighbors(v)...) {
		if err := e.RemoveEdge(v, int(u)); err != nil {
			return fmt.Errorf("graph: remove-vertex %d: %w", v, err)
		}
	}
	delete(e.next.deltas, int32(v))
	delete(e.owned, int32(v))
	w := v >> 6
	for w >= len(e.next.tomb) {
		e.next.tomb = append(e.next.tomb, 0)
	}
	e.next.tomb[w] |= 1 << (uint(v) & 63)
	e.next.tombCount++
	return nil
}

// AddEdge connects two live vertices. Self-loops, out-of-range ids,
// tombstoned endpoints and already-present edges are errors.
func (e *OverlayEdit) AddEdge(u, v int) error {
	if err := e.checkEndpoints("add-edge", u, v); err != nil {
		return err
	}
	if e.next.HasEdge(u, v) {
		return fmt.Errorf("graph: add-edge: edge {%d, %d} already present", u, v)
	}
	e.halfAdd(int32(u), int32(v))
	e.halfAdd(int32(v), int32(u))
	e.normalize(int32(u))
	e.normalize(int32(v))
	return nil
}

// RemoveEdge disconnects a live edge; removing an absent edge is an error.
func (e *OverlayEdit) RemoveEdge(u, v int) error {
	if err := e.checkEndpoints("remove-edge", u, v); err != nil {
		return err
	}
	if !e.next.HasEdge(u, v) {
		return fmt.Errorf("graph: remove-edge: edge {%d, %d} not present", u, v)
	}
	e.halfRemove(int32(u), int32(v))
	e.halfRemove(int32(v), int32(u))
	e.normalize(int32(u))
	e.normalize(int32(v))
	return nil
}

func (e *OverlayEdit) checkEndpoints(op string, u, v int) error {
	n := e.next.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: %s: edge {%d, %d} out of range (n = %d)", op, u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: %s: self-loop at %d", op, u)
	}
	if e.next.Tombstoned(u) || e.next.Tombstoned(v) {
		return fmt.Errorf("graph: %s: edge {%d, %d} touches a removed vertex", op, u, v)
	}
	return nil
}

// halfAdd records u→v becoming live: un-deleting a base edge cancels the
// del entry, a genuinely new edge lands in add. Edge counters tick on the
// u < v half only, so each undirected edge counts once.
func (e *OverlayEdit) halfAdd(u, v int32) {
	inBase := int(u) < e.next.base.n && int(v) < e.next.base.n && e.next.base.HasEdge(int(u), int(v))
	d := e.delta(u)
	if inBase {
		d.del = removeSorted(d.del, v)
		if u < v {
			e.next.edgesRemoved--
		}
		return
	}
	d.add = insertSorted(d.add, v)
	if u < v {
		e.next.edgesAdded++
	}
}

// halfRemove records u→v going dead: a base edge lands in del, an
// overlay-added edge cancels out of add.
func (e *OverlayEdit) halfRemove(u, v int32) {
	inBase := int(u) < e.next.base.n && int(v) < e.next.base.n && e.next.base.HasEdge(int(u), int(v))
	d := e.delta(u)
	if inBase {
		d.del = insertSorted(d.del, v)
		if u < v {
			e.next.edgesRemoved++
		}
		return
	}
	d.add = removeSorted(d.add, v)
	if u < v {
		e.next.edgesAdded--
	}
}
