package graph

import (
	"math"
	"testing"

	"repro/internal/torus"
	"repro/internal/xrand"
)

// buildGraph constructs a plain graph (no geometry) from an edge list.
func buildGraph(t testing.TB, n int, edges [][2]int) *Graph {
	t.Helper()
	b, err := NewBuilder(n, nil, nil, float64(max(n, 1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Finish()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBuilderValidation(t *testing.T) {
	s := torus.MustSpace(2)
	pos := torus.NewPositions(s, 3)
	if _, err := NewBuilder(4, pos, nil, 4, 1); err == nil {
		t.Error("mismatched positions accepted")
	}
	if _, err := NewBuilder(3, pos, make([]float64, 2), 3, 1); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := NewBuilder(3, nil, nil, 0, 1); err == nil {
		t.Error("zero intensity accepted")
	}
	if _, err := NewBuilder(3, nil, nil, 3, 0); err == nil {
		t.Error("zero wmin accepted")
	}
}

func TestAddEdgePanics(t *testing.T) {
	b, _ := NewBuilder(3, nil, nil, 3, 1)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { b.AddEdge(1, 1) })
	mustPanic(func() { b.AddEdge(-1, 0) })
	mustPanic(func() { b.AddEdge(0, 3) })
}

func TestBasicAdjacency(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 1}})
	if g.N() != 5 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 3 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	if g.Degree(4) != 0 {
		t.Fatalf("Degree(4) = %d", g.Degree(4))
	}
	want := []int32{0, 2, 3}
	got := g.Neighbors(1)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(1) = %v, want %v", got, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) true")
	}
}

func TestDuplicateEdgesDeduped(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M = %d after dedup, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestWeightDefaults(t *testing.T) {
	g := buildGraph(t, 2, nil)
	if g.Weight(0) != 1 {
		t.Fatalf("default weight %v", g.Weight(0))
	}
	if g.Pos(0) != nil {
		t.Fatal("expected nil position")
	}
}

func TestBFSPath(t *testing.T) {
	// 0-1-2-3 path plus isolated 4.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dist := BFS(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("BFS dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSDistance(t *testing.T) {
	g := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}})
	if d := BFSDistance(g, 0, 3); d != 2 {
		t.Fatalf("BFSDistance(0,3) = %d, want 2", d)
	}
	if d := BFSDistance(g, 0, 0); d != 0 {
		t.Fatalf("BFSDistance(0,0) = %d", d)
	}
	if d := BFSDistance(g, 0, 5); d != -1 {
		t.Fatalf("BFSDistance disconnected = %d", d)
	}
}

func TestBFSAgainstFloydWarshall(t *testing.T) {
	// Property: BFS distances agree with Floyd–Warshall on random graphs.
	rng := xrand.New(101)
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.IntN(15)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(0.2) {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := buildGraph(t, n, edges)
		const inf = 1 << 20
		fw := make([][]int, n)
		for i := range fw {
			fw[i] = make([]int, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = inf
				}
			}
		}
		for _, e := range edges {
			fw[e[0]][e[1]] = 1
			fw[e[1]][e[0]] = 1
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}
		for s := 0; s < n; s++ {
			dist := BFS(g, s)
			for v := 0; v < n; v++ {
				want := fw[s][v]
				if want >= inf {
					want = -1
				}
				if int(dist[v]) != want {
					t.Fatalf("trial %d: BFS(%d)[%d] = %d, want %d", trial, s, v, dist[v], want)
				}
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := buildGraph(t, 7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	labels, sizes, giant := Components(g)
	if len(sizes) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("component count %d, want 4", len(sizes))
	}
	if sizes[giant] != 3 {
		t.Fatalf("giant size %d, want 3", sizes[giant])
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("vertices 0,1,2 not in one component")
	}
	if labels[0] == labels[3] {
		t.Error("vertices 0 and 3 share a component")
	}
	gc := GiantComponent(g)
	if len(gc) != 3 || gc[0] != 0 || gc[1] != 1 || gc[2] != 2 {
		t.Fatalf("GiantComponent = %v", gc)
	}
}

func TestUnionFindMatchesComponents(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.IntN(30)
		var edges [][2]int
		uf := NewUnionFind(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(0.1) {
					edges = append(edges, [2]int{u, v})
					uf.Union(u, v)
				}
			}
		}
		g := buildGraph(t, n, edges)
		labels, sizes, _ := Components(g)
		if len(sizes) != uf.Sets() {
			t.Fatalf("component count %d vs union-find %d", len(sizes), uf.Sets())
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (labels[u] == labels[v]) != uf.Connected(u, v) {
					t.Fatalf("connectivity disagreement for %d,%d", u, v)
				}
			}
		}
	}
}

func TestUnionFindSizes(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	uf.Union(1, 2)
	if uf.SetSize(0) != 3 {
		t.Fatalf("SetSize = %d", uf.SetSize(0))
	}
	if uf.Sets() != 3 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	h := DegreeHistogram(g)
	// star: one deg-3 vertex, three deg-1 vertices.
	if h[3] != 1 || h[1] != 3 || h[0] != 0 {
		t.Fatalf("histogram %v", h)
	}
}

func TestAverageDegree(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {2, 3}})
	if got := AverageDegree(g); got != 1 {
		t.Fatalf("AverageDegree = %v", got)
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if c := LocalClustering(g, 0); c != 1 {
		t.Fatalf("triangle vertex clustering %v", c)
	}
	if c := LocalClustering(g, 2); math.Abs(c-1.0/3) > 1e-12 {
		t.Fatalf("clustering of vertex 2: %v", c)
	}
	if c := LocalClustering(g, 3); c != 0 {
		t.Fatalf("degree-1 vertex clustering %v", c)
	}
}

func TestMeanClusteringExactVsSampled(t *testing.T) {
	rng := xrand.New(9)
	n := 60
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bernoulli(0.15) {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g := buildGraph(t, n, edges)
	exact := MeanClustering(g, 0, nil)
	sampled := MeanClustering(g, 5000, xrand.New(11))
	if math.Abs(exact-sampled) > 0.05 {
		t.Fatalf("sampled clustering %v far from exact %v", sampled, exact)
	}
}

func TestSummarize(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	s := Summarize(g, 0, nil)
	if s.N != 5 || s.M != 3 || s.MaxDegree != 2 || s.Isolated != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Components != 3 || math.Abs(s.GiantFraction-0.6) > 1e-12 {
		t.Fatalf("summary %+v", s)
	}
}

func TestMeanGiantDistancePath(t *testing.T) {
	// Path of 5 vertices: distances from an endpoint average (1+2+3+4)/4.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	rng := xrand.New(13)
	got := MeanGiantDistance(g, 50, rng)
	// All-pairs mean distance on P5 is 2.0.
	if math.Abs(got-2.0) > 0.3 {
		t.Fatalf("mean giant distance %v, want ~2", got)
	}
}

func TestSampleGiantDistancesEmpty(t *testing.T) {
	g := buildGraph(t, 3, nil) // all isolated
	if ds := SampleGiantDistances(g, 5, xrand.New(1)); ds != nil {
		t.Fatalf("expected nil distances, got %v", ds)
	}
}

func TestPowerLawExponentFit(t *testing.T) {
	// Build a synthetic degree sequence ~ k^-2.5 via a configuration-like
	// star construction: attach each vertex v to deg(v) fresh leaves.
	rng := xrand.New(17)
	const hubs = 20000
	degs := make([]int, hubs)
	total := 0
	for i := range degs {
		degs[i] = int(rng.PowerLaw(2, 2.5))
		total += degs[i]
	}
	n := hubs + total
	b, _ := NewBuilder(n, nil, nil, float64(n), 1)
	leaf := hubs
	for i, d := range degs {
		for k := 0; k < d; k++ {
			b.AddEdge(i, leaf)
			leaf++
		}
	}
	g := b.Finish()
	// Fit in the tail (kmin=8) where the discreteness of floor(w) no longer
	// biases the continuous MLE noticeably.
	beta := PowerLawExponentFit(g, 8)
	if math.IsNaN(beta) || math.Abs(beta-2.5) > 0.25 {
		t.Fatalf("fitted exponent %v, want ~2.5", beta)
	}
}

func TestPowerLawExponentFitDegenerate(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}})
	if !math.IsNaN(PowerLawExponentFit(g, 5)) {
		t.Fatal("expected NaN for insufficient data")
	}
}

func TestDegreeWeightCorrelation(t *testing.T) {
	// Two weight buckets; degree proportional to weight by construction.
	weights := []float64{1, 1, 4, 4, 1, 1, 1, 1}
	b, _ := NewBuilder(8, nil, weights, 8, 1)
	// weight-4 vertices get degree 4 each, weight-1 vertices degree 1-2.
	b.AddEdge(2, 4)
	b.AddEdge(2, 5)
	b.AddEdge(2, 6)
	b.AddEdge(2, 7)
	b.AddEdge(3, 4)
	b.AddEdge(3, 5)
	b.AddEdge(3, 6)
	b.AddEdge(3, 7)
	b.AddEdge(0, 1)
	g := b.Finish()
	mw, md := DegreeWeightCorrelation(g)
	if len(mw) != 3 { // buckets 2^0, 2^1(empty->skipped), 2^2: expect 2 non-empty
		// bucket for w=1 -> index 0; w=4 -> index 2; index 1 empty and skipped.
		if len(mw) != 2 {
			t.Fatalf("bucket count %d: %v %v", len(mw), mw, md)
		}
	}
	if md[len(md)-1] <= md[0] {
		t.Fatalf("degree should grow with weight: %v", md)
	}
}

func TestDistanceQuantiles(t *testing.T) {
	ds := []int{5, 1, 3, 2, 4}
	qs := DistanceQuantiles(ds, []float64{0, 0.5, 1})
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("quantiles %v", qs)
	}
	empty := DistanceQuantiles(nil, []float64{0.5})
	if !math.IsNaN(empty[0]) {
		t.Fatal("expected NaN for empty sample")
	}
}

func TestGraphGeometryAccessors(t *testing.T) {
	s := torus.MustSpace(2)
	pos := torus.NewPositions(s, 2)
	pos.Set(0, []float64{0.1, 0.1})
	pos.Set(1, []float64{0.3, 0.1})
	weights := []float64{1.5, 2.5}
	b, err := NewBuilder(2, pos, weights, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.AddEdge(0, 1)
	g := b.Finish()
	if g.Weight(1) != 2.5 {
		t.Fatalf("Weight(1) = %v", g.Weight(1))
	}
	if math.Abs(g.Dist(0, 1)-0.2) > 1e-12 {
		t.Fatalf("Dist = %v", g.Dist(0, 1))
	}
	if g.Space().Dim() != 2 {
		t.Fatal("wrong space")
	}
	if g.Intensity() != 2 || g.WMin() != 1 {
		t.Fatal("model params lost")
	}
}

func BenchmarkBFS(b *testing.B) {
	rng := xrand.New(1)
	n := 10000
	builder, _ := NewBuilder(n, nil, nil, float64(n), 1)
	for i := 0; i < 3*n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			builder.AddEdge(u, v)
		}
	}
	g := builder.Finish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BFS(g, i%n)
	}
}
