// Package graph provides the compact graph representation and the classical
// graph algorithms the experiments need: CSR adjacency with per-vertex
// geometric positions and weights, BFS shortest paths, connected components,
// and structural statistics (degree distribution, clustering, distances in
// the giant component).
package graph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/torus"
)

// Graph is an undirected graph in compressed-sparse-row form with vertex
// attributes from the geometric random-graph models: a position on the torus
// and a weight. It is immutable after construction.
type Graph struct {
	n       int
	offsets []int32
	adj     []int32
	pos     *torus.Positions
	weights []float64
	// Intensity is the expected number of vertices the model was sampled
	// with (the parameter n of the GIRG Poisson point process); objective
	// functions normalize by it. For fixed-size models it equals N().
	intensity float64
	wmin      float64

	// fpOnce/fp memoize Fingerprint: the graph is immutable after
	// construction, and readiness probes read the digest per request.
	fpOnce sync.Once
	fp     uint64
}

// Builder accumulates edges before freezing them into a Graph. Edges may be
// added in any order; duplicates and self-loops are rejected at Finish.
type Builder struct {
	n       int
	pos     *torus.Positions
	weights []float64
	src     []int32
	dst     []int32

	intensity float64
	wmin      float64
}

// NewBuilder creates a builder for a graph on n vertices with the given
// attribute stores. intensity is the model's expected vertex count and wmin
// the minimum weight (both used by routing objectives); pass float64(n) and
// 1 for models without those notions.
func NewBuilder(n int, pos *torus.Positions, weights []float64, intensity, wmin float64) (*Builder, error) {
	if pos != nil && pos.Len() != n {
		return nil, fmt.Errorf("graph: positions store has %d points, want %d", pos.Len(), n)
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("graph: weight store has %d entries, want %d", len(weights), n)
	}
	if intensity <= 0 {
		return nil, fmt.Errorf("graph: non-positive intensity %v", intensity)
	}
	if wmin <= 0 {
		return nil, fmt.Errorf("graph: non-positive wmin %v", wmin)
	}
	return &Builder{
		n:         n,
		pos:       pos,
		weights:   weights,
		intensity: intensity,
		wmin:      wmin,
	}, nil
}

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// vertices or self-loops; generators must not emit either.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic("graph: self-loop")
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic("graph: vertex out of range")
	}
	b.src = append(b.src, int32(u))
	b.dst = append(b.dst, int32(v))
}

// EdgeCount returns the number of edges recorded so far.
func (b *Builder) EdgeCount() int { return len(b.src) }

// Finish freezes the builder into a Graph, deduplicating parallel edges.
func (b *Builder) Finish() *Graph {
	g := &Graph{
		n:         b.n,
		pos:       b.pos,
		weights:   b.weights,
		intensity: b.intensity,
		wmin:      b.wmin,
	}
	// Degree counting pass (both directions).
	deg := make([]int32, b.n+1)
	for i := range b.src {
		deg[b.src[i]+1]++
		deg[b.dst[i]+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	g.offsets = deg
	adj := make([]int32, len(b.src)*2)
	fill := make([]int32, b.n)
	for i := range b.src {
		u, v := b.src[i], b.dst[i]
		adj[g.offsets[u]+fill[u]] = v
		fill[u]++
		adj[g.offsets[v]+fill[v]] = u
		fill[v]++
	}
	g.adj = adj
	g.sortAndDedup()
	return g
}

// sortAndDedup sorts each adjacency list and removes duplicate edges,
// rebuilding offsets compactly.
func (g *Graph) sortAndDedup() {
	newAdj := g.adj[:0]
	newOffsets := make([]int32, g.n+1)
	read := int32(0)
	for v := 0; v < g.n; v++ {
		end := g.offsets[v+1]
		list := g.adj[read:end]
		read = end
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		newOffsets[v] = int32(len(newAdj))
		var prev int32 = -1
		for _, u := range list {
			if u != prev {
				newAdj = append(newAdj, u)
				prev = u
			}
		}
	}
	newOffsets[g.n] = int32(len(newAdj))
	g.offsets = newOffsets
	g.adj = newAdj
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the raw compressed-sparse-row arrays: offsets has n+1 entries
// and adj[offsets[v]:offsets[v+1]] is the sorted adjacency list of v. Both
// slices alias internal storage and must not be modified; hot paths
// (route.GreedyCSR) scan them directly to skip interface dispatch.
func (g *Graph) CSR() (offsets, adj []int32) { return g.offsets, g.adj }

// HasEdge reports whether {u, v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// Pos returns the position of vertex v, or nil if the graph has no geometry.
func (g *Graph) Pos(v int) []float64 {
	if g.pos == nil {
		return nil
	}
	return g.pos.At(v)
}

// Positions returns the underlying position store (may be nil).
func (g *Graph) Positions() *torus.Positions { return g.pos }

// Weight returns the model weight of vertex v (1 if the graph is
// unweighted).
func (g *Graph) Weight(v int) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[v]
}

// Weights returns the underlying weight slice (may be nil).
func (g *Graph) Weights() []float64 { return g.weights }

// Intensity returns the model's expected vertex count.
func (g *Graph) Intensity() float64 { return g.intensity }

// WMin returns the model's minimum weight parameter.
func (g *Graph) WMin() float64 { return g.wmin }

// Space returns the geometric space of the graph; it panics if the graph
// has no geometry.
func (g *Graph) Space() torus.Space {
	if g.pos == nil {
		panic("graph: no geometry")
	}
	return g.pos.Space()
}

// Dist returns the torus distance between vertices u and v.
func (g *Graph) Dist(u, v int) float64 {
	return g.pos.Dist(u, v)
}
