package graph

// Classical algorithms on the CSR graph: breadth-first search, connected
// components via union-find, and helpers for picking vertices in the giant
// component.

// BFS computes unweighted shortest-path distances from source. Unreachable
// vertices get distance -1. The result slice has length N().
func BFS(g *Graph, source int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, int32(source))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// AdjacencyView is the minimal read surface the interface-based algorithms
// need; *Graph and *Overlay both satisfy it.
type AdjacencyView interface {
	N() int
	Neighbors(v int) []int32
}

// BFSDistanceOn is BFSDistance over any adjacency view — in particular a
// live *Overlay, so churn experiments can measure stretch against the
// drifted graph's true distances rather than the stale base's.
func BFSDistanceOn(g AdjacencyView, s, t int) int {
	if s == t {
		return 0
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				if int(u) == t {
					return int(dv) + 1
				}
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return -1
}

// BFSDistance returns the hop distance between s and t, or -1 if
// disconnected. It stops as soon as t is settled.
func BFSDistance(g *Graph, s, t int) int {
	if s == t {
		return 0
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				if int(u) == t {
					return int(dv) + 1
				}
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return -1
}

// Components labels every vertex with a component id in [0, count) and
// returns the labels, the component sizes, and the id of a largest
// component.
func Components(g *Graph) (labels []int32, sizes []int, giant int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	next := int32(0)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		id := next
		next++
		size := 0
		labels[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(int(v)) {
				if labels[u] < 0 {
					labels[u] = id
					queue = append(queue, u)
				}
			}
		}
		sizes = append(sizes, size)
	}
	giant = 0
	for i, s := range sizes {
		if s > sizes[giant] {
			giant = i
		}
	}
	return labels, sizes, giant
}

// GiantComponent returns the vertex ids of a largest connected component, in
// increasing order.
func GiantComponent(g *Graph) []int {
	labels, sizes, giant := Components(g)
	out := make([]int, 0, sizes[giant])
	for v, l := range labels {
		if l == int32(giant) {
			out = append(out, v)
		}
	}
	return out
}

// UnionFind is a classic disjoint-set structure with path halving and union
// by size; exposed so generators can maintain components incrementally.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]]
		p = uf.parent[p]
	}
	return int(p)
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
	uf.sets--
	return true
}

// Connected reports whether a and b are in the same set.
func (uf *UnionFind) Connected(a, b int) bool {
	return uf.Find(a) == uf.Find(b)
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int {
	return int(uf.size[uf.Find(x)])
}
