package graph

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/torus"
)

// testBase builds a small deterministic geometric graph for overlay tests.
func testBase(t *testing.T, n int) *Graph {
	t.Helper()
	space := torus.MustSpace(2)
	pos := torus.NewPositions(space, n)
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		pos.Set(v, []float64{tf(v, 1), tf(v, 2)})
		weights[v] = 1 + 3*tf(v, 3)
	}
	b, err := NewBuilder(n, pos, weights, float64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for k := 1; k <= 3; k++ {
			u := int(tf(v, uint64(10+k)) * float64(n))
			if u != v && u < n {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Finish()
}

// tf is a deterministic hash → [0,1) for test data.
func tf(v int, salt uint64) float64 {
	x := (uint64(v)+1)*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * 0x1p-53
}

func TestOverlayEmptyMatchesBase(t *testing.T) {
	g := testBase(t, 50)
	o := NewOverlay(g)
	if !o.Empty() || o.Epoch() != 0 {
		t.Fatalf("fresh overlay: Empty=%v Epoch=%d", o.Empty(), o.Epoch())
	}
	if o.N() != g.N() || o.M() != g.M() {
		t.Fatalf("N/M mismatch: overlay (%d, %d), base (%d, %d)", o.N(), o.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if !reflect.DeepEqual(sliceOrEmpty(o.Neighbors(v)), sliceOrEmpty(g.Neighbors(v))) {
			t.Fatalf("Neighbors(%d) mismatch", v)
		}
	}
	if o.Fingerprint() != g.Fingerprint() {
		t.Fatalf("empty overlay fingerprint %016x != base %016x", o.Fingerprint(), g.Fingerprint())
	}
}

func sliceOrEmpty(s []int32) []int32 {
	if len(s) == 0 {
		return []int32{}
	}
	return s
}

func TestOverlayEditValidation(t *testing.T) {
	g := testBase(t, 20)
	o := NewOverlay(g)
	e := o.Edit()
	if err := e.RemoveVertex(3); err != nil {
		t.Fatal(err)
	}
	u, v := existingEdge(g)
	if err := e.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		op   func() error
	}{
		{"add-vertex wrong dim", func() error { _, err := e.AddVertex([]float64{0.5}, 1); return err }},
		{"add-vertex nan pos", func() error { _, err := e.AddVertex([]float64{math.NaN(), 0}, 1); return err }},
		{"add-vertex inf weight", func() error { _, err := e.AddVertex([]float64{0.1, 0.2}, math.Inf(1)); return err }},
		{"add-vertex sub-wmin weight", func() error { _, err := e.AddVertex([]float64{0.1, 0.2}, 0.5); return err }},
		{"remove-vertex out of range", func() error { return e.RemoveVertex(10_000) }},
		{"remove-vertex negative", func() error { return e.RemoveVertex(-1) }},
		{"remove-vertex tombstoned", func() error { return e.RemoveVertex(3) }},
		{"add-edge self-loop", func() error { return e.AddEdge(5, 5) }},
		{"add-edge out of range", func() error { return e.AddEdge(5, 10_000) }},
		{"add-edge tombstoned endpoint", func() error { return e.AddEdge(5, 3) }},
		{"add-edge duplicate", func() error {
			a, b := existingEdge(g)
			if a == 3 || b == 3 || (a == u && b == v) {
				return e.AddEdge(u, v) // removed above; re-adding is legal, force the duplicate differently
			}
			return e.AddEdge(a, b)
		}},
		{"remove-edge absent", func() error { return e.RemoveEdge(u, v) }},
		{"remove-edge tombstoned endpoint", func() error { return e.RemoveEdge(3, 4) }},
	}
	for _, c := range cases {
		if c.name == "add-edge duplicate" {
			// Find a live base edge not touching vertex 3 and not {u, v}.
			a, b := -1, -1
			for x := 0; x < g.N() && a < 0; x++ {
				for _, y32 := range g.Neighbors(x) {
					y := int(y32)
					if x != 3 && y != 3 && !(x == u && y == v) && !(x == v && y == u) {
						a, b = x, y
						break
					}
				}
			}
			if a < 0 {
				t.Fatal("no spare edge in test base")
			}
			if err := e.AddEdge(a, b); err == nil {
				t.Errorf("%s: no error", c.name)
			}
			continue
		}
		if err := c.op(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// existingEdge returns some edge of g.
func existingEdge(g *Graph) (int, int) {
	for v := 0; v < g.N(); v++ {
		if ns := g.Neighbors(v); len(ns) > 0 {
			return v, int(ns[0])
		}
	}
	panic("edgeless test graph")
}

func TestOverlayCopyOnWriteIsolation(t *testing.T) {
	g := testBase(t, 40)
	o0 := NewOverlay(g)
	e := o0.Edit()
	u, v := existingEdge(g)
	if err := e.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	nv, err := e.AddVertex([]float64{0.25, 0.75}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdge(nv, u); err != nil {
		t.Fatal(err)
	}
	o1 := e.Finish()

	if o1.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", o1.Epoch())
	}
	// The parent overlay must be untouched.
	if !o0.Empty() || o0.N() != g.N() || o0.HasEdge(u, v) != true {
		t.Fatalf("parent overlay mutated: empty=%v n=%d hasEdge=%v", o0.Empty(), o0.N(), o0.HasEdge(u, v))
	}
	if o1.HasEdge(u, v) {
		t.Fatal("removed edge still live in child")
	}
	if !o1.HasEdge(nv, u) || !o1.HasEdge(u, nv) {
		t.Fatal("added edge not live in both directions")
	}
	// A second-generation edit must not disturb the first.
	e2 := o1.Edit()
	if err := e2.AddEdge(u, v); err != nil { // re-add the removed base edge
		t.Fatal(err)
	}
	o2 := e2.Finish()
	if o1.HasEdge(u, v) {
		t.Fatal("second edit leaked into first overlay")
	}
	if !o2.HasEdge(u, v) {
		t.Fatal("re-added base edge not live")
	}
	// Re-adding the base edge cancels the delta entirely: o2 differs from
	// base only by the added vertex and its edge.
	if o2.DirtyVertices() != 2 { // nv and u (the nv–u edge)
		t.Fatalf("DirtyVertices = %d, want 2", o2.DirtyVertices())
	}
}

func TestOverlayRemoveVertexDetaches(t *testing.T) {
	g := testBase(t, 40)
	o := NewOverlay(g)
	victim, _ := existingEdge(g)
	e := o.Edit()
	if err := e.RemoveVertex(victim); err != nil {
		t.Fatal(err)
	}
	o1 := e.Finish()
	if !o1.Tombstoned(victim) {
		t.Fatal("victim not tombstoned")
	}
	if got := o1.Neighbors(victim); len(got) != 0 {
		t.Fatalf("tombstoned vertex has %d neighbors", len(got))
	}
	for v := 0; v < o1.N(); v++ {
		for _, u := range o1.Neighbors(v) {
			if int(u) == victim {
				t.Fatalf("tombstoned vertex still listed in Neighbors(%d)", v)
			}
		}
	}
	// Weight and position survive for stale-reference scoring.
	if o1.Weight(victim) != g.Weight(victim) {
		t.Fatal("tombstoned weight lost")
	}
	if !reflect.DeepEqual(o1.Pos(victim), g.Pos(victim)) {
		t.Fatal("tombstoned position lost")
	}
}

// refGraph is a naive map-based live graph the overlay is checked against.
type refGraph struct {
	adj  map[int]map[int]bool
	tomb map[int]bool
	pos  [][]float64
	w    []float64
}

func newRefGraph(g *Graph) *refGraph {
	r := &refGraph{adj: map[int]map[int]bool{}, tomb: map[int]bool{}}
	for v := 0; v < g.N(); v++ {
		r.adj[v] = map[int]bool{}
		for _, u := range g.Neighbors(v) {
			r.adj[v][int(u)] = true
		}
		r.pos = append(r.pos, append([]float64(nil), g.Pos(v)...))
		r.w = append(r.w, g.Weight(v))
	}
	return r
}

func (r *refGraph) neighbors(v int) []int32 {
	var out []int32
	for u := range r.adj[v] {
		out = append(out, int32(u))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestOverlayRandomOpsMatchReference(t *testing.T) {
	g := testBase(t, 60)
	o := NewOverlay(g)
	ref := newRefGraph(g)
	n := g.N()
	live := func() []int {
		var ids []int
		for v := 0; v < n; v++ {
			if !ref.tomb[v] {
				ids = append(ids, v)
			}
		}
		return ids
	}
	for batch := 0; batch < 30; batch++ {
		e := o.Edit()
		for op := 0; op < 8; op++ {
			r := tf(batch*100+op, 77)
			ids := live()
			switch {
			case r < 0.2: // add vertex
				pos := []float64{tf(batch*100+op, 5), tf(batch*100+op, 6)}
				w := 1 + tf(batch*100+op, 7)
				v, err := e.AddVertex(pos, w)
				if err != nil {
					t.Fatal(err)
				}
				if v != n {
					t.Fatalf("assigned id %d, want %d", v, n)
				}
				ref.adj[v] = map[int]bool{}
				ref.pos = append(ref.pos, []float64{torus.Wrap(pos[0]), torus.Wrap(pos[1])})
				ref.w = append(ref.w, w)
				n++
			case r < 0.3 && len(ids) > 10: // remove vertex
				v := ids[int(tf(batch*100+op, 8)*float64(len(ids)))]
				if err := e.RemoveVertex(v); err != nil {
					t.Fatal(err)
				}
				for u := range ref.adj[v] {
					delete(ref.adj[u], v)
				}
				ref.adj[v] = map[int]bool{}
				ref.tomb[v] = true
			case r < 0.65 && len(ids) >= 2: // add edge
				u := ids[int(tf(batch*100+op, 9)*float64(len(ids)))]
				v := ids[int(tf(batch*100+op, 10)*float64(len(ids)))]
				if u == v || ref.adj[u][v] {
					continue
				}
				if err := e.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ref.adj[u][v] = true
				ref.adj[v][u] = true
			default: // remove edge
				var eu, ev = -1, -1
				for _, u := range ids {
					for v := range ref.adj[u] {
						eu, ev = u, v
						break
					}
					if eu >= 0 {
						break
					}
				}
				if eu < 0 {
					continue
				}
				if err := e.RemoveEdge(eu, ev); err != nil {
					t.Fatal(err)
				}
				delete(ref.adj[eu], ev)
				delete(ref.adj[ev], eu)
			}
		}
		o = e.Finish()
	}

	if o.N() != n {
		t.Fatalf("N = %d, want %d", o.N(), n)
	}
	edges := 0
	for v := 0; v < n; v++ {
		want := ref.neighbors(v)
		got := o.Neighbors(v)
		if !reflect.DeepEqual(sliceOrEmpty(got), sliceOrEmpty(want)) {
			t.Fatalf("Neighbors(%d): got %v want %v", v, got, want)
		}
		if o.Degree(v) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", v, o.Degree(v), len(want))
		}
		if o.Weight(v) != ref.w[v] {
			t.Fatalf("Weight(%d) mismatch", v)
		}
		if !reflect.DeepEqual(append([]float64(nil), o.Pos(v)...), ref.pos[v]) {
			t.Fatalf("Pos(%d) mismatch", v)
		}
		if o.Tombstoned(v) != ref.tomb[v] {
			t.Fatalf("Tombstoned(%d) mismatch", v)
		}
		edges += len(want)
	}
	if o.M() != edges/2 {
		t.Fatalf("M = %d, want %d", o.M(), edges/2)
	}

	// Materialize must agree vertex by vertex, and fingerprints must match.
	mg, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if mg.N() != o.N() || mg.M() != o.M() {
		t.Fatalf("materialized (n=%d, m=%d) vs overlay (n=%d, m=%d)", mg.N(), mg.M(), o.N(), o.M())
	}
	for v := 0; v < n; v++ {
		if !reflect.DeepEqual(sliceOrEmpty(mg.Neighbors(v)), sliceOrEmpty(o.Neighbors(v))) {
			t.Fatalf("materialized Neighbors(%d) mismatch", v)
		}
		if mg.Weight(v) != o.Weight(v) {
			t.Fatalf("materialized Weight(%d) mismatch", v)
		}
	}
	if mg.Fingerprint() != o.Fingerprint() {
		t.Fatalf("materialized fingerprint %016x != overlay %016x", mg.Fingerprint(), o.Fingerprint())
	}
	// Folding the delta into a new base and re-overlaying empties the delta
	// without changing the live fingerprint — the compaction invariant.
	o2 := NewOverlay(mg)
	if o2.Fingerprint() != o.Fingerprint() {
		t.Fatal("compaction changed the live fingerprint")
	}
}

func TestOverlayFingerprintCanonical(t *testing.T) {
	g := testBase(t, 30)
	u, v := existingEdge(g)

	// Same final state via different op orders → same fingerprint.
	e1 := NewOverlay(g).Edit()
	if err := e1.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	o1 := e1.Finish()
	e2 := o1.Edit()
	if err := e2.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	o2 := e2.Finish()
	if o2.Fingerprint() != g.Fingerprint() {
		t.Fatal("remove+re-add did not cancel to the base fingerprint")
	}
	if !o2.Empty() {
		t.Fatal("remove+re-add left a delta entry (canonical form violated)")
	}
	if o2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (epochs count batches, not delta size)", o2.Epoch())
	}
}
