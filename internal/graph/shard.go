package graph

import (
	"fmt"

	"repro/internal/torus"
)

// Shard slicing: a cluster daemon owns the vertices whose deep Morton code
// starts with its shard prefix. The whole CSR snapshot stays loaded on every
// shard — greedy routing needs the neighbors and positions of border
// vertices anyway — and ownership is a bit mask over it, so slicing a shard
// out of a snapshot costs one pass over the positions and n bits of memory.

// MortonCodes returns the deep Morton code of every vertex (at
// torus.ShardLevel) and the code bit width. It errors on graphs without
// geometry — there is nothing to shard a non-geometric graph by.
func MortonCodes(g *Graph) (codes []uint64, bits int, err error) {
	if g.Positions() == nil {
		return nil, 0, fmt.Errorf("graph: cannot shard a graph without geometry")
	}
	codes, bits = torus.DeepCodes(g.Positions())
	return codes, bits, nil
}

// OwnedMask returns the ownership mask of a shard prefix over the given
// vertex codes: owned[v] reports that v's code starts with p. The prefix
// must be valid for the code width (torus.Prefix.Valid).
func OwnedMask(codes []uint64, bits int, p torus.Prefix) ([]bool, error) {
	if err := p.Valid(bits); err != nil {
		return nil, err
	}
	owned := make([]bool, len(codes))
	for v, c := range codes {
		owned[v] = p.Matches(c, bits)
	}
	return owned, nil
}
