package graph

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Structural statistics used by experiment E11 to validate the GIRG
// substrate against the theory quoted in the paper (Lemmas 7.2/7.3):
// expected degree Θ(w), power-law degree sequence, a unique giant component,
// ultra-small distances in the giant, and constant clustering.

// DegreeHistogram returns counts[k] = number of vertices of degree k.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// AverageDegree returns 2m/n.
func AverageDegree(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// LocalClustering returns the clustering coefficient of vertex v: the
// fraction of neighbor pairs that are themselves adjacent. Degree < 2 gives
// 0.
func LocalClustering(g *Graph, v int) float64 {
	nbrs := g.Neighbors(v)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	closed := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
				closed++
			}
		}
	}
	return 2 * float64(closed) / float64(k*(k-1))
}

// MeanClustering estimates the average local clustering coefficient. If
// sample <= 0 or >= n the exact average is computed, otherwise a uniform
// vertex sample of the given size is used (clustering is O(deg²) per vertex,
// so sampling keeps large graphs tractable).
func MeanClustering(g *Graph, sample int, rng *xrand.RNG) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sample <= 0 || sample >= n {
		sum := 0.0
		for v := 0; v < n; v++ {
			sum += LocalClustering(g, v)
		}
		return sum / float64(n)
	}
	sum := 0.0
	for i := 0; i < sample; i++ {
		sum += LocalClustering(g, rng.IntN(n))
	}
	return sum / float64(sample)
}

// SampleGiantDistances estimates the distribution of shortest-path distances
// between random vertex pairs in the giant component by running `sources`
// full BFS traversals from random giant vertices and collecting distances to
// all other giant vertices. Returns the collected distances (may be empty if
// the giant has fewer than two vertices).
func SampleGiantDistances(g *Graph, sources int, rng *xrand.RNG) []int {
	giant := GiantComponent(g)
	if len(giant) < 2 {
		return nil
	}
	var out []int
	for i := 0; i < sources; i++ {
		s := giant[rng.IntN(len(giant))]
		dist := BFS(g, s)
		for _, v := range giant {
			if v != s && dist[v] > 0 {
				out = append(out, int(dist[v]))
			}
		}
	}
	return out
}

// MeanGiantDistance estimates the average shortest-path distance in the
// giant component from the given number of BFS sources.
func MeanGiantDistance(g *Graph, sources int, rng *xrand.RNG) float64 {
	ds := SampleGiantDistances(g, sources, rng)
	if len(ds) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, d := range ds {
		sum += float64(d)
	}
	return sum / float64(len(ds))
}

// PowerLawExponentFit estimates the degree power-law exponent beta from the
// empirical complementary CDF by the standard discrete Hill/MLE estimator
// above kmin: beta = 1 + m / sum(ln(k_i/(kmin-0.5))). Vertices with degree
// below kmin are ignored. Returns NaN if fewer than 10 vertices qualify.
func PowerLawExponentFit(g *Graph, kmin int) float64 {
	if kmin < 1 {
		kmin = 1
	}
	sum := 0.0
	m := 0
	base := float64(kmin) - 0.5
	for v := 0; v < g.N(); v++ {
		k := g.Degree(v)
		if k >= kmin {
			sum += math.Log(float64(k) / base)
			m++
		}
	}
	if m < 10 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(m)/sum
}

// DegreeWeightCorrelation returns, per logarithmic weight bucket, the mean
// weight and mean degree of vertices in the bucket — the empirical check of
// E[deg(v)] = Θ(w_v) (Lemma 7.2). Buckets are powers of two of w/wmin.
func DegreeWeightCorrelation(g *Graph) (meanWeight, meanDegree []float64) {
	type acc struct {
		w, d float64
		n    int
	}
	var buckets []acc
	for v := 0; v < g.N(); v++ {
		w := g.Weight(v)
		b := 0
		if w > g.WMin() {
			b = int(math.Log2(w / g.WMin()))
		}
		for len(buckets) <= b {
			buckets = append(buckets, acc{})
		}
		buckets[b].w += w
		buckets[b].d += float64(g.Degree(v))
		buckets[b].n++
	}
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		meanWeight = append(meanWeight, b.w/float64(b.n))
		meanDegree = append(meanDegree, b.d/float64(b.n))
	}
	return meanWeight, meanDegree
}

// Summary bundles the headline structural statistics of a graph.
type Summary struct {
	N             int
	M             int
	AvgDegree     float64
	MaxDegree     int
	Isolated      int
	Components    int
	GiantFraction float64
	Clustering    float64
}

// Summarize computes a Summary; clustering uses the given sample size.
func Summarize(g *Graph, clusteringSample int, rng *xrand.RNG) Summary {
	maxDeg, isolated := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 {
			isolated++
		}
	}
	_, sizes, giant := Components(g)
	giantFrac := 0.0
	if g.N() > 0 {
		giantFrac = float64(sizes[giant]) / float64(g.N())
	}
	return Summary{
		N:             g.N(),
		M:             g.M(),
		AvgDegree:     AverageDegree(g),
		MaxDegree:     maxDeg,
		Isolated:      isolated,
		Components:    len(sizes),
		GiantFraction: giantFrac,
		Clustering:    MeanClustering(g, clusteringSample, rng),
	}
}

// DistanceQuantiles returns the q-quantiles (q in [0,1]) of a distance
// sample, for reporting distance distributions compactly.
func DistanceQuantiles(ds []int, qs []float64) []float64 {
	if len(ds) == 0 {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]int, len(ds))
	copy(sorted, ds)
	sort.Ints(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = float64(sorted[idx])
	}
	return out
}
