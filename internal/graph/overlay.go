package graph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/torus"
)

// Overlay is a copy-on-write delta over an immutable base Graph: the live
// view of a graph under mutation. It keeps the base's CSR arrays untouched
// and layers three structures on top —
//
//   - a tombstone bitset marking removed vertices (their adjacency reads
//     empty, but position and weight survive so objective scores of a
//     stale current vertex stay well-defined),
//   - per-vertex sorted add/del delta lists merged with the base CSR scan
//     on every adjacency read, and
//   - append-only position/weight extensions for vertices added after the
//     snapshot (ids continue from the base's N; tombstoned ids are never
//     reused).
//
// An Overlay is immutable after construction: mutation produces a *new*
// Overlay via Edit/Finish, and readers that loaded the old pointer keep a
// consistent view — publish through an atomic pointer and every routing
// episode sees one epoch atomically. The Epoch counts applied batches and
// increments by exactly one per Finish.
//
// Overlay satisfies route.Graph (N/Neighbors/Weight) and the geometric
// accessors objectives need (Pos/Space/Intensity/WMin), so every registered
// protocol routes over the live view unchanged; Materialize folds the delta
// into a fresh immutable Graph with bit-identical structure and scores.
type Overlay struct {
	base  *Graph
	epoch uint64

	// tomb marks removed vertices, one bit per id over [0, N()).
	tomb      []uint64
	tombCount int

	// deltas holds the adjacency changes of dirty vertices. Invariants:
	// add and del are sorted and disjoint, del only contains base edges,
	// add only non-base edges, tombstoned vertices have no entry, and an
	// entry with both lists empty is dropped — so the delta is a canonical
	// function of (base, live edge set) regardless of the op order that
	// produced it.
	deltas map[int32]*vertexDelta

	// addedPos/addedW extend the base's attribute stores for added
	// vertices: vertex base.N()+i lives at addedPos[i*dim:(i+1)*dim] with
	// weight addedW[i].
	addedPos []float64
	addedW   []float64

	// edgesAdded counts live edges absent from the base; edgesRemoved
	// counts base edges no longer live. M() = base.M() + added - removed.
	edgesAdded   int
	edgesRemoved int

	// fpOnce/fp memoize Fingerprint (the digest of the materialized
	// content, O(n+m)); the overlay is immutable so once is enough.
	fpOnce sync.Once
	fp     uint64
}

// vertexDelta is the adjacency change of one dirty vertex.
type vertexDelta struct {
	add []int32 // sorted live edges not in the base list
	del []int32 // sorted base edges no longer live
}

// NewOverlay returns the empty overlay over base: epoch 0, no delta. It is
// the state a freshly loaded snapshot serves before any mutation.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{base: base, deltas: map[int32]*vertexDelta{}}
}

// Base returns the immutable snapshot under the overlay.
func (o *Overlay) Base() *Graph { return o.base }

// Epoch returns the number of applied mutation batches since the base
// snapshot was loaded.
func (o *Overlay) Epoch() uint64 { return o.epoch }

// Empty reports whether the overlay carries no delta at all — routing over
// an empty overlay is exactly routing over the base.
func (o *Overlay) Empty() bool {
	return o.tombCount == 0 && len(o.deltas) == 0 && len(o.addedW) == 0
}

// N returns the live vertex-id space: base vertices plus added ones.
// Tombstoned ids stay in range (their adjacency reads empty).
func (o *Overlay) N() int { return o.base.n + len(o.addedW) }

// M returns the number of live undirected edges.
func (o *Overlay) M() int { return o.base.M() + o.edgesAdded - o.edgesRemoved }

// Tombstoned reports whether v has been removed. Out-of-range ids are not
// tombstoned (callers range-check separately).
func (o *Overlay) Tombstoned(v int) bool {
	w := v >> 6
	if w < 0 || w >= len(o.tomb) {
		return false
	}
	return o.tomb[w]&(1<<(uint(v)&63)) != 0
}

// Delta returns the sorted add/del adjacency delta of v (nil, nil when v is
// clean). The slices alias internal storage and must not be modified. Hot
// paths (route.GreedyCSROverlay) merge them with the base CSR scan without
// allocating.
func (o *Overlay) Delta(v int) (add, del []int32) {
	d, ok := o.deltas[int32(v)]
	if !ok {
		return nil, nil
	}
	return d.add, d.del
}

// DirtyVertices returns the number of vertices with a non-empty adjacency
// delta — the quantity compaction thresholds watch.
func (o *Overlay) DirtyVertices() int { return len(o.deltas) }

// Neighbors returns the sorted live adjacency of v. Clean base vertices
// return the base slice without allocating; dirty and added vertices
// materialize a fresh merged slice per call (the interface-path protocols
// tolerate that; the CSR fast path merges in place via Delta).
func (o *Overlay) Neighbors(v int) []int32 {
	if o.Tombstoned(v) {
		return nil
	}
	d, ok := o.deltas[int32(v)]
	if !ok {
		if v < o.base.n {
			return o.base.Neighbors(v)
		}
		return nil
	}
	var bs []int32
	if v < o.base.n {
		bs = o.base.Neighbors(v)
	}
	out := make([]int32, 0, len(bs)-len(d.del)+len(d.add))
	ai, di := 0, 0
	for _, u := range bs {
		for di < len(d.del) && d.del[di] < u {
			di++
		}
		if di < len(d.del) && d.del[di] == u {
			continue
		}
		for ai < len(d.add) && d.add[ai] < u {
			out = append(out, d.add[ai])
			ai++
		}
		out = append(out, u)
	}
	out = append(out, d.add[ai:]...)
	return out
}

// Degree returns the live degree of v.
func (o *Overlay) Degree(v int) int {
	if o.Tombstoned(v) {
		return 0
	}
	d, ok := o.deltas[int32(v)]
	if !ok {
		if v < o.base.n {
			return o.base.Degree(v)
		}
		return 0
	}
	base := 0
	if v < o.base.n {
		base = o.base.Degree(v)
	}
	return base - len(d.del) + len(d.add)
}

// HasEdge reports whether {u, v} is a live edge.
func (o *Overlay) HasEdge(u, v int) bool {
	if o.Tombstoned(u) || o.Tombstoned(v) {
		return false
	}
	if d, ok := o.deltas[int32(u)]; ok {
		if contains(d.add, int32(v)) {
			return true
		}
		if contains(d.del, int32(v)) {
			return false
		}
	}
	return u < o.base.n && v < o.base.n && o.base.HasEdge(u, v)
}

// Weight returns the model weight of live vertex v (added vertices carry
// the weight they joined with; tombstoned vertices keep theirs).
func (o *Overlay) Weight(v int) float64 {
	if v < o.base.n {
		return o.base.Weight(v)
	}
	return o.addedW[v-o.base.n]
}

// Pos returns the position of vertex v (added vertices included).
func (o *Overlay) Pos(v int) []float64 {
	if v < o.base.n {
		return o.base.Pos(v)
	}
	dim := o.base.Space().Dim()
	i := (v - o.base.n) * dim
	return o.addedPos[i : i+dim : i+dim]
}

// Space returns the base graph's geometric space.
func (o *Overlay) Space() torus.Space { return o.base.Space() }

// Intensity returns the base model's expected vertex count — the objective
// normalization constant is a model parameter and does not drift with
// churn, which is what keeps overlay scores bit-identical to scores on the
// materialized snapshot.
func (o *Overlay) Intensity() float64 { return o.base.intensity }

// WMin returns the base model's minimum weight parameter.
func (o *Overlay) WMin() float64 { return o.base.wmin }

// Stats summarizes the delta for readiness probes and metrics.
type OverlayStats struct {
	// Epoch counts applied mutation batches since the base snapshot.
	Epoch uint64 `json:"epoch"`
	// AddedVertices / RemovedVertices count vertex-level drift.
	AddedVertices   int `json:"added_vertices"`
	RemovedVertices int `json:"removed_vertices"`
	// AddedEdges / RemovedEdges count edge drift relative to the base.
	AddedEdges   int `json:"added_edges"`
	RemovedEdges int `json:"removed_edges"`
	// DirtyVertices is the number of vertices whose adjacency differs from
	// the base — the compaction-threshold quantity.
	DirtyVertices int `json:"dirty_vertices"`
}

// Stats returns the overlay's delta summary.
func (o *Overlay) Stats() OverlayStats {
	return OverlayStats{
		Epoch:           o.epoch,
		AddedVertices:   len(o.addedW),
		RemovedVertices: o.tombCount,
		AddedEdges:      o.edgesAdded,
		RemovedEdges:    o.edgesRemoved,
		DirtyVertices:   len(o.deltas),
	}
}

// DeltaSize is the total delta volume (dirty vertices + added vertices +
// tombstones), the size compaction thresholds compare against.
func (o *Overlay) DeltaSize() int {
	return len(o.deltas) + len(o.addedW) + o.tombCount
}

// Materialize folds the overlay into a fresh immutable Graph with the same
// vertex-id space: tombstoned vertices become isolated but keep their
// position and weight, added vertices keep their ids, and every live edge
// appears in sorted CSR form. Routing on the materialized graph is
// bit-identical to routing on the overlay (same scores, same tie-breaks),
// which is what lets a compactor swap one for the other under live traffic.
func (o *Overlay) Materialize() (*Graph, error) {
	n := o.N()
	var pos *torus.Positions
	if o.base.pos != nil {
		raw := make([]float64, 0, len(o.base.pos.Raw())+len(o.addedPos))
		raw = append(raw, o.base.pos.Raw()...)
		raw = append(raw, o.addedPos...)
		var err error
		if pos, err = torus.NewPositionsRaw(o.base.Space(), raw); err != nil {
			return nil, fmt.Errorf("graph: materialize positions: %w", err)
		}
	}
	var weights []float64
	if o.base.weights != nil || len(o.addedW) > 0 {
		weights = make([]float64, 0, n)
		for v := 0; v < o.base.n; v++ {
			weights = append(weights, o.base.Weight(v))
		}
		weights = append(weights, o.addedW...)
	}
	b, err := NewBuilder(n, pos, weights, o.base.intensity, o.base.wmin)
	if err != nil {
		return nil, fmt.Errorf("graph: materialize: %w", err)
	}
	for v := 0; v < n; v++ {
		for _, u := range o.Neighbors(v) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Finish(), nil
}

// Fingerprint digests the overlay's live content — the same digest
// Materialize().Fingerprint() produces, memoized because the overlay is
// immutable. Two replicas that replayed the same journal report the same
// value, and it is invariant under compaction (folding the delta into a new
// base does not change the live graph).
func (o *Overlay) Fingerprint() uint64 {
	o.fpOnce.Do(func() {
		g, err := o.Materialize()
		if err != nil {
			// Materialize only fails on attribute-store invariants the Edit
			// path already enforces; an overlay that violates them is a bug.
			panic(fmt.Sprintf("graph: overlay fingerprint: %v", err))
		}
		o.fp = g.Fingerprint()
	})
	return o.fp
}

// contains reports whether sorted s contains x.
func contains(s []int32, x int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}
