package torus

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewSpaceValidation(t *testing.T) {
	for _, d := range []int{1, 2, 3, MaxDim} {
		if _, err := NewSpace(d); err != nil {
			t.Errorf("NewSpace(%d): %v", d, err)
		}
	}
	for _, d := range []int{0, -1, MaxDim + 1} {
		if _, err := NewSpace(d); err == nil {
			t.Errorf("NewSpace(%d) accepted invalid dimension", d)
		}
	}
}

func TestDistKnownValues(t *testing.T) {
	s := MustSpace(2)
	tests := []struct {
		x, y []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{0, 0}, 0},
		{[]float64{0.1, 0.1}, []float64{0.2, 0.1}, 0.1},
		{[]float64{0.05, 0.5}, []float64{0.95, 0.5}, 0.1}, // wraps around
		{[]float64{0, 0}, []float64{0.5, 0.5}, 0.5},
		{[]float64{0.2, 0.9}, []float64{0.3, 0.05}, 0.15},
	}
	for _, tt := range tests {
		got := s.Dist(tt.x, tt.y)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func randPoint(r *xrand.RNG, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = r.Float64()
	}
	return p
}

func TestDistMetricAxioms(t *testing.T) {
	r := xrand.New(1)
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for trial := 0; trial < 2000; trial++ {
			x, y, z := randPoint(r, d), randPoint(r, d), randPoint(r, d)
			dxy, dyx := s.Dist(x, y), s.Dist(y, x)
			if dxy != dyx {
				t.Fatalf("d=%d: asymmetric distance %v vs %v", d, dxy, dyx)
			}
			if dxy < 0 || dxy > 0.5+1e-12 {
				t.Fatalf("d=%d: distance %v outside [0, 0.5]", d, dxy)
			}
			if s.Dist(x, x) != 0 {
				t.Fatalf("d=%d: Dist(x,x) != 0", d)
			}
			if s.Dist(x, z) > dxy+s.Dist(y, z)+1e-12 {
				t.Fatalf("d=%d: triangle inequality violated", d)
			}
		}
	}
}

func TestDistPow(t *testing.T) {
	r := xrand.New(2)
	for _, d := range []int{1, 2, 3, 4} {
		s := MustSpace(d)
		for trial := 0; trial < 500; trial++ {
			x, y := randPoint(r, d), randPoint(r, d)
			want := math.Pow(s.Dist(x, y), float64(d))
			got := s.DistPow(x, y)
			if math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("DistPow mismatch: %v vs %v", got, want)
			}
		}
	}
}

func TestWrap(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0}, {0.25, 0.25}, {1, 0}, {1.75, 0.75}, {-0.25, 0.75}, {-3.5, 0.5},
	}
	for _, tt := range tests {
		if got := Wrap(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Wrap(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	// Wrap always lands in [0, 1).
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		w := Wrap(x)
		return w >= 0 && w < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBallVolume(t *testing.T) {
	s := MustSpace(2)
	if got := s.BallVolume(0.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("BallVolume(0.25) in 2d = %v, want 0.25", got)
	}
	if got := s.BallVolume(0.5); got != 1 {
		t.Errorf("BallVolume(0.5) = %v, want 1 (whole torus)", got)
	}
	if got := s.BallVolume(0.7); got != 1 {
		t.Errorf("BallVolume capped at 1, got %v", got)
	}
	if got := s.BallVolume(0); got != 0 {
		t.Errorf("BallVolume(0) = %v", got)
	}
}

func TestBallVolumeMatchesEmpirical(t *testing.T) {
	// Fraction of random points within distance r of the origin must match
	// the ball volume.
	r := xrand.New(3)
	s := MustSpace(3)
	origin := []float64{0, 0, 0}
	const radius = 0.2
	const n = 200000
	in := 0
	for i := 0; i < n; i++ {
		if s.Dist(origin, randPoint(r, 3)) <= radius {
			in++
		}
	}
	got := float64(in) / n
	want := s.BallVolume(radius)
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Fatalf("empirical ball volume %v vs analytic %v", got, want)
	}
}

func TestPositions(t *testing.T) {
	s := MustSpace(3)
	p := NewPositions(s, 4)
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Set(2, []float64{0.1, 0.2, 0.3})
	at := p.At(2)
	if at[0] != 0.1 || at[1] != 0.2 || at[2] != 0.3 {
		t.Fatalf("At(2) = %v", at)
	}
	p.Set(3, []float64{0.1, 0.2, 0.4})
	if got := p.Dist(2, 3); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Dist(2,3) = %v", got)
	}
	if len(p.Raw()) != 12 {
		t.Fatalf("Raw length %d", len(p.Raw()))
	}
}

func TestMortonRoundTrip(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for level := 0; level <= 6; level++ {
			side := uint32(1) << uint(level)
			coords := make([]uint32, d)
			out := make([]uint32, d)
			r := xrand.New(uint64(d*100 + level))
			for trial := 0; trial < 200; trial++ {
				for i := range coords {
					coords[i] = uint32(r.IntN(int(side)))
				}
				code := s.EncodeCoords(coords, level)
				s.DecodeCoords(code, level, out)
				for i := range coords {
					if out[i] != coords[i] {
						t.Fatalf("d=%d level=%d: roundtrip %v -> %v", d, level, coords, out)
					}
				}
			}
		}
	}
}

func TestEncodePointMatchesCoords(t *testing.T) {
	r := xrand.New(5)
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for level := 0; level <= 8; level++ {
			for trial := 0; trial < 100; trial++ {
				pt := randPoint(r, d)
				coords := make([]uint32, d)
				for i := range coords {
					coords[i] = CellCoord(pt[i], level)
				}
				if s.Encode(pt, level) != s.EncodeCoords(coords, level) {
					t.Fatalf("Encode disagrees with EncodeCoords")
				}
			}
		}
	}
}

func TestMortonPrefixProperty(t *testing.T) {
	// The code of a point at level l-1 must be the parent of its code at l.
	r := xrand.New(7)
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for trial := 0; trial < 500; trial++ {
			pt := randPoint(r, d)
			for level := 1; level <= 8; level++ {
				child := s.Encode(pt, level)
				parent := s.Encode(pt, level-1)
				if s.ParentCell(child) != parent {
					t.Fatalf("d=%d level=%d: prefix property violated", d, level)
				}
			}
		}
	}
}

func TestCellCoordBounds(t *testing.T) {
	for level := 0; level <= 20; level++ {
		if c := CellCoord(0.9999999999999999, level); c >= 1<<uint(level) {
			t.Fatalf("CellCoord overflow at level %d: %d", level, c)
		}
		if c := CellCoord(0, level); c != 0 {
			t.Fatalf("CellCoord(0) = %d", c)
		}
	}
}

func TestCellMinDistLowerBounds(t *testing.T) {
	// For random point pairs, the cell-based lower bound must never exceed
	// the true distance.
	r := xrand.New(11)
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for level := 1; level <= 6; level++ {
			for trial := 0; trial < 1000; trial++ {
				x, y := randPoint(r, d), randPoint(r, d)
				cx, cy := s.Encode(x, level), s.Encode(y, level)
				lb := s.CellMinDist(cx, cy, level)
				if dist := s.Dist(x, y); lb > dist+1e-12 {
					t.Fatalf("d=%d level=%d: lower bound %v exceeds distance %v", d, level, lb, dist)
				}
			}
		}
	}
}

func TestCellMinDistAdjacentZero(t *testing.T) {
	s := MustSpace(2)
	level := 3
	var buf []uint64
	cell := s.EncodeCoords([]uint32{2, 5}, level)
	buf = s.NeighborCells(cell, level, buf[:0])
	for _, nb := range buf {
		if got := s.CellMinDist(cell, nb, level); got != 0 {
			t.Fatalf("adjacent cell pair has min dist %v", got)
		}
	}
}

func TestCellMinDistFarCells(t *testing.T) {
	s := MustSpace(1)
	level := 4 // 16 cells of width 1/16
	a := s.EncodeCoords([]uint32{0}, level)
	b := s.EncodeCoords([]uint32{3}, level)
	// Columns 0 and 3: cells 1, 2 strictly between -> gap 2 cells = 2/16.
	if got := s.CellMinDist(a, b, level); math.Abs(got-2.0/16) > 1e-12 {
		t.Fatalf("CellMinDist = %v, want 0.125", got)
	}
	// Cyclic wrap: columns 0 and 15 are adjacent.
	c := s.EncodeCoords([]uint32{15}, level)
	if got := s.CellMinDist(a, c, level); got != 0 {
		t.Fatalf("cyclically adjacent cells have min dist %v", got)
	}
}

func TestNeighborCellsCount(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		s := MustSpace(d)
		for level := 0; level <= 4; level++ {
			side := 1 << uint(level)
			perAxis := 3
			if side == 1 {
				perAxis = 1
			} else if side == 2 {
				perAxis = 2
			}
			want := 1
			for i := 0; i < d; i++ {
				want *= perAxis
			}
			cell := uint64(0)
			got := s.NeighborCells(cell, level, nil)
			if len(got) != want {
				t.Fatalf("d=%d level=%d: %d neighbors, want %d", d, level, len(got), want)
			}
			seen := make(map[uint64]bool)
			for _, c := range got {
				if seen[c] {
					t.Fatalf("duplicate neighbor cell %d", c)
				}
				seen[c] = true
				if c >= s.CellsAtLevel(level) {
					t.Fatalf("neighbor cell %d out of range", c)
				}
			}
		}
	}
}

func TestNeighborCellsAreActuallyAdjacent(t *testing.T) {
	r := xrand.New(13)
	s := MustSpace(2)
	level := 4
	coords := make([]uint32, 2)
	for trial := 0; trial < 200; trial++ {
		coords[0] = uint32(r.IntN(16))
		coords[1] = uint32(r.IntN(16))
		cell := s.EncodeCoords(coords, level)
		for _, nb := range s.NeighborCells(cell, level, nil) {
			if s.CellMinDist(cell, nb, level) != 0 {
				t.Fatalf("NeighborCells returned non-adjacent cell")
			}
		}
	}
}

func TestNeighborhoodCoversCloseness(t *testing.T) {
	// Any two points within one cell side of each other must land in
	// neighboring cells; i.e. the neighborhood covers the close regime.
	r := xrand.New(17)
	s := MustSpace(2)
	level := 5
	side := 1.0 / 32
	for trial := 0; trial < 2000; trial++ {
		x := randPoint(r, 2)
		y := []float64{Wrap(x[0] + (r.Float64()*2-1)*side), Wrap(x[1] + (r.Float64()*2-1)*side)}
		cx, cy := s.Encode(x, level), s.Encode(y, level)
		found := false
		for _, nb := range s.NeighborCells(cx, level, nil) {
			if nb == cy {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point within one cell side not in neighborhood: %v %v", x, y)
		}
	}
}

func TestMaxLevel(t *testing.T) {
	for d := 1; d <= MaxDim; d++ {
		s := MustSpace(d)
		l := s.MaxLevel()
		if d*l > 62 {
			t.Fatalf("d=%d: MaxLevel %d overflows code", d, l)
		}
		if d*(l+1) <= 62 {
			t.Fatalf("d=%d: MaxLevel %d not maximal", d, l)
		}
	}
}

func BenchmarkDist2D(b *testing.B) {
	s := MustSpace(2)
	x := []float64{0.1, 0.9}
	y := []float64{0.8, 0.2}
	for i := 0; i < b.N; i++ {
		_ = s.Dist(x, y)
	}
}

func BenchmarkEncode2D(b *testing.B) {
	s := MustSpace(2)
	pt := []float64{0.312, 0.771}
	for i := 0; i < b.N; i++ {
		_ = s.Encode(pt, 16)
	}
}

func TestCubeDistanceNoWrap(t *testing.T) {
	s, err := NewSpaceFull(2, MaxNorm, Cube)
	if err != nil {
		t.Fatal(err)
	}
	// On the cube, 0.05 and 0.95 are 0.9 apart (no wrap).
	if got := s.Dist([]float64{0.05, 0.5}, []float64{0.95, 0.5}); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("cube dist = %v, want 0.9", got)
	}
	// The torus wraps the same pair to 0.1.
	ts := MustSpace(2)
	if got := ts.Dist([]float64{0.05, 0.5}, []float64{0.95, 0.5}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("torus dist = %v, want 0.1", got)
	}
}

func TestCubeNeighborCellsAtBoundary(t *testing.T) {
	s, err := NewSpaceFull(1, MaxNorm, Cube)
	if err != nil {
		t.Fatal(err)
	}
	level := 3 // 8 cells
	// Corner cell 0 has only 2 neighbors (itself and cell 1) on the cube.
	got := s.NeighborCells(s.EncodeCoords([]uint32{0}, level), level, nil)
	if len(got) != 2 {
		t.Fatalf("cube corner neighbors: %d, want 2 (%v)", len(got), got)
	}
	// On the torus it has 3 (wraps to cell 7).
	ts := MustSpace(1)
	got = ts.NeighborCells(ts.EncodeCoords([]uint32{0}, level), level, nil)
	if len(got) != 3 {
		t.Fatalf("torus corner neighbors: %d, want 3", len(got))
	}
}

func TestCubeCellMinDistNoWrap(t *testing.T) {
	s, err := NewSpaceFull(1, MaxNorm, Cube)
	if err != nil {
		t.Fatal(err)
	}
	level := 4 // 16 cells
	a := s.EncodeCoords([]uint32{0}, level)
	b := s.EncodeCoords([]uint32{15}, level)
	// Cube: 14 cells strictly between -> 14/16.
	if got := s.CellMinDist(a, b, level); math.Abs(got-14.0/16) > 1e-12 {
		t.Fatalf("cube CellMinDist = %v, want 0.875", got)
	}
	// Torus: adjacent across the wrap.
	ts := MustSpace(1)
	if got := ts.CellMinDist(a, b, level); got != 0 {
		t.Fatalf("torus CellMinDist = %v, want 0", got)
	}
}

func TestOffsetCoord(t *testing.T) {
	cube, _ := NewSpaceFull(1, MaxNorm, Cube)
	tor := MustSpace(1)
	if _, ok := cube.OffsetCoord(0, -1, 8); ok {
		t.Fatal("cube accepted off-grid offset")
	}
	if c, ok := cube.OffsetCoord(3, 2, 8); !ok || c != 5 {
		t.Fatalf("cube offset: %d %v", c, ok)
	}
	if c, ok := tor.OffsetCoord(0, -1, 8); !ok || c != 7 {
		t.Fatalf("torus wrap: %d %v", c, ok)
	}
	if c, ok := tor.OffsetCoord(7, 3, 8); !ok || c != 2 {
		t.Fatalf("torus wrap forward: %d %v", c, ok)
	}
}

func TestCubeCellMinDistLowerBounds(t *testing.T) {
	r := xrand.New(19)
	s, err := NewSpaceFull(2, MaxNorm, Cube)
	if err != nil {
		t.Fatal(err)
	}
	for level := 1; level <= 6; level++ {
		for trial := 0; trial < 500; trial++ {
			x, y := randPoint(r, 2), randPoint(r, 2)
			lb := s.CellMinDist(s.Encode(x, level), s.Encode(y, level), level)
			if dist := s.Dist(x, y); lb > dist+1e-12 {
				t.Fatalf("cube lower bound %v exceeds distance %v", lb, dist)
			}
		}
	}
}
