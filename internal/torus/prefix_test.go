package torus

import (
	"testing"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		bits int
		code uint64
		ok   bool
	}{
		{"", 0, 0, true},
		{"0", 1, 0, true},
		{"1", 1, 1, true},
		{"10", 2, 2, true},
		{"11", 2, 3, true},
		{"0110", 4, 6, true},
		{"2", 0, 0, false},
		{"1x", 0, 0, false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if p.Bits() != c.bits || p.code != c.code {
			t.Errorf("ParsePrefix(%q) = {bits %d code %b}, want {bits %d code %b}",
				c.in, p.Bits(), p.code, c.bits, c.code)
		}
		if got := p.String(); got != c.in {
			t.Errorf("ParsePrefix(%q).String() = %q", c.in, got)
		}
	}
	if _, err := ParsePrefix("101010101010101010101010101010101010101010101010101010101010101"); err == nil {
		t.Error("63-bit prefix accepted")
	}
}

// TestPrefixPartition checks that the canonical 3-shard split "0"/"10"/"11"
// assigns every code to exactly one shard, for every supported dimension.
func TestPrefixPartition(t *testing.T) {
	prefixes := make([]Prefix, 3)
	for i, s := range []string{"0", "10", "11"} {
		var err error
		prefixes[i], err = ParsePrefix(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	for dim := 1; dim <= MaxDim; dim++ {
		space := MustSpace(dim)
		codes, bits := DeepCodes(randomPositions(space, 500, 42))
		if want := dim * space.ShardLevel(); bits != want {
			t.Fatalf("dim %d: DeepCodes bits = %d, want %d", dim, bits, want)
		}
		for _, p := range prefixes {
			if err := p.Valid(bits); err != nil {
				t.Fatalf("dim %d: %v", dim, err)
			}
		}
		for i, c := range codes {
			owners := 0
			for _, p := range prefixes {
				if p.Matches(c, bits) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("dim %d: vertex %d code %b matched %d shards, want exactly 1", dim, i, c, owners)
			}
		}
	}
}

// TestPrefixHierarchy checks the prefix property the sharding relies on: the
// Morton code of a cell at a coarse level is a bit prefix of the deep codes
// of all points inside it.
func TestPrefixHierarchy(t *testing.T) {
	space := MustSpace(2)
	pts := randomPositions(space, 200, 7)
	codes, bits := DeepCodes(pts)
	for level := 1; level <= 4; level++ {
		for i := 0; i < pts.Len(); i++ {
			coarse := space.Encode(pts.At(i), level)
			shift := uint(bits - space.Dim()*level)
			if codes[i]>>shift != coarse {
				t.Fatalf("level %d: deep code %b does not start with cell code %b", level, codes[i], coarse)
			}
		}
	}
}

func TestShardLevelCap(t *testing.T) {
	for dim := 1; dim <= MaxDim; dim++ {
		space := MustSpace(dim)
		l := space.ShardLevel()
		if l > space.MaxLevel() {
			t.Errorf("dim %d: ShardLevel %d exceeds MaxLevel %d", dim, l, space.MaxLevel())
		}
		if l > 30 {
			t.Errorf("dim %d: ShardLevel %d exceeds the uint32 cell-index cap", dim, l)
		}
		if dim*l > 62 {
			t.Errorf("dim %d: codes would need %d bits", dim, dim*l)
		}
	}
}

// TestEmptyPrefixMatchesAll pins the single-shard degenerate case.
func TestEmptyPrefixMatchesAll(t *testing.T) {
	var p Prefix
	space := MustSpace(2)
	codes, bits := DeepCodes(randomPositions(space, 100, 3))
	for _, c := range codes {
		if !p.Matches(c, bits) {
			t.Fatalf("empty prefix rejected code %b", c)
		}
	}
}

// randomPositions fills a position store with deterministic pseudo-random
// points (splitmix-style, no RNG dependency).
func randomPositions(space Space, n int, seed uint64) *Positions {
	pts := NewPositions(space, n)
	x := seed
	next := func() float64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) * 0x1p-53
	}
	buf := make([]float64, space.Dim())
	for i := 0; i < n; i++ {
		for d := range buf {
			buf[d] = next()
		}
		pts.Set(i, buf)
	}
	return pts
}
