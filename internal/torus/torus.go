// Package torus implements the geometric ground space of the GIRG model: the
// d-dimensional torus T^d = R^d / Z^d with the infinity-norm distance
// (Section 2.1 of the paper), together with the hierarchical cell grid and
// Morton (Z-order) codes that the expected-linear-time edge sampler relies
// on.
//
// Points are represented as flat []float64 slices of length d with all
// coordinates in [0, 1). Bulk storage keeps all positions in one backing
// slice with stride d, so packages above can iterate without per-point
// allocations.
package torus

import (
	"fmt"
	"math"
)

// MaxDim is the largest supported dimension. The Morton encoding packs
// lev*dim bits into a uint64, so dim*MaxLevel(dim) must stay below 64;
// eight dimensions is far beyond anything the experiments use.
const MaxDim = 8

// Norm selects the metric on the torus. The paper states the results hold
// for any norm (Section 2.1); MaxNorm is the paper's default and what the
// cell machinery is tuned for, L2Norm the familiar Euclidean alternative.
type Norm int

const (
	// MaxNorm is the infinity norm max_i |x_i - y_i| (cyclic).
	MaxNorm Norm = iota
	// L2Norm is the Euclidean norm (cyclic per coordinate).
	L2Norm
)

// Geometry selects between the cyclic torus (the paper's default, chosen
// "for technical simplicity, as it yields symmetry") and the plain cube
// [0,1]^d, which Section 2.1 notes is an equally valid ground space.
type Geometry int

const (
	// Torus is R^d / Z^d: every coordinate wraps around.
	Torus Geometry = iota
	// Cube is [0,1]^d without wrap-around.
	Cube
)

// Space describes a d-dimensional unit ground space with a chosen norm and
// geometry.
type Space struct {
	dim  int
	norm Norm
	geo  Geometry
}

// NewSpace returns the torus of the given dimension with the max norm.
func NewSpace(dim int) (Space, error) {
	return NewSpaceFull(dim, MaxNorm, Torus)
}

// NewSpaceNorm returns the torus of the given dimension and norm.
func NewSpaceNorm(dim int, norm Norm) (Space, error) {
	return NewSpaceFull(dim, norm, Torus)
}

// NewSpaceFull returns the space with every knob explicit.
func NewSpaceFull(dim int, norm Norm, geo Geometry) (Space, error) {
	if dim < 1 || dim > MaxDim {
		return Space{}, fmt.Errorf("torus: dimension %d out of range [1, %d]", dim, MaxDim)
	}
	if norm != MaxNorm && norm != L2Norm {
		return Space{}, fmt.Errorf("torus: unknown norm %d", norm)
	}
	if geo != Torus && geo != Cube {
		return Space{}, fmt.Errorf("torus: unknown geometry %d", geo)
	}
	return Space{dim: dim, norm: norm, geo: geo}, nil
}

// MustSpace is NewSpace for known-good constants; it panics on error.
func MustSpace(dim int) Space {
	s, err := NewSpace(dim)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimension of the space.
func (s Space) Dim() int { return s.dim }

// Norm returns the norm of the space.
func (s Space) Norm() Norm { return s.norm }

// Geometry returns the geometry of the space.
func (s Space) Geometry() Geometry { return s.geo }

// Dist returns the torus distance between x and y under the space's norm,
// with each coordinate difference taken cyclically. Both points must have
// length Dim(); this is not checked on the hot path.
func (s Space) Dist(x, y []float64) float64 {
	if s.norm == L2Norm {
		sum := 0.0
		for i := 0; i < s.dim; i++ {
			d := s.coordDist(x[i], y[i])
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	maxd := 0.0
	for i := 0; i < s.dim; i++ {
		d := s.coordDist(x[i], y[i])
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// coordDist is the per-axis distance: cyclic on the torus, plain on the
// cube.
func (s Space) coordDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if s.geo == Torus && d > 0.5 {
		d = 1 - d
	}
	return d
}

// DistPow returns Dist(x, y)^dim, the volume scale that appears in the GIRG
// connection probability. Computed without calling math.Pow for the common
// small dimensions.
func (s Space) DistPow(x, y []float64) float64 {
	return ipow(s.Dist(x, y), s.dim)
}

// ipow computes x^k for small non-negative integer k.
func ipow(x float64, k int) float64 {
	r := 1.0
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// Wrap maps an arbitrary real coordinate into [0, 1).
func Wrap(a float64) float64 {
	a -= math.Floor(a)
	if a >= 1 { // guards against -1e-18 -> 1.0 after Floor rounding
		a = 0
	}
	return a
}

// BallVolume returns the volume of a ball of radius r on the torus under
// the space's norm (capped at 1; exact for r <= 1/2, where the ball embeds
// in the fundamental domain).
func (s Space) BallVolume(r float64) float64 {
	if r <= 0 {
		return 0
	}
	if s.norm == L2Norm {
		if r > 0.5 {
			r = 0.5 // beyond this the formula double counts; callers in the
			// experiments never exceed it
		}
		v := unitBallVolume(s.dim) * ipow(r, s.dim)
		if v > 1 {
			v = 1
		}
		return v
	}
	if r >= 0.5 {
		return 1
	}
	return ipow(2*r, s.dim)
}

// unitBallVolume returns the volume of the d-dimensional Euclidean unit
// ball, pi^(d/2) / Gamma(d/2 + 1).
func unitBallVolume(d int) float64 {
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	return math.Exp(float64(d)/2*math.Log(math.Pi) - lg)
}

// MaxLevel returns the deepest grid level usable for this dimension: at
// level l the torus is divided into 2^(dim*l) cells and cell indices must
// fit a uint64 Morton code with dim*l <= 62.
func (s Space) MaxLevel() int {
	return 62 / s.dim
}

// Positions is a flat, stride-dim store of points on the torus.
type Positions struct {
	space Space
	data  []float64
}

// NewPositions allocates storage for n points in the given space.
func NewPositions(space Space, n int) *Positions {
	return &Positions{space: space, data: make([]float64, n*space.Dim())}
}

// NewPositionsRaw wraps an existing flat coordinate slice (stride Dim) as a
// position store without copying; deserializers use it to adopt buffers
// they already assembled. The slice length must be a multiple of Dim.
func NewPositionsRaw(space Space, data []float64) (*Positions, error) {
	if len(data)%space.Dim() != 0 {
		return nil, fmt.Errorf("torus: raw position data length %d is not a multiple of dim %d", len(data), space.Dim())
	}
	return &Positions{space: space, data: data}, nil
}

// Space returns the underlying space.
func (p *Positions) Space() Space { return p.space }

// Len returns the number of stored points.
func (p *Positions) Len() int { return len(p.data) / p.space.Dim() }

// At returns point i as a slice aliasing the backing store; callers must not
// retain it across mutations.
func (p *Positions) At(i int) []float64 {
	d := p.space.Dim()
	return p.data[i*d : (i+1)*d : (i+1)*d]
}

// Set copies pt into slot i.
func (p *Positions) Set(i int, pt []float64) {
	copy(p.At(i), pt)
}

// Dist returns the torus distance between stored points i and j.
func (p *Positions) Dist(i, j int) float64 {
	return p.space.Dist(p.At(i), p.At(j))
}

// Raw exposes the backing slice (length Len()*Dim()); used for serialization.
func (p *Positions) Raw() []float64 { return p.data }
