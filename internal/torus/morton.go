package torus

// Morton (Z-order) codes identify grid cells of the hierarchical torus
// partition. At level l the torus splits into 2^(dim*l) congruent cubes of
// side 2^-l. A point's Morton code at level l interleaves the top l bits of
// each coordinate; crucially, the code of a cell at level l is a prefix of
// the codes of all its descendants, so after sorting points by deep-level
// Morton code, every cell at every level is one contiguous slice. This is
// the lookup structure behind the expected-linear-time GIRG sampler.

// CellCoord converts a coordinate in [0,1) to its integer cell index at the
// given level.
func CellCoord(x float64, level int) uint32 {
	c := uint32(x * float64(uint32(1)<<uint(level)))
	// Guard against x extremely close to 1 rounding up to 2^level.
	if c >= 1<<uint(level) {
		c = 1<<uint(level) - 1
	}
	return c
}

// Encode returns the Morton code of the cell containing pt at the given
// level. The result uses the low dim*level bits.
func (s Space) Encode(pt []float64, level int) uint64 {
	var code uint64
	for i := 0; i < s.dim; i++ {
		code |= spread(uint64(CellCoord(pt[i], level)), s.dim, level) << uint(i)
	}
	return code
}

// EncodeCoords returns the Morton code for explicit integer cell coordinates
// at the given level.
func (s Space) EncodeCoords(coords []uint32, level int) uint64 {
	var code uint64
	for i := 0; i < s.dim; i++ {
		code |= spread(uint64(coords[i]), s.dim, level) << uint(i)
	}
	return code
}

// DecodeCoords writes the integer cell coordinates of the Morton code at the
// given level into out (length dim).
func (s Space) DecodeCoords(code uint64, level int, out []uint32) {
	for i := 0; i < s.dim; i++ {
		out[i] = uint32(compact(code>>uint(i), s.dim, level))
	}
}

// spread distributes the low `level` bits of v so that consecutive bits land
// dim positions apart (bit k of v moves to bit k*dim of the result).
func spread(v uint64, dim, level int) uint64 {
	if dim == 1 {
		return v & ((1 << uint(level)) - 1)
	}
	var out uint64
	for k := 0; k < level; k++ {
		out |= ((v >> uint(k)) & 1) << uint(k*dim)
	}
	return out
}

// compact is the inverse of spread.
func compact(v uint64, dim, level int) uint64 {
	if dim == 1 {
		return v & ((1 << uint(level)) - 1)
	}
	var out uint64
	for k := 0; k < level; k++ {
		out |= ((v >> uint(k*dim)) & 1) << uint(k)
	}
	return out
}

// ParentCell returns the Morton code of the parent (level-1) of a cell code
// at the given level.
func (s Space) ParentCell(code uint64) uint64 {
	return code >> uint(s.dim)
}

// CellsAtLevel returns the number of cells at the given level.
func (s Space) CellsAtLevel(level int) uint64 {
	return 1 << uint(s.dim*level)
}

// CellMinDist returns a lower bound on the torus distance between any point
// of cell a and any point of cell b at the given level: the infinity-norm
// distance between the cells' integer coordinate boxes, in units of cell
// side length, converted back to torus units. Adjacent or identical cells
// yield 0. Because the L2 norm dominates the max norm, the bound is valid
// for both norms of the space (it is merely less tight for L2Norm).
func (s Space) CellMinDist(a, b uint64, level int) float64 {
	if level == 0 {
		return 0
	}
	side := 1 << uint(level)
	maxGap := uint32(0)
	for i := 0; i < s.dim; i++ {
		ca := uint32(compact(a>>uint(i), s.dim, level))
		cb := uint32(compact(b>>uint(i), s.dim, level))
		gap := s.cellGap(ca, cb, uint32(side))
		if gap > maxGap {
			maxGap = gap
		}
	}
	return float64(maxGap) / float64(side)
}

// cellGap returns the number of full cells strictly between cell columns a
// and b on an axis of the given size (0 when identical or adjacent);
// cyclic on the torus, plain on the cube.
func (s Space) cellGap(a, b, size uint32) uint32 {
	var diff uint32
	if a > b {
		diff = a - b
	} else {
		diff = b - a
	}
	if s.geo == Torus {
		if other := size - diff; other < diff {
			diff = other
		}
	}
	if diff <= 1 {
		return 0
	}
	return diff - 1
}

// OffsetCoord shifts a cell column by off on an axis of the given side
// length, honoring the geometry: the torus wraps, the cube reports
// out-of-range offsets as invalid.
func (s Space) OffsetCoord(c uint32, off int, side uint32) (uint32, bool) {
	v := int(c) + off
	if s.geo == Cube {
		if v < 0 || v >= int(side) {
			return 0, false
		}
		return uint32(v), true
	}
	m := int(side)
	return uint32(((v % m) + m) % m), true
}

// NeighborCells appends to dst the Morton codes of all cells at the given
// level whose integer coordinates differ from cell's by at most 1 per axis
// (cyclically), including the cell itself, without duplicates. For level 0
// it yields just the single cell.
func (s Space) NeighborCells(cell uint64, level int, dst []uint64) []uint64 {
	if level == 0 {
		return append(dst, 0)
	}
	side := uint32(1) << uint(level)
	var coords [MaxDim]uint32
	s.DecodeCoords(cell, level, coords[:s.dim])
	// Offsets per axis: {-1, 0, +1}, deduplicated (wrap collapses them for
	// tiny sides; the cube drops out-of-range neighbors).
	var offs [MaxDim][]uint32
	for i := 0; i < s.dim; i++ {
		var vals []uint32
		for off := -1; off <= 1; off++ {
			c, ok := s.OffsetCoord(coords[i], off, side)
			if !ok {
				continue
			}
			dup := false
			for _, x := range vals {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				vals = append(vals, c)
			}
		}
		offs[i] = vals
	}
	var cur [MaxDim]uint32
	var rec func(axis int)
	rec = func(axis int) {
		if axis == s.dim {
			dst = append(dst, s.EncodeCoords(cur[:s.dim], level))
			return
		}
		for _, v := range offs[axis] {
			cur[axis] = v
			rec(axis + 1)
		}
	}
	rec(0)
	return dst
}
