package torus

import "fmt"

// Shard prefixes partition the torus by Morton code: because the code of a
// cell at level l is a prefix of the codes of all its descendants, any set of
// bit strings that forms a prefix-free cover of the code space — e.g. "0",
// "10", "11" — partitions the vertices into contiguous Z-order ranges with
// geometric locality. internal/cluster uses this to split a graph across
// daemons so most greedy hops stay shard-local.

// shardLevelCap bounds the deep-code level independently of MaxLevel:
// CellCoord computes cell indices in uint32, so levels past 30 would
// overflow the per-axis index for low dimensions (MaxLevel(1) = 62).
const shardLevelCap = 30

// ShardLevel returns the grid level at which deep shard codes are computed:
// the deepest level whose per-axis cell indices still fit CellCoord's uint32
// arithmetic. The resulting codes carry dim*ShardLevel() significant bits.
func (s Space) ShardLevel() int {
	if l := s.MaxLevel(); l < shardLevelCap {
		return l
	}
	return shardLevelCap
}

// DeepCodes returns the Morton code of every stored point at ShardLevel,
// together with the code bit width dim*ShardLevel. Vertices sorted by these
// codes are sorted by Z-order, and a Prefix selects one contiguous region.
func DeepCodes(p *Positions) (codes []uint64, bits int) {
	space := p.Space()
	level := space.ShardLevel()
	codes = make([]uint64, p.Len())
	for i := range codes {
		codes[i] = space.Encode(p.At(i), level)
	}
	return codes, space.Dim() * level
}

// Prefix is a variable-length Morton-code prefix: the first Bits bits (most
// significant first) of a deep Morton code. The zero value is the empty
// prefix, which matches every code — a single-shard "cluster".
type Prefix struct {
	bits int
	code uint64
}

// ParsePrefix parses a prefix spelled as a binary digit string ("", "0",
// "10", ...), the form the -shard flag takes.
func ParsePrefix(s string) (Prefix, error) {
	if len(s) > 62 {
		return Prefix{}, fmt.Errorf("torus: shard prefix %q longer than 62 bits", s)
	}
	var p Prefix
	for _, c := range s {
		switch c {
		case '0':
			p.code <<= 1
		case '1':
			p.code = p.code<<1 | 1
		default:
			return Prefix{}, fmt.Errorf("torus: shard prefix %q: want binary digits only", s)
		}
		p.bits++
	}
	return p, nil
}

// Bits returns the prefix length in bits (0 for the empty prefix).
func (p Prefix) Bits() int { return p.bits }

// String renders the prefix as the binary digit string ParsePrefix accepts
// ("" for the empty prefix).
func (p Prefix) String() string {
	b := make([]byte, p.bits)
	for i := 0; i < p.bits; i++ {
		b[i] = '0' + byte(p.code>>uint(p.bits-1-i)&1)
	}
	return string(b)
}

// Matches reports whether a deep Morton code of the given bit width starts
// with p. The prefix must not be longer than the code; callers validate the
// pair once (see Valid) before the per-vertex loop.
func (p Prefix) Matches(code uint64, codeBits int) bool {
	return code>>uint(codeBits-p.bits) == p.code
}

// Valid reports whether the prefix can partition codes of the given width.
func (p Prefix) Valid(codeBits int) error {
	if p.bits > codeBits {
		return fmt.Errorf("torus: shard prefix %q (%d bits) exceeds the %d-bit Morton codes of this space",
			p.String(), p.bits, codeBits)
	}
	return nil
}
