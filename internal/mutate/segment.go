package mutate

import (
	"bytes"
	"fmt"
)

// Journal-segment shipping: the replication layer moves mutation batches
// between replicas of the same log as ranges of canonically encoded batch
// payloads — the exact bytes the write-ahead journal holds. Export reads a
// range out of the local journal; Import replays a received range through
// the same validate→journal→publish pipeline Apply uses, byte for byte.
// Because the encoding is canonical and replay is deterministic, a replica
// that has imported every batch of the primary's generation is bit-identical
// to it: same journal records, same overlay epoch, same live fingerprint.

// Segment is a contiguous range of journaled batches: Batches[i] is the
// canonical encoding of batch From+i of the given generation over the given
// base. The coordinates bind the payloads to one exact history — an import
// into a log with a different base fingerprint or generation is refused
// before any byte is applied.
type Segment struct {
	BaseFP     string   `json:"base_fingerprint"`
	Generation int      `json:"generation"`
	From       int      `json:"from"`
	Batches    [][]byte `json:"batches,omitempty"`
}

// Position is a log's replication coordinate, compared across replicas by
// anti-entropy: two replicas with equal Position hold bit-identical live
// graphs. Seq always equals Epoch (each applied batch advances both by
// one); both are kept because Seq is the journal-record coordinate and
// Epoch the overlay coordinate gossip already speaks.
type Position struct {
	BaseFP     string `json:"base_fingerprint"`
	Generation int    `json:"generation"`
	Seq        int    `json:"seq"`
	Epoch      uint64 `json:"epoch"`
	LiveFP     string `json:"live_fp"`
}

// SyncError reports a refused export or import: the two logs disagree about
// where they are (gap) or what history they are on (base, generation, or a
// divergent batch). The serving layer maps it to 409; anti-entropy treats
// it as "re-resolve positions and retry", never as data to force-apply.
type SyncError struct {
	Field string // "base", "generation", "gap", "batch"
	Want  string
	Got   string
}

func (e *SyncError) Error() string {
	return fmt.Sprintf("mutate: segment %s mismatch: want %s, got %s", e.Field, e.Want, e.Got)
}

// maxSegmentBatches bounds one Export answer so a far-behind replica pulls
// in paced rounds instead of one unbounded response.
const maxSegmentBatches = 512

// Position returns the log's current replication coordinate.
func (l *Log) Position() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.positionLocked()
}

func (l *Log) positionLocked() Position {
	return Position{
		BaseFP:     fpString(l.base.Fingerprint()),
		Generation: l.gen,
		Seq:        l.seq,
		Epoch:      l.ov.Epoch(),
		LiveFP:     fpString(l.ov.Fingerprint()),
	}
}

// Export copies the journaled batch payloads of the current generation
// starting at seq from, up to max batches (0 or negative = the
// maxSegmentBatches cap). The caller's (baseFP, generation) must match the
// log's — a mismatch is a *SyncError, telling the puller its history
// diverged (e.g. the exporter compacted) rather than handing it batches
// that would not apply. An up-to-date puller gets an empty segment.
func (l *Log) Export(baseFP string, generation, from, max int) (Segment, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Segment{}, fmt.Errorf("mutate: log closed")
	}
	if got := fpString(l.base.Fingerprint()); baseFP != got {
		return Segment{}, &SyncError{Field: "base", Want: baseFP, Got: got}
	}
	if generation != l.gen {
		return Segment{}, &SyncError{Field: "generation", Want: fmt.Sprint(generation), Got: fmt.Sprint(l.gen)}
	}
	if from < 0 {
		return Segment{}, fmt.Errorf("mutate: segment from %d out of range", from)
	}
	if max <= 0 || max > maxSegmentBatches {
		max = maxSegmentBatches
	}
	seg := Segment{BaseFP: baseFP, Generation: l.gen, From: from}
	for seq := from; seq < l.seq && len(seg.Batches) < max; seq++ {
		payload, ok := l.journal.Get(batchKey(seq))
		if !ok {
			return Segment{}, fmt.Errorf("mutate: batch %d missing from generation %d", seq, l.gen)
		}
		seg.Batches = append(seg.Batches, payload)
	}
	return seg, nil
}

// Import applies a shipped segment: every batch the log does not already
// hold is decoded, validated against the live overlay, journaled (fsynced)
// and published — the same all-or-nothing pipeline Apply runs, preserving
// the received bytes so the journals of primary and replica stay
// bit-identical. Batches below the log's seq are verified byte-equal
// against the local journal and skipped (idempotent re-ship); a segment
// starting past the log's seq is a gap and refused with a *SyncError whose
// Got carries the seq to re-pull from. A batch that fails to decode is a
// *CorruptError; one that decodes but does not apply means the histories
// diverged and is a *SyncError — in both cases nothing past the failing
// batch is applied.
func (l *Log) Import(seg Segment) (applied int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("mutate: log closed")
	}
	if got := fpString(l.base.Fingerprint()); seg.BaseFP != got {
		return 0, &SyncError{Field: "base", Want: seg.BaseFP, Got: got}
	}
	if seg.Generation != l.gen {
		return 0, &SyncError{Field: "generation", Want: fmt.Sprint(seg.Generation), Got: fmt.Sprint(l.gen)}
	}
	if seg.From < 0 {
		return 0, fmt.Errorf("mutate: segment from %d out of range", seg.From)
	}
	if seg.From > l.seq {
		return 0, &SyncError{Field: "gap", Want: fmt.Sprint(seg.From), Got: fmt.Sprint(l.seq)}
	}
	for i, payload := range seg.Batches {
		seq := seg.From + i
		if seq < l.seq {
			if held, ok := l.journal.Get(batchKey(seq)); !ok || !bytes.Equal(held, payload) {
				return applied, &SyncError{Field: "batch", Want: fmt.Sprintf("batch %d as journaled here", seq), Got: "divergent payload"}
			}
			continue
		}
		ops, err := DecodeBatch(payload)
		if err != nil {
			return applied, fmt.Errorf("mutate: imported batch %d: %w", seq, err)
		}
		e := l.ov.Edit()
		if _, err := applyOps(e, ops); err != nil {
			// The batch was valid on the peer that journaled it; failing to
			// apply here means the two logs do not share a history.
			return applied, &SyncError{Field: "batch", Want: fmt.Sprintf("batch %d to apply", seq), Got: err.Error()}
		}
		if err := l.journal.Put(batchKey(seq), payload); err != nil {
			return applied, fmt.Errorf("mutate: journal append: %w", err)
		}
		l.ov = e.Finish()
		l.seq++
		l.batches++
		l.opsApplied += uint64(len(ops))
		applied++
		if l.cfg.OnApply != nil {
			l.cfg.OnApply(l.ov)
		}
	}
	return applied, nil
}
