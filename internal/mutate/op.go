// Package mutate turns the frozen snapshot store into a living graph: a
// batched mutation log (add/remove vertex, add/remove edge) journaled
// through internal/ckpt before a batch becomes visible, applied as
// copy-on-write graph.Overlay generations over the immutable base snapshot,
// with a compactor that folds a grown delta into a fresh checksummed girgb
// snapshot and starts the next journal generation atomically.
//
// The durability contract mirrors PR 4's checkpointing: every applied batch
// is fsynced into the write-ahead journal before the caller sees success,
// so a SIGKILL'd daemon replays to a bit-identical graph fingerprint on
// restart; a torn journal tail (the crash-interrupted batch) is truncated
// away and mid-journal bit-rot fails loudly as a classified *CorruptError.
package mutate

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Op kinds, as spelled on the HTTP wire.
const (
	OpAddVertex    = "add-vertex"
	OpRemoveVertex = "remove-vertex"
	OpAddEdge      = "add-edge"
	OpRemoveEdge   = "remove-edge"
)

// Op is one mutation: the unit POST /admin/mutate accepts and the journal
// records. Exactly the fields the kind needs are read; the rest are
// ignored on input and omitted on output.
type Op struct {
	// Op is the kind: add-vertex | remove-vertex | add-edge | remove-edge.
	Op string `json:"op"`
	// U and V are the edge endpoints (add-edge, remove-edge); V doubles as
	// the vertex id of remove-vertex.
	U int `json:"u,omitempty"`
	V int `json:"v,omitempty"`
	// Pos is the joining vertex's torus position (add-vertex).
	Pos []float64 `json:"pos,omitempty"`
	// W is the joining vertex's model weight (add-vertex); it must be at
	// least the base model's wmin.
	W float64 `json:"w,omitempty"`
}

// OpError reports a batch rejected by validation: the op at Index failed
// with Err and the whole batch was discarded — the live graph is unchanged.
// The serving layer maps it to HTTP 422.
type OpError struct {
	Index int
	Op    Op
	Err   error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("mutate: op %d (%s): %v", e.Index, e.Op.Op, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// CorruptError reports undecodable journal bytes: record payloads that are
// not a well-formed mutation batch. Offset is the byte offset inside the
// payload. The decoder returns it for every malformed input — arbitrary
// bytes never panic it and never make it allocate unboundedly (FuzzMutationLog
// enforces both).
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("mutate: corrupt batch at offset %d: %s", e.Offset, e.Reason)
}

func corruptf(off int64, format string, args ...interface{}) error {
	return &CorruptError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// Binary batch layout (inside one ckpt record payload, which already
// carries its own length prefix and CRC):
//
//	u8  version (1)
//	u32 op count (LE)
//	per op: u8 kind, then
//	  kindAddVertex:    u8 dim, dim × f64 pos, f64 w
//	  kindRemoveVertex: u32 v
//	  kindAddEdge:      u32 u, u32 v
//	  kindRemoveEdge:   u32 u, u32 v
//
// The encoding is canonical — EncodeBatch(DecodeBatch(b)) == b for every
// valid b — so replicas replaying the same journal hold byte-identical
// records.
const (
	batchVersion = 1

	kindAddVertex    = 1
	kindRemoveVertex = 2
	kindAddEdge      = 3
	kindRemoveEdge   = 4

	// minOpSize bounds how many ops a payload of a given length can hold
	// (kind byte + at least a u32), which caps the decoder's allocation for
	// hostile counts.
	minOpSize = 5

	maxVertexID = math.MaxInt32
)

// EncodeBatch encodes ops into the journal payload format. Ops must have
// passed validation (in particular ids fit int32 and positions fit the
// MaxDim cap); out-of-representation values error.
func EncodeBatch(ops []Op) ([]byte, error) {
	buf := make([]byte, 0, 1+4+len(ops)*minOpSize)
	buf = append(buf, batchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for i, op := range ops {
		switch op.Op {
		case OpAddVertex:
			if len(op.Pos) == 0 || len(op.Pos) > torus.MaxDim {
				return nil, fmt.Errorf("mutate: op %d: position dimension %d outside [1, %d]", i, len(op.Pos), torus.MaxDim)
			}
			buf = append(buf, kindAddVertex, byte(len(op.Pos)))
			for _, c := range op.Pos {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
			}
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(op.W))
		case OpRemoveVertex:
			if op.V < 0 || op.V > maxVertexID {
				return nil, fmt.Errorf("mutate: op %d: vertex %d unrepresentable", i, op.V)
			}
			buf = append(buf, kindRemoveVertex)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.V))
		case OpAddEdge, OpRemoveEdge:
			if op.U < 0 || op.U > maxVertexID || op.V < 0 || op.V > maxVertexID {
				return nil, fmt.Errorf("mutate: op %d: edge {%d, %d} unrepresentable", i, op.U, op.V)
			}
			k := byte(kindAddEdge)
			if op.Op == OpRemoveEdge {
				k = kindRemoveEdge
			}
			buf = append(buf, k)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.V))
		default:
			return nil, fmt.Errorf("mutate: op %d: unknown kind %q", i, op.Op)
		}
	}
	return buf, nil
}

// DecodeBatch decodes a journal payload back into ops. Every malformed
// input — truncation, bad version, bad kind, impossible counts, trailing
// bytes — returns a *CorruptError; valid inputs round-trip byte-identically
// through EncodeBatch.
func DecodeBatch(payload []byte) ([]Op, error) {
	off := int64(0)
	if len(payload) < 5 {
		return nil, corruptf(off, "payload %d bytes, want at least 5", len(payload))
	}
	if payload[0] != batchVersion {
		return nil, corruptf(0, "unknown batch version %d", payload[0])
	}
	count := binary.LittleEndian.Uint32(payload[1:5])
	off = 5
	rest := payload[5:]
	if max := uint32(len(rest) / minOpSize); count > max {
		return nil, corruptf(1, "op count %d impossible for %d payload bytes", count, len(rest))
	}
	ops := make([]Op, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, corruptf(off, "truncated: op %d missing", i)
		}
		kind := rest[0]
		rest = rest[1:]
		off++
		need := func(n int, what string) error {
			if len(rest) < n {
				return corruptf(off, "truncated %s in op %d: %d bytes left, want %d", what, i, len(rest), n)
			}
			return nil
		}
		switch kind {
		case kindAddVertex:
			if err := need(1, "dimension"); err != nil {
				return nil, err
			}
			dim := int(rest[0])
			rest = rest[1:]
			off++
			if dim == 0 || dim > torus.MaxDim {
				return nil, corruptf(off-1, "position dimension %d outside [1, %d]", dim, torus.MaxDim)
			}
			if err := need(8*(dim+1), "position/weight"); err != nil {
				return nil, err
			}
			op := Op{Op: OpAddVertex, Pos: make([]float64, dim)}
			for j := 0; j < dim; j++ {
				op.Pos[j] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
				rest = rest[8:]
				off += 8
			}
			op.W = math.Float64frombits(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
			off += 8
			ops = append(ops, op)
		case kindRemoveVertex:
			if err := need(4, "vertex id"); err != nil {
				return nil, err
			}
			v := binary.LittleEndian.Uint32(rest)
			rest = rest[4:]
			off += 4
			if v > maxVertexID {
				return nil, corruptf(off-4, "vertex id %d unrepresentable", v)
			}
			ops = append(ops, Op{Op: OpRemoveVertex, V: int(v)})
		case kindAddEdge, kindRemoveEdge:
			if err := need(8, "edge endpoints"); err != nil {
				return nil, err
			}
			u := binary.LittleEndian.Uint32(rest)
			v := binary.LittleEndian.Uint32(rest[4:])
			rest = rest[8:]
			off += 8
			if u > maxVertexID || v > maxVertexID {
				return nil, corruptf(off-8, "edge {%d, %d} unrepresentable", u, v)
			}
			name := OpAddEdge
			if kind == kindRemoveEdge {
				name = OpRemoveEdge
			}
			ops = append(ops, Op{Op: name, U: int(u), V: int(v)})
		default:
			return nil, corruptf(off-1, "unknown op kind %d", kind)
		}
	}
	if len(rest) != 0 {
		return nil, corruptf(off, "%d trailing bytes after %d ops", len(rest), count)
	}
	return ops, nil
}

// applyOps applies a validated-or-rejected batch to an overlay edit. The
// first failing op aborts with an *OpError and the caller discards the
// edit, so batches are all-or-nothing. Returned ids are the vertices the
// batch's add-vertex ops created, in op order.
func applyOps(e *graph.OverlayEdit, ops []Op) (assigned []int, err error) {
	for i, op := range ops {
		switch op.Op {
		case OpAddVertex:
			v, err := e.AddVertex(op.Pos, op.W)
			if err != nil {
				return nil, &OpError{Index: i, Op: op, Err: err}
			}
			assigned = append(assigned, v)
		case OpRemoveVertex:
			if err := e.RemoveVertex(op.V); err != nil {
				return nil, &OpError{Index: i, Op: op, Err: err}
			}
		case OpAddEdge:
			if err := e.AddEdge(op.U, op.V); err != nil {
				return nil, &OpError{Index: i, Op: op, Err: err}
			}
		case OpRemoveEdge:
			if err := e.RemoveEdge(op.U, op.V); err != nil {
				return nil, &OpError{Index: i, Op: op, Err: err}
			}
		default:
			return nil, &OpError{Index: i, Op: op, Err: fmt.Errorf("unknown op kind %q", op.Op)}
		}
	}
	return assigned, nil
}
