package mutate

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// corpusBatch is the deterministic batch every fuzz seed derives from: one
// of each op kind, so the mutator starts inside every decoder arm.
func corpusBatch() []Op {
	return []Op{
		{Op: OpAddVertex, Pos: []float64{0.25, 0.75}, W: 1.5},
		{Op: OpAddEdge, U: 5, V: 0},
		{Op: OpRemoveEdge, U: 1, V: 2},
		{Op: OpRemoveVertex, V: 3},
	}
}

// FuzzMutationLog is the journal decoder's robustness contract, the mirror
// of graphio's FuzzRead: arbitrary bytes through DecodeBatch must either
// decode — in which case re-encoding is byte-identical (the canonical-form
// property replay determinism rests on) — or fail as a classified
// *CorruptError. Never a panic, never an allocation proportional to a lying
// op count.
//
// Regenerate the seed corpus under testdata/fuzz/FuzzMutationLog with:
//
//	go run ./internal/mutate/gen_corpus.go
func FuzzMutationLog(f *testing.F) {
	valid, err := EncodeBatch(corpusBatch())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flip := bytes.Clone(valid)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff}) // huge op count, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeBatch(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *CorruptError: %v", err)
			}
			return
		}
		re, err := EncodeBatch(ops)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
	})
}

// TestFuzzCorpusCommitted pins the seed corpus: every committed seed must
// run clean through the fuzz property, and the corpus must cover at least
// the valid/truncated/bit-flipped triple so a regenerated corpus can't
// silently shrink.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzMutationLog")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(entries) < 5 {
		t.Fatalf("seed corpus has %d entries, want >= 5", len(entries))
	}
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, ok := decodeCorpusFile(raw)
		if !ok {
			t.Fatalf("%s: not a go-fuzz v1 corpus file", ent.Name())
		}
		ops, err := DecodeBatch(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("%s: unclassified decode error: %v", ent.Name(), err)
			}
			continue
		}
		re, err := EncodeBatch(ops)
		if err != nil || !bytes.Equal(re, data) {
			t.Errorf("%s: valid seed does not round-trip (%v)", ent.Name(), err)
		}
	}
}

// decodeCorpusFile extracts the []byte literal from a "go test fuzz v1"
// corpus file.
func decodeCorpusFile(raw []byte) ([]byte, bool) {
	lines := bytes.SplitN(raw, []byte("\n"), 3)
	if len(lines) < 2 || string(lines[0]) != "go test fuzz v1" {
		return nil, false
	}
	body := string(lines[1])
	const pre, post = "[]byte(", ")"
	if len(body) < len(pre)+len(post) || body[:len(pre)] != pre || body[len(body)-1:] != post {
		return nil, false
	}
	s, err := strconv.Unquote(body[len(pre) : len(body)-1])
	if err != nil {
		return nil, false
	}
	return []byte(s), true
}
