package mutate

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// tf maps (seed, i) to a deterministic uniform in [0, 1) — the same
// splitmix construction the graph package's tests use, so fixtures need no
// RNG state.
func tf(seed, i uint64) float64 {
	x := seed ^ (i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * 0x1p-53
}

// testGraph builds a deterministic geometric base graph with a few hash
// edges per vertex.
func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	space, err := torus.NewSpace(2)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]float64, 2*n)
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		coords[2*v] = tf(seed, uint64(3*v))
		coords[2*v+1] = tf(seed, uint64(3*v+1))
		weights[v] = 1 + 3*tf(seed, uint64(3*v+2))
	}
	pos, err := torus.NewPositionsRaw(space, coords)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBuilder(n, pos, weights, float64(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for k := 0; k < 3; k++ {
			u := int(tf(seed+7, uint64(3*v+k)) * float64(n))
			if u != v && u < n {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Finish()
}

// genBatches simulates a churn stream on a shadow overlay and records the
// ops, so the same [][]Op can be replayed into any number of logs over the
// same base and must land on the same graph.
func genBatches(t testing.TB, g *graph.Graph, nBatches int, seed uint64) [][]Op {
	t.Helper()
	o := graph.NewOverlay(g)
	rng := xrand.New(seed)
	dim := g.Space().Dim()
	var batches [][]Op
	for b := 0; b < nBatches; b++ {
		e := o.Edit()
		var ops []Op
		// One join with a few edges.
		pos := make([]float64, dim)
		for i := range pos {
			pos[i] = rng.Float64()
		}
		w := g.WMin() * (1 + rng.Float64())
		nv, err := e.AddVertex(pos, w)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, Op{Op: OpAddVertex, Pos: pos, W: w})
		for k := 0; k < 4; k++ {
			u := rng.IntN(nv)
			if u != nv && !e.Tombstoned(u) && !e.HasEdge(nv, u) {
				if err := e.AddEdge(nv, u); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, Op{Op: OpAddEdge, U: nv, V: u})
			}
		}
		// Occasionally a leave.
		if b%3 == 1 {
			for tries := 0; tries < 20; tries++ {
				v := rng.IntN(g.N())
				if !e.Tombstoned(v) {
					if err := e.RemoveVertex(v); err != nil {
						t.Fatal(err)
					}
					ops = append(ops, Op{Op: OpRemoveVertex, V: v})
					break
				}
			}
		}
		// A few edge flips among base ids.
		for k := 0; k < 4; k++ {
			u, v := rng.IntN(g.N()), rng.IntN(g.N())
			if u == v || e.Tombstoned(u) || e.Tombstoned(v) {
				continue
			}
			if e.HasEdge(u, v) {
				if err := e.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, Op{Op: OpRemoveEdge, U: u, V: v})
			} else {
				if err := e.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				ops = append(ops, Op{Op: OpAddEdge, U: u, V: v})
			}
		}
		o = e.Finish()
		batches = append(batches, ops)
	}
	return batches
}

func mustOpen(t *testing.T, dir string, g *graph.Graph, cfg Config) *Log {
	t.Helper()
	l, err := Open(dir, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func applyAll(t *testing.T, l *Log, batches [][]Op) {
	t.Helper()
	for i, ops := range batches {
		if _, err := l.Apply(ops); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := testGraph(t, 200, 1)
	for _, ops := range genBatches(t, g, 25, 2) {
		payload, err := EncodeBatch(ops)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(ops) {
			t.Fatalf("decoded %d ops, want %d", len(back), len(ops))
		}
		re, err := EncodeBatch(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(payload) {
			t.Fatal("re-encoding is not byte-identical")
		}
	}
}

func TestDecodeCorruptClassified(t *testing.T) {
	g := testGraph(t, 50, 3)
	valid, err := EncodeBatch(genBatches(t, g, 3, 4)[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short":          {1, 0, 0},
		"bad-version":    append([]byte{9}, valid[1:]...),
		"huge-count":     {1, 0xff, 0xff, 0xff, 0xff, kindAddEdge, 0, 0, 0, 0, 1, 0, 0, 0},
		"truncated":      valid[:len(valid)-3],
		"trailing":       append(append([]byte{}, valid...), 0xaa),
		"bad-kind":       {1, 1, 0, 0, 0, 99, 0, 0, 0, 0},
		"zero-dim":       {1, 1, 0, 0, 0, kindAddVertex, 0},
		"huge-dim":       {1, 1, 0, 0, 0, kindAddVertex, 200, 0, 0, 0, 0, 0, 0, 0, 0},
		"huge-vertex-id": {1, 1, 0, 0, 0, kindRemoveVertex, 0xff, 0xff, 0xff, 0xff},
	}
	for name, payload := range cases {
		_, err := DecodeBatch(payload)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: got %v, want *CorruptError", name, err)
		}
	}
}

func TestApplyValidationRejects(t *testing.T) {
	g := testGraph(t, 100, 5)
	dir := t.TempDir()
	l := mustOpen(t, dir, g, Config{})
	good := genBatches(t, g, 2, 6)
	applyAll(t, l, good[:1])
	fpBefore := l.Fingerprint()
	epochBefore := l.Overlay().Epoch()

	bad := [][]Op{
		{},                                 // empty batch
		{{Op: "teleport", U: 1, V: 2}},     // unknown kind
		{{Op: OpAddEdge, U: 0, V: 10_000}}, // out of range
		{{Op: OpAddEdge, U: 3, V: 3}},      // self-loop
		{{Op: OpRemoveVertex, V: -1}},      // negative id
		{{Op: OpAddVertex, Pos: []float64{0.5}, W: 2}},                 // wrong dim
		{{Op: OpAddVertex, Pos: []float64{0.5, 0.5}, W: 0.001}},        // below wmin
		{{Op: OpAddEdge, U: 0, V: 1}, {Op: OpRemoveVertex, V: 99_999}}, // second op invalid: whole batch must roll back
	}
	for i, ops := range bad {
		_, err := l.Apply(ops)
		var oe *OpError
		if !errors.As(err, &oe) {
			t.Fatalf("bad batch %d: got %v, want *OpError", i, err)
		}
	}
	if l.Fingerprint() != fpBefore || l.Overlay().Epoch() != epochBefore {
		t.Fatal("rejected batches mutated the live graph")
	}
	if st := l.Stats(); st.Rejected != uint64(len(bad)) || st.Batches != 1 {
		t.Fatalf("stats after rejects: %+v", st)
	}
}

func TestOpenRequiresResume(t *testing.T) {
	g := testGraph(t, 50, 7)
	dir := t.TempDir()
	l := mustOpen(t, dir, g, Config{})
	applyAll(t, l, genBatches(t, g, 2, 8))
	l.Close()
	if _, err := Open(dir, g, Config{}); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("reopen without Resume: %v", err)
	}
	g2 := testGraph(t, 50, 8) // different base
	if _, err := Open(dir, g2, Config{Resume: true}); err == nil || !strings.Contains(err.Error(), "base graph") {
		t.Fatalf("reopen over wrong base: %v", err)
	}
}

// TestCrashReplayDeterminism is the tentpole acceptance: apply N batches;
// at every tested batch boundary k abandon the log without Close (the
// in-process stand-in for SIGKILL — every acknowledged batch is already
// fsynced), re-open with Resume, apply the remaining batches, and demand a
// live fingerprint bit-identical to a reference log that never crashed.
func TestCrashReplayDeterminism(t *testing.T) {
	g := testGraph(t, 300, 9)
	const nBatches = 20
	batches := genBatches(t, g, nBatches, 10)

	ref := mustOpen(t, t.TempDir(), g, Config{})
	applyAll(t, ref, batches)
	want := ref.Fingerprint()
	wantEpoch := ref.Overlay().Epoch()

	for _, k := range []int{0, 1, 7, nBatches - 1, nBatches} {
		dir := t.TempDir()
		crashed := mustOpen(t, dir, g, Config{})
		applyAll(t, crashed, batches[:k])
		// No Close: the open file handle leaks like a killed process's would.
		resumed, err := Open(dir, g, Config{Resume: true})
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got := resumed.Stats().Replayed; got != uint64(k) {
			t.Fatalf("k=%d: replayed %d batches, want %d", k, got, k)
		}
		applyAll(t, resumed, batches[k:])
		if got := resumed.Fingerprint(); got != want {
			t.Fatalf("k=%d: fingerprint %016x, want %016x", k, got, want)
		}
		if got := resumed.Overlay().Epoch(); got != wantEpoch {
			t.Fatalf("k=%d: epoch %d, want %d", k, got, wantEpoch)
		}
		resumed.Close()
	}
}

// TestTornTailTruncated mirrors the ckpt contract at this layer: a crash
// mid-append leaves a torn final record, and resume must serve the longest
// intact prefix rather than refuse or mis-apply.
func TestTornTailTruncated(t *testing.T) {
	g := testGraph(t, 200, 11)
	batches := genBatches(t, g, 6, 12)

	ref := mustOpen(t, t.TempDir(), g, Config{})
	applyAll(t, ref, batches[:5])
	want := ref.Fingerprint()

	dir := t.TempDir()
	l := mustOpen(t, dir, g, Config{})
	applyAll(t, l, batches)
	l.Close()
	jpath := filepath.Join(dir, genDirName(1), "journal.wal")
	st, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	resumed := mustOpen(t, dir, g, Config{Resume: true})
	if got := resumed.Stats().Replayed; got != 5 {
		t.Fatalf("replayed %d batches after torn tail, want 5", got)
	}
	if got := resumed.Fingerprint(); got != want {
		t.Fatalf("fingerprint %016x after torn tail, want %016x", got, want)
	}
}

func TestCompactionFoldsAndResumes(t *testing.T) {
	g := testGraph(t, 300, 13)
	batches := genBatches(t, g, 18, 14)
	dir := t.TempDir()
	var compacted int
	l := mustOpen(t, dir, g, Config{
		OnCompact: func(base *graph.Graph, ov *graph.Overlay, snapshot string) {
			compacted++
			if !ov.Empty() {
				t.Error("overlay not empty right after an idle compaction")
			}
			if _, err := os.Stat(snapshot); err != nil {
				t.Errorf("snapshot missing: %v", err)
			}
		},
	})
	applyAll(t, l, batches[:12])
	fpLive := l.Fingerprint()
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if compacted != 1 {
		t.Fatalf("OnCompact ran %d times, want 1", compacted)
	}
	if l.Generation() != 2 {
		t.Fatalf("generation %d after compaction, want 2", l.Generation())
	}
	if got := l.Fingerprint(); got != fpLive {
		t.Fatalf("compaction changed the live fingerprint: %016x != %016x", got, fpLive)
	}
	if got := l.Base().Fingerprint(); got != fpLive {
		t.Fatalf("folded base fingerprint %016x, want live %016x", got, fpLive)
	}
	if _, err := os.Stat(filepath.Join(dir, genDirName(1))); !os.IsNotExist(err) {
		t.Fatalf("old generation dir not retired: %v", err)
	}

	// Keep mutating in generation 2, then crash-resume: the snapshot, not
	// the original base, must anchor the replay.
	applyAll(t, l, batches[12:])
	want := l.Fingerprint()
	resumed, err := Open(dir, g, Config{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Generation() != 2 {
		t.Fatalf("resumed generation %d, want 2", resumed.Generation())
	}
	if got := resumed.Fingerprint(); got != want {
		t.Fatalf("resumed fingerprint %016x, want %016x", got, want)
	}
	// And the compacted graph must equal the straight-line reference.
	ref := mustOpen(t, t.TempDir(), g, Config{})
	applyAll(t, ref, batches)
	if got := ref.Fingerprint(); got != want {
		t.Fatalf("compacted lineage diverged from reference: %016x != %016x", want, got)
	}
}

func TestAutoCompaction(t *testing.T) {
	g := testGraph(t, 300, 15)
	batches := genBatches(t, g, 16, 16)
	dir := t.TempDir()
	l := mustOpen(t, dir, g, Config{CompactAt: 8})
	ref := mustOpen(t, t.TempDir(), g, Config{})
	applyAll(t, l, batches)
	applyAll(t, ref, batches)
	l.Close() // waits for any in-flight background compaction
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	if got, want := l.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("fingerprint %016x after auto-compaction, want %016x", got, want)
	}
}
