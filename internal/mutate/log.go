package mutate

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/atomicio"
	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// Config tunes a mutation Log.
type Config struct {
	// Resume permits opening a directory that already holds a mutation log
	// (the journal is replayed). Without it, an existing log refuses to
	// open — the same explicit-resume contract as the experiment checkpoints.
	Resume bool
	// CompactAt folds the overlay into a fresh snapshot once its DeltaSize
	// (dirty + added + tombstoned vertices) reaches this threshold; 0
	// disables automatic compaction (Compact can still be called directly).
	CompactAt int
	// SyncEvery is passed to the journal: fsync after every k batches
	// (default 1 — every acknowledged batch is durable).
	SyncEvery int
	// OnApply, if set, is called with each newly published overlay, under
	// the log's lock — it must publish-and-return, not call back into the
	// Log.
	OnApply func(ov *graph.Overlay)
	// OnCompact, if set, is called after a compaction commits with the new
	// base graph, the rebuilt (tail-replayed) overlay over it, and the path
	// of the snapshot written — again under the lock, no reentry.
	OnCompact func(base *graph.Graph, ov *graph.Overlay, snapshot string)
	// Logger receives replay/compaction progress; nil discards.
	Logger *slog.Logger
}

// maxBatchOps bounds one Apply call; bigger batches gain nothing (the lock
// is held across the batch anyway) and bloat single journal records.
const maxBatchOps = 1 << 16

// current is the persisted commit pointer of a mutation log directory:
// which journal generation is live and which snapshot (if any) supersedes
// the original base graph. It is flipped atomically (write-temp, fsync,
// rename), so a crash anywhere during compaction resolves to exactly one
// generation on restart.
type current struct {
	Version    int    `json:"version"`
	Generation int    `json:"generation"`
	Snapshot   string `json:"snapshot,omitempty"` // relative to the log dir; empty for generation 1
	BaseFP     string `json:"base_fingerprint"`
}

const (
	currentName    = "CURRENT"
	currentVersion = 1
)

// Log is the journaled mutation pipeline: Apply validates a batch against
// the live overlay, appends its canonical encoding to the generation's
// write-ahead journal (fsynced before the call returns), then publishes the
// next overlay epoch. Opening the same directory again replays the journal
// over the same base to a bit-identical live fingerprint. Safe for
// concurrent use; batches serialize.
type Log struct {
	dir string
	cfg Config

	mu      sync.Mutex
	closed  bool
	base    *graph.Graph
	ov      *graph.Overlay
	gen     int
	seq     int // next batch sequence number in this generation
	journal *ckpt.Journal

	batches     uint64
	opsApplied  uint64
	rejected    uint64
	compactions uint64
	replayed    uint64

	compacting atomic.Bool
	wg         sync.WaitGroup
}

// Applied reports a committed batch.
type Applied struct {
	// Generation and Seq locate the batch's journal record.
	Generation int
	Seq        int
	// Epoch is the overlay epoch the batch published.
	Epoch uint64
	// Assigned lists the vertex ids this batch's add-vertex ops created, in
	// op order.
	Assigned []int
}

// Stats is a point-in-time snapshot of the log's counters, for /readyz and
// /metrics.
type Stats struct {
	Generation  int
	Seq         int
	Batches     uint64
	Ops         uint64
	Rejected    uint64
	Compactions uint64
	Replayed    uint64
	Overlay     graph.OverlayStats
}

func genDirName(gen int) string { return fmt.Sprintf("gen-%06d", gen) }
func snapName(gen int) string   { return fmt.Sprintf("snap-gen-%06d.girgb", gen) }
func batchKey(seq int) string   { return fmt.Sprintf("b/%08d", seq) }
func fpString(fp uint64) string { return fmt.Sprintf("%016x", fp) }
func journalKey(fp uint64, gen int) string {
	return fmt.Sprintf("mutlog/%s/%s", fpString(fp), genDirName(gen))
}

// Open opens (creating if necessary) the mutation log in dir over the given
// base graph and replays any journaled batches. A fresh directory starts
// generation 1 against base; a resumed directory whose CURRENT points at a
// compacted snapshot loads that snapshot instead — callers must route over
// Base()/Overlay() rather than the graph they passed in. Opening an
// existing log requires cfg.Resume, and generation-1 logs verify the
// caller's base fingerprint so a log is never replayed over the wrong
// graph.
func Open(dir string, base *graph.Graph, cfg Config) (*Log, error) {
	if base == nil {
		return nil, fmt.Errorf("mutate: nil base graph")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mutate: %w", err)
	}
	l := &Log{dir: dir, cfg: cfg, base: base}

	cpath := filepath.Join(dir, currentName)
	raw, err := os.ReadFile(cpath)
	switch {
	case err == nil:
		if !cfg.Resume {
			return nil, fmt.Errorf("mutate: %s already holds a mutation log; pass -resume to replay it or choose a fresh directory", dir)
		}
		cur, err := parseCurrent(cpath, raw)
		if err != nil {
			return nil, err
		}
		l.gen = cur.Generation
		if cur.Snapshot != "" {
			snap := filepath.Join(dir, cur.Snapshot)
			g, err := graphio.ReadFile(snap)
			if err != nil {
				return nil, fmt.Errorf("mutate: compacted snapshot %s: %w", snap, err)
			}
			l.base = g
		}
		if got := fpString(l.base.Fingerprint()); got != cur.BaseFP {
			return nil, fmt.Errorf("mutate: log %s belongs to base graph %s, this graph is %s", dir, cur.BaseFP, got)
		}
	case os.IsNotExist(err):
		l.gen = 1
		if err := writeCurrent(dir, current{
			Version:    currentVersion,
			Generation: 1,
			BaseFP:     fpString(base.Fingerprint()),
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("mutate: %w", err)
	}

	l.journal, err = ckpt.Open(
		filepath.Join(dir, genDirName(l.gen)),
		journalKey(l.base.Fingerprint(), l.gen),
		ckpt.Options{SyncEvery: cfg.SyncEvery},
	)
	if err != nil {
		return nil, err
	}
	if err := l.replay(); err != nil {
		l.journal.Close()
		return nil, err
	}
	l.sweepStale()
	if l.replayed > 0 {
		cfg.Logger.Info("mutation log replayed",
			"dir", dir, "generation", l.gen, "batches", l.replayed,
			"epoch", l.ov.Epoch(), "fingerprint", fpString(l.ov.Fingerprint()))
	}
	return l, nil
}

func parseCurrent(path string, raw []byte) (current, error) {
	var cur current
	if err := json.Unmarshal(raw, &cur); err != nil {
		return cur, fmt.Errorf("mutate: %s unreadable: %w", path, err)
	}
	if cur.Version != currentVersion {
		return cur, fmt.Errorf("mutate: %s has version %d, this build writes %d", path, cur.Version, currentVersion)
	}
	if cur.Generation < 1 {
		return cur, fmt.Errorf("mutate: %s has impossible generation %d", path, cur.Generation)
	}
	return cur, nil
}

func writeCurrent(dir string, cur current) error {
	return atomicio.WriteFile(filepath.Join(dir, currentName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(cur)
	})
}

// replay folds every journaled batch of the open generation back into the
// overlay, in sequence order. A batch that fails to decode or to apply
// fails the open: the journal's CRCs already screen bit-rot, so a failure
// here means the log and base graph disagree — refusing is safer than
// serving a silently different graph.
func (l *Log) replay() error {
	l.ov = graph.NewOverlay(l.base)
	for seq := 0; ; seq++ {
		payload, ok := l.journal.Get(batchKey(seq))
		if !ok {
			l.seq = seq
			return nil
		}
		ops, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("mutate: generation %d batch %d: %w", l.gen, seq, err)
		}
		e := l.ov.Edit()
		if _, err := applyOps(e, ops); err != nil {
			return fmt.Errorf("mutate: generation %d batch %d does not apply: %w", l.gen, seq, err)
		}
		l.ov = e.Finish()
		l.replayed++
	}
}

// sweepStale removes generation directories and snapshots other than the
// live ones — leftovers of a crash between a compaction's commit point and
// its cleanup. Best-effort: failures only log.
func (l *Log) sweepStale() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	keepDir, keepSnap := genDirName(l.gen), snapName(l.gen)
	for _, ent := range entries {
		name := ent.Name()
		stale := (ent.IsDir() && len(name) > 4 && name[:4] == "gen-" && name != keepDir) ||
			(!ent.IsDir() && len(name) > 5 && name[:5] == "snap-" && name != keepSnap)
		if stale {
			if err := os.RemoveAll(filepath.Join(l.dir, name)); err != nil {
				l.cfg.Logger.Warn("mutation log: stale entry not removed", "entry", name, "err", err)
			}
		}
	}
}

// Base returns the graph the current generation's overlay is layered on.
// After a compaction this is the folded snapshot, not the graph Open was
// called with.
func (l *Log) Base() *graph.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Overlay returns the currently published overlay.
func (l *Log) Overlay() *graph.Overlay {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ov
}

// Generation returns the live journal generation (1 until the first
// compaction).
func (l *Log) Generation() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Fingerprint returns the live graph's fingerprint — the quantity crash
// replay must reproduce bit for bit.
func (l *Log) Fingerprint() uint64 {
	ov := l.Overlay()
	return ov.Fingerprint()
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Generation:  l.gen,
		Seq:         l.seq,
		Batches:     l.batches,
		Ops:         l.opsApplied,
		Rejected:    l.rejected,
		Compactions: l.compactions,
		Replayed:    l.replayed,
		Overlay:     l.ov.Stats(),
	}
}

// Apply validates, journals and publishes one batch, in that order: a batch
// is acknowledged only after its canonical encoding is in the write-ahead
// journal (fsynced under the default SyncEvery), and it becomes visible to
// routing only after that — all-or-nothing. Validation failures return an
// *OpError (the serving layer's 422) with the live graph untouched.
func (l *Log) Apply(ops []Op) (Applied, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Applied{}, fmt.Errorf("mutate: log closed")
	}
	if len(ops) == 0 {
		l.rejected++
		return Applied{}, &OpError{Index: 0, Err: fmt.Errorf("empty batch")}
	}
	if len(ops) > maxBatchOps {
		l.rejected++
		return Applied{}, &OpError{Index: 0, Err: fmt.Errorf("batch of %d ops exceeds the %d cap", len(ops), maxBatchOps)}
	}
	e := l.ov.Edit()
	assigned, err := applyOps(e, ops)
	if err != nil {
		l.rejected++
		return Applied{}, err // edit discarded; published overlay untouched
	}
	payload, err := EncodeBatch(ops)
	if err != nil {
		// applyOps validated every op, so an encoding failure is a bug, not
		// bad input; surface it without publishing.
		l.rejected++
		return Applied{}, err
	}
	if err := l.journal.Put(batchKey(l.seq), payload); err != nil {
		return Applied{}, fmt.Errorf("mutate: journal append: %w", err)
	}
	l.ov = e.Finish()
	res := Applied{Generation: l.gen, Seq: l.seq, Epoch: l.ov.Epoch(), Assigned: assigned}
	l.seq++
	l.batches++
	l.opsApplied += uint64(len(ops))
	if l.cfg.OnApply != nil {
		l.cfg.OnApply(l.ov)
	}
	if l.cfg.CompactAt > 0 && l.ov.DeltaSize() >= l.cfg.CompactAt && l.compacting.CompareAndSwap(false, true) {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer l.compacting.Store(false)
			if err := l.compact(); err != nil {
				l.cfg.Logger.Error("mutation log: background compaction failed", "err", err)
			}
		}()
	}
	return res, nil
}

// Compact folds the current overlay into a fresh snapshot and starts the
// next journal generation:
//
//  1. capture the published overlay (immutable — applies continue),
//  2. materialize it, write snap-gen-(g+1).girgb atomically, read it back
//     and verify the fingerprint survived the disk round trip,
//  3. under the lock: journal the batches applied since the capture into
//     the new generation (renumbered from 0), rebuild the overlay by
//     replaying that tail over the new base, flip CURRENT — the commit
//     point — then retire the old generation and publish.
//
// A crash before the CURRENT flip leaves the old generation fully live (the
// half-written next generation is swept on the next open); a crash after it
// resumes from the new one. Vertex ids are stable across compaction because
// Materialize preserves the id space — a removed vertex survives as an
// isolated vertex, its tombstone bit folded into an empty adjacency.
func (l *Log) Compact() error {
	// One compaction at a time: a second caller (or the background trigger)
	// would race this one on the next generation's directory.
	if !l.compacting.CompareAndSwap(false, true) {
		return fmt.Errorf("mutate: compaction already in progress")
	}
	defer l.compacting.Store(false)
	return l.compact()
}

func (l *Log) compact() error {
	// Phase 1: capture.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("mutate: log closed")
	}
	ov, upTo, oldGen := l.ov, l.seq, l.gen
	l.mu.Unlock()

	// Phase 2: fold and persist, off-lock.
	newBase, err := ov.Materialize()
	if err != nil {
		return fmt.Errorf("mutate: compact: %w", err)
	}
	newGen := oldGen + 1
	snap := snapName(newGen)
	snapPath := filepath.Join(l.dir, snap)
	if err := atomicio.WriteFile(snapPath, func(w io.Writer) error {
		return graphio.WriteBinary(w, newBase)
	}); err != nil {
		return fmt.Errorf("mutate: compact: %w", err)
	}
	reread, err := graphio.ReadFile(snapPath)
	if err != nil {
		os.Remove(snapPath)
		return fmt.Errorf("mutate: compact: snapshot does not read back: %w", err)
	}
	if reread.Fingerprint() != newBase.Fingerprint() {
		os.Remove(snapPath)
		return fmt.Errorf("mutate: compact: snapshot fingerprint %s != folded graph %s",
			fpString(reread.Fingerprint()), fpString(newBase.Fingerprint()))
	}

	// Phase 3: commit.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		os.Remove(snapPath)
		return fmt.Errorf("mutate: log closed")
	}
	abort := func(nj *ckpt.Journal, err error) error {
		if nj != nil {
			nj.Close()
		}
		os.RemoveAll(filepath.Join(l.dir, genDirName(newGen)))
		os.Remove(snapPath)
		return err
	}
	gdir := filepath.Join(l.dir, genDirName(newGen))
	os.RemoveAll(gdir) // leftovers of an earlier failed compaction
	nj, err := ckpt.Open(gdir, journalKey(newBase.Fingerprint(), newGen), ckpt.Options{SyncEvery: l.cfg.SyncEvery})
	if err != nil {
		return abort(nil, fmt.Errorf("mutate: compact: %w", err))
	}
	// Batches applied while phase 2 ran carry over into the new generation,
	// renumbered from 0, and replay over the new base to rebuild the live
	// overlay. Replay cannot diverge: the folded base holds exactly the live
	// edge set the tail was validated against, with stable vertex ids.
	nov := graph.NewOverlay(newBase)
	for seq := upTo; seq < l.seq; seq++ {
		payload, ok := l.journal.Get(batchKey(seq))
		if !ok {
			return abort(nj, fmt.Errorf("mutate: compact: batch %d missing from generation %d", seq, oldGen))
		}
		if err := nj.Put(batchKey(seq-upTo), payload); err != nil {
			return abort(nj, fmt.Errorf("mutate: compact: %w", err))
		}
		ops, err := DecodeBatch(payload)
		if err != nil {
			return abort(nj, fmt.Errorf("mutate: compact: batch %d: %w", seq, err))
		}
		e := nov.Edit()
		if _, err := applyOps(e, ops); err != nil {
			return abort(nj, fmt.Errorf("mutate: compact: batch %d does not replay over the folded base: %w", seq, err))
		}
		nov = e.Finish()
	}
	if err := nj.Sync(); err != nil {
		return abort(nj, fmt.Errorf("mutate: compact: %w", err))
	}
	if err := writeCurrent(l.dir, current{
		Version:    currentVersion,
		Generation: newGen,
		Snapshot:   snap,
		BaseFP:     fpString(newBase.Fingerprint()),
	}); err != nil {
		return abort(nj, err)
	}
	// Committed. Retirement of the old generation is best-effort — sweepStale
	// finishes the job on the next open if anything below fails.
	l.journal.Close()
	os.RemoveAll(filepath.Join(l.dir, genDirName(oldGen)))
	os.Remove(filepath.Join(l.dir, snapName(oldGen)))
	tail := l.seq - upTo
	l.base, l.ov, l.gen, l.journal, l.seq = newBase, nov, newGen, nj, tail
	l.compactions++
	l.cfg.Logger.Info("mutation log compacted",
		"generation", newGen, "snapshot", snap, "tail_batches", tail,
		"fingerprint", fpString(newBase.Fingerprint()))
	if l.cfg.OnCompact != nil {
		l.cfg.OnCompact(newBase, nov, snapPath)
	}
	return nil
}

// Close waits for any background compaction and releases the journal. The
// log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.wg.Wait()
	l.mu.Lock()
	j := l.journal
	l.mu.Unlock()
	return j.Close()
}
