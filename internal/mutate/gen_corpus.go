//go:build ignore

// gen_corpus regenerates the committed FuzzMutationLog seed corpus under
// internal/mutate/testdata/fuzz/FuzzMutationLog: a valid mutation batch
// covering every op kind plus truncated, bit-flipped, trailing-byte and
// lying-header variants, in the "go test fuzz v1" corpus-file encoding.
// Run from the repo root:
//
//	go run ./internal/mutate/gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/mutate"
)

func main() {
	valid, err := mutate.EncodeBatch([]mutate.Op{
		{Op: mutate.OpAddVertex, Pos: []float64{0.25, 0.75}, W: 1.5},
		{Op: mutate.OpAddEdge, U: 5, V: 0},
		{Op: mutate.OpRemoveEdge, U: 1, V: 2},
		{Op: mutate.OpRemoveVertex, V: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	single, err := mutate.EncodeBatch([]mutate.Op{{Op: mutate.OpAddEdge, U: 7, V: 11}})
	if err != nil {
		log.Fatal(err)
	}

	flip := bytes.Clone(valid)
	flip[len(flip)/2] ^= 0x40
	seeds := map[string][]byte{
		"valid-batch":  valid,
		"valid-single": single,
		"truncated":    valid[:len(valid)/2],
		"bitflip":      flip,
		"trailing":     append(bytes.Clone(valid), 0xaa),
		"empty":        {},
		"huge-count":   {1, 0xff, 0xff, 0xff, 0xff},
		"bad-version":  append([]byte{9}, valid[1:]...),
		"bad-kind":     {1, 1, 0, 0, 0, 99, 0, 0, 0, 0},
	}

	dir := filepath.Join("internal", "mutate", "testdata", "fuzz", "FuzzMutationLog")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
